#!/bin/bash
# Regenerates Table 1 and Figures 2-8 into results/.
# Usage: scripts/run_all_figures.sh [TRIALS] [EPOCHS]
set -u
cd "$(dirname "$0")/.."
TRIALS=${1:-2}
EPOCHS=${2:-3}
cargo build --release -p dlb-bench
BIN=target/release/figures
mkdir -p results
for fig in 2 3 4 5 6; do
  echo "=== figure $fig start $(date +%T) ==="
  $BIN --fig $fig --trials "$TRIALS" --epochs "$EPOCHS" \
    > results/figure$fig.txt 2> results/figure$fig.log
  echo "=== figure $fig done $(date +%T) ==="
done
for fig in 7 8; do
  echo "=== figure $fig start $(date +%T) ==="
  $BIN --fig $fig --trials "$TRIALS" --epochs 2 --ranks 4 \
    > results/figure$fig.txt 2> results/figure$fig.log
  echo "=== figure $fig done $(date +%T) ==="
done
target/release/table1 --scale 0.01 > results/table1.txt 2>&1
python3 scripts/fill_experiments.py || true
echo ALL-FIGURES-DONE
