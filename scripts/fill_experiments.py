#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholder rows from results/figure*.csv."""
import csv
import statistics
import sys
from pathlib import Path

RESULTS = Path("results")
EXP = Path("EXPERIMENTS.md")

ALGS = ["Zoltan-repart", "ParMETIS-repart", "Zoltan-scratch", "ParMETIS-scratch"]


def load(fig):
    path = RESULTS / f"figure{fig}.csv"
    if path.exists():
        return list(csv.DictReader(open(path)))
    return load_from_log(fig)


def load_from_log(fig):
    """Fallback: reconstruct rows from the per-bar progress log (written
    incrementally, so available even if the run was interrupted).
    The log has total and time but not the comm/mig split."""
    path = RESULTS / f"figure{fig}.log"
    if not path.exists():
        return None
    rows = []
    panel = 0
    for line in open(path):
        if line.startswith("figure"):
            panel += 1
            continue
        parts = line.split()
        if len(parts) >= 5 and parts[0].startswith("k="):
            def field(name):
                for i, tok in enumerate(parts):
                    if tok == f"{name}=" and i + 1 < len(parts):
                        return parts[i + 1]
                    if tok.startswith(f"{name}=") and len(tok) > len(name) + 1:
                        return tok.split("=", 1)[1]
                return None
            k = field("k")
            alpha = field("alpha")
            alg = parts[2] if not parts[2].startswith("alpha") else parts[3]
            total = field("total")
            time_tok = field("time")
            if None in (k, alpha, total, time_tok):
                continue
            time_ms = time_tok.rstrip("ms")
            rows.append(
                {
                    "dataset": f"fig{fig}",
                    "perturb": "structure" if panel <= 1 else "weights",
                    "k": k,
                    "alpha": alpha,
                    "algorithm": alg,
                    "comm": "0",
                    "mig_norm": "0",
                    "total_norm": total,
                    "time_ms": time_ms,
                    "max_imbalance": "0",
                }
            )
    return rows or None


def corner_row(fig, dataset):
    rows = load(fig)
    if not rows:
        return None
    sel = {}
    for r in rows:
        if r["perturb"] == "structure" and r["k"] == "64" and r["alpha"] == "1":
            sel[r["algorithm"]] = float(r["total_norm"])
    if len(sel) < 4:
        return None
    zr, pr, zs, ps = (sel[a] for a in ALGS)
    wins = win_rate(rows)
    shape = "✓ ZR wins" if zr <= pr else "PR edges ZR here"
    ratio = min(zs, ps) / zr
    return (
        f"| Fig {fig} {dataset} | **{zr:.0f}** | {pr:.0f} | {zs:.0f} | {ps:.0f} "
        f"| {shape}; scratch {ratio:.1f}×; ZR≤PR in {wins} |"
    )


def win_rate(rows):
    groups = {}
    for r in rows:
        key = (r["perturb"], r["k"], r["alpha"])
        groups.setdefault(key, {})[r["algorithm"]] = float(r["total_norm"])
    full = {k: g for k, g in groups.items() if len(g) == 4}
    wins = sum(1 for g in full.values() if g["Zoltan-repart"] <= g["ParMETIS-repart"])
    return f"{wins}/{len(full)}"


def runtime_section():
    out = []
    for fig, names in ((7, ["xyce680s"]), (8, ["2DLipid", "auto"])):
        rows = load(fig)
        if not rows:
            continue
        for name in names:
            per_alg = {}
            for r in rows:
                if r["dataset"] == name:
                    per_alg.setdefault(r["algorithm"], []).append(float(r["time_ms"]))
            if len(per_alg) < 4:
                continue
            med = {a: statistics.median(v) for a, v in per_alg.items()}
            hg = min(med["Zoltan-repart"], med["Zoltan-scratch"])
            gr = min(med["ParMETIS-repart"], med["ParMETIS-scratch"])
            out.append(
                f"* **{name}** (Fig {fig}): median per-epoch repartitioning time — "
                f"Zoltan-repart {med['Zoltan-repart']:.0f} ms, ParMETIS-repart "
                f"{med['ParMETIS-repart']:.0f} ms, Zoltan-scratch {med['Zoltan-scratch']:.0f} ms, "
                f"ParMETIS-scratch {med['ParMETIS-scratch']:.0f} ms "
                f"(best hypergraph / best graph ratio {hg / gr:.1f}×)."
            )
    return "\n".join(out) if out else None


def main():
    text = EXP.read_text()
    for fig, dataset in ((3, "2DLipid"), (4, "auto"), (5, "apoa1-10"), (6, "cage14")):
        row = corner_row(fig, dataset)
        marker = f"<!-- FIG{fig}_ROW -->"
        if row and marker in text:
            text = text.replace(marker, row)
            print(f"filled figure {fig}")
    rt = runtime_section()
    if rt and "<!-- RUNTIME_SECTION -->" in text:
        text = text.replace("<!-- RUNTIME_SECTION -->", rt)
        print("filled runtime section")
    EXP.write_text(text)


if __name__ == "__main__":
    sys.exit(main())
