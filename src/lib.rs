//! Umbrella crate for the dynamic-load-balancing workspace.
//!
//! Re-exports the public API of every workspace crate under one roof so
//! that examples and downstream users can depend on a single crate:
//!
//! * [`hypergraph`] — data structures and metrics,
//! * [`mpisim`] — the simulated SPMD message-passing substrate,
//! * [`partitioner`] — multilevel hypergraph partitioning with fixed vertices,
//! * [`graphpart`] — the ParMETIS-like graph partitioner baseline,
//! * [`core`] — the repartitioning model and algorithm drivers,
//! * [`workloads`] — synthetic datasets and dynamic perturbations,
//! * [`amr`] — the quadtree AMR application simulator,
//! * [`trace`] — phase-level tracing and deterministic metrics.

#![warn(missing_docs)]

pub use dlb_amr as amr;
pub use dlb_core as core;
pub use dlb_graphpart as graphpart;
pub use dlb_hypergraph as hypergraph;
pub use dlb_mpisim as mpisim;
pub use dlb_partitioner as partitioner;
pub use dlb_trace as trace;
pub use dlb_workloads as workloads;
