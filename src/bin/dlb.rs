//! `dlb` — command-line partitioner / repartitioner.
//!
//! ```text
//! dlb partition   -k K [options] INPUT             # static partitioning
//! dlb repartition -k K --old PARTFILE [options] INPUT
//!
//! INPUT formats (by extension):
//!   .mtx           MatrixMarket coordinate (symmetric graph)
//!   .hg            PaToH-like hypergraph text (see dlb_hypergraph::io)
//!
//! Options:
//!   -k K              number of parts (required)
//!   --alpha A         iterations per epoch (repartition only; default 100)
//!   --algorithm NAME  zoltan-repart | zoltan-scratch | parmetis-repart |
//!                     parmetis-scratch (repartition only; default zoltan-repart)
//!   --epsilon E       allowed imbalance (default 0.05)
//!   --seed N          RNG seed (default 0)
//!   --ranks N         run the SPMD parallel partitioner on N simulated
//!                     ranks (default 1 = serial)
//!   --distributed     with --ranks: block-distribute the pin storage
//!                     across ranks (memory-scalable V-cycle; results
//!                     are bit-identical to the replicated driver)
//!   --out FILE        output partition file (default: stdout)
//! ```
//!
//! The output is one part id per line, one line per vertex; a summary
//! (cut / communication volume, migration, imbalance) prints to stderr.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::exit;

use dlb::core::{repartition, repartition_parallel, Algorithm, RepartConfig, RepartProblem};
use dlb::hypergraph::convert::{clique_expansion, column_net_model};
use dlb::hypergraph::io::{read_hypergraph, read_matrix_market_graph};
use dlb::hypergraph::{metrics, CsrGraph, Hypergraph};
use dlb::mpisim::run_spmd;
use dlb::partitioner::par::parallel_partition;
use dlb::partitioner::{partition_hypergraph, Config as HgConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  dlb partition   -k K [--epsilon E] [--seed N] [--ranks N [--distributed]] \
         [--out FILE] INPUT\n  \
         dlb repartition -k K --old PARTFILE [--alpha A] [--algorithm NAME] \
         [--epsilon E] [--seed N] [--ranks N [--distributed]] [--out FILE] INPUT"
    );
    exit(2);
}

struct Cli {
    command: String,
    input: String,
    k: usize,
    alpha: f64,
    algorithm: Algorithm,
    epsilon: f64,
    seed: u64,
    ranks: usize,
    distributed: bool,
    out: Option<String>,
    old: Option<String>,
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv[0].clone();
    let mut k = None;
    let mut alpha = 100.0;
    let mut algorithm = Algorithm::ZoltanRepart;
    let mut epsilon = 0.05;
    let mut seed = 0u64;
    let mut ranks = 1usize;
    let mut distributed = false;
    let mut out = None;
    let mut old = None;
    let mut input = None;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "-k" => {
                k = argv.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--alpha" => {
                alpha = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                i += 2;
            }
            "--algorithm" => {
                algorithm = match argv.get(i + 1).map(String::as_str) {
                    Some("zoltan-repart") => Algorithm::ZoltanRepart,
                    Some("zoltan-scratch") => Algorithm::ZoltanScratch,
                    Some("parmetis-repart") => Algorithm::ParmetisRepart,
                    Some("parmetis-scratch") => Algorithm::ParmetisScratch,
                    other => {
                        eprintln!("unknown algorithm {other:?}");
                        usage();
                    }
                };
                i += 2;
            }
            "--epsilon" => {
                epsilon = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                i += 2;
            }
            "--ranks" => {
                ranks = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                if ranks == 0 {
                    usage();
                }
                i += 2;
            }
            "--distributed" => {
                distributed = true;
                i += 1;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--old" => {
                old = argv.get(i + 1).cloned();
                i += 2;
            }
            arg if !arg.starts_with('-') => {
                input = Some(arg.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    Cli {
        command,
        input: input.unwrap_or_else(|| usage()),
        k: k.unwrap_or_else(|| usage()),
        alpha,
        algorithm,
        epsilon,
        seed,
        ranks,
        distributed,
        out,
        old,
    }
}

/// Loads the input as (hypergraph, graph): `.mtx` gives a graph (column-
/// net hypergraph derived); `.hg` gives a hypergraph (clique-expansion
/// graph derived for the graph-based algorithms).
fn load(input: &str) -> (Hypergraph, CsrGraph) {
    let file = File::open(input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });
    let reader = BufReader::new(file);
    if input.ends_with(".mtx") {
        let graph = read_matrix_market_graph(reader).unwrap_or_else(|e| {
            eprintln!("cannot parse {input}: {e}");
            exit(1);
        });
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        (hypergraph, graph)
    } else if input.ends_with(".hg") {
        let hypergraph = read_hypergraph(reader).unwrap_or_else(|e| {
            eprintln!("cannot parse {input}: {e}");
            exit(1);
        });
        let graph = clique_expansion(&hypergraph);
        (hypergraph, graph)
    } else {
        eprintln!("unknown input extension (want .mtx or .hg): {input}");
        exit(1);
    }
}

fn read_partition(path: &str, n: usize, k: usize) -> Vec<usize> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let parts: Vec<usize> = text
        .split_whitespace()
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("bad part id {t:?} in {path}");
                exit(1);
            })
        })
        .collect();
    if parts.len() != n {
        eprintln!("{path} has {} entries; input has {n} vertices", parts.len());
        exit(1);
    }
    if parts.iter().any(|&p| p >= k) {
        eprintln!("{path} references part >= k={k}");
        exit(1);
    }
    parts
}

fn write_partition(out: &Option<String>, part: &[usize]) {
    let body: String = part.iter().map(|p| format!("{p}\n")).collect();
    match out {
        Some(path) => std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }),
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(body.as_bytes()).expect("stdout");
        }
    }
}

fn main() {
    let cli = parse_cli();
    let (hypergraph, graph) = load(&cli.input);
    eprintln!(
        "loaded {}: {} vertices, {} nets / {} edges",
        cli.input,
        hypergraph.num_vertices(),
        hypergraph.num_nets(),
        graph.num_edges()
    );

    match cli.command.as_str() {
        "partition" => {
            let mut cfg = HgConfig::seeded(cli.seed);
            cfg.epsilon = cli.epsilon;
            cfg.dist.distributed = cli.distributed;
            let r = if cli.ranks > 1 || cli.distributed {
                run_spmd(cli.ranks, |comm| parallel_partition(comm, &hypergraph, cli.k, &cfg))
                    .pop()
                    .expect("at least one rank")
            } else {
                partition_hypergraph(&hypergraph, cli.k, &cfg)
            };
            eprintln!(
                "k={}: comm volume {:.1}, imbalance {:.4}",
                cli.k, r.cut, r.imbalance
            );
            write_partition(&cli.out, &r.part);
        }
        "repartition" => {
            let old_path = cli.old.unwrap_or_else(|| {
                eprintln!("repartition requires --old PARTFILE");
                usage();
            });
            let old = read_partition(&old_path, hypergraph.num_vertices(), cli.k);
            let problem = RepartProblem {
                hypergraph: &hypergraph,
                graph: &graph,
                old_part: &old,
                k: cli.k,
                alpha: cli.alpha,
            };
            let mut cfg = RepartConfig::seeded(cli.seed).with_epsilon(cli.epsilon);
            cfg.hypergraph.dist.distributed = cli.distributed;
            let r = if cli.ranks > 1 || cli.distributed {
                run_spmd(cli.ranks, |comm| {
                    repartition_parallel(comm, &problem, cli.algorithm, &cfg)
                })
                .pop()
                .expect("at least one rank")
            } else {
                repartition(&problem, cli.algorithm, &cfg)
            };
            eprintln!(
                "{}: comm {:.1}, migration {:.1}, total {:.1} (alpha={}), moved {}, imbalance {:.4}",
                cli.algorithm.name(),
                r.cost.comm,
                r.cost.migration,
                r.cost.total(),
                cli.alpha,
                r.moved,
                r.imbalance
            );
            let _ = metrics::imbalance(&hypergraph, &r.new_part, cli.k);
            write_partition(&cli.out, &r.new_part);
        }
        _ => usage(),
    }
}
