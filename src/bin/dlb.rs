//! `dlb` — command-line partitioner / repartitioner.
//!
//! ```text
//! dlb partition   -k K [options] INPUT             # static partitioning
//! dlb repartition -k K --old PARTFILE [options] INPUT
//! dlb simulate    -k K --workload amr|structure|weights [options]
//!
//! INPUT formats (by extension):
//!   .mtx           MatrixMarket coordinate (symmetric graph)
//!   .hg            PaToH-like hypergraph text (see dlb_hypergraph::io)
//!
//! Options:
//!   -k K              number of parts (required, >= 2)
//!   --alpha A         iterations per epoch (repartition/simulate; default 100)
//!   --algorithm NAME  zoltan-repart | zoltan-scratch | parmetis-repart |
//!                     parmetis-scratch (repartition/simulate; default
//!                     zoltan-repart)
//!   --epsilon E       allowed imbalance (default 0.05). Repeatable with
//!                     --constraints: the c-th occurrence is constraint
//!                     c's tolerance; constraints without their own flag
//!                     inherit the first (primary) value
//!   --constraints N   number of balance constraints (default 1).
//!                     N=2 with --workload amr lowers two-constraint
//!                     load vectors (flops and state bytes) so the
//!                     partitioner balances both at once
//!   --seed N          RNG seed (default 0)
//!   --ranks N         run the SPMD parallel partitioner on N simulated
//!                     ranks (default 1 = serial)
//!   --threads N       shared-memory worker threads per rank (default 0 =
//!                     auto: DLB_THREADS, then available parallelism; any
//!                     value gives bit-identical partitions)
//!   --distributed     with --ranks: owner-computes pin storage and
//!                     block-distributed per-vertex arrays across ranks
//!                     (memory-scalable V-cycle; results are
//!                     bit-identical to the replicated driver). Rejected
//!                     together with --world-plan, --fault-plan,
//!                     --incremental, or --constraints > 1 (exit 2)
//!   --trace FILE      record a phase-level trace of the run and write it
//!                     as chrome://tracing JSON (open in about:tracing or
//!                     https://ui.perfetto.dev)
//!   --out FILE        output partition file (default: stdout)
//!   --workload W      simulate only: amr (the quadtree AMR simulator),
//!                     structure, or weights (the paper's synthetic
//!                     perturbations of the auto dataset)
//!   --epochs E        simulate only: epochs to run (default 4)
//!   --scale S         simulate only: amr — levels added to the default
//!                     mesh (integer, default 0); structure/weights —
//!                     dataset scale in (0, 1] (default 0.001)
//!   --fault-plan SPEC simulate only: deterministic fault injection,
//!                     SPEC = "SEED:directive,..." with directives
//!                     rankR@E (logical rank R dies at epoch E, recovered
//!                     by repartitioning onto the survivors), dropP /
//!                     delayP (per-message drop/delay probability in the
//!                     measured migration exchanges). Example:
//!                     --fault-plan 7:rank2@2,drop0.05
//!   --world-plan SPEC simulate only: planned elastic resizes of the
//!                     rank set, SPEC = "SEED:directive,..." with
//!                     directives joinR@E (rank R joins at epoch E) and
//!                     leaveR@E (rank R departs; its vertices migrate
//!                     out). Each resize repartitions onto the new
//!                     world, with the measured cost model choosing
//!                     repartition-vs-scratch per resize. Composable
//!                     with --fault-plan. Example:
//!                     --world-plan 42:join4@2,leave0@3
//!   --incremental     simulate only (serial): pull structural deltas
//!                     from the workload, patch the repartitioning
//!                     model in place, and warm-start the partitioner
//!                     on low-drift epochs; a from-scratch baseline run
//!                     follows and the competitive ratio is printed
//!   --drift-threshold T  with --incremental: warm-start epochs whose
//!                     touched fraction is < T (default 0.6; 0 keeps
//!                     every epoch on the full-rebuild path, which
//!                     reproduces the non-incremental outputs exactly)
//! ```
//!
//! `partition`/`repartition` write one part id per line, one line per
//! vertex, with a summary (cut / communication volume, migration,
//! imbalance) on stderr. `simulate` generates its workload internally,
//! repartitions every epoch, *executes* each epoch under the default
//! latency–bandwidth machine model, and prints per-epoch model costs
//! next to measured makespans.
//!
//! Invalid parameter combinations (`-k 1`, `--ranks 0`, malformed
//! numbers) are rejected up front with a message on stderr and exit
//! code 2, before any driver runs.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::exit;

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{
    repartition, repartition_parallel, Algorithm, FaultPlan, RepartConfig, RepartProblem,
    Session, SimulationSummary, WorldPlan, DEFAULT_DRIFT_THRESHOLD,
};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::{clique_expansion, column_net_model};
use dlb::hypergraph::io::{read_hypergraph, read_matrix_market_graph};
use dlb::hypergraph::{metrics, CsrGraph, Hypergraph};
use dlb::mpisim::run_spmd;
use dlb::partitioner::par::parallel_partition;
use dlb::partitioner::{Config as HgConfig, Determinism};
use dlb::workloads::{AmrSource, Dataset, DatasetKind, EpochSource, EpochStream, Perturbation};

fn usage() -> ! {
    eprintln!(
        "usage:\n  dlb partition   -k K [--epsilon E] [--seed N] [--threads N] \
         [--determinism strict|fast] \
         [--ranks N [--distributed]] [--trace FILE] [--out FILE] INPUT\n  \
         dlb repartition -k K --old PARTFILE [--alpha A] [--algorithm NAME] \
         [--epsilon E] [--seed N] [--threads N] [--determinism strict|fast] \
         [--ranks N [--distributed]] \
         [--trace FILE] [--out FILE] INPUT\n  \
         dlb simulate    -k K --workload amr|structure|weights [--epochs E] [--alpha A] \
         [--algorithm NAME] [--scale S] [--seed N] [--threads N] \
         [--determinism strict|fast] \
         [--constraints N [--epsilon E]...] \
         [--ranks N [--distributed]] [--fault-plan SPEC] [--world-plan SPEC] \
         [--incremental [--drift-threshold T]] [--trace FILE]"
    );
    exit(2);
}

/// Rejects an invalid parameter with a message on stderr and exit code 2.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

struct Cli {
    command: String,
    input: Option<String>,
    k: usize,
    alpha: f64,
    algorithm: Algorithm,
    epsilons: Vec<f64>,
    constraints: usize,
    seed: u64,
    ranks: usize,
    threads: usize,
    determinism: Determinism,
    distributed: bool,
    trace: Option<String>,
    out: Option<String>,
    old: Option<String>,
    workload: Option<String>,
    epochs: usize,
    scale: Option<f64>,
    fault_plan: Option<FaultPlan>,
    world_plan: Option<WorldPlan>,
    incremental: bool,
    drift_threshold: Option<f64>,
}

fn parse_value<T: std::str::FromStr>(argv: &[String], i: usize, flag: &str) -> T {
    argv.get(i + 1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(format!("{flag} expects a valid value")))
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv[0].clone();
    let mut k = None;
    let mut alpha = 100.0;
    let mut algorithm = Algorithm::ZoltanRepart;
    let mut epsilons: Vec<f64> = Vec::new();
    let mut constraints = 1usize;
    let mut seed = 0u64;
    let mut ranks = 1usize;
    let mut threads = 0usize;
    let mut determinism = Determinism::Strict;
    let mut distributed = false;
    let mut trace = None;
    let mut out = None;
    let mut old = None;
    let mut input = None;
    let mut workload = None;
    let mut epochs = 4usize;
    let mut scale = None;
    let mut fault_plan = None;
    let mut world_plan = None;
    let mut incremental = false;
    let mut drift_threshold = None;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "-k" => {
                k = Some(parse_value::<usize>(&argv, i, "-k"));
                i += 2;
            }
            "--alpha" => {
                alpha = parse_value(&argv, i, "--alpha");
                i += 2;
            }
            "--algorithm" => {
                algorithm = match argv.get(i + 1).map(String::as_str) {
                    Some("zoltan-repart") => Algorithm::ZoltanRepart,
                    Some("zoltan-scratch") => Algorithm::ZoltanScratch,
                    Some("parmetis-repart") => Algorithm::ParmetisRepart,
                    Some("parmetis-scratch") => Algorithm::ParmetisScratch,
                    other => fail(format!("unknown algorithm {other:?}")),
                };
                i += 2;
            }
            "--epsilon" => {
                epsilons.push(parse_value(&argv, i, "--epsilon"));
                i += 2;
            }
            "--constraints" => {
                constraints = parse_value(&argv, i, "--constraints");
                i += 2;
            }
            "--seed" => {
                seed = parse_value(&argv, i, "--seed");
                i += 2;
            }
            "--ranks" => {
                ranks = parse_value(&argv, i, "--ranks");
                i += 2;
            }
            "--threads" => {
                threads = parse_value(&argv, i, "--threads");
                i += 2;
            }
            "--determinism" => {
                determinism = match argv.get(i + 1).map(String::as_str) {
                    Some("strict") => Determinism::Strict,
                    Some("fast") => Determinism::Fast,
                    other => fail(format!(
                        "--determinism expects strict or fast, got {other:?}"
                    )),
                };
                i += 2;
            }
            "--distributed" => {
                distributed = true;
                i += 1;
            }
            "--trace" => {
                trace = argv.get(i + 1).cloned();
                if trace.is_none() {
                    fail("--trace expects a file path");
                }
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--old" => {
                old = argv.get(i + 1).cloned();
                i += 2;
            }
            "--workload" => {
                workload = argv.get(i + 1).cloned();
                i += 2;
            }
            "--epochs" => {
                epochs = parse_value(&argv, i, "--epochs");
                i += 2;
            }
            "--scale" => {
                scale = Some(parse_value(&argv, i, "--scale"));
                i += 2;
            }
            "--incremental" => {
                incremental = true;
                i += 1;
            }
            "--drift-threshold" => {
                drift_threshold = Some(parse_value::<f64>(&argv, i, "--drift-threshold"));
                i += 2;
            }
            "--fault-plan" => {
                let spec = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--fault-plan expects a SEED:spec value"));
                fault_plan = Some(
                    FaultPlan::parse(spec)
                        .unwrap_or_else(|e| fail(format!("bad --fault-plan: {e}"))),
                );
                i += 2;
            }
            "--world-plan" => {
                let spec = argv
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--world-plan expects a SEED:spec value"));
                world_plan = Some(
                    WorldPlan::parse(spec)
                        .unwrap_or_else(|e| fail(format!("bad --world-plan: {e}"))),
                );
                i += 2;
            }
            arg if !arg.starts_with('-') => {
                input = Some(arg.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    Cli {
        command,
        input,
        k: k.unwrap_or_else(|| usage()),
        alpha,
        algorithm,
        epsilons,
        constraints,
        seed,
        ranks,
        threads,
        determinism,
        distributed,
        trace,
        out,
        old,
        workload,
        epochs,
        scale,
        fault_plan,
        world_plan,
        incremental,
        drift_threshold,
    }
}

/// Resolves `--constraints` and the repeatable `--epsilon` flags into
/// one tolerance per constraint: occurrence `c` of `--epsilon` is
/// constraint `c`'s tolerance, and constraints without their own flag
/// inherit the primary (first) value. Rejects `--constraints 0` and
/// more `--epsilon` flags than constraints with exit code 2.
fn effective_epsilons(cli: &Cli) -> Vec<f64> {
    if cli.constraints == 0 {
        fail("--constraints must be at least 1");
    }
    if cli.epsilons.len() > cli.constraints {
        fail(format!(
            "{} --epsilon flags for {} constraint(s); pass --constraints {} or drop one",
            cli.epsilons.len(),
            cli.constraints,
            cli.epsilons.len()
        ));
    }
    let primary = cli.epsilons.first().copied().unwrap_or(0.05);
    let mut eps = vec![primary; cli.constraints];
    eps[..cli.epsilons.len()].copy_from_slice(&cli.epsilons);
    eps
}

/// Validates the numeric knobs through the partitioner's checked builder
/// and returns the assembled config. Rejects `k < 2`, `ranks == 0`, bad
/// ε, etc. with exit code 2 *before* any driver runs (the drivers would
/// otherwise panic deep inside the SPMD machinery).
fn validated_hg_config(cli: &Cli) -> HgConfig {
    HgConfig::builder()
        .k(cli.k)
        .epsilons(&effective_epsilons(cli))
        .seed(cli.seed)
        .threads(cli.threads)
        .determinism(cli.determinism)
        .ranks(cli.ranks)
        .distributed(cli.distributed)
        .build()
        .unwrap_or_else(|e| fail(e))
}

/// Runs `f` inside a trace session when `--trace` was given, writing the
/// report in chrome://tracing JSON format afterwards.
fn with_trace<T>(path: Option<&str>, f: impl FnOnce() -> T) -> T {
    let Some(path) = path else { return f() };
    let session = dlb::trace::session();
    let result = f();
    let report = session.finish();
    std::fs::write(path, report.to_chrome_json()).unwrap_or_else(|e| {
        eprintln!("cannot write trace {path}: {e}");
        exit(1);
    });
    eprintln!(
        "trace: {} spans, {} counters -> {path}",
        report.spans.len(),
        report.counters.len()
    );
    result
}

/// Loads the input as (hypergraph, graph): `.mtx` gives a graph (column-
/// net hypergraph derived); `.hg` gives a hypergraph (clique-expansion
/// graph derived for the graph-based algorithms).
fn load(input: &str) -> (Hypergraph, CsrGraph) {
    let file = File::open(input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });
    let reader = BufReader::new(file);
    if input.ends_with(".mtx") {
        let graph = read_matrix_market_graph(reader).unwrap_or_else(|e| {
            eprintln!("cannot parse {input}: {e}");
            exit(1);
        });
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        (hypergraph, graph)
    } else if input.ends_with(".hg") {
        let hypergraph = read_hypergraph(reader).unwrap_or_else(|e| {
            eprintln!("cannot parse {input}: {e}");
            exit(1);
        });
        let graph = clique_expansion(&hypergraph);
        (hypergraph, graph)
    } else {
        eprintln!("unknown input extension (want .mtx or .hg): {input}");
        exit(1);
    }
}

fn read_partition(path: &str, n: usize, k: usize) -> Vec<usize> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let parts: Vec<usize> = text
        .split_whitespace()
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("bad part id {t:?} in {path}");
                exit(1);
            })
        })
        .collect();
    if parts.len() != n {
        eprintln!("{path} has {} entries; input has {n} vertices", parts.len());
        exit(1);
    }
    if parts.iter().any(|&p| p >= k) {
        eprintln!("{path} references part >= k={k}");
        exit(1);
    }
    parts
}

fn write_partition(out: &Option<String>, part: &[usize]) {
    let body: String = part.iter().map(|p| format!("{p}\n")).collect();
    match out {
        Some(path) => std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }),
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(body.as_bytes()).expect("stdout");
        }
    }
}

/// Builds the simulate subcommand's epoch source: the workload's base
/// problem plus the static initial partition. Deterministic in the CLI
/// parameters, so every SPMD rank builds an identical copy.
fn make_sim_source(cli: &Cli) -> Box<dyn EpochSource> {
    match cli.workload.as_deref() {
        Some("amr") => {
            let mut amr_cfg = AmrConfig::for_scale(cli.scale.unwrap_or(0.0) as u8);
            amr_cfg.multi_constraint = cli.constraints == 2;
            if let Err(e) = amr_cfg.validate() {
                eprintln!("bad AMR config: {e}");
                exit(1);
            }
            let stream = AmrStream::new(amr_cfg, cli.k, cli.seed);
            let low = stream.initial_lowering();
            eprintln!(
                "amr: base {}..{} mesh, {} initial cells",
                amr_cfg.base_level,
                amr_cfg.max_level,
                low.cells.len()
            );
            let init = partition_kway(&low.graph, cli.k, &GraphConfig::seeded(cli.seed)).part;
            Box::new(AmrSource::new(stream, &init))
        }
        Some(name @ ("structure" | "weights")) => {
            let perturbation = if name == "structure" {
                Perturbation::structure()
            } else {
                Perturbation::weights()
            };
            let dataset =
                Dataset::generate(DatasetKind::Auto, cli.scale.unwrap_or(0.001), cli.seed);
            eprintln!("{name}: auto dataset, {} vertices", dataset.graph.num_vertices());
            let init =
                partition_kway(&dataset.graph, cli.k, &GraphConfig::seeded(cli.seed)).part;
            Box::new(EpochStream::new(dataset.graph, perturbation, cli.k, init, cli.seed))
        }
        other => {
            eprintln!("simulate requires --workload amr|structure|weights, got {other:?}");
            usage();
        }
    }
}

fn print_simulation(summary: &SimulationSummary, alpha: f64) {
    println!(
        "epoch  vertices  comm        mig         total       moved   imbal   makespan_ms (comp+comm)*a + mig"
    );
    for r in &summary.reports {
        let e = r.execution.as_ref().expect("measured simulation");
        println!(
            "{:>5}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}  {:>6}  {:>6.4}  {:>11.4} = ({:.4}+{:.4})*{} + {:.4}",
            r.epoch,
            r.num_vertices,
            r.cost.comm,
            r.cost.migration,
            r.cost.total(),
            r.moved,
            r.imbalance,
            e.makespan() * 1e3,
            e.t_comp * 1e3,
            e.t_comm * 1e3,
            alpha,
            e.t_mig * 1e3
        );
        for rec in &r.recoveries {
            println!(
                "       recovered rank {} ({} -> {} parts): {} orphans, migration {:.1}, t_mig {:.4} ms",
                rec.failed_rank,
                rec.k_before,
                rec.k_after,
                rec.orphans,
                rec.migration,
                rec.t_mig * 1e3
            );
        }
        for rec in &r.resizes {
            println!(
                "       resized {} -> {} parts (+{:?} -{:?}) via {}: repart {:.1} vs scratch {:.1}, migration {:.1}, t_mig {:.4} ms",
                rec.k_before,
                rec.k_after,
                rec.joined,
                rec.departed,
                rec.choice.name(),
                rec.repart_cost,
                rec.scratch_cost,
                rec.migration,
                rec.t_mig * 1e3
            );
        }
    }
    let (comp, comm, mig) = summary.mean_phase_times().expect("measured simulation");
    println!(
        "mean: makespan {:.4} ms (comp {:.4}, comm {:.4}, mig {:.4} ms), model total {:.1}",
        summary.mean_makespan().expect("measured simulation") * 1e3,
        comp * 1e3,
        comm * 1e3,
        mig * 1e3,
        summary.reports.iter().map(|r| r.cost.total()).sum::<f64>()
            / summary.reports.len().max(1) as f64
    );
}

fn run_simulate(cli: &Cli, hg_cfg: HgConfig) {
    if cli.incremental && (cli.ranks > 1 || cli.distributed) {
        fail("--incremental is serial-only; drop --ranks/--distributed");
    }
    if cli.distributed {
        // Owner-computes pin storage partitions under a fixed rank set
        // and a scalar feasibility contract; these combinations would
        // otherwise run but quietly fall short of what the flags promise.
        if cli.world_plan.is_some() {
            fail("--world-plan is incompatible with --distributed \
                  (elastic resizes reshape the rank set; distributed pin storage \
                  assumes a fixed world — drop --distributed)");
        }
        if cli.fault_plan.is_some() {
            fail("--fault-plan is incompatible with --distributed \
                  (fault recovery re-partitions on the replicated path — \
                  drop --distributed)");
        }
        if cli.constraints > 1 {
            fail("--constraints > 1 is incompatible with --distributed \
                  (the distributed refiner has no auxiliary-feasibility repair pass)");
        }
    }
    if cli.constraints > 1 {
        match cli.workload.as_deref() {
            Some("amr") if cli.constraints == 2 => {}
            Some("amr") => fail(format!(
                "--workload amr lowers exactly 2 constraints (flops, state bytes); \
                 got --constraints {}",
                cli.constraints
            )),
            _ => fail("--constraints > 1 requires --workload amr"),
        }
        if cli.incremental {
            fail("--constraints > 1 is not supported with --incremental \
                  (the delta patcher maintains scalar weights)");
        }
    }
    if cli.drift_threshold.is_some() && !cli.incremental {
        fail("--drift-threshold requires --incremental");
    }
    let mut cfg = RepartConfig::seeded(cli.seed).with_epsilons(&effective_epsilons(cli));
    cfg.hypergraph.threads = hg_cfg.threads;
    cfg.hypergraph.determinism = hg_cfg.determinism;
    cfg.hypergraph.dist = hg_cfg.dist;
    if let Some(plan) = &cli.fault_plan {
        let joinable =
            cli.world_plan.as_ref().map(WorldPlan::join_ranks).unwrap_or_default();
        for f in plan.failures() {
            if f.rank >= cli.k && !joinable.contains(&f.rank) {
                fail(format!(
                    "--fault-plan rank {} out of range for -k {}",
                    f.rank, cli.k
                ));
            }
        }
    }
    if let Some(plan) = &cli.world_plan {
        if cli.incremental {
            fail("--world-plan is incompatible with --incremental");
        }
        if let Err(e) = plan.validate(cli.k, cli.epochs, cli.fault_plan.as_ref()) {
            fail(format!("bad --world-plan: {e}"));
        }
    }
    let build = |incremental: bool| {
        let mut session = Session::new(cfg.clone())
            .algorithm(cli.algorithm)
            .alpha(cli.alpha)
            .epochs(cli.epochs)
            .ranks(cli.ranks)
            .measured(true)
            .workload_factory(|_rank| make_sim_source(cli));
        if incremental {
            session = session
                .incremental(true)
                .drift_threshold(cli.drift_threshold.unwrap_or(DEFAULT_DRIFT_THRESHOLD));
        }
        if let Some(plan) = &cli.fault_plan {
            session = session.fault_plan(plan.clone());
        }
        if let Some(plan) = &cli.world_plan {
            session = session.world_plan(plan.clone());
        }
        session
    };
    let mut session = build(cli.incremental);
    if let Some(path) = &cli.trace {
        session = session.trace_to(path);
    }
    let summary = session.run().unwrap_or_else(|e| fail(e));
    eprintln!(
        "{}{} on {} epochs, k={}, alpha={}",
        cli.algorithm.name(),
        if cli.incremental { " (incremental)" } else { "" },
        summary.reports.len(),
        cli.k,
        cli.alpha
    );
    print_simulation(&summary, cli.alpha);
    if cli.incremental {
        // The competitive ratio needs the from-scratch baseline on an
        // identically seeded fresh workload.
        eprintln!("baseline: full rebuild + V-cycle every epoch (same seed)");
        let baseline = build(false).run().unwrap_or_else(|e| fail(e));
        let cr = summary
            .competitive_ratio_vs(&baseline)
            .expect("both simulate runs are measured over the same epochs");
        match cr.ratio() {
            Some(ratio) => println!(
                "incremental cost volume {:.1} vs scratch {:.1} over {} epochs: competitive ratio {:.4}",
                cr.policy_cost, cr.baseline_cost, cr.epochs, ratio
            ),
            None => println!(
                "incremental cost volume {:.1}; baseline accrued no cost (nothing to compete against)",
                cr.policy_cost
            ),
        }
    }
}

fn main() {
    let cli = parse_cli();
    let hg_cfg = validated_hg_config(&cli);
    if cli.command == "simulate" {
        run_simulate(&cli, hg_cfg);
        return;
    }
    if cli.constraints > 1 {
        fail("--constraints > 1 requires simulate --workload amr (file inputs are scalar)");
    }
    // Simulate-only flags are rejected rather than silently ignored.
    if cli.world_plan.is_some() {
        fail(format!("--world-plan applies to simulate only, not {}", cli.command));
    }
    if cli.fault_plan.is_some() {
        fail(format!("--fault-plan applies to simulate only, not {}", cli.command));
    }
    if cli.incremental {
        fail(format!("--incremental applies to simulate only, not {}", cli.command));
    }
    if cli.workload.is_some() {
        fail(format!("--workload applies to simulate only, not {}", cli.command));
    }
    let input = cli.input.clone().unwrap_or_else(|| usage());
    let (hypergraph, graph) = load(&input);
    eprintln!(
        "loaded {}: {} vertices, {} nets / {} edges",
        input,
        hypergraph.num_vertices(),
        hypergraph.num_nets(),
        graph.num_edges()
    );

    match cli.command.as_str() {
        "partition" => {
            let cfg = hg_cfg;
            let r = with_trace(cli.trace.as_deref(), || {
                if cli.ranks > 1 || cli.distributed {
                    run_spmd(cli.ranks, |comm| parallel_partition(comm, &hypergraph, cli.k, &cfg))
                        .pop()
                        .expect("at least one rank")
                } else {
                    dlb::partitioner::partition_hypergraph(&hypergraph, cli.k, &cfg)
                }
            });
            eprintln!(
                "k={}: comm volume {:.1}, imbalance {:.4}",
                cli.k, r.cut, r.imbalance
            );
            write_partition(&cli.out, &r.part);
        }
        "repartition" => {
            let old_path = cli.old.clone().unwrap_or_else(|| {
                eprintln!("repartition requires --old PARTFILE");
                usage();
            });
            let old = read_partition(&old_path, hypergraph.num_vertices(), cli.k);
            let problem = RepartProblem {
                hypergraph: &hypergraph,
                graph: &graph,
                old_part: &old,
                k: cli.k,
                alpha: cli.alpha,
            };
            let mut cfg = RepartConfig::seeded(cli.seed).with_epsilons(&effective_epsilons(&cli));
            cfg.hypergraph.threads = hg_cfg.threads;
            cfg.hypergraph.determinism = hg_cfg.determinism;
            cfg.hypergraph.dist = hg_cfg.dist;
            let r = with_trace(cli.trace.as_deref(), || {
                if cli.ranks > 1 || cli.distributed {
                    run_spmd(cli.ranks, |comm| {
                        repartition_parallel(comm, &problem, cli.algorithm, &cfg)
                    })
                    .pop()
                    .expect("at least one rank")
                } else {
                    repartition(&problem, cli.algorithm, &cfg)
                }
            });
            eprintln!(
                "{}: comm {:.1}, migration {:.1}, total {:.1} (alpha={}), moved {}, imbalance {:.4}",
                cli.algorithm.name(),
                r.cost.comm,
                r.cost.migration,
                r.cost.total(),
                cli.alpha,
                r.moved,
                r.imbalance
            );
            let _ = metrics::imbalance(&hypergraph, &r.new_part, cli.k);
            write_partition(&cli.out, &r.new_part);
        }
        _ => usage(),
    }
}
