//! Regression test for the distributed-memory driver (DESIGN.md §9):
//! with `cfg.hypergraph.dist.distributed` set, the memory-scalable
//! V-cycle must produce the *bit-identical* partition — and therefore
//! identical cost-model values — as the replicated SPMD driver at the
//! same rank count, on cage-style workloads, for k ∈ {4, 8} and both
//! dynamics (structure and weight perturbations).

use dlb::core::{repartition_parallel, Algorithm, RepartConfig, RepartProblem, RepartResult};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::mpisim::run_spmd;
use dlb::workloads::{Dataset, DatasetKind, EpochSnapshot, EpochStream, Perturbation};

const RANK_COUNTS: [usize; 3] = [1, 2, 4];

/// One perturbed cage-style epoch: the repartitioning problem every
/// driver below solves.
fn snapshot(k: usize, perturbation: Perturbation, seed: u64) -> EpochSnapshot {
    let d = Dataset::generate(DatasetKind::Cage14, 0.001, seed);
    let initial = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream = EpochStream::new(d.graph, perturbation, k, initial, seed);
    stream.next_epoch()
}

/// Runs `algorithm` collectively on `ranks` simulated ranks, with the
/// distributed driver on or off, and returns rank 0's result.
fn run(snapshot: &EpochSnapshot, k: usize, algorithm: Algorithm, ranks: usize, distributed: bool) -> RepartResult {
    let problem = RepartProblem {
        hypergraph: &snapshot.hypergraph,
        graph: &snapshot.graph,
        old_part: &snapshot.old_part,
        k,
        alpha: 50.0,
    };
    let mut cfg = RepartConfig::seeded(11);
    cfg.hypergraph.dist.distributed = distributed;
    // Low threshold so several levels stay distributed at this scale.
    cfg.hypergraph.dist.gather_threshold = 256;
    let mut results = run_spmd(ranks, |comm| {
        repartition_parallel(comm, &problem, algorithm, &cfg)
    });
    for r in &results[1..] {
        assert_eq!(r.new_part, results[0].new_part, "ranks disagree internally");
    }
    results.swap_remove(0)
}

fn assert_equivalent(dist: &RepartResult, repl: &RepartResult, context: &str) {
    assert_eq!(dist.new_part, repl.new_part, "partition diverged: {context}");
    // Identical partitions must yield bit-identical cost-model values.
    assert_eq!(dist.cost.comm, repl.cost.comm, "comm cost diverged: {context}");
    assert_eq!(
        dist.cost.migration, repl.cost.migration,
        "migration cost diverged: {context}"
    );
    assert_eq!(dist.cost.total(), repl.cost.total(), "total cost diverged: {context}");
    assert_eq!(dist.moved, repl.moved, "move count diverged: {context}");
    assert_eq!(dist.imbalance, repl.imbalance, "imbalance diverged: {context}");
}

#[test]
fn distributed_repart_matches_replicated_for_both_dynamics() {
    for (name, perturbation) in [
        ("structure", Perturbation::structure()),
        ("weights", Perturbation::weights()),
    ] {
        for k in [4usize, 8] {
            let snap = snapshot(k, perturbation.clone(), 23);
            for ranks in RANK_COUNTS {
                let dist = run(&snap, k, Algorithm::ZoltanRepart, ranks, true);
                let repl = run(&snap, k, Algorithm::ZoltanRepart, ranks, false);
                assert_equivalent(
                    &dist,
                    &repl,
                    &format!("dynamic={name} k={k} ranks={ranks}"),
                );
            }
        }
    }
}

#[test]
fn distributed_scratch_matches_replicated() {
    let snap = snapshot(8, Perturbation::structure(), 31);
    for ranks in RANK_COUNTS {
        let dist = run(&snap, 8, Algorithm::ZoltanScratch, ranks, true);
        let repl = run(&snap, 8, Algorithm::ZoltanScratch, ranks, false);
        assert_equivalent(&dist, &repl, &format!("scratch ranks={ranks}"));
    }
}

/// Run-to-run reproducibility: the owner-computes driver must give the
/// same bits on a repeated invocation of the same problem — the
/// incremental ghost exchange and delta sigma events (DESIGN.md §17)
/// may not leak any scheduling nondeterminism into the result.
#[test]
fn distributed_repart_is_reproducible_run_to_run() {
    let snap = snapshot(4, Perturbation::structure(), 23);
    for ranks in RANK_COUNTS {
        let first = run(&snap, 4, Algorithm::ZoltanRepart, ranks, true);
        let second = run(&snap, 4, Algorithm::ZoltanRepart, ranks, true);
        assert_equivalent(&first, &second, &format!("repeat ranks={ranks}"));
    }
}
