//! Determinism of the tracing subsystem's counters (DESIGN.md §11):
//! instrumented kernels only count work that is invariant across thread
//! counts, and in SPMD worlds only rank 0 records — so one configuration
//! has one set of counter values, no matter how it is executed.
//!
//! All content assertions are gated on [`dlb::trace::COMPILED_IN`]: the
//! no-op build (`--no-default-features` on `dlb-trace`) records nothing,
//! and these tests then only check that everything stays empty.

use std::collections::BTreeMap;

use dlb::hypergraph::convert::column_net_model_unit;
use dlb::hypergraph::Hypergraph;
use dlb::mpisim::run_spmd;
use dlb::partitioner::par::parallel_partition;
use dlb::partitioner::{partition_hypergraph, Config};
use dlb::trace::TraceReport;
use dlb::workloads::{Dataset, DatasetKind};

const K: usize = 4;
const SEED: u64 = 33;

fn test_hypergraph() -> Hypergraph {
    let d = Dataset::generate(DatasetKind::Auto, 0.001, SEED);
    column_net_model_unit(&d.graph)
}

fn counters(report: &TraceReport) -> BTreeMap<&'static str, u64> {
    report.counters.clone()
}

/// Serial-family counters: the shared-memory pipeline at any thread
/// count produces the bit-identical partition *and* the bit-identical
/// counter values and span structure.
#[test]
fn counters_invariant_across_thread_counts() {
    let h = test_hypergraph();
    let run = |threads: usize| {
        let mut cfg = Config::seeded(SEED);
        cfg.threads = threads;
        let session = dlb::trace::session();
        let r = partition_hypergraph(&h, K, &cfg);
        (session.finish(), r.part)
    };
    let (base_report, base_part) = run(1);
    if dlb::trace::COMPILED_IN {
        assert!(!base_report.spans.is_empty(), "instrumented run recorded no spans");
        assert!(base_report.counter(dlb::trace::Counter::CoarsenLevels) > 0);
    }
    for threads in [2usize, 8] {
        let (report, part) = run(threads);
        assert_eq!(part, base_part, "threads={threads} changed the partition");
        assert_eq!(
            counters(&report),
            counters(&base_report),
            "threads={threads} changed counter values"
        );
        assert_eq!(
            report.structure_signature(),
            base_report.structure_signature(),
            "threads={threads} changed the span tree"
        );
    }
}

/// Rank-family counters: at every rank count, a traced SPMD run is
/// bit-reproducible (rerunning the identical configuration reproduces
/// the identical counters and span structure), and the memory-scalable
/// distributed driver agrees with the replicated driver on the
/// partition at the same rank count. (Different rank counts legitimately
/// choose different partitions — the parallel matching block-distributes
/// work and decorrelates per-rank RNG streams — so outcome-derived
/// counters are compared within one rank count, not across.)
#[test]
fn spmd_counters_reproduce_at_every_rank_count() {
    let h = test_hypergraph();
    let run = |ranks: usize, distributed: bool| {
        let mut cfg = Config::seeded(SEED);
        cfg.threads = 1;
        cfg.dist.distributed = distributed;
        // Low threshold keeps several levels distributed at this scale.
        cfg.dist.gather_threshold = 256;
        let session = dlb::trace::session();
        let parts = run_spmd(ranks, |comm| parallel_partition(comm, &h, K, &cfg).part);
        (session.finish(), parts)
    };
    for ranks in [1usize, 2, 4] {
        let (repl_report, repl_parts) = run(ranks, false);
        if dlb::trace::COMPILED_IN {
            assert!(!repl_report.spans.is_empty(), "SPMD run recorded no spans");
        }
        // All ranks of the world agree on the partition.
        for (rank, part) in repl_parts.iter().enumerate() {
            assert_eq!(*part, repl_parts[0], "rank {rank}/{ranks} disagrees");
        }
        // Rerunning reproduces counters and span structure bit-for-bit.
        let (again_report, again_parts) = run(ranks, false);
        assert_eq!(again_parts, repl_parts, "ranks={ranks} rerun changed the partition");
        assert_eq!(
            counters(&again_report),
            counters(&repl_report),
            "ranks={ranks} rerun changed counter values"
        );
        assert_eq!(
            again_report.structure_signature(),
            repl_report.structure_signature(),
            "ranks={ranks} rerun changed the span tree"
        );
        // The distributed pin storage chooses the identical partition at
        // the same rank count and is itself reproducible.
        let (dist_report, dist_parts) = run(ranks, true);
        for (rank, part) in dist_parts.iter().enumerate() {
            assert_eq!(
                *part, repl_parts[0],
                "distributed rank {rank}/{ranks} diverged from the replicated driver"
            );
        }
        let (dist_again, _) = run(ranks, true);
        assert_eq!(
            counters(&dist_again),
            counters(&dist_report),
            "distributed ranks={ranks} rerun changed counter values"
        );
    }
}

/// A counter that *is* invariant across rank counts: the epoch count of
/// a simulation. Only rank 0 of a world records, and every rank executes
/// the same number of epochs, so the value equals the configured epoch
/// count at any world size.
#[test]
fn epoch_counter_invariant_across_rank_counts() {
    use dlb::core::{Algorithm, RepartConfig, Session};
    use dlb::graphpart::{partition_kway, GraphConfig};
    use dlb::workloads::{EpochStream, Perturbation};

    const EPOCHS: usize = 3;
    let make_source = || {
        let d = Dataset::generate(DatasetKind::Auto, 0.001, SEED);
        let initial = partition_kway(&d.graph, K, &GraphConfig::seeded(SEED)).part;
        EpochStream::new(d.graph, Perturbation::structure(), K, initial, SEED)
    };
    for ranks in [1usize, 2, 4] {
        let trace = dlb::trace::session();
        let summary = Session::new(RepartConfig::seeded(SEED))
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(EPOCHS)
            .ranks(ranks)
            .workload_factory(|_rank| make_source())
            .run()
            .unwrap();
        let report = trace.finish();
        assert_eq!(summary.reports.len(), EPOCHS);
        if dlb::trace::COMPILED_IN {
            assert_eq!(
                report.counter(dlb::trace::Counter::Epochs),
                EPOCHS as u64,
                "ranks={ranks}: epoch counter must equal the configured epoch count"
            );
        }
    }
}

/// With no session open, instrumented code records nothing: a session
/// opened afterwards starts from zero spans and zero counters.
#[test]
fn no_session_means_no_recording() {
    let h = test_hypergraph();
    // Heavily instrumented work with no session anywhere.
    let r = partition_hypergraph(&h, K, &Config::seeded(SEED));
    assert!(r.cut >= 0.0);
    // A fresh session must not see any of it.
    let session = dlb::trace::session();
    let report = session.finish();
    assert!(report.spans.is_empty(), "stale spans leaked into a new session");
    assert!(report.counters.is_empty(), "stale counters leaked into a new session");
}

/// Threads spawned outside the session's enrollment chain stay muted
/// even while a session is open (unrelated concurrent work cannot
/// pollute the trace).
#[test]
fn unenrolled_threads_stay_muted() {
    let h = test_hypergraph();
    let session = dlb::trace::session();
    std::thread::scope(|s| {
        s.spawn(|| {
            // A plain spawned thread is not enrolled: its instrumented
            // work must not record.
            let r = partition_hypergraph(&h, K, &Config::seeded(SEED));
            assert!(r.cut >= 0.0);
        })
        .join()
        .unwrap();
    });
    let report = session.finish();
    assert!(report.spans.is_empty(), "unenrolled thread recorded spans");
    assert!(report.counters.is_empty(), "unenrolled thread recorded counters");
}
