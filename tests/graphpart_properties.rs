//! Property-based tests of the ParMETIS-like graph partitioner: valid
//! assignments, determinism, balance, and the adaptive repartitioner's
//! contract (old partition respected as the no-migration anchor).

use dlb::graphpart::{adaptive_repart, partition_kway, AdaptiveConfig, GraphConfig};
use dlb::hypergraph::{metrics, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (CsrGraph, usize, u64)> {
    (2usize..5, 10usize..70).prop_flat_map(|(k, n)| {
        let edges = prop::collection::vec(((0..n, 0..n), 0.5f64..4.0), n..3 * n);
        let seed = any::<u64>();
        (Just(k), Just(n), edges, seed).prop_map(|(k, n, edges, seed)| {
            let mut b = GraphBuilder::new(n);
            for ((u, v), w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            (b.build(), k, seed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-way scratch partitioning: complete, in range, deterministic,
    /// cut correctly reported.
    #[test]
    fn kway_contract((g, k, seed) in arb_graph()) {
        let cfg = GraphConfig::seeded(seed);
        let a = partition_kway(&g, k, &cfg);
        prop_assert_eq!(a.part.len(), g.num_vertices());
        prop_assert!(a.part.iter().all(|&p| p < k));
        let cut = metrics::edge_cut(&g, &a.part, k);
        prop_assert!((a.edge_cut - cut).abs() < 1e-9);
        let b = partition_kway(&g, k, &cfg);
        prop_assert_eq!(a.part, b.part);
    }

    /// Adaptive repartitioning from a random old partition: complete,
    /// in range, and at tiny α with a balanced old partition it stays
    /// home (migration is the whole objective).
    #[test]
    fn adaptive_contract((g, k, seed) in arb_graph()) {
        let n = g.num_vertices();
        let old: Vec<usize> = (0..n).map(|v| v % k).collect(); // balanced
        let cfg = AdaptiveConfig { base: GraphConfig::seeded(seed), alpha: 1e-9 };
        let r = adaptive_repart(&g, k, &old, &cfg);
        prop_assert!(r.part.iter().all(|&p| p < k));
        // Unit weights, perfectly balanced old partition, negligible
        // edge-cut reward: nothing should move.
        prop_assert_eq!(metrics::moved_vertex_count(&old, &r.part), 0);
    }

    /// The adaptive repartitioner restores balance when the old
    /// partition is skewed, under any α.
    #[test]
    fn adaptive_rebalances((g, k, seed) in arb_graph()) {
        let n = g.num_vertices();
        let old = vec![0usize; n]; // everything on part 0
        let cfg = AdaptiveConfig { base: GraphConfig::seeded(seed), alpha: 10.0 };
        let r = adaptive_repart(&g, k, &old, &cfg);
        let avg = n as f64 / k as f64;
        let bound = (1.0 + cfg.base.epsilon) + 1.5 / avg;
        prop_assert!(r.imbalance <= bound + 1e-9,
            "imbalance {} > {bound} (n={n}, k={k})", r.imbalance);
    }
}

/// Edge-less graphs: both partitioners still balance by weight alone.
#[test]
fn partitioners_handle_edgeless_graphs() {
    let g = CsrGraph::from_edges_unit(24, &[]);
    let r = partition_kway(&g, 4, &GraphConfig::seeded(1));
    let w = metrics::graph_part_weights(&g, &r.part, 4);
    for p in 0..4 {
        assert!((w[p] - 6.0).abs() <= 2.0, "part {p}: {}", w[p]);
    }
    let old: Vec<usize> = (0..24).map(|v| v / 6).collect();
    let r = adaptive_repart(&g, 4, &old, &AdaptiveConfig::seeded(1.0, 2));
    assert_eq!(metrics::moved_vertex_count(&old, &r.part), 0);
}
