//! Property-based tests of the ParMETIS-like graph partitioner: valid
//! assignments, determinism, balance, and the adaptive repartitioner's
//! contract (old partition respected as the no-migration anchor).
//!
//! Cases are drawn from a seeded `StdRng` so every run exercises the
//! same instances (no external property-testing dependency is available
//! offline).

use dlb::graphpart::{adaptive_repart, partition_kway, AdaptiveConfig, GraphConfig};
use dlb::hypergraph::{metrics, CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Draws one random instance: a graph on `n ∈ [10, 70)` vertices with
/// `[n, 3n)` weighted edges, `k ∈ [2, 5)`, and a partitioner seed.
fn random_graph(rng: &mut StdRng) -> (CsrGraph, usize, u64) {
    let k = rng.gen_range(2usize..5);
    let n = rng.gen_range(10usize..70);
    let num_edges = rng.gen_range(n..3 * n);
    let mut b = GraphBuilder::new(n);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let w = rng.gen_range(0.5f64..4.0);
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    let seed = rng.gen::<u64>();
    (b.build(), k, seed)
}

/// k-way scratch partitioning: complete, in range, deterministic, cut
/// correctly reported.
#[test]
fn kway_contract() {
    let mut rng = StdRng::seed_from_u64(0x6A1);
    for case in 0..CASES {
        let (g, k, seed) = random_graph(&mut rng);
        let cfg = GraphConfig::seeded(seed);
        let a = partition_kway(&g, k, &cfg);
        assert_eq!(a.part.len(), g.num_vertices(), "case {case}");
        assert!(a.part.iter().all(|&p| p < k), "case {case}");
        let cut = metrics::edge_cut(&g, &a.part, k);
        assert!((a.edge_cut - cut).abs() < 1e-9, "case {case}");
        let b = partition_kway(&g, k, &cfg);
        assert_eq!(a.part, b.part, "case {case}");
    }
}

/// Adaptive repartitioning from a balanced old partition: complete, in
/// range, and at tiny α it stays home (migration is the whole
/// objective).
#[test]
fn adaptive_contract() {
    let mut rng = StdRng::seed_from_u64(0xADA);
    for case in 0..CASES {
        let (g, k, seed) = random_graph(&mut rng);
        let n = g.num_vertices();
        let old: Vec<usize> = (0..n).map(|v| v % k).collect(); // balanced
        let cfg = AdaptiveConfig {
            base: GraphConfig::seeded(seed),
            alpha: 1e-9,
        };
        let r = adaptive_repart(&g, k, &old, &cfg);
        assert!(r.part.iter().all(|&p| p < k), "case {case}");
        // Unit weights, perfectly balanced old partition, negligible
        // edge-cut reward: nothing should move.
        assert_eq!(
            metrics::moved_vertex_count(&old, &r.part),
            0,
            "case {case}"
        );
    }
}

/// The adaptive repartitioner restores balance when the old partition is
/// skewed, under any α.
#[test]
fn adaptive_rebalances() {
    let mut rng = StdRng::seed_from_u64(0x4E8);
    for case in 0..CASES {
        let (g, k, seed) = random_graph(&mut rng);
        let n = g.num_vertices();
        let old = vec![0usize; n]; // everything on part 0
        let cfg = AdaptiveConfig {
            base: GraphConfig::seeded(seed),
            alpha: 10.0,
        };
        let r = adaptive_repart(&g, k, &old, &cfg);
        let avg = n as f64 / k as f64;
        let bound = (1.0 + cfg.base.epsilon) + 1.5 / avg;
        assert!(
            r.imbalance <= bound + 1e-9,
            "case {case}: imbalance {} > {bound} (n={n}, k={k})",
            r.imbalance
        );
    }
}

/// Edge-less graphs: both partitioners still balance by weight alone.
#[test]
fn partitioners_handle_edgeless_graphs() {
    let g = CsrGraph::from_edges_unit(24, &[]);
    let r = partition_kway(&g, 4, &GraphConfig::seeded(1));
    let w = metrics::graph_part_weights(&g, &r.part, 4);
    for (p, &wp) in w.iter().enumerate() {
        assert!((wp - 6.0).abs() <= 2.0, "part {p}: {wp}");
    }
    let old: Vec<usize> = (0..24).map(|v| v / 6).collect();
    let r = adaptive_repart(&g, 4, &old, &AdaptiveConfig::seeded(1.0, 2));
    assert_eq!(metrics::moved_vertex_count(&old, &r.part), 0);
}
