//! Property-based tests of the repartitioning model (Section 3): the
//! cut identity `cut(H̄, P) = α·comm(H, P) + mig(old, P)` must hold for
//! *every* hypergraph, old assignment and candidate assignment — this is
//! the theorem the whole paper rests on.
//!
//! Cases are drawn from a seeded `StdRng` so every run exercises the
//! same instances (no external property-testing dependency is available
//! offline).

use dlb::core::{remap_to_minimize_migration, RepartitionHypergraph};
use dlb::hypergraph::metrics::{cutsize_connectivity, migration_volume};
use dlb::hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 128;

const ALPHAS: [f64; 5] = [1.0, 3.0, 10.0, 100.0, 1000.0];

/// Draws one random instance: a hypergraph with random weights/sizes/
/// costs, plus two random k-way assignments and an α from the paper's
/// sweep values.
fn random_instance(rng: &mut StdRng) -> (Hypergraph, usize, Vec<usize>, Vec<usize>, f64) {
    let k = rng.gen_range(2usize..6);
    let n = rng.gen_range(4usize..40);
    let num_nets = rng.gen_range(1..(2 * n).max(2));
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..num_nets {
        let arity = rng.gen_range(2usize..6);
        let pins: Vec<usize> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
        let cost = rng.gen_range(0.5f64..8.0);
        b.add_net(cost, pins);
    }
    for v in 0..n {
        b.set_vertex_size(v, rng.gen_range(0.5f64..5.0));
    }
    let old: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let new: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let alpha = ALPHAS[rng.gen_range(0..ALPHAS.len())];
    (b.build(), k, old, new, alpha)
}

/// The model's augmented cut equals α·comm + migration, always.
#[test]
fn cut_identity() {
    let mut rng = StdRng::seed_from_u64(0x1DE);
    for case in 0..CASES {
        let (h, k, old, new, alpha) = random_instance(&mut rng);
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        let expected = alpha * cutsize_connectivity(&h, &new, k)
            + migration_volume(h.vertex_sizes(), &old, &new);
        let got = model.objective(&new);
        assert!(
            (got - expected).abs() < 1e-6 * (1.0 + expected.abs()),
            "case {case}: model {got} vs direct {expected}"
        );
    }
}

/// The augmented hypergraph is structurally valid and has the right
/// shape: n+k vertices, |nets| + n nets (every vertex gets exactly one
/// migration net).
#[test]
fn augmented_shape() {
    let mut rng = StdRng::seed_from_u64(0x54A);
    for case in 0..CASES {
        let (h, k, old, _new, alpha) = random_instance(&mut rng);
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        assert!(model.augmented.validate().is_ok(), "case {case}");
        assert_eq!(
            model.augmented.num_vertices(),
            h.num_vertices() + k,
            "case {case}"
        );
        assert_eq!(
            model.augmented.num_nets(),
            h.num_nets() + h.num_vertices(),
            "case {case}"
        );
        // Total vertex weight is unchanged (partition vertices weigh 0).
        assert!(
            (model.augmented.total_vertex_weight() - h.total_vertex_weight()).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Keeping every vertex home incurs exactly α·comm: migration nets
/// contribute nothing.
#[test]
fn staying_home_is_pure_communication() {
    let mut rng = StdRng::seed_from_u64(0x40E);
    for case in 0..CASES {
        let (h, k, old, _new, alpha) = random_instance(&mut rng);
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        let expected = alpha * cutsize_connectivity(&h, &old, k);
        assert!(
            (model.objective(&old) - expected).abs() < 1e-6 * (1.0 + expected),
            "case {case}"
        );
    }
}

/// Remapping part labels never increases migration volume and never
/// changes which vertices share a part.
#[test]
fn remap_sound() {
    let mut rng = StdRng::seed_from_u64(0x4EA);
    for case in 0..CASES {
        let (h, k, old, new, _alpha) = random_instance(&mut rng);
        let sizes = h.vertex_sizes();
        let remapped = remap_to_minimize_migration(&new, &old, sizes, k);
        let before = migration_volume(sizes, &old, &new);
        let after = migration_volume(sizes, &old, &remapped);
        assert!(
            after <= before + 1e-9,
            "case {case}: remap worsened migration {before} -> {after}"
        );
        // Same co-location structure.
        for i in 0..new.len() {
            for j in i + 1..new.len() {
                assert_eq!(
                    new[i] == new[j],
                    remapped[i] == remapped[j],
                    "case {case}: co-location changed for ({i}, {j})"
                );
            }
        }
    }
}
