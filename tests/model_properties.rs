//! Property-based tests of the repartitioning model (Section 3): the
//! cut identity `cut(H̄, P) = α·comm(H, P) + mig(old, P)` must hold for
//! *every* hypergraph, old assignment and candidate assignment — this is
//! the theorem the whole paper rests on.

use dlb::core::{remap_to_minimize_migration, RepartitionHypergraph};
use dlb::hypergraph::metrics::{cutsize_connectivity, migration_volume};
use dlb::hypergraph::{Hypergraph, HypergraphBuilder};
use proptest::prelude::*;

/// Strategy: a random hypergraph with random weights/sizes/costs, plus
/// two random k-way assignments.
fn arb_instance() -> impl Strategy<Value = (Hypergraph, usize, Vec<usize>, Vec<usize>, f64)> {
    (2usize..6, 4usize..40).prop_flat_map(|(k, n)| {
        let nets = prop::collection::vec(
            (prop::collection::vec(0..n, 2..6), 0.5f64..8.0),
            1..(2 * n).max(2),
        );
        let sizes = prop::collection::vec(0.5f64..5.0, n);
        let old = prop::collection::vec(0..k, n);
        let new = prop::collection::vec(0..k, n);
        let alpha = prop::sample::select(vec![1.0, 3.0, 10.0, 100.0, 1000.0]);
        (Just(k), Just(n), nets, sizes, old, new, alpha).prop_map(
            |(k, n, nets, sizes, old, new, alpha)| {
                let mut b = HypergraphBuilder::new(n);
                for (pins, cost) in nets {
                    b.add_net(cost, pins);
                }
                for (v, s) in sizes.into_iter().enumerate() {
                    b.set_vertex_size(v, s);
                }
                (b.build(), k, old, new, alpha)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The model's augmented cut equals α·comm + migration, always.
    #[test]
    fn cut_identity((h, k, old, new, alpha) in arb_instance()) {
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        let expected = alpha * cutsize_connectivity(&h, &new, k)
            + migration_volume(h.vertex_sizes(), &old, &new);
        let got = model.objective(&new);
        prop_assert!((got - expected).abs() < 1e-6 * (1.0 + expected.abs()),
            "model {got} vs direct {expected}");
    }

    /// The augmented hypergraph is structurally valid and has the right
    /// shape: n+k vertices, |nets| + n nets (every vertex gets exactly
    /// one migration net).
    #[test]
    fn augmented_shape((h, k, old, _new, alpha) in arb_instance()) {
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        prop_assert!(model.augmented.validate().is_ok());
        prop_assert_eq!(model.augmented.num_vertices(), h.num_vertices() + k);
        prop_assert_eq!(model.augmented.num_nets(), h.num_nets() + h.num_vertices());
        // Total vertex weight is unchanged (partition vertices weigh 0).
        prop_assert!((model.augmented.total_vertex_weight() - h.total_vertex_weight()).abs() < 1e-9);
    }

    /// Keeping every vertex home incurs exactly α·comm: migration nets
    /// contribute nothing.
    #[test]
    fn staying_home_is_pure_communication((h, k, old, _new, alpha) in arb_instance()) {
        let model = RepartitionHypergraph::build(&h, &old, k, alpha);
        let expected = alpha * cutsize_connectivity(&h, &old, k);
        prop_assert!((model.objective(&old) - expected).abs() < 1e-6 * (1.0 + expected));
    }

    /// Remapping part labels never increases migration volume and never
    /// changes which vertices share a part.
    #[test]
    fn remap_sound((h, k, old, new, _alpha) in arb_instance()) {
        let sizes = h.vertex_sizes();
        let remapped = remap_to_minimize_migration(&new, &old, sizes, k);
        let before = migration_volume(sizes, &old, &new);
        let after = migration_volume(sizes, &old, &remapped);
        prop_assert!(after <= before + 1e-9, "remap worsened migration {before} -> {after}");
        // Same co-location structure.
        for i in 0..new.len() {
            for j in i + 1..new.len() {
                prop_assert_eq!(new[i] == new[j], remapped[i] == remapped[j]);
            }
        }
    }
}
