//! Elastic worlds end-to-end (DESIGN.md §15).
//!
//! A [`WorldPlan`] schedules planned rank arrivals and departures; the
//! epoch driver applies them at epoch boundaries as fixed-vertex
//! resizes, with the cost model arbitrating repartition-vs-scratch per
//! resize. The tests pin down the subsystem's contracts:
//!
//! 1. **Resizing works**: grows populate the joining spares, shrinks
//!    evacuate the leavers, the records carry both candidate costs, and
//!    the world timeline tracks every change.
//! 2. **Determinism**: chained shrink→grow→shrink schedules reproduce
//!    bit-identical outputs run to run at driver rank counts 1, 2, 4.
//! 3. **Plan-free purity**: an empty plan — and a plan whose every
//!    epoch nets to no change — is bitwise identical to no plan at all.
//! 4. **Chaos-soak determinism**: composing a WorldPlan with a
//!    FaultPlan over hundreds of epochs of the AMR workload leaves the
//!    delivered science (per-epoch mesh fingerprints, partition
//!    excluded) bit-identical to a churn-free run, at driver ranks
//!    {2, 4} × threads {1, 2}.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{
    Algorithm, AuditLedger, AuditedSource, FaultPlan, RepartConfig, Session, SimulationSummary,
    WorldPlan,
};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::{AmrSource, Dataset, DatasetKind, EpochStream, Perturbation};

const ALPHA: f64 = 50.0;
const SEED: u64 = 23;

fn make_stream(k: usize) -> EpochStream {
    let d = Dataset::generate(DatasetKind::Auto, 0.0008, SEED);
    let init = partition_kway(&d.graph, k, &GraphConfig::seeded(SEED)).part;
    EpochStream::new(d.graph, Perturbation::weights(), k, init, SEED)
}

fn session(k: usize, epochs: usize) -> Session<'static> {
    Session::new(RepartConfig::seeded(SEED))
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(ALPHA)
        .epochs(epochs)
        .measured(true)
        .workload_factory(move |_| make_stream(k))
}

/// The deterministic fingerprint of a run: per-epoch model costs,
/// movement, world size, and measured makespans, compared bitwise.
fn fingerprint(s: &SimulationSummary) -> Vec<(f64, f64, usize, usize, f64)> {
    s.reports
        .iter()
        .map(|r| {
            (
                r.cost.comm,
                r.cost.migration,
                r.moved,
                r.world_k,
                r.execution.as_ref().expect("measured run").makespan(),
            )
        })
        .collect()
}

#[test]
fn planned_grow_populates_the_joiner() {
    let plan = WorldPlan::parse("7:join4@2").unwrap();
    let s = session(4, 4).world_plan(plan).run().unwrap();
    assert_eq!(s.reports.len(), 4);
    assert_eq!(s.total_resizes(), 1);
    assert_eq!(s.surviving_k(), 5);
    assert_eq!(s.world_timeline(), vec![(1, 4), (2, 5), (3, 5), (4, 5)]);

    let r = &s.reports[1]; // epoch 2
    assert_eq!(r.resizes.len(), 1);
    let rec = &r.resizes[0];
    assert_eq!(rec.epoch, 2);
    assert_eq!(rec.joined, vec![4]);
    assert!(rec.departed.is_empty());
    assert_eq!((rec.k_before, rec.k_after), (4, 5));
    assert!(rec.repart_cost > 0.0 && rec.scratch_cost > 0.0, "both candidates were priced");
    // Growth must actually use the spare: the next epoch's commit ran
    // on 5 parts, so balance over 5 pulls migration onto the joiner.
    assert!(rec.migration > 0.0, "vertices moved onto the joiner");
    assert_eq!(rec.t_mig, r.execution.as_ref().unwrap().t_mig, "single resize owns the t_mig");
    for other in [0usize, 2, 3] {
        assert!(s.reports[other].resizes.is_empty());
    }
}

#[test]
fn planned_shrink_evacuates_the_leaver() {
    let plan = WorldPlan::parse("7:leave1@3").unwrap();
    let s = session(4, 4).world_plan(plan).run().unwrap();
    assert_eq!(s.total_resizes(), 1);
    assert_eq!(s.surviving_k(), 3);
    assert_eq!(s.world_timeline(), vec![(1, 4), (2, 4), (3, 3), (4, 3)]);
    let rec = &s.reports[2].resizes[0];
    assert_eq!(rec.departed, vec![1]);
    assert_eq!((rec.k_before, rec.k_after), (4, 3));
    assert!(rec.migration > 0.0, "the leaver's vertices shipped out");
    // The evacuation is physical: it lands in the measured migration.
    assert!(rec.t_mig > 0.0);
}

#[test]
fn faults_and_resizes_compose_at_one_boundary() {
    // Rank 2 dies at epoch 2's boundary AND the plan grows by one: the
    // recovery chain runs first, then the resize, in one epoch.
    let faults = FaultPlan::parse("5:rank2@2").unwrap();
    let world = WorldPlan::parse("5:join4@2").unwrap();
    let s = session(4, 3).fault_plan(faults).world_plan(world).run().unwrap();
    assert_eq!(s.total_recoveries(), 1);
    assert_eq!(s.total_resizes(), 1);
    let r = &s.reports[1];
    assert_eq!(r.recoveries[0].k_after, 3);
    assert_eq!((r.resizes[0].k_before, r.resizes[0].k_after), (3, 4));
    assert_eq!(r.world_k, 4);
    // A failed rank may be re-admitted by a later planned join.
    let faults = FaultPlan::parse("5:rank2@2").unwrap();
    let world = WorldPlan::parse("5:join2@3").unwrap();
    let s = session(4, 4).fault_plan(faults).world_plan(world).run().unwrap();
    assert_eq!(s.world_timeline(), vec![(1, 4), (2, 3), (3, 4), (4, 4)]);
}

/// Acceptance criterion: a chained shrink→grow→shrink schedule is
/// bit-identical run to run at each driver rank count in {1, 2, 4}.
#[test]
fn chained_resizes_are_reproducible_at_ranks_1_2_and_4() {
    let run = |ranks: usize| {
        let plan = WorldPlan::parse("9:leave2@2,join4@3,join5@3,leave0@4").unwrap();
        session(4, 5).ranks(ranks).world_plan(plan).run().unwrap()
    };
    for ranks in [1usize, 2, 4] {
        let a = run(ranks);
        let b = run(ranks);
        assert_eq!(fingerprint(&a), fingerprint(&b), "ranks = {ranks}");
        assert_eq!(a.total_resizes(), 3, "ranks = {ranks}");
        assert_eq!(a.world_timeline(), vec![(1, 4), (2, 3), (3, 5), (4, 4), (5, 4)]);
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            for (x, y) in ra.resizes.iter().zip(&rb.resizes) {
                assert_eq!(x.choice, y.choice, "ranks = {ranks}");
                assert_eq!(x.repart_cost, y.repart_cost, "ranks = {ranks}");
                assert_eq!(x.scratch_cost, y.scratch_cost, "ranks = {ranks}");
                assert_eq!(x.migration, y.migration, "ranks = {ranks}");
            }
        }
    }
}

/// Plan-free purity: an empty plan, and a plan whose join and leave of
/// the same rank cancel at the same epoch, are bitwise identical to no
/// plan at all — the no-op epochs take the fast path untouched.
#[test]
fn noop_plans_are_bit_identical_to_no_plan() {
    let without = session(4, 3).run().unwrap();
    let empty = WorldPlan::parse("5:").unwrap();
    let with_empty = session(4, 3).world_plan(empty).run().unwrap();
    assert_eq!(fingerprint(&without), fingerprint(&with_empty));
    assert_eq!(with_empty.total_resizes(), 0);

    let cancelled = WorldPlan::parse("5:join7@2,leave7@2").unwrap();
    let with_cancelled = session(4, 3).world_plan(cancelled).run().unwrap();
    assert_eq!(fingerprint(&without), fingerprint(&with_cancelled));
    assert_eq!(with_cancelled.total_resizes(), 0);
}

/// Trace counters: each resize increments `ResizesRun`, the join/leave
/// tallies, and exactly one of the `resize_chose_*` counters.
#[test]
fn resize_counters_reflect_the_plan() {
    let plan = WorldPlan::parse("3:join4@2,leave0@3").unwrap();
    let (s, report) = session(4, 3).world_plan(plan).run_traced().unwrap();
    assert_eq!(s.total_resizes(), 2);
    if dlb::trace::COMPILED_IN {
        use dlb::trace::Counter;
        assert_eq!(report.counter(Counter::ResizesRun), 2);
        assert_eq!(report.counter(Counter::RanksJoined), 1);
        assert_eq!(report.counter(Counter::RanksDeparted), 1);
        assert_eq!(
            report.counter(Counter::ResizeChoseRepart)
                + report.counter(Counter::ResizeChoseScratch),
            2,
            "every resize records its arbitration"
        );
        assert!(report.find("resize.epoch").is_some());
    }

    let (_, clean) = session(4, 2).run_traced().unwrap();
    assert_eq!(clean.counter(dlb::trace::Counter::ResizesRun), 0);
}

/// A schedule that would ever empty the world is rejected up front, not
/// discovered mid-run.
#[test]
#[should_panic(expected = "empties the world")]
fn world_exhausting_plan_panics_up_front() {
    let plan = WorldPlan::parse("3:leave0@1,leave1@2").unwrap();
    let _ = session(2, 3).world_plan(plan).run();
}

// ---------------------------------------------------------------------
// The chaos soak.
// ---------------------------------------------------------------------

const SOAK_EPOCHS: usize = 200;
const SOAK_SEED: u64 = 99;
const SOAK_K: usize = 4;

fn soak_source() -> AmrSource {
    let stream = AmrStream::new(AmrConfig::small(), SOAK_K, SOAK_SEED);
    let low = stream.initial_lowering();
    let init: Vec<_> = (0..low.graph.num_vertices()).map(|v| v % SOAK_K).collect();
    AmrSource::new(stream, &init)
}

/// A 20-epoch churn cycle repeated over the soak: the world breathes
/// 4 → 5 → 6 → 5 → 4 → 5 → 4, with ranks departing and rejoining.
fn soak_world_plan() -> WorldPlan {
    let mut plan = WorldPlan::new(SOAK_SEED);
    for cycle in 0..SOAK_EPOCHS / 20 {
        let base = cycle * 20;
        plan = plan
            .join(4, base + 3)
            .join(5, base + 5)
            .leave(1, base + 8)
            .leave(4, base + 12)
            .join(1, base + 15)
            .leave(5, base + 18);
    }
    // Failed ranks get re-admitted mid-soak (see soak_fault_plan).
    plan.join(2, 60).join(0, 120)
}

/// Two hard failures composed on top of the planned churn, plus message
/// drop/delay noise in every measured migration exchange.
fn soak_fault_plan() -> FaultPlan {
    FaultPlan::parse("77:rank2@41,rank0@101,drop0.1,delay0.05").unwrap()
}

fn soak_config(threads: usize) -> RepartConfig {
    let mut cfg = RepartConfig::seeded(SOAK_SEED);
    cfg.hypergraph.threads = threads;
    cfg
}

/// The churn-free baseline ledger: per-epoch science fingerprints of
/// the bare AMR workload, no plans installed.
fn baseline_ledger() -> Vec<u64> {
    let mut source = AuditedSource::new(soak_source());
    let ledger = source.ledger();
    let s = Session::new(soak_config(1))
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(ALPHA)
        .epochs(SOAK_EPOCHS)
        .measured(true)
        .workload(&mut source)
        .run()
        .unwrap();
    assert_eq!(s.reports.len(), SOAK_EPOCHS);
    let digests = ledger.lock().unwrap().clone();
    assert_eq!(digests.len(), SOAK_EPOCHS);
    digests
}

/// One churned soak run: WorldPlan × FaultPlan over the same workload,
/// with every driver rank's emitted epochs audited into its own ledger.
fn churned_ledgers(ranks: usize, threads: usize) -> (SimulationSummary, BTreeMap<usize, Vec<u64>>) {
    let ledgers: Arc<Mutex<BTreeMap<usize, AuditLedger>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let registry = Arc::clone(&ledgers);
    let summary = Session::new(soak_config(threads))
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(ALPHA)
        .epochs(SOAK_EPOCHS)
        .ranks(ranks)
        .measured(true)
        .fault_plan(soak_fault_plan())
        .world_plan(soak_world_plan())
        .workload_factory(move |rank| {
            let ledger: AuditLedger = Arc::new(Mutex::new(Vec::new()));
            registry.lock().unwrap().insert(rank, Arc::clone(&ledger));
            AuditedSource::with_ledger(soak_source(), ledger)
        })
        .run()
        .unwrap();
    let digests = ledgers
        .lock()
        .unwrap()
        .iter()
        .map(|(&rank, ledger)| (rank, ledger.lock().unwrap().clone()))
        .collect();
    (summary, digests)
}

/// Acceptance criterion: over hundreds of epochs of composed planned
/// churn and hard failures, the delivered science stays bit-identical
/// to a churn-free run — at driver ranks {2, 4} × threads {1, 2} —
/// and the soak exercised real resizes and recoveries throughout.
#[test]
fn chaos_soak_is_bit_identical_to_churn_free_run() {
    let baseline = baseline_ledger();
    let mut fingerprints = Vec::new();
    for ranks in [2usize, 4] {
        for threads in [1usize, 2] {
            let (summary, ledgers) = churned_ledgers(ranks, threads);
            assert_eq!(summary.reports.len(), SOAK_EPOCHS, "ranks={ranks} threads={threads}");
            assert!(
                summary.total_resizes() >= 50,
                "the soak must churn: {} resizes at ranks={ranks} threads={threads}",
                summary.total_resizes()
            );
            assert_eq!(summary.total_recoveries(), 2, "ranks={ranks} threads={threads}");
            assert_eq!(summary.surviving_k(), SOAK_K, "every cycle returns to the launch world");
            assert_eq!(ledgers.len(), ranks, "every driver rank audited its source");
            for (rank, digests) in &ledgers {
                assert_eq!(
                    digests, &baseline,
                    "rank {rank} of ranks={ranks} threads={threads} diverged from churn-free"
                );
            }
            fingerprints.push(((ranks, threads), fingerprint(&summary)));
        }
    }
    // Same churn, same threads contract: thread count never changes the
    // delivered outputs (Strict determinism), so per-rank-count the two
    // thread settings must agree bitwise — and so must a repeat run.
    for ranks in [2usize, 4] {
        let at = |t: usize| {
            &fingerprints.iter().find(|((r, th), _)| *r == ranks && *th == t).unwrap().1
        };
        assert_eq!(at(1), at(2), "thread count changed outputs at ranks={ranks}");
    }
    let (repeat, _) = churned_ledgers(2, 2);
    let first = &fingerprints.iter().find(|((r, t), _)| (*r, *t) == (2, 2)).unwrap().1;
    assert_eq!(first, &fingerprint(&repeat), "chaos soak must be reproducible run to run");
}
