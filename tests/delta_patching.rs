//! The delta subsystem's patch invariant, property-style: a
//! [`ModelPatcher`] fed structural deltas must produce epochs that are
//! **bitwise** equal — graph, column-net hypergraph, `old_part`, and
//! the augmented repartitioning model — to a fresh lowering of the same
//! mesh. Exercised two ways: randomized refine/coarsen/reweight
//! sequences against a ground-truth mesh mirror (both weight schemes),
//! and the real AMR source's native deltas against a twin that
//! re-lowers from scratch.

use std::collections::{BTreeMap, BTreeSet};

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{ModelPatcher, RepartitionHypergraph};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::column_net_model;
use dlb::hypergraph::{CsrGraph, GraphBuilder, PartId};
use dlb::workloads::{
    AmrSource, DeltaNet, DeltaReweight, DeltaVertex, EpochDelta, EpochSnapshot, EpochSource,
    EpochUpdate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: usize = 4;
const ALPHA: f64 = 10.0;

/// Ground-truth dynamic mesh: base-id-keyed weights, sizes, symmetric
/// adjacency, and committed parts. Every epoch it is lowered from
/// scratch, the canonical answer the patcher must reproduce bit for
/// bit.
struct GroundTruth {
    weight: BTreeMap<usize, f64>,
    size: BTreeMap<usize, f64>,
    adj: BTreeMap<usize, BTreeSet<usize>>,
    part: BTreeMap<usize, PartId>,
    next_base: usize,
    /// Unit scheme keeps every weight/size at 1; the weighted scheme
    /// draws integer-valued weights and sizes (net cost = size, the
    /// column-net convention delta-capable sources must follow).
    weighted: bool,
}

impl GroundTruth {
    /// A ring of `n` unit cells (always connected, never empties).
    fn ring(n: usize, weighted: bool, rng: &mut StdRng) -> Self {
        let mut gt = GroundTruth {
            weight: BTreeMap::new(),
            size: BTreeMap::new(),
            adj: BTreeMap::new(),
            part: BTreeMap::new(),
            next_base: n,
            weighted,
        };
        for b in 0..n {
            gt.weight.insert(b, gt.draw_weight(rng));
            gt.size.insert(b, gt.draw_size(rng));
            gt.part.insert(b, rng.gen_range(0..K));
            gt.adj.insert(b, BTreeSet::new());
        }
        for b in 0..n {
            let next = (b + 1) % n;
            gt.adj.get_mut(&b).unwrap().insert(next);
            gt.adj.get_mut(&next).unwrap().insert(b);
        }
        gt
    }

    fn draw_weight(&self, rng: &mut StdRng) -> f64 {
        if self.weighted {
            rng.gen_range(1..=8u32) as f64
        } else {
            1.0
        }
    }

    fn draw_size(&self, rng: &mut StdRng) -> f64 {
        if self.weighted {
            rng.gen_range(1..=4u32) as f64 * 8.0
        } else {
            1.0
        }
    }

    fn alive(&self) -> Vec<usize> {
        self.adj.keys().copied().collect()
    }

    /// Lowers the current mesh from scratch: graph (unit edges, one per
    /// adjacent pair), column-net hypergraph (cost = owner size), and
    /// old parts, all in canonical (sorted base id) order.
    fn fresh_snapshot(&self) -> EpochSnapshot {
        let to_base = self.alive();
        let index: BTreeMap<usize, usize> =
            to_base.iter().enumerate().map(|(v, &b)| (b, v)).collect();
        let mut gb = GraphBuilder::new(to_base.len());
        for (v, b) in to_base.iter().enumerate() {
            gb.set_vertex_weight(v, self.weight[b]);
            gb.set_vertex_size(v, self.size[b]);
            for nb in &self.adj[b] {
                let u = index[nb];
                if u > v {
                    gb.add_edge(v, u, 1.0);
                }
            }
        }
        let graph = gb.build();
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        let old_part = to_base.iter().map(|b| self.part[b]).collect();
        EpochSnapshot { graph, hypergraph, to_base, old_part }
    }

    /// One epoch of random churn: coarsen (remove) a few cells, refine
    /// (add) a few attached to survivors, reweight some survivors in
    /// the weighted scheme. Returns the delta describing it.
    fn churn(&mut self, rng: &mut StdRng) -> EpochDelta {
        let mut dirty: BTreeSet<usize> = BTreeSet::new();

        // Coarsen: drop up to 3 random cells, keeping at least 8 so the
        // mesh never degenerates.
        let mut removed = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            let alive = self.alive();
            if alive.len() <= 8 {
                break;
            }
            let b = alive[rng.gen_range(0..alive.len())];
            for nb in self.adj.remove(&b).unwrap() {
                self.adj.get_mut(&nb).unwrap().remove(&b);
                dirty.insert(nb);
            }
            self.weight.remove(&b);
            self.size.remove(&b);
            self.part.remove(&b);
            dirty.remove(&b);
            removed.push(b);
        }
        removed.sort_unstable();

        // Refine: add up to 3 new cells, each wired to 1..=3 survivors
        // (possibly including cells added earlier this epoch).
        let mut added = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            let b = self.next_base;
            self.next_base += 1;
            let w = self.draw_weight(rng);
            let s = self.draw_size(rng);
            let p = rng.gen_range(0..K);
            self.weight.insert(b, w);
            self.size.insert(b, s);
            self.part.insert(b, p);
            self.adj.insert(b, BTreeSet::new());
            let candidates: Vec<usize> = self.alive().into_iter().filter(|&c| c != b).collect();
            for _ in 0..rng.gen_range(1..=3usize) {
                let nb = candidates[rng.gen_range(0..candidates.len())];
                self.adj.get_mut(&b).unwrap().insert(nb);
                self.adj.get_mut(&nb).unwrap().insert(b);
                dirty.insert(nb);
            }
            dirty.insert(b);
            added.push(DeltaVertex { base: b, weight: w, size: s, old_part: p });
        }

        // Reweight: in the weighted scheme, redraw a few survivors.
        let mut reweighted = Vec::new();
        if self.weighted {
            let survivors: Vec<usize> = self
                .alive()
                .into_iter()
                .filter(|b| !added.iter().any(|a| a.base == *b))
                .collect();
            // Last write wins, matching the mirrored state.
            let mut redrawn: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
            for _ in 0..rng.gen_range(0..=3usize) {
                let b = survivors[rng.gen_range(0..survivors.len())];
                let w = self.draw_weight(rng);
                let s = self.draw_size(rng);
                self.weight.insert(b, w);
                self.size.insert(b, s);
                redrawn.insert(b, (w, s));
            }
            reweighted = redrawn
                .into_iter()
                .map(|(base, (weight, size))| DeltaReweight { base, weight, size })
                .collect();
        }

        let nets = dirty
            .iter()
            .map(|&b| DeltaNet { base: b, neighbors: self.adj[&b].iter().copied().collect() })
            .collect();
        EpochDelta { to_base: self.alive(), removed, added, reweighted, nets }
    }

    /// Commits a decided assignment, mirroring `commit_assignment`.
    fn commit(&mut self, to_base: &[usize], part: &[PartId]) {
        for (&b, &p) in to_base.iter().zip(part) {
            self.part.insert(b, p);
        }
    }
}

fn assert_bitwise(epoch: usize, patched: &EpochSnapshot, fresh: &EpochSnapshot) {
    assert_eq!(patched.to_base, fresh.to_base, "epoch {epoch}: to_base");
    assert_eq!(patched.graph, fresh.graph, "epoch {epoch}: graph");
    assert_eq!(patched.hypergraph, fresh.hypergraph, "epoch {epoch}: hypergraph");
    assert_eq!(patched.old_part, fresh.old_part, "epoch {epoch}: old_part");
}

fn randomized_churn_suite(weighted: bool) {
    for seed in [3u64, 11, 29] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gt = GroundTruth::ring(24, weighted, &mut rng);
        let mut patcher = ModelPatcher::new();
        patcher.prime(&gt.fresh_snapshot());
        for epoch in 1..=10 {
            let delta = gt.churn(&mut rng);
            let patched = patcher.apply(&delta, K, ALPHA);
            let fresh = gt.fresh_snapshot();
            assert_bitwise(epoch, &patched.snapshot, &fresh);
            let model = RepartitionHypergraph::build(&fresh.hypergraph, &fresh.old_part, K, ALPHA);
            assert_eq!(
                patched.model.augmented, model.augmented,
                "seed {seed} epoch {epoch}: augmented model (weighted={weighted})"
            );
            // Commit a nontrivial pseudo-random assignment so migration
            // anchors move every epoch.
            let part: Vec<PartId> = fresh
                .old_part
                .iter()
                .enumerate()
                .map(|(v, &p)| (p + v + epoch) % K)
                .collect();
            gt.commit(&fresh.to_base, &part);
            patcher.commit(&fresh.to_base, &part);
        }
    }
}

#[test]
fn randomized_patching_is_bitwise_with_unit_weights() {
    randomized_churn_suite(false);
}

#[test]
fn randomized_patching_is_bitwise_with_varying_weights() {
    randomized_churn_suite(true);
}

#[test]
fn amr_native_deltas_match_scratch_lowering_bitwise() {
    // Twin AMR sources from the same seed: one drives the patcher via
    // next_delta, the other re-lowers every epoch via next_epoch.
    for seed in [3u64, 11, 29] {
        let make = || {
            let stream = AmrStream::new(AmrConfig::small(), K, seed);
            let low = stream.initial_lowering();
            let init = partition_kway(&low.graph, K, &GraphConfig::seeded(seed)).part;
            AmrSource::new(stream, &init)
        };
        let mut delta_source = make();
        let mut scratch_source = make();
        let mut patcher = ModelPatcher::new();
        for epoch in 0..6 {
            let fresh = scratch_source.next_epoch();
            let patched = match delta_source.next_delta() {
                EpochUpdate::Full(snap) => {
                    assert_eq!(epoch, 0, "AMR falls back to a snapshot only on epoch 0");
                    patcher.prime(&snap);
                    snap
                }
                EpochUpdate::Delta(d) => patcher.apply(&d, K, ALPHA).snapshot,
            };
            assert_bitwise(epoch, &patched, &fresh);
            let model =
                RepartitionHypergraph::build(&fresh.hypergraph, &fresh.old_part, K, ALPHA);
            let repatched = RepartitionHypergraph::build(
                &patched.hypergraph,
                &patched.old_part,
                K,
                ALPHA,
            );
            assert_eq!(repatched.augmented, model.augmented, "seed {seed} epoch {epoch}");
            let part: Vec<PartId> =
                fresh.old_part.iter().enumerate().map(|(v, &p)| (p + v) % K).collect();
            delta_source.commit_assignment(&patched, &part);
            scratch_source.commit_assignment(&fresh, &part);
            patcher.commit(&patched.to_base, &part);
        }
    }
}

#[test]
fn amr_base_ids_stay_stable_for_refined_cells() {
    // Satellite (b): the registry must hand out stable ids — a cell
    // named by a delta keeps the same base id in later epochs' to_base.
    let stream = AmrStream::new(AmrConfig::small(), K, 7);
    let low = stream.initial_lowering();
    let init = partition_kway(&low.graph, K, &GraphConfig::seeded(7)).part;
    let mut source = AmrSource::new(stream, &init);
    let first = match source.next_delta() {
        EpochUpdate::Full(snap) => snap,
        EpochUpdate::Delta(_) => unreachable!("epoch 0 is a full snapshot"),
    };
    let part: Vec<PartId> = first.old_part.clone();
    source.commit_assignment(&first, &part);
    let mut known: BTreeMap<usize, dlb::amr::Cell> = BTreeMap::new();
    for b in &first.to_base {
        known.insert(*b, source.cell_of(*b).expect("snapshot ids are registered"));
    }
    for _ in 0..3 {
        let delta = match source.next_delta() {
            EpochUpdate::Delta(d) => d,
            EpochUpdate::Full(_) => unreachable!("AMR emits native deltas after epoch 0"),
        };
        for a in &delta.added {
            let cell = source.cell_of(a.base).expect("added cells get registered ids");
            assert_eq!(source.base_id_of(cell), Some(a.base), "registry round-trip");
            known.insert(a.base, cell);
        }
        for b in &delta.to_base {
            let cell = source.cell_of(*b).expect("listed ids resolve");
            if let Some(prev) = known.get(b) {
                assert_eq!(*prev, cell, "base id {b} was reassigned to a different cell");
            }
        }
        // commit_assignment only reads `to_base`, so an empty lowering
        // suffices to carry the id list.
        let part: Vec<PartId> = delta.to_base.iter().map(|_| 0).collect();
        let empty: CsrGraph = GraphBuilder::new(0).build();
        let snap_like = EpochSnapshot {
            hypergraph: column_net_model(&empty, |_| 0.0),
            graph: empty,
            to_base: delta.to_base.clone(),
            old_part: part.clone(),
        };
        source.commit_assignment(&snap_like, &part);
    }
}
