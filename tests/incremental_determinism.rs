//! Determinism of the incremental (delta-patched, warm-started)
//! repartitioning path: one seed, one answer, regardless of thread
//! count — and with the drift threshold at zero, the incremental
//! session must be indistinguishable from the full-rebuild session,
//! bit for bit, because every epoch then takes the cold path on a
//! patched model that is itself bitwise equal to a fresh lowering.

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{Algorithm, RepartConfig, Session, SimulationSummary};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::AmrSource;

const EPOCHS: usize = 4;
const K: usize = 4;

fn amr_source(seed: u64) -> AmrSource {
    let stream = AmrStream::new(AmrConfig::small(), K, seed);
    let low = stream.initial_lowering();
    let initial = partition_kway(&low.graph, K, &GraphConfig::seeded(seed)).part;
    AmrSource::new(stream, &initial)
}

/// Everything a run decides or measures, per epoch, bit-exact.
fn fingerprint(s: &SimulationSummary) -> Vec<(usize, usize, f64, f64, f64, f64)> {
    s.reports
        .iter()
        .map(|r| {
            let e = r.execution.expect("measured simulation");
            (r.num_vertices, r.moved, r.cost.comm, r.cost.migration, r.imbalance, e.makespan())
        })
        .collect()
}

fn run(seed: u64, threads: usize, incremental: bool, drift_threshold: f64) -> SimulationSummary {
    let mut cfg = RepartConfig::seeded(seed);
    cfg.hypergraph.threads = threads;
    let mut source = amr_source(seed);
    let mut session = Session::new(cfg)
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(10.0)
        .epochs(EPOCHS)
        .measured(true);
    if incremental {
        session = session.incremental(true).drift_threshold(drift_threshold);
    }
    session.workload(&mut source).run().unwrap()
}

/// Rerunning the identical incremental configuration reproduces the
/// identical epoch stream, partitions, and measurements.
#[test]
fn incremental_same_seed_same_answer() {
    let a = fingerprint(&run(11, 1, true, 1.0));
    let b = fingerprint(&run(11, 1, true, 1.0));
    assert_eq!(a, b);
    assert_ne!(
        fingerprint(&run(12, 1, true, 1.0)),
        a,
        "different seeds should explore different streams"
    );
}

/// The warm-started refinement path must honor the same
/// deterministic-reduction guarantee as the full V-cycle: thread count
/// changes nothing.
#[test]
fn incremental_thread_count_invariant() {
    let one = fingerprint(&run(13, 1, true, 1.0));
    for threads in [2usize, 8] {
        let multi = fingerprint(&run(13, threads, true, 1.0));
        assert_eq!(one, multi, "threads={threads} diverged from threads=1");
    }
}

/// `drift_threshold = 0` disables warm starts entirely (the comparison
/// is strict `<`), so every epoch runs a full V-cycle on the patched
/// model — which the patch invariant makes bitwise equal to a fresh
/// lowering. The two sessions must therefore agree exactly.
#[test]
fn zero_threshold_reproduces_full_rebuilds() {
    for seed in [7u64, 23] {
        let scratch = fingerprint(&run(seed, 2, false, 0.0));
        let incremental = fingerprint(&run(seed, 2, true, 0.0));
        assert_eq!(
            incremental, scratch,
            "seed {seed}: drift_threshold=0 diverged from the non-incremental session"
        );
    }
}
