//! Stress tests for the simulated SPMD machine: randomized schedules of
//! mixed collectives and point-to-point traffic must complete without
//! deadlock and produce rank-consistent results — the property every
//! partitioner phase leans on.

use dlb::mpisim::{run_spmd, BlockDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn randomized_collective_schedules_agree() {
    for seed in 0..5u64 {
        for ranks in [1usize, 2, 3, 5, 8] {
            let results = run_spmd(ranks, |comm| {
                // Every rank derives the same op schedule from the seed.
                let mut schedule = StdRng::seed_from_u64(seed);
                let mut acc: u64 = comm.rank() as u64;
                let mut digest: Vec<u64> = Vec::new();
                for _ in 0..30 {
                    match schedule.gen_range(0..5) {
                        0 => {
                            acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
                            digest.push(acc);
                        }
                        1 => {
                            let all = comm.allgather(acc);
                            acc = all.iter().fold(0u64, |x, y| x.wrapping_mul(31).wrapping_add(*y));
                            digest.push(acc);
                        }
                        2 => {
                            let root = schedule.gen_range(0..comm.size());
                            acc = comm.broadcast(root, acc.wrapping_add(7));
                            digest.push(acc);
                        }
                        3 => {
                            comm.barrier();
                        }
                        _ => {
                            acc = comm.scan(acc | 1, |a, b| a.wrapping_add(b));
                            // Scan results differ per rank by design; fold
                            // them back together so digests stay comparable.
                            acc = comm.allreduce(acc, |a, b| a ^ b);
                            digest.push(acc);
                        }
                    }
                }
                digest
            });
            for r in &results[1..] {
                assert_eq!(
                    *r, results[0],
                    "seed {seed}, ranks {ranks}: collective results diverged"
                );
            }
        }
    }
}

#[test]
fn heavy_point_to_point_all_pairs() {
    // Every rank sends a distinct payload to every other rank with
    // multiple tags, interleaved; everything must arrive exactly once.
    let ranks = 6;
    let results = run_spmd(ranks, |comm| {
        let me = comm.rank();
        for to in 0..comm.size() {
            if to != me {
                for tag in 0..4u64 {
                    comm.send(to, tag, (me, tag));
                }
            }
        }
        let mut received: Vec<(usize, u64)> = Vec::new();
        // Receive in a scrambled but deterministic order.
        for tag in (0..4u64).rev() {
            for from in 0..comm.size() {
                if from != me {
                    received.push(comm.recv::<(usize, u64)>(from, tag));
                }
            }
        }
        received.sort_unstable();
        received
    });
    for (rank, received) in results.iter().enumerate() {
        assert_eq!(received.len(), (ranks - 1) * 4);
        for &(from, tag) in received {
            assert_ne!(from, rank);
            assert!(tag < 4);
        }
    }
}

#[test]
fn alltoall_with_vectors_of_varying_size() {
    let results = run_spmd(4, |comm| {
        let outgoing: Vec<Vec<u32>> = (0..comm.size())
            .map(|to| vec![comm.rank() as u32; to + 1])
            .collect();
        comm.alltoall(outgoing)
    });
    for (rank, incoming) in results.iter().enumerate() {
        for (from, batch) in incoming.iter().enumerate() {
            assert_eq!(batch.len(), rank + 1, "rank {rank} from {from}");
            assert!(batch.iter().all(|&x| x == from as u32));
        }
    }
}

#[test]
fn block_dist_composes_with_alltoall_redistribution() {
    // Redistribute a block-distributed array to the reversed distribution
    // via alltoall and verify every element survives.
    let n = 103;
    let ranks = 5;
    let results = run_spmd(ranks, |comm| {
        let dist = BlockDist::new(n, comm.size());
        let my_range = dist.range(comm.rank());
        // New owner of i = owner of (n-1-i).
        let mut outgoing: Vec<Vec<(usize, u64)>> = (0..comm.size()).map(|_| Vec::new()).collect();
        for i in my_range {
            let dest = dist.owner(n - 1 - i);
            outgoing[dest].push((i, (i * i) as u64));
        }
        let incoming = comm.alltoall(outgoing);
        let mut items: Vec<(usize, u64)> = incoming.into_iter().flatten().collect();
        items.sort_unstable();
        items
    });
    let mut all: Vec<(usize, u64)> = results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all.len(), n);
    for (i, &(idx, sq)) in all.iter().enumerate() {
        assert_eq!(idx, i);
        assert_eq!(sq, (i * i) as u64);
    }
}
