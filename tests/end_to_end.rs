//! End-to-end pipeline tests: dataset generation → static partition →
//! epoch stream → repartitioning with every algorithm → invariants.

use dlb::core::{repartition, Algorithm, RepartConfig, RepartProblem, Session};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::metrics;
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn setup(kind: DatasetKind, k: usize, seed: u64) -> (EpochStream, usize) {
    let d = Dataset::generate(kind, 0.001, seed);
    let n = d.graph.num_vertices();
    let initial = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
    (
        EpochStream::new(d.graph, Perturbation::structure(), k, initial, seed),
        n,
    )
}

#[test]
fn every_algorithm_survives_a_structural_epoch() {
    let k = 4;
    for alg in Algorithm::ALL {
        let (mut stream, _) = setup(DatasetKind::Cage14, k, 9);
        let snapshot = stream.next_epoch();
        let problem = RepartProblem {
            hypergraph: &snapshot.hypergraph,
            graph: &snapshot.graph,
            old_part: &snapshot.old_part,
            k,
            alpha: 10.0,
        };
        let r = repartition(&problem, alg, &RepartConfig::seeded(9));
        // Assignment is complete and in range.
        assert_eq!(r.new_part.len(), snapshot.graph.num_vertices(), "{}", alg.name());
        assert!(r.new_part.iter().all(|&p| p < k), "{}", alg.name());
        // Cost accounting is self-consistent.
        let comm = metrics::cutsize_connectivity(&snapshot.hypergraph, &r.new_part, k);
        assert!((r.cost.comm - comm).abs() < 1e-9, "{}", alg.name());
        let mig = metrics::migration_volume(
            snapshot.hypergraph.vertex_sizes(),
            &snapshot.old_part,
            &r.new_part,
        );
        assert!((r.cost.migration - mig).abs() < 1e-9, "{}", alg.name());
        // Balance within a sane envelope.
        assert!(r.imbalance <= 1.25, "{}: imbalance {}", alg.name(), r.imbalance);
    }
}

#[test]
fn epoch_chain_keeps_identities_straight() {
    let k = 3;
    let (mut stream, base_n) = setup(DatasetKind::Auto, k, 4);
    let cfg = RepartConfig::seeded(4);
    let mut prev_assignment: Option<(Vec<usize>, Vec<usize>)> = None; // (to_base, part)
    for _ in 0..4 {
        let snapshot = stream.next_epoch();
        assert!(snapshot.graph.num_vertices() <= base_n);
        // Old parts must match what we committed last epoch (for
        // surviving vertices).
        if let Some((prev_to_base, prev_part)) = &prev_assignment {
            for (v, &b) in snapshot.to_base.iter().enumerate() {
                if let Some(pos) = prev_to_base.iter().position(|&x| x == b) {
                    assert_eq!(
                        snapshot.old_part[v], prev_part[pos],
                        "old part mismatch for base vertex {b}"
                    );
                }
            }
        }
        let problem = RepartProblem {
            hypergraph: &snapshot.hypergraph,
            graph: &snapshot.graph,
            old_part: &snapshot.old_part,
            k,
            alpha: 10.0,
        };
        let r = repartition(&problem, Algorithm::ZoltanRepart, &cfg);
        stream.commit_assignment(&snapshot, &r.new_part);
        prev_assignment = Some((snapshot.to_base.clone(), r.new_part));
    }
}

#[test]
fn simulation_is_deterministic_given_seed() {
    let run = || {
        let (mut stream, _) = setup(DatasetKind::Xyce680s, 4, 6);
        let s = Session::new(RepartConfig::seeded(6))
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(3)
            .workload(&mut stream)
            .run()
            .unwrap();
        (s.mean_comm(), s.mean_migration(), s.mean_normalized_total())
    };
    assert_eq!(run(), run());
}

#[test]
fn all_five_datasets_flow_through_the_pipeline() {
    for kind in DatasetKind::ALL {
        let scale = match kind {
            DatasetKind::Lipid2D => 0.05,
            _ => 0.0005,
        };
        let d = Dataset::generate(kind, scale, 5);
        let k = 4;
        let initial = partition_kway(&d.graph, k, &GraphConfig::seeded(5)).part;
        let mut stream = EpochStream::new(d.graph, Perturbation::weights(), k, initial, 5);
        let s = Session::new(RepartConfig::seeded(5))
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(2)
            .workload(&mut stream)
            .run()
            .unwrap();
        assert_eq!(s.reports.len(), 2, "{}", kind.name());
        assert!(s.max_imbalance() <= 1.35, "{}: {}", kind.name(), s.max_imbalance());
    }
}

#[test]
fn weight_epochs_rebalance_after_refinement() {
    // After simulated mesh refinement, the repartitioners must restore
    // balance even though the old partition is badly overweight.
    let k = 4;
    let d = Dataset::generate(DatasetKind::Auto, 0.001, 8);
    let initial = partition_kway(&d.graph, k, &GraphConfig::seeded(8)).part;
    let mut stream = EpochStream::new(d.graph, Perturbation::weights(), k, initial, 8);
    for alg in [Algorithm::ZoltanRepart, Algorithm::ParmetisRepart] {
        let snapshot = stream.next_epoch();
        let before = metrics::imbalance(&snapshot.hypergraph, &snapshot.old_part, k);
        let problem = RepartProblem {
            hypergraph: &snapshot.hypergraph,
            graph: &snapshot.graph,
            old_part: &snapshot.old_part,
            k,
            alpha: 10.0,
        };
        let r = repartition(&problem, alg, &RepartConfig::seeded(8));
        assert!(
            r.imbalance <= before.max(1.12),
            "{}: imbalance {} (was {before})",
            alg.name(),
            r.imbalance
        );
        stream.commit_assignment(&snapshot, &r.new_part);
    }
}
