//! AMR end-to-end: the real adaptive workload through the full driver.
//!
//! The acceptance identity of the execution model: on every AMR epoch,
//! the *measured* volumes — ghost-exchange bytes from the per-net
//! communication ledger, migration bytes from payloads physically moved
//! over the simulated SPMD machine — must equal the repartitioning
//! hypergraph's model charges (connectivity-1 cut and migration-net
//! charge) **bitwise**. AMR weights, sizes, and net costs are
//! integer-valued `f64`s, so every sum is exact and the assertions use
//! `==`, not a tolerance.

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{Algorithm, RepartConfig, Session, SimulationSummary};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::AmrSource;

fn amr_source(k: usize, seed: u64) -> AmrSource {
    let stream = AmrStream::new(AmrConfig::small(), k, seed);
    let low = stream.initial_lowering();
    let initial = partition_kway(&low.graph, k, &GraphConfig::seeded(seed)).part;
    AmrSource::new(stream, &initial)
}

fn run(k: usize, algorithm: Algorithm, alpha: f64, seed: u64) -> SimulationSummary {
    let mut source = amr_source(k, seed);
    Session::new(RepartConfig::seeded(seed))
        .algorithm(algorithm)
        .alpha(alpha)
        .epochs(4)
        .measured(true)
        .workload(&mut source)
        .run()
        .unwrap()
}

/// The acceptance criterion: measured migration equals the migration-net
/// charge, and measured traffic equals the connectivity-1 cut, on every
/// epoch, for every algorithm, at k ∈ {4, 8}.
#[test]
fn measured_volumes_equal_model_charges() {
    for k in [4usize, 8] {
        for algorithm in Algorithm::ALL {
            let summary = run(k, algorithm, 10.0, 7);
            assert_eq!(summary.reports.len(), 4, "{} k={k}", algorithm.name());
            for r in &summary.reports {
                let e = r.execution.expect("measured simulation");
                assert_eq!(
                    e.mig_volume,
                    r.cost.migration,
                    "epoch {} {} k={k}: measured migration vs migration-net charge",
                    r.epoch,
                    algorithm.name()
                );
                assert_eq!(
                    e.comm_volume,
                    r.cost.comm,
                    "epoch {} {} k={k}: measured traffic vs connectivity-1 cut",
                    r.epoch,
                    algorithm.name()
                );
            }
        }
    }
}

/// Sanity of the balanced execution: every algorithm keeps the AMR
/// workload inside a sane imbalance envelope and produces positive
/// makespans whose phases compose.
#[test]
fn all_algorithms_balance_the_adaptive_mesh() {
    for algorithm in Algorithm::ALL {
        let summary = run(4, algorithm, 100.0, 3);
        assert!(
            summary.max_imbalance() < 1.5,
            "{}: imbalance {}",
            algorithm.name(),
            summary.max_imbalance()
        );
        for r in &summary.reports {
            let e = r.execution.expect("measured simulation");
            assert!(e.t_comp > 0.0, "{}", algorithm.name());
            assert!(e.makespan() >= 100.0 * (e.t_comp + e.t_comm), "{}", algorithm.name());
            assert!(r.num_vertices > 0);
        }
    }
}

/// The paper's trade-off on the real workload: at long epochs the
/// repartitioner's measured total cost `α·t_comm + t_mig` should not
/// exceed scratch partitioning's (5-seed aggregate; single seeds can
/// tie within noise).
#[test]
fn repart_total_cost_competitive_at_long_epochs() {
    let mut repart_total = 0.0;
    let mut scratch_total = 0.0;
    for seed in 20..25 {
        let cost = |s: &SimulationSummary| {
            s.reports
                .iter()
                .map(|r| {
                    let e = r.execution.expect("measured");
                    s.alpha * e.t_comm + e.t_mig
                })
                .sum::<f64>()
        };
        repart_total += cost(&run(4, Algorithm::ZoltanRepart, 100.0, seed));
        scratch_total += cost(&run(4, Algorithm::ZoltanScratch, 100.0, seed));
    }
    assert!(
        repart_total <= scratch_total * 1.05,
        "repart measured cost {repart_total} should not exceed scratch {scratch_total} by >5%"
    );
}
