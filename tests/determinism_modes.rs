//! The Strict/Fast determinism contract (DESIGN.md §13).
//!
//! * `Determinism::Strict` (the default): bit-identical partitions at
//!   every thread count, for both schemes.
//! * `Determinism::Fast`: drops the matching-order barrier when more
//!   than one thread is in play. No bitwise promise across thread
//!   counts — instead a quality contract: cut within
//!   `Config::fast_cut_factor` of the Strict result and imbalance
//!   within ε, across seeds and thread counts.
//! * Fast at one effective thread dispatches to the exact Strict code
//!   path, so it *is* bit-identical to Strict there.

use dlb_hypergraph::{metrics, Hypergraph, HypergraphBuilder};
use dlb_partitioner::{
    partition_hypergraph_fixed, Config, Determinism, FixedAssignment, Scheme,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: usize = 4;

fn workload(seed: u64) -> (Hypergraph, FixedAssignment) {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..1200 {
        let s = rng.gen_range(2..6);
        let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..n)).collect();
        b.add_net(rng.gen_range(1..5) as f64, pins);
    }
    let h = b.build();
    let mut fixed = FixedAssignment::free(n);
    for v in 0..n {
        if rng.gen_bool(0.15) {
            fixed.fix(v, rng.gen_range(0..K));
        }
    }
    (h, fixed)
}

fn partition_at(
    threads: usize,
    scheme: Scheme,
    determinism: Determinism,
    h: &Hypergraph,
    fixed: &FixedAssignment,
) -> Vec<usize> {
    let mut cfg = Config::seeded(7);
    cfg.scheme = scheme;
    cfg.num_vcycles = 2;
    cfg.threads = threads;
    cfg.determinism = determinism;
    partition_hypergraph_fixed(h, K, fixed, &cfg).part
}

#[test]
fn strict_is_bit_identical_at_every_thread_count() {
    for scheme in [Scheme::RecursiveBisection, Scheme::DirectKway] {
        let (h, fixed) = workload(99);
        let reference = partition_at(1, scheme, Determinism::Strict, &h, &fixed);
        for threads in [2, 8] {
            let part = partition_at(threads, scheme, Determinism::Strict, &h, &fixed);
            assert_eq!(
                part, reference,
                "Strict diverged at threads={threads} (scheme {scheme:?})"
            );
        }
    }
}

#[test]
fn fast_at_one_thread_equals_strict() {
    for scheme in [Scheme::RecursiveBisection, Scheme::DirectKway] {
        let (h, fixed) = workload(42);
        let strict = partition_at(1, scheme, Determinism::Strict, &h, &fixed);
        let fast = partition_at(1, scheme, Determinism::Fast, &h, &fixed);
        assert_eq!(
            fast, strict,
            "Fast at 1 thread must take the Strict path (scheme {scheme:?})"
        );
    }
}

#[test]
fn fast_meets_the_quality_contract_across_seeds() {
    let cfg = Config::seeded(7);
    for seed in [1u64, 2, 3, 4, 5] {
        let (h, fixed) = workload(seed);
        let strict = partition_at(1, Scheme::DirectKway, Determinism::Strict, &h, &fixed);
        let strict_cut =
            metrics::cutsize_connectivity(&h, &strict, K);
        for threads in [2, 4, 8] {
            let part = partition_at(threads, Scheme::DirectKway, Determinism::Fast, &h, &fixed);
            let cut = metrics::cutsize_connectivity(&h, &part, K);
            assert!(
                cut <= strict_cut * cfg.fast_cut_factor + 1e-9,
                "seed {seed}, threads {threads}: Fast cut {cut} vs Strict {strict_cut} \
                 exceeds the {:.2}x bound",
                cfg.fast_cut_factor
            );
            let imb = metrics::imbalance(&h, &part, K);
            assert!(
                imb <= 1.0 + cfg.epsilon + 1e-9,
                "seed {seed}, threads {threads}: Fast imbalance {imb} exceeds 1 + epsilon"
            );
        }
    }
}

#[test]
fn fast_respects_fixed_vertices() {
    let (h, fixed) = workload(17);
    for threads in [2, 8] {
        let part = partition_at(threads, Scheme::DirectKway, Determinism::Fast, &h, &fixed);
        for (v, &pv) in part.iter().enumerate() {
            if let Some(p) = fixed.get(v) {
                assert_eq!(pv, p, "fixed vertex {v} moved at threads={threads}");
            }
        }
    }
}
