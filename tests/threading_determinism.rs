//! Regression test for the chunked-reduction determinism guarantee: the
//! full partitioner must produce the *identical* partition vector at
//! every thread count, for both schemes, on a fixed-seed workload.

use dlb_hypergraph::HypergraphBuilder;
use dlb_partitioner::{partition_hypergraph_fixed, Config, FixedAssignment, Scheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64) -> (dlb_hypergraph::Hypergraph, FixedAssignment) {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..1200 {
        let s = rng.gen_range(2..6);
        let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..n)).collect();
        b.add_net(rng.gen_range(1..5) as f64, pins);
    }
    let h = b.build();
    let mut fixed = FixedAssignment::free(n);
    for v in 0..n {
        if rng.gen_bool(0.15) {
            fixed.fix(v, rng.gen_range(0..4));
        }
    }
    (h, fixed)
}

fn partition_at(threads: usize, scheme: Scheme, h: &dlb_hypergraph::Hypergraph, fixed: &FixedAssignment) -> Vec<usize> {
    let mut cfg = Config::seeded(7);
    cfg.scheme = scheme;
    cfg.num_vcycles = 2; // exercise the iterated V-cycle path too
    cfg.threads = threads;
    partition_hypergraph_fixed(h, 4, fixed, &cfg).part
}

#[test]
fn partition_is_identical_at_every_thread_count() {
    for scheme in [Scheme::RecursiveBisection, Scheme::DirectKway] {
        let (h, fixed) = workload(99);
        let reference = partition_at(1, scheme, &h, &fixed);
        for threads in [2, 8] {
            let part = partition_at(threads, scheme, &h, &fixed);
            assert_eq!(
                part, reference,
                "partition diverged at threads={threads} (scheme {scheme:?})"
            );
        }
    }
}
