//! Fault-injection and recovery end-to-end (DESIGN.md §12).
//!
//! A [`FaultPlan`] schedules logical-rank failures at epoch boundaries
//! and message drop/delay inside the measured migration exchanges. The
//! tests here pin down the subsystem's three contracts:
//!
//! 1. **Recovery works**: a rank failure mid-run shrinks the world to
//!    `k − 1` via a forced repartition, the simulation completes, and
//!    the recovery volume is visible in the measured `t_mig` and the
//!    `RecoveriesRun` / `FaultsInjected` counters.
//! 2. **Determinism**: at each driver rank count (2 and 4), the same
//!    plan seed reproduces bit-identical recovered partitions and
//!    makespans run to run (fault "ranks" live in the workload's
//!    logical `k`-part world, so the plan means the same thing at any
//!    driver world size).
//! 3. **Fault-free purity**: an empty plan — and a drop/delay-only plan,
//!    for the deterministic outputs — is bit-identical to no plan at
//!    all. No extra collectives, no RNG draws on the fast path.

use dlb::core::{Algorithm, FaultPlan, RepartConfig, Session, SimulationSummary};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

const ALPHA: f64 = 50.0;
const SEED: u64 = 41;

fn make_stream(k: usize) -> EpochStream {
    let d = Dataset::generate(DatasetKind::Auto, 0.0008, SEED);
    let init = partition_kway(&d.graph, k, &GraphConfig::seeded(SEED)).part;
    EpochStream::new(d.graph, Perturbation::weights(), k, init, SEED)
}

fn session(k: usize, epochs: usize) -> Session<'static> {
    Session::new(RepartConfig::seeded(SEED))
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(ALPHA)
        .epochs(epochs)
        .measured(true)
        .workload_factory(move |_| make_stream(k))
}

/// The deterministic fingerprint of a run: per-epoch model costs and
/// measured makespans, all integer-valued or exactly reproducible
/// `f64`s, compared bitwise.
fn fingerprint(s: &SimulationSummary) -> Vec<(f64, f64, usize, f64)> {
    s.reports
        .iter()
        .map(|r| {
            (
                r.cost.comm,
                r.cost.migration,
                r.moved,
                r.execution.as_ref().expect("measured run").makespan(),
            )
        })
        .collect()
}

#[test]
fn injected_failure_recovers_onto_survivors() {
    let plan = FaultPlan::parse("7:rank2@2").unwrap();
    let s = session(4, 4).fault_plan(plan).run().unwrap();
    assert_eq!(s.reports.len(), 4, "simulation completes past the failure");
    assert_eq!(s.total_recoveries(), 1);
    assert_eq!(s.surviving_k(), 3);

    let r = &s.reports[1]; // epoch 2
    assert_eq!(r.recoveries.len(), 1);
    let rec = &r.recoveries[0];
    assert_eq!(rec.failed_rank, 2);
    assert_eq!(rec.epoch, 2);
    assert_eq!(rec.k_before, 4);
    assert_eq!(rec.k_after, 3);
    assert!(rec.orphans > 0, "the dead rank owned vertices");
    assert!(rec.migration > 0.0);
    // The recovery exchange lands in the measured makespan.
    let e = r.execution.as_ref().unwrap();
    assert!(e.t_mig > 0.0);
    assert_eq!(rec.t_mig, e.t_mig, "single recovery: the epoch's t_mig is the recovery's");
    assert!(
        r.cost.migration >= rec.migration,
        "epoch migration charge includes the recovery"
    );
    // Fault-free epochs report no recoveries.
    for other in [0usize, 2, 3] {
        assert!(s.reports[other].recoveries.is_empty());
    }
}

#[test]
fn two_failures_shrink_the_world_twice() {
    let plan = FaultPlan::parse("11:rank0@2,rank3@3").unwrap();
    let s = session(4, 4).fault_plan(plan).run().unwrap();
    assert_eq!(s.total_recoveries(), 2);
    assert_eq!(s.surviving_k(), 2);
    assert_eq!(s.reports[1].recoveries[0].k_after, 3);
    let second = &s.reports[2].recoveries[0];
    assert_eq!(second.failed_rank, 3);
    assert_eq!(second.k_before, 3);
    assert_eq!(second.k_after, 2);
    // A rank that already died is not recovered twice.
    let again = FaultPlan::parse("11:rank1@1,rank1@2").unwrap();
    let s = session(3, 3).fault_plan(again).run().unwrap();
    assert_eq!(s.total_recoveries(), 1);
}

/// Acceptance criterion: at each driver rank count (2 and 4), the same
/// FaultPlan seed reproduces bit-identical recovered partitions,
/// recovery records, and makespans run to run. (Different rank counts
/// legitimately choose different partitions — the repo-wide rule — so
/// determinism is per configuration; failure detection itself is
/// plan-driven and adds no collectives at any rank count.)
#[test]
fn recovery_is_reproducible_at_ranks_2_and_4() {
    let run = |ranks: usize| {
        let plan = FaultPlan::parse("7:rank1@2").unwrap();
        session(4, 3).ranks(ranks).fault_plan(plan).run().unwrap()
    };
    for ranks in [2usize, 4] {
        let a = run(ranks);
        let b = run(ranks);
        assert_eq!(fingerprint(&a), fingerprint(&b), "ranks = {ranks}");
        assert_eq!(a.total_recoveries(), 1, "ranks = {ranks}");
        assert_eq!(b.total_recoveries(), 1);
        let (ra, rb) = (&a.reports[1].recoveries[0], &b.reports[1].recoveries[0]);
        assert_eq!(ra.orphans, rb.orphans, "ranks = {ranks}");
        assert_eq!(ra.migration, rb.migration, "ranks = {ranks}");
        assert_eq!(ra.t_mig, rb.t_mig, "ranks = {ranks}");
        assert_eq!((ra.k_before, ra.k_after), (4, 3));
    }
}

/// Fault-free purity: a session with an *empty* plan (no failures, zero
/// probabilities) is bitwise identical to a session with no plan.
#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let without = session(4, 3).run().unwrap();
    let empty = FaultPlan::parse("5:").unwrap();
    let with_empty = session(4, 3).fault_plan(empty).run().unwrap();
    assert_eq!(fingerprint(&without), fingerprint(&with_empty));
    assert_eq!(with_empty.total_recoveries(), 0);

    let zero = FaultPlan::parse("5:drop0,delay0").unwrap();
    let with_zero = session(4, 3).fault_plan(zero).run().unwrap();
    assert_eq!(fingerprint(&without), fingerprint(&with_zero));
}

/// Message drops and delays are absorbed by the comm layer's
/// retransmit/backoff, so every deterministic output — partitions,
/// model costs, measured volumes and makespans — is unchanged; only the
/// fault counters see the injections.
#[test]
fn message_faults_never_change_deterministic_outputs() {
    let clean = session(4, 3).run().unwrap();
    let noisy_plan = FaultPlan::parse("9:drop0.2,delay0.05").unwrap();
    let noisy = session(4, 3).fault_plan(noisy_plan).run().unwrap();
    assert_eq!(fingerprint(&clean), fingerprint(&noisy));
    assert_eq!(noisy.total_recoveries(), 0);
}

/// Trace counters: a plan with a failure records `FaultsInjected` and
/// `RecoveriesRun`; a fault-free run records neither.
#[test]
fn fault_counters_reflect_the_plan() {
    let plan = FaultPlan::parse("13:rank1@2,drop0.3").unwrap();
    let (s, report) = session(3, 3).fault_plan(plan).run_traced().unwrap();
    assert_eq!(s.total_recoveries(), 1);
    if dlb::trace::COMPILED_IN {
        assert_eq!(report.counter(dlb::trace::Counter::RecoveriesRun), 1);
        // One scheduled failure, plus every injected drop/delay in the
        // measured migration worlds.
        assert!(report.counter(dlb::trace::Counter::FaultsInjected) >= 1);
    }

    let (_, clean) = session(3, 3).run_traced().unwrap();
    assert_eq!(clean.counter(dlb::trace::Counter::RecoveriesRun), 0);
    assert_eq!(clean.counter(dlb::trace::Counter::FaultsInjected), 0);
}

/// A plan naming a rank outside the workload's `0..k` world is rejected
/// up front, not discovered mid-run.
#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_plan_rank_panics_up_front() {
    let plan = FaultPlan::parse("3:rank9@1").unwrap();
    let _ = session(4, 2).fault_plan(plan).run();
}
