//! Statistical "shape" tests: small-scale versions of the qualitative
//! claims in the paper's Section 5, averaged over several seeds so a
//! single unlucky instance cannot flip them. These are the invariants
//! EXPERIMENTS.md tracks at full experiment scale.

use dlb::core::{Algorithm, RepartConfig, Session, SimulationSummary};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::column_net_model_unit;
use dlb::hypergraph::metrics;
use dlb::partitioner::{partition_hypergraph, Config as HgConfig};
use dlb::workloads::{Dataset, DatasetKind, EpochStream, PerturbKind, Perturbation};

fn simulate(
    stream: &mut EpochStream,
    epochs: usize,
    alg: Algorithm,
    alpha: f64,
    seed: u64,
) -> SimulationSummary {
    Session::new(RepartConfig::seeded(seed))
        .algorithm(alg)
        .alpha(alpha)
        .epochs(epochs)
        .workload(stream)
        .run()
        .unwrap()
}

fn mean_over_seeds(
    kind: DatasetKind,
    perturb: PerturbKind,
    k: usize,
    alpha: f64,
    alg: Algorithm,
    seeds: &[u64],
) -> (f64, f64) {
    let mut total = 0.0;
    let mut mig = 0.0;
    for &seed in seeds {
        let d = Dataset::generate(kind, 0.001, seed);
        let initial = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
        let p = match perturb {
            PerturbKind::Structure => Perturbation::structure(),
            PerturbKind::Weights => Perturbation::weights(),
        };
        let mut stream = EpochStream::new(d.graph, p, k, initial, seed);
        let s = simulate(&mut stream, 3, alg, alpha, seed);
        total += s.mean_normalized_total();
        mig += s.mean_migration();
    }
    (total / seeds.len() as f64, mig / seeds.len() as f64)
}

const SEEDS: [u64; 4] = [1, 2, 3, 4];

/// Paper, Section 5: "total cost using Zoltan-scratch ... is comparable
/// to Zoltan-repart only when α is greater than 100" — i.e. at α = 1 the
/// scratch methods lose badly on migration.
#[test]
fn scratch_pays_migration_at_alpha_one() {
    let (repart_total, repart_mig) = mean_over_seeds(
        DatasetKind::Auto,
        PerturbKind::Structure,
        4,
        1.0,
        Algorithm::ZoltanRepart,
        &SEEDS,
    );
    let (scratch_total, scratch_mig) = mean_over_seeds(
        DatasetKind::Auto,
        PerturbKind::Structure,
        4,
        1.0,
        Algorithm::ZoltanScratch,
        &SEEDS,
    );
    assert!(
        repart_mig < scratch_mig,
        "repart migration {repart_mig} should be below scratch {scratch_mig}"
    );
    assert!(
        repart_total < scratch_total,
        "repart total {repart_total} should beat scratch {scratch_total} at alpha=1"
    );
}

/// Paper, Section 5: "As α grows ... the partitioners find smaller
/// communication cost with increasing α" (and migration stops
/// mattering). At large α the repartitioner's *migration-per-alpha*
/// share of the total must be negligible.
#[test]
fn migration_share_vanishes_at_large_alpha() {
    let (total, mig) = mean_over_seeds(
        DatasetKind::Auto,
        PerturbKind::Structure,
        4,
        1000.0,
        Algorithm::ZoltanRepart,
        &SEEDS,
    );
    assert!(
        mig / 1000.0 <= 0.02 * total,
        "normalized migration {} should be <2% of total {total}",
        mig / 1000.0
    );
}

/// Paper, Section 2: hypergraphs model communication volume exactly;
/// graph partitioners optimize the edge-cut proxy. On identical inputs
/// the hypergraph partitioner should win on comm volume (averaged).
#[test]
fn hypergraph_beats_graph_on_communication_volume() {
    let mut hg_total = 0.0;
    let mut g_total = 0.0;
    for seed in [1u64, 2, 3, 4, 5, 6] {
        let d = Dataset::generate(DatasetKind::Auto, 0.001, seed);
        let h = column_net_model_unit(&d.graph);
        let k = 4;
        let hg = partition_hypergraph(&h, k, &HgConfig::seeded(seed));
        let g = partition_kway(&d.graph, k, &GraphConfig::seeded(seed));
        hg_total += hg.cut;
        g_total += metrics::cutsize_connectivity(&h, &g.part, k);
    }
    assert!(
        hg_total < g_total,
        "hypergraph comm volume {hg_total} should beat graph partitioner {g_total}"
    );
}

/// The repartitioners must never leave the load badly unbalanced, even
/// under simulated mesh refinement (7.5× weight growth).
#[test]
fn repartitioners_restore_balance_under_refinement() {
    for alg in [Algorithm::ZoltanRepart, Algorithm::ParmetisRepart] {
        for seed in SEEDS {
            let d = Dataset::generate(DatasetKind::Cage14, 0.0005, seed);
            let initial = partition_kway(&d.graph, 4, &GraphConfig::seeded(seed)).part;
            let mut stream =
                EpochStream::new(d.graph, Perturbation::weights(), 4, initial, seed);
            let s = simulate(&mut stream, 3, alg, 10.0, seed);
            assert!(
                s.max_imbalance() <= 1.25,
                "{} seed {seed}: imbalance {}",
                alg.name(),
                s.max_imbalance()
            );
        }
    }
}

/// α monotonicity: communication volume achieved by the model should not
/// get *worse* when α increases (averaged over seeds) — the objective
/// weighs comm more heavily, so the optimizer pushes harder on it.
#[test]
fn comm_improves_with_alpha() {
    let at = |alpha: f64| {
        let mut comm = 0.0;
        for &seed in &SEEDS {
            let d = Dataset::generate(DatasetKind::Auto, 0.001, seed);
            let initial = partition_kway(&d.graph, 4, &GraphConfig::seeded(seed)).part;
            let mut stream =
                EpochStream::new(d.graph, Perturbation::structure(), 4, initial, seed);
            let s = simulate(&mut stream, 3, Algorithm::ZoltanRepart, alpha, seed);
            comm += s.mean_comm();
        }
        comm / SEEDS.len() as f64
    };
    let lo = at(1.0);
    let hi = at(1000.0);
    assert!(
        hi <= lo * 1.05,
        "comm at alpha=1000 ({hi}) should be <= comm at alpha=1 ({lo}) within 5%"
    );
}
