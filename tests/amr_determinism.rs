//! Determinism of the AMR workload pipeline: one seed, one answer —
//! regardless of simulated rank count, thread count, or the distributed
//! pin storage. The epoch stream, the chosen partitions, and the
//! *measured* makespans (which run a nested k-rank migration world per
//! epoch) must all be bit-identical.

use dlb::amr::{AmrConfig, AmrStream};
use dlb::core::{Algorithm, RepartConfig, Session, SimulationSummary};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::mpisim::run_spmd;
use dlb::workloads::AmrSource;

const EPOCHS: usize = 3;
const K: usize = 4;

fn amr_source(seed: u64) -> AmrSource {
    let stream = AmrStream::new(AmrConfig::small(), K, seed);
    let low = stream.initial_lowering();
    let initial = partition_kway(&low.graph, K, &GraphConfig::seeded(seed)).part;
    AmrSource::new(stream, &initial)
}

/// Everything a run decides or measures, per epoch, bit-exact.
fn fingerprint(s: &SimulationSummary) -> Vec<(usize, usize, f64, f64, f64, f64)> {
    s.reports
        .iter()
        .map(|r| {
            let e = r.execution.expect("measured simulation");
            (r.num_vertices, r.moved, r.cost.comm, r.cost.migration, r.imbalance, e.makespan())
        })
        .collect()
}

fn serial_run(seed: u64, threads: usize) -> SimulationSummary {
    let mut cfg = RepartConfig::seeded(seed);
    cfg.hypergraph.threads = threads;
    let mut source = amr_source(seed);
    Session::new(cfg)
        .algorithm(Algorithm::ZoltanRepart)
        .alpha(50.0)
        .epochs(EPOCHS)
        .measured(true)
        .workload(&mut source)
        .run()
        .unwrap()
}

fn parallel_run(seed: u64, ranks: usize, distributed: bool) -> Vec<SimulationSummary> {
    let mut cfg = RepartConfig::seeded(seed);
    cfg.hypergraph.dist.distributed = distributed;
    // Low threshold so several levels stay distributed at this scale.
    cfg.hypergraph.dist.gather_threshold = 256;
    run_spmd(ranks, |comm| {
        let mut source = amr_source(seed);
        Session::new(cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(50.0)
            .epochs(EPOCHS)
            .measured(true)
            .workload(&mut source)
            .run_on(comm)
            .unwrap()
    })
}

/// Rerunning the identical configuration reproduces the identical
/// epoch stream and measurements.
#[test]
fn same_seed_same_answer() {
    let a = fingerprint(&serial_run(11, 1));
    let b = fingerprint(&serial_run(11, 1));
    assert_eq!(a, b);
    assert_ne!(
        fingerprint(&serial_run(12, 1)),
        a,
        "different seeds should explore different streams"
    );
}

/// Thread count must not change anything (the shared-memory pipeline's
/// deterministic-reduction guarantee, now through the AMR driver).
#[test]
fn thread_count_invariant() {
    let one = fingerprint(&serial_run(13, 1));
    let two = fingerprint(&serial_run(13, 2));
    assert_eq!(one, two, "threads=2 diverged from threads=1");
}

/// At every rank count: all ranks must agree on the whole run —
/// partitions, epoch stream, measured makespans (each rank runs its own
/// nested migration world, so agreement is a real property, not shared
/// state) — and rerunning the same configuration must reproduce it
/// bit-for-bit. (Different rank counts legitimately choose different
/// partitions: the SPMD driver seeds per-rank RNG streams.)
#[test]
fn ranks_agree_and_reproduce() {
    for ranks in [1usize, 2, 4] {
        let first = parallel_run(17, ranks, false);
        let reference = fingerprint(&first[0]);
        for (rank, s) in first.iter().enumerate() {
            assert_eq!(fingerprint(s), reference, "rank {rank}/{ranks} disagrees");
        }
        let again = parallel_run(17, ranks, false);
        for (rank, s) in again.iter().enumerate() {
            assert_eq!(fingerprint(s), reference, "rerun rank {rank}/{ranks} diverged");
        }
    }
}

/// The distributed (memory-scalable) V-cycle path on the AMR workload:
/// bit-identical to the replicated SPMD driver at the same rank count,
/// measured makespans included.
#[test]
fn distributed_matches_replicated() {
    for ranks in [2usize, 4] {
        let replicated = fingerprint(&parallel_run(19, ranks, false)[0]);
        let summaries = parallel_run(19, ranks, true);
        for (rank, s) in summaries.iter().enumerate() {
            assert_eq!(
                fingerprint(s),
                replicated,
                "distributed rank {rank}/{ranks} diverged from the replicated driver"
            );
        }
    }
}
