//! Multi-constraint load vectors (DESIGN.md §16).
//!
//! Two contracts are pinned here:
//!
//! 1. **Arity-1 is free.** A hypergraph whose loads are installed as an
//!    explicit arity-1 [`VertexLoads`] partitions bit-identically — same
//!    partition vector, same costs, same trace counters — to one whose
//!    weights went in through the classic per-vertex scalar path, at
//!    every thread count, rank count, scheme, and warm-start setting.
//!    The repair counters stay at zero: the scalar pipeline never
//!    reaches the multi-constraint machinery.
//!
//! 2. **Repair recovers what FM cannot.** On a two-constraint instance
//!    whose cut-optimal bisection violates the auxiliary constraint,
//!    plain FM stalls (every move has negative cut gain), and the
//!    greedy rebalancing repair pass must engage to reach feasibility
//!    on every constraint.

use dlb::hypergraph::{metrics, Hypergraph, HypergraphBuilder, VertexLoads};
use dlb::mpisim::run_spmd;
use dlb::partitioner::par::parallel_partition;
use dlb::partitioner::{
    partition_hypergraph, refine_partition_fixed, targets_for, Config, FixedAssignment, Scheme,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random weighted hypergraph, built twice: once with weights set
/// through the classic scalar path, once with the identical column
/// installed as an explicit arity-1 `VertexLoads`.
fn scalar_and_arity1(seed: u64) -> (Hypergraph, Hypergraph) {
    let n = 240;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..480 {
        let s = rng.gen_range(2..6);
        let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..n)).collect();
        b.add_net(rng.gen_range(1..4) as f64, pins);
    }
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0f64..5.0)).collect();
    let mut scalar = b.build();
    for (v, &w) in weights.iter().enumerate() {
        scalar.set_vertex_weight(v, w);
    }
    let mut typed = scalar.clone();
    typed.set_loads(VertexLoads::from_scalar(weights));
    (scalar, typed)
}

/// The partitioner must be bitwise-indifferent to *how* an arity-1 load
/// column was installed, across thread counts, schemes, warm starts —
/// and must never touch the repair machinery on scalar inputs.
#[test]
fn arity1_vertex_loads_are_bitwise_identical_to_scalar_weights() {
    let (scalar, typed) = scalar_and_arity1(0x1D);
    assert_eq!(typed.load_arity(), 1);
    for scheme in [Scheme::RecursiveBisection, Scheme::DirectKway] {
        for warm in [false, true] {
            for threads in [1usize, 2, 8] {
                let mut cfg = Config::seeded(7);
                cfg.scheme = scheme;
                cfg.threads = threads;
                cfg.warm_start = warm;
                let run = |h: &Hypergraph| {
                    let session = dlb::trace::session();
                    let r = if warm {
                        // Warm path: seed from a deliberately skewed
                        // block partition both runs share.
                        let seed_part: Vec<usize> =
                            (0..h.num_vertices()).map(|v| usize::from(v >= 60)).collect();
                        let fixed = FixedAssignment::free(h.num_vertices());
                        refine_partition_fixed(h, 2, &fixed, &seed_part, &cfg)
                    } else {
                        partition_hypergraph(h, 4, &cfg)
                    };
                    (r, session.finish())
                };
                let (a, ta) = run(&scalar);
                let (b, tb) = run(&typed);
                let tag = format!("scheme {scheme:?} warm {warm} threads {threads}");
                assert_eq!(a.part, b.part, "partition diverged: {tag}");
                assert_eq!(a.cut.to_bits(), b.cut.to_bits(), "cut diverged: {tag}");
                assert_eq!(
                    a.imbalance.to_bits(),
                    b.imbalance.to_bits(),
                    "imbalance diverged: {tag}"
                );
                assert_eq!(ta.counters, tb.counters, "trace counters diverged: {tag}");
                assert_eq!(
                    ta.counter(dlb::trace::Counter::RepairInvocations),
                    0,
                    "scalar run entered the repair pass: {tag}"
                );
            }
        }
    }
}

/// The SPMD partitioner honors the same indifference at every world
/// size.
#[test]
fn arity1_vertex_loads_are_bitwise_identical_under_spmd() {
    let (scalar, typed) = scalar_and_arity1(0x2E);
    let cfg = Config::seeded(11);
    for ranks in [1usize, 2, 4] {
        let run = |h: &Hypergraph| {
            run_spmd(ranks, |comm| parallel_partition(comm, h, 4, &cfg)).pop().unwrap()
        };
        let a = run(&scalar);
        let b = run(&typed);
        assert_eq!(a.part, b.part, "SPMD partition diverged at ranks={ranks}");
        assert_eq!(a.cut.to_bits(), b.cut.to_bits(), "SPMD cut diverged at ranks={ranks}");
    }
}

/// Two tight 4-cliques joined by nothing: the cut-optimal bisection is
/// the clique split, which is perfectly balanced on constraint 0 but
/// infeasible on constraint 1 (one clique carries 5× the auxiliary
/// load). Every single-vertex move from the clique split has negative
/// cut gain, so plain FM stalls there.
fn fm_stall_instance() -> Hypergraph {
    let mut b = HypergraphBuilder::new(8);
    for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(4.0, [group[i], group[j]]);
            }
        }
    }
    let mut h = b.build();
    // Constraint 0 (uniform) is satisfied by any 4–4 split; constraint 1
    // piles onto the first clique: totals 20 vs 4, cap 12.6 at ε = 0.05.
    // Feasibility needs two heavy vertices moved across the clique cut.
    let flops = vec![1.0; 8];
    let bytes: Vec<f64> = (0..8).map(|v| if v < 4 { 5.0 } else { 1.0 }).collect();
    h.set_loads(VertexLoads::from_columns(vec![flops, bytes]));
    h
}

/// Tolerances for [`fm_stall_instance`]: the primary constraint gets a
/// slack budget (ε = 0.5, cap 6.0) so the repair pass's strict-descent
/// moves — one vertex at a time, each shrinking the worst relative
/// violation — can walk from the clique split to a byte-feasible
/// assignment without ever tripping the flop cap. At ε = 0.05 on both,
/// the only fix is a heavy-for-light *swap*, which single-move descent
/// cannot express.
fn fm_stall_config(seed: u64) -> Config {
    Config::builder().seed(seed).epsilons(&[0.5, 0.05]).build().unwrap()
}

/// With only the primary constraint, the clique-split seed is already
/// optimal and balanced: FM keeps it unchanged. This is the "FM alone
/// stalls" half of the repair contract.
#[test]
fn fm_alone_keeps_the_aux_infeasible_clique_split() {
    let h = fm_stall_instance();
    let mut scalar = h.clone();
    scalar.set_loads(VertexLoads::from_scalar(vec![1.0; 8]));
    let mut cfg = Config::seeded(3);
    cfg.warm_start = true;
    let seed_part: Vec<usize> = (0..8).map(|v| usize::from(v >= 4)).collect();
    let fixed = FixedAssignment::free(8);
    let r = refine_partition_fixed(&scalar, 2, &fixed, &seed_part, &cfg);
    assert_eq!(r.part, seed_part, "scalar FM should not move off the optimal split");
}

/// The same seed under the two-constraint loads: FM cannot fix the
/// auxiliary violation (all fixing moves have negative gain), so the
/// greedy repair pass must engage — and the result must be feasible on
/// *every* constraint.
#[test]
fn greedy_repair_recovers_feasibility_where_fm_stalls() {
    let h = fm_stall_instance();
    let mut cfg = fm_stall_config(3);
    cfg.warm_start = true;
    let seed_part: Vec<usize> = (0..8).map(|v| usize::from(v >= 4)).collect();
    let fixed = FixedAssignment::free(8);

    let session = dlb::trace::session();
    let r = refine_partition_fixed(&h, 2, &fixed, &seed_part, &cfg);
    let report = session.finish();

    let targets = targets_for(&h, 2, &cfg);
    let w = metrics::part_weights(&h, &r.part, 2);
    let aux = metrics::aux_part_loads(&h, &r.part, 2);
    assert!(
        targets.feasible(&w, &aux),
        "partition infeasible: primary {w:?}, aux {aux:?}, part {:?}",
        r.part
    );
    if dlb::trace::COMPILED_IN {
        assert!(
            report.counter(dlb::trace::Counter::RepairInvocations) >= 1,
            "repair pass never engaged"
        );
        assert!(
            report.counter(dlb::trace::Counter::RepairMovesApplied) >= 1,
            "repair pass applied no moves"
        );
    }
}

/// The full cold pipeline on the same instance also lands on a
/// two-constraint-feasible partition (however it gets there).
#[test]
fn cold_pipeline_is_feasible_on_both_constraints() {
    let h = fm_stall_instance();
    for scheme in [Scheme::RecursiveBisection, Scheme::DirectKway] {
        let mut cfg = fm_stall_config(17);
        cfg.scheme = scheme;
        let r = partition_hypergraph(&h, 2, &cfg);
        let targets = targets_for(&h, 2, &cfg);
        let w = metrics::part_weights(&h, &r.part, 2);
        let aux = metrics::aux_part_loads(&h, &r.part, 2);
        assert!(
            targets.feasible(&w, &aux),
            "{scheme:?}: primary {w:?}, aux {aux:?}, part {:?}",
            r.part
        );
    }
}

/// Heterogeneous per-part capacity vectors steer both constraints: a
/// 3:1 machine (on flops *and* bytes) must land each part within its
/// own per-constraint caps, with part 0 visibly carrying the bulk of
/// both loads.
#[test]
fn per_part_capacity_vectors_steer_recursive_bisection() {
    let n = 120;
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..240 {
        let s = rng.gen_range(2..5);
        let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..n)).collect();
        b.add_net(1.0, pins);
    }
    let mut h = b.build();
    // Two vertex species, interleaved: even vertices are compute-heavy
    // (flops 2.0, bytes 0.2), odd vertices state-heavy (flops 0.5,
    // bytes 2.3). Splitting each species 3:1 satisfies both capacity
    // columns at once, so the instance is comfortably feasible.
    let flops: Vec<f64> = (0..n).map(|v| if v % 2 == 0 { 2.0 } else { 0.5 }).collect();
    let bytes: Vec<f64> = (0..n).map(|v| if v % 2 == 0 { 0.2 } else { 2.3 }).collect();
    h.set_loads(VertexLoads::from_columns(vec![flops, bytes]));

    let cfg = Config::builder()
        .seed(5)
        .epsilons(&[0.15, 0.15])
        .part_capacities(vec![vec![3.0, 3.0], vec![1.0, 1.0]])
        .build()
        .unwrap();
    let part = dlb::partitioner::partition_hypergraph_fixed(
        &h,
        2,
        &FixedAssignment::free(n),
        &cfg,
    )
    .part;
    let targets = targets_for(&h, 2, &cfg);
    let w = metrics::part_weights(&h, &part, 2);
    let aux = metrics::aux_part_loads(&h, &part, 2);
    assert!(
        targets.feasible(&w, &aux),
        "capacity-driven split infeasible: primary {w:?} caps [{}, {}], aux {aux:?}",
        targets.cap(0),
        targets.cap(1),
    );
    // The capacity asymmetry must actually bite on *both* constraints:
    // part 0 carries roughly three quarters of each load column.
    assert!(w[0] > 2.0 * w[1], "constraint-0 loads ignore the 3:1 capacities: {w:?}");
    assert!(
        aux[0][0] > 2.0 * aux[0][1],
        "constraint-1 loads ignore the 3:1 capacities: {aux:?}"
    );
}
