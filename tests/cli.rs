//! Integration tests for the `dlb` command-line tool.

use std::io::Write;
use std::process::Command;

fn dlb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dlb"))
}

fn write_toy_mtx(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("toy.mtx");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "%%MatrixMarket matrix coordinate pattern symmetric").unwrap();
    writeln!(f, "8 8 10").unwrap();
    for (u, v) in [(1, 2), (2, 3), (3, 4), (1, 4), (5, 6), (6, 7), (7, 8), (5, 8), (4, 5), (1, 8)]
    {
        writeln!(f, "{u} {v}").unwrap();
    }
    path
}

fn write_toy_hg(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("toy.hg");
    let mut f = std::fs::File::create(&path).unwrap();
    // 4 vertices, 2 nets, 5 pins; then per-vertex weight/size lines.
    writeln!(f, "4 2 5").unwrap();
    writeln!(f, "1.0 0 1 2").unwrap();
    writeln!(f, "2.0 2 3").unwrap();
    for _ in 0..4 {
        writeln!(f, "1 1").unwrap();
    }
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dlb-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn partition_mtx_roundtrip() {
    let dir = tmpdir("mtx");
    let input = write_toy_mtx(&dir);
    let out = dir.join("toy.part");
    let status = dlb()
        .args(["partition", "-k", "2", "--out"])
        .arg(&out)
        .arg(&input)
        .status()
        .unwrap();
    assert!(status.success());
    let part: Vec<usize> = std::fs::read_to_string(&out)
        .unwrap()
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(part.len(), 8);
    assert!(part.iter().all(|&p| p < 2));
    // The toy graph is two squares joined by two edges: balanced halves.
    let ones = part.iter().filter(|&&p| p == 1).count();
    assert_eq!(ones, 4, "toy graph should split 4-4: {part:?}");
}

#[test]
fn repartition_uses_old_partition() {
    let dir = tmpdir("repart");
    let input = write_toy_mtx(&dir);
    let old = dir.join("old.part");
    std::fs::write(&old, "0\n0\n0\n0\n1\n1\n1\n1\n").unwrap();
    let out = dir.join("new.part");
    let output = dlb()
        .args(["repartition", "-k", "2", "--alpha", "1", "--old"])
        .arg(&old)
        .arg("--out")
        .arg(&out)
        .arg(&input)
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let part: Vec<usize> = std::fs::read_to_string(&out)
        .unwrap()
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    // The old partition is already optimal: nothing should move.
    assert_eq!(part, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("migration 0"), "stderr: {stderr}");
}

#[test]
fn partition_hypergraph_input() {
    let dir = tmpdir("hg");
    let input = write_toy_hg(&dir);
    let output = dlb()
        .args(["partition", "-k", "2"])
        .arg(&input)
        .output()
        .unwrap();
    assert!(output.status.success());
    let part: Vec<usize> = String::from_utf8_lossy(&output.stdout)
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(part.len(), 4);
}

#[test]
fn rejects_bad_arguments() {
    // Missing -k.
    let status = dlb().args(["partition", "/nonexistent.mtx"]).status().unwrap();
    assert!(!status.success());
    // Unknown algorithm.
    let status = dlb()
        .args(["repartition", "-k", "2", "--algorithm", "magic", "x.mtx"])
        .status()
        .unwrap();
    assert!(!status.success());
    // Missing input file.
    let status = dlb().args(["partition", "-k", "2", "/nonexistent.mtx"]).status().unwrap();
    assert!(!status.success());
}

/// Runs `dlb` with `args` and asserts it exits with code 2 and prints a
/// message containing `needle` on stderr — validation must fire *before*
/// any driver panics.
fn assert_rejected(args: &[&str], needle: &str) {
    let output = dlb().args(args).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "args {args:?} should exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains(needle), "args {args:?}: stderr {stderr:?} lacks {needle:?}");
}

#[test]
fn rejects_invalid_k_up_front() {
    assert_rejected(&["partition", "-k", "0", "x.mtx"], "k must be at least 2");
    assert_rejected(&["partition", "-k", "1", "x.mtx"], "k must be at least 2");
    assert_rejected(&["partition", "-k", "two", "x.mtx"], "-k expects a valid value");
    assert_rejected(
        &["simulate", "-k", "1", "--workload", "amr"],
        "k must be at least 2",
    );
}

#[test]
fn rejects_invalid_ranks_and_threads_up_front() {
    assert_rejected(&["partition", "-k", "2", "--ranks", "0", "x.mtx"], "ranks");
    assert_rejected(
        &["partition", "-k", "2", "--ranks", "-3", "x.mtx"],
        "--ranks expects a valid value",
    );
    assert_rejected(
        &["partition", "-k", "2", "--threads", "many", "x.mtx"],
        "--threads expects a valid value",
    );
    assert_rejected(
        &["repartition", "-k", "2", "--epsilon", "-0.5", "--old", "p", "x.mtx"],
        "epsilon",
    );
}

#[test]
fn rejects_invalid_multi_constraint_flags_up_front() {
    assert_rejected(
        &["simulate", "-k", "2", "--workload", "amr", "--constraints", "0"],
        "--constraints must be at least 1",
    );
    // More --epsilon flags than declared constraints.
    assert_rejected(
        &[
            "simulate", "-k", "2", "--workload", "amr", "--constraints", "2", "--epsilon",
            "0.05", "--epsilon", "0.1", "--epsilon", "0.2",
        ],
        "--epsilon flags for",
    );
    // Multi-constraint runs need the AMR workload's two-constraint lowering.
    assert_rejected(
        &["simulate", "-k", "2", "--workload", "structure", "--constraints", "2"],
        "requires --workload amr",
    );
    assert_rejected(
        &["simulate", "-k", "2", "--workload", "amr", "--constraints", "3"],
        "exactly 2 constraints",
    );
    // File inputs carry scalar weights only.
    assert_rejected(
        &["partition", "-k", "2", "--constraints", "2", "x.mtx"],
        "file inputs are scalar",
    );
}

#[test]
fn rejects_distributed_flag_conflicts_up_front() {
    // Elastic resizes and fault recovery run on the replicated path;
    // combining them with owner-computes storage must exit 2 instead of
    // quietly running without the promised behavior.
    assert_rejected(
        &[
            "simulate", "-k", "2", "--workload", "structure", "--ranks", "2",
            "--distributed", "--world-plan", "42:join4@2",
        ],
        "--world-plan is incompatible with --distributed",
    );
    assert_rejected(
        &[
            "simulate", "-k", "2", "--workload", "structure", "--ranks", "2",
            "--distributed", "--fault-plan", "7:drop0.05",
        ],
        "--fault-plan is incompatible with --distributed",
    );
    // The distributed refiner has no auxiliary-feasibility repair.
    assert_rejected(
        &[
            "simulate", "-k", "2", "--workload", "amr", "--constraints", "2", "--ranks",
            "2", "--distributed",
        ],
        "--constraints > 1 is incompatible with --distributed",
    );
    // Already-covered serial-only check keeps firing with --distributed.
    assert_rejected(
        &[
            "simulate", "-k", "2", "--workload", "structure", "--distributed",
            "--incremental",
        ],
        "--incremental is serial-only",
    );
}

#[test]
fn rejects_simulate_only_flags_on_file_commands() {
    // Previously these parsed fine and were silently ignored.
    assert_rejected(
        &["partition", "-k", "2", "--world-plan", "42:join4@2", "x.mtx"],
        "--world-plan applies to simulate only",
    );
    assert_rejected(
        &["partition", "-k", "2", "--fault-plan", "7:rank0@1", "x.mtx"],
        "--fault-plan applies to simulate only",
    );
    assert_rejected(
        &["repartition", "-k", "2", "--old", "p", "--incremental", "x.mtx"],
        "--incremental applies to simulate only",
    );
    assert_rejected(
        &["partition", "-k", "2", "--workload", "amr", "x.mtx"],
        "--workload applies to simulate only",
    );
}

#[test]
fn simulate_two_constraint_amr_runs() {
    let output = dlb()
        .args([
            "simulate",
            "-k",
            "4",
            "--workload",
            "amr",
            "--epochs",
            "2",
            "--alpha",
            "10",
            "--constraints",
            "2",
            "--epsilon",
            "0.05",
            "--epsilon",
            "0.10",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("makespan"), "stdout: {stdout}");
}

#[test]
fn trace_flag_writes_chrome_json() {
    let dir = tmpdir("trace");
    let input = write_toy_mtx(&dir);
    let trace = dir.join("trace.json");
    let output = dlb()
        .args(["partition", "-k", "2", "--trace"])
        .arg(&trace)
        .arg(&input)
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("\"traceEvents\""), "not chrome trace JSON: {text}");
    // The partitioner's root span must be present when tracing is
    // compiled in (the default build).
    assert!(text.contains("partition"), "missing root span: {text}");
}

#[test]
fn simulate_runs_with_session_and_trace() {
    let dir = tmpdir("sim");
    let trace = dir.join("sim-trace.json");
    let output = dlb()
        .args([
            "simulate",
            "-k",
            "4",
            "--workload",
            "amr",
            "--epochs",
            "2",
            "--alpha",
            "10",
            "--trace",
        ])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("makespan"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("epoch"), "missing epoch spans: {text}");
}

#[test]
fn rejects_wrong_length_old_partition() {
    let dir = tmpdir("badold");
    let input = write_toy_mtx(&dir);
    let old = dir.join("short.part");
    std::fs::write(&old, "0\n1\n").unwrap();
    let status = dlb()
        .args(["repartition", "-k", "2", "--old"])
        .arg(&old)
        .arg(&input)
        .status()
        .unwrap();
    assert!(!status.success());
}
