//! Property-based tests of the fixed-vertex multilevel partitioner
//! (Section 4): for arbitrary hypergraphs and arbitrary fixed-vertex
//! constraints, the partitioner must (1) respect every constraint,
//! (2) produce a complete in-range assignment, and (3) stay deterministic
//! for a given seed.

use dlb::hypergraph::{Hypergraph, HypergraphBuilder};
use dlb::partitioner::{
    partition_hypergraph_fixed, Config, FixedAssignment, Scheme,
};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = (Hypergraph, usize, FixedAssignment, u64)> {
    (2usize..5, 8usize..60).prop_flat_map(|(k, n)| {
        let nets = prop::collection::vec(
            (prop::collection::vec(0..n, 2..5), 0.5f64..4.0),
            n / 2..2 * n,
        );
        let fixed = prop::collection::vec(prop::option::weighted(0.25, 0..k), n);
        let seed = any::<u64>();
        (Just(k), Just(n), nets, fixed, seed).prop_map(|(k, n, nets, fixed, seed)| {
            let mut b = HypergraphBuilder::new(n);
            for (pins, cost) in nets {
                b.add_net(cost, pins);
            }
            (b.build(), k, FixedAssignment::from_options(&fixed), seed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recursive bisection honors every fixed vertex and assigns every
    /// vertex to a valid part.
    #[test]
    fn rb_respects_fixed((h, k, fixed, seed) in arb_problem()) {
        let cfg = Config::seeded(seed);
        let r = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        prop_assert_eq!(r.part.len(), h.num_vertices());
        prop_assert!(r.part.iter().all(|&p| p < k));
        prop_assert!(fixed.is_respected_by(&r.part), "fixed constraint violated");
        // Reported cut matches a recomputation.
        let cut = dlb::hypergraph::metrics::cutsize_connectivity(&h, &r.part, k);
        prop_assert!((r.cut - cut).abs() < 1e-9);
    }

    /// Direct k-way honors the same contract.
    #[test]
    fn kway_respects_fixed((h, k, fixed, seed) in arb_problem()) {
        let mut cfg = Config::seeded(seed);
        cfg.scheme = Scheme::DirectKway;
        let r = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        prop_assert!(fixed.is_respected_by(&r.part));
        prop_assert!(r.part.iter().all(|&p| p < k));
    }

    /// Same seed ⇒ identical partition; the partitioner is a pure
    /// function of (hypergraph, k, fixed, config).
    #[test]
    fn deterministic((h, k, fixed, seed) in arb_problem()) {
        let cfg = Config::seeded(seed);
        let a = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        let b = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        prop_assert_eq!(a.part, b.part);
    }

    /// On unit-weight hypergraphs with no fixed vertices, balance holds
    /// within the configured tolerance plus integrality slack.
    #[test]
    fn balance_bound((h, k, _fixed, seed) in arb_problem()) {
        let cfg = Config::seeded(seed);
        let free = FixedAssignment::free(h.num_vertices());
        let r = partition_hypergraph_fixed(&h, k, &free, &cfg);
        let avg = h.num_vertices() as f64 / k as f64;
        // One vertex of slack per part on top of ε covers integrality on
        // small instances.
        let bound = (1.0 + cfg.epsilon) + 1.5 / avg;
        prop_assert!(r.imbalance <= bound + 1e-9,
            "imbalance {} > bound {bound} (n={}, k={k})", r.imbalance, h.num_vertices());
    }
}

mod refinement {
    use super::*;
    use dlb::hypergraph::metrics::cutsize_connectivity;
    use dlb::hypergraph::PartTargets;
    use dlb::partitioner::refine::refine;
    use dlb::partitioner::RefinementConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// FM refinement never increases the cut, never violates the
        /// caps it was given a feasible start under, and never moves a
        /// fixed vertex.
        #[test]
        fn refine_is_safe((h, k, fixed, seed) in arb_problem()) {
            // Feasible-ish start: round-robin by vertex id, fixed pins
            // honored.
            let n = h.num_vertices();
            let mut part: Vec<usize> = (0..n).map(|v| v % k).collect();
            for v in 0..n {
                if let Some(p) = fixed.get(v) {
                    part[v] = p;
                }
            }
            let before = cutsize_connectivity(&h, &part, k);
            let targets = PartTargets::uniform(h.total_vertex_weight(), k, 0.10);
            // Non-worsening is only guaranteed from a cap-feasible start;
            // otherwise the rebalance step rightly trades cut for balance.
            let start_weights = dlb::hypergraph::metrics::part_weights(&h, &part, k);
            let start_feasible = (0..k).all(|p| start_weights[p] <= targets.cap(p) + 1e-9);
            let mut rng = StdRng::seed_from_u64(seed);
            let snapshot = part.clone();
            refine(&h, &targets, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
            let after = cutsize_connectivity(&h, &part, k);
            if start_feasible {
                prop_assert!(after <= before + 1e-9, "refine worsened cut {before} -> {after}");
            }
            for v in 0..n {
                if fixed.is_fixed(v) {
                    prop_assert_eq!(part[v], snapshot[v], "fixed vertex {} moved", v);
                }
            }
        }
    }
}

/// Heavily fixed instances: when most vertices are pinned, the
/// partitioner must still terminate and satisfy all pins (the balance
/// constraint may be unsatisfiable — that is allowed).
#[test]
fn mostly_fixed_instances_terminate() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..10 {
        let n = 40;
        let k = 4;
        let mut b = HypergraphBuilder::new(n);
        for _ in 0..60 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_net(1.0, [u, v]);
            }
        }
        let h = b.build();
        let mut fixed = FixedAssignment::free(n);
        for v in 0..n {
            if rng.gen_bool(0.9) {
                fixed.fix(v, rng.gen_range(0..k));
            }
        }
        let r = partition_hypergraph_fixed(&h, k, &fixed, &Config::seeded(trial));
        assert!(fixed.is_respected_by(&r.part), "trial {trial}");
    }
}
