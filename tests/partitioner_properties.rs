//! Property-based tests of the fixed-vertex multilevel partitioner
//! (Section 4): for randomized hypergraphs and randomized fixed-vertex
//! constraints, the partitioner must (1) respect every constraint,
//! (2) produce a complete in-range assignment, and (3) stay deterministic
//! for a given seed.
//!
//! Cases are drawn from a seeded `StdRng` so every run exercises the
//! same instances (no external property-testing dependency is available
//! offline).

use dlb::hypergraph::{Hypergraph, HypergraphBuilder};
use dlb::partitioner::{partition_hypergraph_fixed, Config, FixedAssignment, Scheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Draws one random instance: a hypergraph on `n ∈ [8, 60)` vertices
/// with `[n/2, 2n)` nets of 2–4 pins each, `k ∈ [2, 5)`, an optional
/// fixed part for ~25% of vertices, and a partitioner seed.
fn random_problem(rng: &mut StdRng) -> (Hypergraph, usize, FixedAssignment, u64) {
    let k = rng.gen_range(2usize..5);
    let n = rng.gen_range(8usize..60);
    let num_nets = rng.gen_range(n / 2..2 * n);
    let mut b = HypergraphBuilder::new(n);
    for _ in 0..num_nets {
        let arity = rng.gen_range(2usize..5);
        let pins: Vec<usize> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
        let cost = rng.gen_range(0.5f64..4.0);
        b.add_net(cost, pins);
    }
    let fixed: Vec<Option<usize>> = (0..n)
        .map(|_| rng.gen_bool(0.25).then(|| rng.gen_range(0..k)))
        .collect();
    let seed = rng.gen::<u64>();
    (b.build(), k, FixedAssignment::from_options(&fixed), seed)
}

/// Recursive bisection honors every fixed vertex and assigns every
/// vertex to a valid part.
#[test]
fn rb_respects_fixed() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let (h, k, fixed, seed) = random_problem(&mut rng);
        let cfg = Config::seeded(seed);
        let r = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        assert_eq!(r.part.len(), h.num_vertices(), "case {case}");
        assert!(r.part.iter().all(|&p| p < k), "case {case}");
        assert!(
            fixed.is_respected_by(&r.part),
            "case {case}: fixed constraint violated"
        );
        // Reported cut matches a recomputation.
        let cut = dlb::hypergraph::metrics::cutsize_connectivity(&h, &r.part, k);
        assert!((r.cut - cut).abs() < 1e-9, "case {case}");
    }
}

/// Direct k-way honors the same contract.
#[test]
fn kway_respects_fixed() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let (h, k, fixed, seed) = random_problem(&mut rng);
        let mut cfg = Config::seeded(seed);
        cfg.scheme = Scheme::DirectKway;
        let r = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        assert!(fixed.is_respected_by(&r.part), "case {case}");
        assert!(r.part.iter().all(|&p| p < k), "case {case}");
    }
}

/// Same seed ⇒ identical partition; the partitioner is a pure function
/// of (hypergraph, k, fixed, config).
#[test]
fn deterministic() {
    let mut rng = StdRng::seed_from_u64(0xDE7);
    for case in 0..CASES {
        let (h, k, fixed, seed) = random_problem(&mut rng);
        let cfg = Config::seeded(seed);
        let a = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        let b = partition_hypergraph_fixed(&h, k, &fixed, &cfg);
        assert_eq!(a.part, b.part, "case {case}");
    }
}

/// On unit-weight hypergraphs with no fixed vertices, balance holds
/// within the configured tolerance plus integrality slack.
#[test]
fn balance_bound() {
    let mut rng = StdRng::seed_from_u64(0xBA1);
    for case in 0..CASES {
        let (h, k, _fixed, seed) = random_problem(&mut rng);
        let cfg = Config::seeded(seed);
        let free = FixedAssignment::free(h.num_vertices());
        let r = partition_hypergraph_fixed(&h, k, &free, &cfg);
        let avg = h.num_vertices() as f64 / k as f64;
        // One vertex of slack per part on top of ε covers integrality on
        // small instances.
        let bound = (1.0 + cfg.epsilon) + 1.5 / avg;
        assert!(
            r.imbalance <= bound + 1e-9,
            "case {case}: imbalance {} > bound {bound} (n={}, k={k})",
            r.imbalance,
            h.num_vertices()
        );
    }
}

mod refinement {
    use super::*;
    use dlb::hypergraph::metrics::cutsize_connectivity;
    use dlb::hypergraph::PartTargets;
    use dlb::partitioner::refine::refine;
    use dlb::partitioner::RefinementConfig;

    /// FM refinement never increases the cut, never violates the caps it
    /// was given a feasible start under, and never moves a fixed vertex.
    #[test]
    fn refine_is_safe() {
        let mut case_rng = StdRng::seed_from_u64(0x5AFE);
        for case in 0..CASES {
            let (h, k, fixed, seed) = random_problem(&mut case_rng);
            // Feasible-ish start: round-robin by vertex id, fixed pins
            // honored.
            let n = h.num_vertices();
            let mut part: Vec<usize> = (0..n).map(|v| v % k).collect();
            for (v, slot) in part.iter_mut().enumerate() {
                if let Some(p) = fixed.get(v) {
                    *slot = p;
                }
            }
            let before = cutsize_connectivity(&h, &part, k);
            let targets = PartTargets::uniform(h.total_vertex_weight(), k, 0.10);
            // Non-worsening is only guaranteed from a cap-feasible start;
            // otherwise the rebalance step rightly trades cut for balance.
            let start_weights = dlb::hypergraph::metrics::part_weights(&h, &part, k);
            let start_feasible = (0..k).all(|p| start_weights[p] <= targets.cap(p) + 1e-9);
            let mut rng = StdRng::seed_from_u64(seed);
            let snapshot = part.clone();
            refine(
                &h,
                &targets,
                &fixed,
                &mut part,
                &RefinementConfig::default(),
                &mut rng,
            );
            let after = cutsize_connectivity(&h, &part, k);
            if start_feasible {
                assert!(
                    after <= before + 1e-9,
                    "case {case}: refine worsened cut {before} -> {after}"
                );
            }
            for v in 0..n {
                if fixed.is_fixed(v) {
                    assert_eq!(
                        part[v], snapshot[v],
                        "case {case}: fixed vertex {v} moved"
                    );
                }
            }
        }
    }
}

/// Heavily fixed instances: when most vertices are pinned, the
/// partitioner must still terminate and satisfy all pins (the balance
/// constraint may be unsatisfiable — that is allowed).
#[test]
fn mostly_fixed_instances_terminate() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..10 {
        let n = 40;
        let k = 4;
        let mut b = HypergraphBuilder::new(n);
        for _ in 0..60 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_net(1.0, [u, v]);
            }
        }
        let h = b.build();
        let mut fixed = FixedAssignment::free(n);
        for v in 0..n {
            if rng.gen_bool(0.9) {
                fixed.fix(v, rng.gen_range(0..k));
            }
        }
        let r = partition_hypergraph_fixed(&h, k, &fixed, &Config::seeded(trial));
        assert!(fixed.is_respected_by(&r.part), "trial {trial}");
    }
}
