//! World membership: the bookkeeping of a rank set that changes size.
//!
//! Plans ([`crate::FaultPlan`], `dlb_core`'s `WorldPlan`) speak
//! *original* rank ids — stable names that survive however many ranks
//! have already died, left, or joined. Partitions live in the
//! *compacted* label space `0..k` of the ranks currently alive. This
//! type is the single source of truth for the mapping between the two:
//! a vector of original ids in current-label order, so
//! `members[label] = original id` and removal is exactly the
//! `p > dead → p - 1` compaction the recovery path has always used.

/// Live original rank ids, indexed by current (compacted) part label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldMembership {
    members: Vec<usize>,
}

impl WorldMembership {
    /// A fresh world of `k` ranks with original ids `0..k`.
    pub fn launch(k: usize) -> Self {
        WorldMembership { members: (0..k).collect() }
    }

    /// Number of ranks currently alive.
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// The live original ids in current-label order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether original rank `orig` is currently alive.
    pub fn is_live(&self, orig: usize) -> bool {
        self.members.contains(&orig)
    }

    /// Current compacted label of original rank `orig`, if alive.
    pub fn label_of(&self, orig: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == orig)
    }

    /// Removes original rank `orig` (failure or planned departure).
    /// Labels above it shift down by one — the recovery compaction.
    /// Returns the label it held.
    ///
    /// # Panics
    /// Panics if `orig` is not alive.
    pub fn remove(&mut self, orig: usize) -> usize {
        let label = self.label_of(orig).unwrap_or_else(|| {
            panic!("rank {orig} is not in the world {:?}", self.members)
        });
        self.members.remove(label);
        label
    }

    /// Adds original rank `orig` at the end of the label space (label
    /// `k`). Returns the new label.
    ///
    /// # Panics
    /// Panics if `orig` is already alive — a rank must leave (or fail)
    /// before it can rejoin.
    pub fn add(&mut self, orig: usize) -> usize {
        assert!(
            !self.is_live(orig),
            "rank {orig} is already in the world {:?}",
            self.members
        );
        self.members.push(orig);
        self.members.len() - 1
    }

    /// Applies one planned resize: every rank in `leaving` departs (all
    /// removals happen against the *pre-resize* labels, then compact in
    /// one pass), then every rank in `joining` arrives in the given
    /// order, taking the labels `k_after_leaves..`. Returns the
    /// pre-resize labels of the leavers, sorted ascending.
    ///
    /// # Panics
    /// Panics if a leaver is not alive, a joiner already is, or the
    /// resize would empty the world.
    pub fn resize(&mut self, leaving: &[usize], joining: &[usize]) -> Vec<usize> {
        let mut left_labels: Vec<usize> = leaving
            .iter()
            .map(|&orig| {
                self.label_of(orig).unwrap_or_else(|| {
                    panic!("departing rank {orig} is not in the world {:?}", self.members)
                })
            })
            .collect();
        left_labels.sort_unstable();
        left_labels.windows(2).for_each(|w| assert_ne!(w[0], w[1], "duplicate departure"));
        // Retain survivors in order (one-pass compaction), then append
        // the joiners.
        self.members.retain(|m| !leaving.contains(m));
        for &orig in joining {
            self.add(orig);
        }
        assert!(!self.members.is_empty(), "resize emptied the world");
        left_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_is_identity() {
        let w = WorldMembership::launch(4);
        assert_eq!(w.k(), 4);
        for r in 0..4 {
            assert_eq!(w.label_of(r), Some(r));
        }
        assert!(!w.is_live(4));
    }

    #[test]
    fn remove_compacts_labels() {
        let mut w = WorldMembership::launch(4);
        assert_eq!(w.remove(1), 1);
        assert_eq!(w.k(), 3);
        assert_eq!(w.label_of(0), Some(0));
        assert_eq!(w.label_of(2), Some(1));
        assert_eq!(w.label_of(3), Some(2));
        assert_eq!(w.label_of(1), None);
    }

    #[test]
    fn add_appends_and_rejoining_is_allowed_after_departure() {
        let mut w = WorldMembership::launch(2);
        assert_eq!(w.add(5), 2);
        assert_eq!(w.members(), &[0, 1, 5]);
        w.remove(5);
        assert_eq!(w.add(5), 2, "a departed rank may rejoin");
    }

    #[test]
    fn resize_reports_pre_resize_labels_sorted() {
        let mut w = WorldMembership::launch(4);
        let left = w.resize(&[3, 0], &[7, 4]);
        assert_eq!(left, vec![0, 3]);
        assert_eq!(w.members(), &[1, 2, 7, 4]);
        assert_eq!(w.label_of(7), Some(2));
    }

    #[test]
    #[should_panic(expected = "already in the world")]
    fn double_add_panics() {
        let mut w = WorldMembership::launch(2);
        w.add(1);
    }

    #[test]
    #[should_panic(expected = "not in the world")]
    fn removing_a_dead_rank_panics() {
        let mut w = WorldMembership::launch(2);
        w.remove(1);
        w.remove(1);
    }

    #[test]
    #[should_panic(expected = "emptied the world")]
    fn resize_to_zero_panics() {
        let mut w = WorldMembership::launch(2);
        w.resize(&[0, 1], &[]);
    }
}
