//! A distributed directory: global-id → owner lookups without any rank
//! holding the whole map.
//!
//! Zoltan ships exactly this service (`Zoltan_DD`): after data migrates,
//! a rank that needs to message the owner of global id `g` asks the
//! directory. Entries are sharded across ranks by `g % nranks`; updates
//! and lookups are personalized all-to-alls against the shard owners.

use std::collections::HashMap;

use crate::comm::Comm;

/// A sharded global-id → value directory. `V` is typically the owner
/// rank plus application bookkeeping.
pub struct DistDirectory<V> {
    shard: HashMap<usize, V>,
}

impl<V: Clone + Send + 'static> DistDirectory<V> {
    /// Creates an empty directory (collective: every rank participates).
    pub fn new() -> Self {
        DistDirectory { shard: HashMap::new() }
    }

    /// Which rank shards global id `g`.
    #[inline]
    pub fn shard_owner(g: usize, nranks: usize) -> usize {
        g % nranks
    }

    /// Number of entries stored on this rank's shard.
    pub fn local_len(&self) -> usize {
        self.shard.len()
    }

    /// Registers or overwrites entries (collective). Each rank passes
    /// the `(global_id, value)` pairs it knows; pairs travel to their
    /// shard owner. Later writers win ties deterministically by sending
    /// rank order.
    pub fn update(&mut self, comm: &mut Comm, entries: Vec<(usize, V)>) {
        let nranks = comm.size();
        let mut outgoing: Vec<Vec<(usize, V)>> = (0..nranks).map(|_| Vec::new()).collect();
        for (g, v) in entries {
            outgoing[Self::shard_owner(g, nranks)].push((g, v));
        }
        let incoming = comm.alltoall(outgoing);
        for batch in incoming {
            for (g, v) in batch {
                self.shard.insert(g, v);
            }
        }
    }

    /// Removes entries (collective).
    pub fn remove(&mut self, comm: &mut Comm, ids: Vec<usize>) {
        let nranks = comm.size();
        let mut outgoing: Vec<Vec<usize>> = (0..nranks).map(|_| Vec::new()).collect();
        for g in ids {
            outgoing[Self::shard_owner(g, nranks)].push(g);
        }
        let incoming = comm.alltoall(outgoing);
        for batch in incoming {
            for g in batch {
                self.shard.remove(&g);
            }
        }
    }

    /// Looks up many ids (collective). Returns, aligned with `ids`, the
    /// stored value or `None` for unknown ids.
    pub fn find(&self, comm: &mut Comm, ids: &[usize]) -> Vec<Option<V>> {
        let nranks = comm.size();
        // Send each id (tagged with its position) to its shard owner.
        let mut outgoing: Vec<Vec<(usize, usize)>> = (0..nranks).map(|_| Vec::new()).collect();
        for (pos, &g) in ids.iter().enumerate() {
            outgoing[Self::shard_owner(g, nranks)].push((pos, g));
        }
        let queries = comm.alltoall(outgoing);
        // Answer queries from the local shard.
        let answers: Vec<Vec<(usize, Option<V>)>> = queries
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(pos, g)| (pos, self.shard.get(&g).cloned()))
                    .collect()
            })
            .collect();
        let replies = comm.alltoall(answers);
        let mut out: Vec<Option<V>> = (0..ids.len()).map(|_| None).collect();
        for batch in replies {
            for (pos, v) in batch {
                out[pos] = v;
            }
        }
        out
    }
}

impl<V: Clone + Send + 'static> Default for DistDirectory<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn update_then_find_round_trips() {
        let results = run_spmd(4, |comm| {
            let mut dir: DistDirectory<usize> = DistDirectory::new();
            // Rank r registers ids 100r..100r+10 with value = owner rank.
            let entries: Vec<(usize, usize)> =
                (0..10).map(|i| (comm.rank() * 100 + i, comm.rank())).collect();
            dir.update(comm, entries);
            // Everyone looks up a stride of everyone's ids.
            let ids: Vec<usize> = (0..comm.size()).map(|r| r * 100 + comm.rank()).collect();
            dir.find(comm, &ids)
        });
        for (rank, found) in results.iter().enumerate() {
            for (r, v) in found.iter().enumerate() {
                assert_eq!(*v, Some(r), "rank {rank} looking up rank {r}'s id");
            }
        }
    }

    #[test]
    fn unknown_ids_return_none() {
        let results = run_spmd(3, |comm| {
            let mut dir: DistDirectory<u8> = DistDirectory::new();
            dir.update(comm, vec![(7, 1u8)]);
            dir.find(comm, &[7, 8, 9])
        });
        for found in results {
            assert_eq!(found, vec![Some(1), None, None]);
        }
    }

    #[test]
    fn remove_deletes_everywhere() {
        let results = run_spmd(2, |comm| {
            let mut dir: DistDirectory<u8> = DistDirectory::new();
            dir.update(comm, vec![(0, 1), (1, 2), (2, 3)]);
            dir.remove(comm, vec![1]);
            dir.find(comm, &[0, 1, 2])
        });
        for found in results {
            assert_eq!(found, vec![Some(1), None, Some(3)]);
        }
    }

    #[test]
    fn entries_shard_across_ranks() {
        let results = run_spmd(4, |comm| {
            let mut dir: DistDirectory<()> = DistDirectory::new();
            let entries: Vec<(usize, ())> = if comm.rank() == 0 {
                (0..40).map(|g| (g, ())).collect()
            } else {
                Vec::new()
            };
            dir.update(comm, entries);
            dir.local_len()
        });
        // 40 ids over 4 shards: 10 each.
        assert_eq!(results, vec![10; 4]);
    }

    /// `remove` at 1/2/4 ranks with the previously untested edge shapes:
    /// empty removal batches, self-sharded ids, all-remote ids, and ids
    /// that were never registered.
    #[test]
    fn remove_edge_cases_across_rank_counts() {
        for ranks in [1usize, 2, 4] {
            let results = run_spmd(ranks, |comm| {
                let mut dir: DistDirectory<usize> = DistDirectory::new();
                // Every rank registers one id sharded to itself and one
                // sharded to the next rank.
                let own = comm.rank();
                let remote = comm.size() + (comm.rank() + 1) % comm.size();
                dir.update(comm, vec![(own, own * 2), (remote, own * 3)]);

                // Empty removal on every rank is a harmless collective.
                dir.remove(comm, vec![]);
                let before = dir.find(comm, &[own, remote]);
                assert_eq!(before[0], Some(own * 2));

                // Removing an unknown id is a no-op.
                dir.remove(comm, vec![3 * comm.size() + comm.rank()]);

                // Self-sharded removal: id `own` lives on this rank.
                dir.remove(comm, vec![own]);
                // All-remote removal: id `remote` shards to the next rank
                // (or to self only in the 1-rank world).
                dir.remove(comm, vec![remote]);

                (dir.find(comm, &[own, remote]), dir.local_len())
            });
            for (rank, (found, len)) in results.iter().enumerate() {
                assert_eq!(*found, vec![None, None], "ranks={ranks} rank={rank}");
                assert_eq!(*len, 0, "ranks={ranks} rank={rank}");
            }
        }
    }

    #[test]
    fn later_update_wins() {
        let results = run_spmd(2, |comm| {
            let mut dir: DistDirectory<usize> = DistDirectory::new();
            dir.update(comm, vec![(5, comm.rank())]);
            // Both ranks wrote id 5; rank order makes rank 1 the winner.
            dir.find(comm, &[5])
        });
        for found in results {
            assert_eq!(found, vec![Some(1)]);
        }
    }
}
