//! The shared `SEED:SPEC` plan grammar.
//!
//! Both declarative schedules in this workspace — [`crate::FaultPlan`]
//! (what goes *wrong*: rank failures, message drop/delay) and
//! `dlb_core`'s `WorldPlan` (what is *planned*: rank arrivals and
//! departures) — speak the same surface syntax:
//!
//! ```text
//! SEED:directive(,directive)*
//! ```
//!
//! where `SEED` is a `u64` and each directive is a keyword immediately
//! followed by its operands (`rank1@2`, `drop0.01`, `join4@3`, …).
//! This module owns the grammar so the two plans parse and fail
//! identically: the same split of seed from spec, the same trimming and
//! empty-directive tolerance, and the same error wording — every error
//! names the offending directive and what was expected, so a CLI typo
//! in `--fault-plan` reads exactly like one in `--world-plan`.

/// Splits `s` into its seed and its (possibly empty) list of non-empty,
/// trimmed directives. `what` names the plan kind for error messages
/// (e.g. `"fault"`), and `example` shows a well-formed spec.
///
/// ```
/// use dlb_mpisim::spec::split_seed_spec;
/// let (seed, ds) = split_seed_spec("42:rank1@2, drop0.01", "fault", "42:rank1@2").unwrap();
/// assert_eq!(seed, 42);
/// assert_eq!(ds, vec!["rank1@2", "drop0.01"]);
/// assert!(split_seed_spec("nocolon", "fault", "42:rank1@2").is_err());
/// ```
pub fn split_seed_spec<'a>(
    s: &'a str,
    what: &str,
    example: &str,
) -> Result<(u64, Vec<&'a str>), String> {
    let (seed_str, spec) = s
        .split_once(':')
        .ok_or_else(|| format!("{what} plan '{s}' must be SEED:spec (e.g. {example})"))?;
    let seed: u64 = seed_str
        .trim()
        .parse()
        .map_err(|_| format!("{what} plan seed '{seed_str}' is not a u64"))?;
    let directives = spec.split(',').map(str::trim).filter(|d| !d.is_empty()).collect();
    Ok((seed, directives))
}

/// Parses the `<R>@<E>` operand shape shared by every rank-scheduling
/// directive (`rank1@2`, `join4@3`, `leave0@7`): a rank id and a
/// 1-based epoch. `directive` is the full directive text (for error
/// messages); `rest` is the text after the keyword.
///
/// ```
/// use dlb_mpisim::spec::parse_rank_at_epoch;
/// assert_eq!(parse_rank_at_epoch("join4@3", "4@3").unwrap(), (4, 3));
/// assert!(parse_rank_at_epoch("join4@0", "4@0").is_err(), "epochs are 1-based");
/// ```
pub fn parse_rank_at_epoch(directive: &str, rest: &str) -> Result<(usize, usize), String> {
    let (rank_str, epoch_str) = rest
        .split_once('@')
        .ok_or_else(|| format!("'{directive}': expected <R>@<E>"))?;
    let rank: usize = rank_str
        .parse()
        .map_err(|_| format!("'{directive}': rank '{rank_str}' is not a usize"))?;
    let epoch: usize = epoch_str
        .parse()
        .map_err(|_| format!("'{directive}': epoch '{epoch_str}' is not a usize"))?;
    if epoch == 0 {
        return Err(format!("'{directive}': epochs are 1-based"));
    }
    Ok((rank, epoch))
}

/// Parses a probability operand in `[0, 1]` (`drop0.01`, `delay0.5`).
pub fn parse_prob(directive: &str, p_str: &str) -> Result<f64, String> {
    let p: f64 = p_str
        .parse()
        .map_err(|_| format!("'{directive}': '{p_str}' is not a probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("'{directive}': probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// The uniform "unknown directive" error: names the directive and the
/// keywords the plan accepts.
pub fn unknown_directive(directive: &str, expected: &str) -> String {
    format!("unknown directive '{directive}' (expected {expected})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_seed_and_trims_directives() {
        let (seed, ds) = split_seed_spec("7: a ,, b ", "test", "7:a").unwrap();
        assert_eq!(seed, 7);
        assert_eq!(ds, vec!["a", "b"]);
    }

    #[test]
    fn empty_spec_yields_no_directives() {
        let (seed, ds) = split_seed_spec("99:", "test", "99:x").unwrap();
        assert_eq!(seed, 99);
        assert!(ds.is_empty());
    }

    #[test]
    fn split_errors_name_the_plan_kind() {
        let err = split_seed_spec("nocolon", "fault", "42:rank1@2").unwrap_err();
        assert!(err.contains("fault plan"), "{err}");
        assert!(err.contains("SEED:spec"), "{err}");
        let err = split_seed_spec("x:rank1@2", "world", "1:join1@2").unwrap_err();
        assert!(err.contains("world plan seed 'x'"), "{err}");
    }

    #[test]
    fn rank_at_epoch_parses_and_rejects() {
        assert_eq!(parse_rank_at_epoch("rank1@2", "1@2").unwrap(), (1, 2));
        for (directive, rest) in
            [("rank@2", "@2"), ("rank1@", "1@"), ("rank1@zero", "1@zero"), ("rank12", "12")]
        {
            let err = parse_rank_at_epoch(directive, rest).unwrap_err();
            assert!(err.contains(directive), "error must cite '{directive}': {err}");
        }
        let err = parse_rank_at_epoch("leave3@0", "3@0").unwrap_err();
        assert!(err.contains("1-based"), "{err}");
    }

    #[test]
    fn prob_parses_and_rejects_out_of_range() {
        assert_eq!(parse_prob("drop0.25", "0.25").unwrap(), 0.25);
        assert_eq!(parse_prob("drop1", "1").unwrap(), 1.0);
        for (directive, rest) in [("drop1.5", "1.5"), ("delay-0.1", "-0.1"), ("dropx", "x")] {
            let err = parse_prob(directive, rest).unwrap_err();
            assert!(err.contains(directive), "error must cite '{directive}': {err}");
        }
    }

    #[test]
    fn unknown_directive_wording_is_uniform() {
        let err = unknown_directive("explode", "rank<R>@<E>");
        assert_eq!(err, "unknown directive 'explode' (expected rank<R>@<E>)");
    }
}
