//! Unstructured communication plans — Zoltan's `Comm` package.
//!
//! Scientific applications exchange halo data along irregular patterns
//! that stay fixed for many iterations. A [`CommPlan`] is built once
//! from this rank's send list (destination per outgoing item), discovers
//! the matching receive counts collectively, and can then execute the
//! exchange repeatedly — or be [inverted](CommPlan::invert) to send
//! replies backwards along the same pattern.

use crate::comm::Comm;

/// A reusable irregular-exchange plan.
#[derive(Clone, Debug)]
pub struct CommPlan {
    /// Destination rank of each outgoing item, grouped: `sends[r]` is
    /// the number of items this rank sends to rank `r`.
    send_counts: Vec<usize>,
    /// `recv_counts[r]` = items this rank receives from rank `r`.
    recv_counts: Vec<usize>,
    /// Outgoing item order: positions into the user's item buffer,
    /// grouped by destination rank.
    send_order: Vec<usize>,
}

impl CommPlan {
    /// Builds a plan (collective). `destinations[i]` is the rank that
    /// item `i` of this rank's buffer must reach.
    ///
    /// # Panics
    /// Panics if a destination is out of range.
    pub fn build(comm: &mut Comm, destinations: &[usize]) -> CommPlan {
        let nranks = comm.size();
        let mut send_counts = vec![0usize; nranks];
        for &d in destinations {
            assert!(d < nranks, "destination rank {d} out of range");
            send_counts[d] += 1;
        }
        // Group item positions by destination.
        let mut offsets: Vec<usize> = Vec::with_capacity(nranks + 1);
        offsets.push(0);
        for r in 0..nranks {
            offsets.push(offsets[r] + send_counts[r]);
        }
        let mut cursor = offsets.clone();
        let mut send_order = vec![0usize; destinations.len()];
        for (i, &d) in destinations.iter().enumerate() {
            send_order[cursor[d]] = i;
            cursor[d] += 1;
        }
        // Discover receive counts: transpose the count matrix.
        let recv_counts = comm.alltoall(send_counts.clone());
        CommPlan { send_counts, recv_counts, send_order }
    }

    /// Total items this rank sends.
    pub fn num_sends(&self) -> usize {
        self.send_order.len()
    }

    /// Items sent to each destination rank (`send_counts()[r]` items go
    /// to rank `r`). Together with [`CommPlan::send_positions`] this
    /// exposes the per-destination grouping, letting callers address a
    /// *subset* of the planned items (a dirty-bitmap push) through a raw
    /// [`Comm::alltoallv`](crate::Comm::alltoallv) instead of
    /// re-executing the full plan.
    pub fn send_counts(&self) -> &[usize] {
        &self.send_counts
    }

    /// Items received from each source rank (`recv_counts()[r]` items
    /// arrive from rank `r`), in the same grouping that
    /// [`CommPlan::execute`] returns.
    pub fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }

    /// Total items this rank will receive.
    pub fn num_receives(&self) -> usize {
        self.recv_counts.iter().sum()
    }

    /// Positions into the user's item buffer in the order items travel:
    /// grouped by destination rank. Received replies along the
    /// [inverse](CommPlan::invert) plan arrive in this order, so
    /// `reply[j]` answers the item at original position
    /// `send_positions()[j]`.
    pub fn send_positions(&self) -> &[usize] {
        &self.send_order
    }

    /// Executes the exchange (collective): `items` must align with the
    /// `destinations` the plan was built from. Returns received items
    /// grouped by source rank order. Payload bytes are charged into
    /// [`crate::CommStats`] as `len * size_of::<T>()` item bytes at the
    /// send site (via [`Comm::alltoallv`]); receivers credit the same.
    ///
    /// # Panics
    /// Panics if `items` has the wrong length.
    pub fn execute<T: Clone + Send + 'static>(&self, comm: &mut Comm, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.send_order.len(), "item count mismatch");
        let nranks = comm.size();
        let mut outgoing: Vec<Vec<T>> = (0..nranks).map(|_| Vec::new()).collect();
        let mut pos = 0usize;
        for (r, &count) in self.send_counts.iter().enumerate() {
            outgoing[r].reserve(count);
            for _ in 0..count {
                outgoing[r].push(items[self.send_order[pos]].clone());
                pos += 1;
            }
        }
        let incoming = comm.alltoallv(outgoing);
        for (r, batch) in incoming.iter().enumerate() {
            assert_eq!(batch.len(), self.recv_counts[r], "plan receive count mismatch");
        }
        incoming.into_iter().flatten().collect()
    }

    /// The inverse plan: sends one reply item per received item back to
    /// its source (collective only in that both sides must call
    /// [`CommPlan::execute`] symmetrically; inversion itself is local).
    pub fn invert(&self) -> CommPlan {
        // Replies go back grouped by source rank, in received order.
        let nranks = self.recv_counts.len();
        let mut send_order = Vec::with_capacity(self.num_receives());
        let mut pos = 0usize;
        for r in 0..nranks {
            for _ in 0..self.recv_counts[r] {
                send_order.push(pos);
                pos += 1;
            }
        }
        CommPlan {
            send_counts: self.recv_counts.clone(),
            recv_counts: self.send_counts.clone(),
            send_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn plan_roundtrip_delivers_everything() {
        let results = run_spmd(3, |comm| {
            // Rank r sends item "r*10 + i" to rank i for i in 0..3.
            let destinations: Vec<usize> = (0..comm.size()).collect();
            let items: Vec<usize> = (0..comm.size()).map(|i| comm.rank() * 10 + i).collect();
            let plan = CommPlan::build(comm, &destinations);
            assert_eq!(plan.num_receives(), comm.size());
            plan.execute(comm, &items)
        });
        for (rank, received) in results.iter().enumerate() {
            let expected: Vec<usize> = (0..3).map(|r| r * 10 + rank).collect();
            assert_eq!(*received, expected);
        }
    }

    #[test]
    fn plan_is_reusable() {
        let results = run_spmd(2, |comm| {
            let destinations = vec![1 - comm.rank(), 1 - comm.rank()];
            let plan = CommPlan::build(comm, &destinations);
            let a = plan.execute(comm, &[comm.rank() * 2, comm.rank() * 2 + 1]);
            let b = plan.execute(comm, &[100 + comm.rank(), 200 + comm.rank()]);
            (a, b)
        });
        assert_eq!(results[0].0, vec![2, 3]);
        assert_eq!(results[0].1, vec![101, 201]);
        assert_eq!(results[1].0, vec![0, 1]);
        assert_eq!(results[1].1, vec![100, 200]);
    }

    #[test]
    fn inverse_plan_sends_replies_home() {
        let results = run_spmd(3, |comm| {
            // Scatter queries: rank r asks every rank (incl. itself).
            let destinations: Vec<usize> = (0..comm.size()).collect();
            let queries: Vec<usize> = vec![comm.rank(); comm.size()];
            let plan = CommPlan::build(comm, &destinations);
            let received = plan.execute(comm, &queries);
            // Reply with query * 10.
            let replies: Vec<usize> = received.iter().map(|q| q * 10).collect();
            let inverse = plan.invert();
            inverse.execute(comm, &replies)
        });
        for (rank, replies) in results.iter().enumerate() {
            assert_eq!(*replies, vec![rank * 10; 3], "rank {rank}");
        }
    }

    #[test]
    fn empty_and_skewed_patterns() {
        let results = run_spmd(4, |comm| {
            // Only rank 0 sends; everything goes to rank 3.
            let destinations: Vec<usize> = if comm.rank() == 0 { vec![3; 5] } else { vec![] };
            let items: Vec<u8> = if comm.rank() == 0 { vec![9; 5] } else { vec![] };
            let plan = CommPlan::build(comm, &destinations);
            plan.execute(comm, &items).len()
        });
        assert_eq!(results, vec![0, 0, 0, 5]);
    }

    #[test]
    fn grouped_send_order_preserves_items() {
        let results = run_spmd(2, |comm| {
            // Interleaved destinations exercise the grouping logic.
            let destinations = vec![1, 0, 1, 0, 1];
            let items = vec![10, 20, 30, 40, 50];
            let plan = CommPlan::build(comm, &destinations);
            let mut got = plan.execute(comm, &items);
            got.sort_unstable();
            got
        });
        // Each rank receives its own items (20,40 to rank 0 from both
        // ranks, etc.): rank 0 gets {20,40} twice, rank 1 {10,30,50} twice.
        assert_eq!(results[0], vec![20, 20, 40, 40]);
        assert_eq!(results[1], vec![10, 10, 30, 30, 50, 50]);
    }

    /// Query/reply round-trip through `invert`, re-aligned to the
    /// original item positions via `send_positions`. Exercised at 1, 2,
    /// and 4 ranks with interleaved destinations (incl. self-sends).
    #[test]
    fn invert_roundtrip_realigns_to_original_positions() {
        for ranks in [1usize, 2, 4] {
            let results = run_spmd(ranks, |comm| {
                // Item i asks rank (rank + i) % size to multiply it by 10;
                // destinations interleave self and remote ranks.
                let n_items = 2 * comm.size() + 1;
                let destinations: Vec<usize> =
                    (0..n_items).map(|i| (comm.rank() + i) % comm.size()).collect();
                let queries: Vec<u64> =
                    (0..n_items).map(|i| (comm.rank() * 100 + i) as u64).collect();
                let plan = CommPlan::build(comm, &destinations);
                let received = plan.execute(comm, &queries);
                let replies: Vec<u64> = received.iter().map(|q| q * 10).collect();
                let inverse = plan.invert();
                assert_eq!(inverse.num_sends(), plan.num_receives());
                assert_eq!(inverse.num_receives(), plan.num_sends());
                let back = inverse.execute(comm, &replies);
                // Replies arrive in send order; scatter them home.
                let mut answers = vec![0u64; n_items];
                for (j, &pos) in plan.send_positions().iter().enumerate() {
                    answers[pos] = back[j];
                }
                (queries, answers)
            });
            for (queries, answers) in results {
                let expected: Vec<u64> = queries.iter().map(|q| q * 10).collect();
                assert_eq!(answers, expected, "ranks={ranks}");
            }
        }
    }

    /// The incremental-halo idiom: the plan is built once for the full
    /// pattern, then a round pushes only a *dirty subset* of the planned
    /// items as `(within-group index, value)` pairs addressed through
    /// `send_counts`/`send_positions`, and receivers patch their
    /// full-exchange buffer in place using `recv_counts` offsets. The
    /// patched buffer must equal a full re-execution of the plan.
    #[test]
    fn dirty_subset_push_matches_full_reexecution() {
        for ranks in [1usize, 2, 4] {
            let results = run_spmd(ranks, |comm| {
                let n_items = 2 * comm.size() + 3;
                let destinations: Vec<usize> =
                    (0..n_items).map(|i| (comm.rank() + i) % comm.size()).collect();
                let mut items: Vec<u64> =
                    (0..n_items).map(|i| (comm.rank() * 100 + i) as u64).collect();
                let plan = CommPlan::build(comm, &destinations);
                let mut mirror = plan.execute(comm, &items); // initial full exchange

                // Mutate a sparse subset of the outgoing items.
                let mut dirty = vec![false; n_items];
                for i in (0..n_items).step_by(3) {
                    items[i] += 1000;
                    dirty[i] = true;
                }

                // Push only the dirty items, tagged with their index
                // within the destination group.
                let mut outgoing: Vec<Vec<(u32, u64)>> =
                    (0..comm.size()).map(|_| Vec::new()).collect();
                let mut pos = 0usize;
                for (r, &count) in plan.send_counts().iter().enumerate() {
                    for j in 0..count {
                        let item = plan.send_positions()[pos];
                        if dirty[item] {
                            outgoing[r].push((j as u32, items[item]));
                        }
                        pos += 1;
                    }
                }
                let mut offsets = vec![0usize; comm.size() + 1];
                for r in 0..comm.size() {
                    offsets[r + 1] = offsets[r] + plan.recv_counts()[r];
                }
                for (r, batch) in comm.alltoallv(outgoing).into_iter().enumerate() {
                    for (j, v) in batch {
                        mirror[offsets[r] + j as usize] = v;
                    }
                }
                let full = plan.execute(comm, &items);
                (mirror, full)
            });
            for (mirror, full) in results {
                assert_eq!(mirror, full, "ranks={ranks}");
            }
        }
    }

    /// A dirty push with nothing dirty is still collective-safe and
    /// leaves the mirror untouched.
    #[test]
    fn empty_dirty_subset_push_is_a_safe_noop() {
        let results = run_spmd(3, |comm| {
            let destinations: Vec<usize> = (0..comm.size()).collect();
            let items: Vec<u64> = vec![comm.rank() as u64; comm.size()];
            let plan = CommPlan::build(comm, &destinations);
            let mirror = plan.execute(comm, &items);
            let outgoing: Vec<Vec<(u32, u64)>> = (0..comm.size()).map(|_| Vec::new()).collect();
            let received: usize = comm.alltoallv(outgoing).into_iter().map(|b| b.len()).sum();
            (mirror.clone(), received, mirror)
        });
        for (before, received, after) in results {
            assert_eq!(received, 0);
            assert_eq!(before, after);
        }
    }

    /// `invert` on degenerate plans: empty everywhere, pure self-sends,
    /// and all-remote fan-in, at 1/2/4 ranks.
    #[test]
    fn invert_handles_empty_self_and_all_remote_plans() {
        for ranks in [1usize, 2, 4] {
            // Empty plan: no rank sends anything.
            let results = run_spmd(ranks, |comm| {
                let plan = CommPlan::build(comm, &[]);
                let inverse = plan.invert();
                let out = inverse.execute(comm, &Vec::<u8>::new());
                (plan.num_receives(), inverse.num_sends(), out.len())
            });
            assert_eq!(results, vec![(0, 0, 0); ranks]);

            // Self-sends only: round-trip stays rank-local.
            let results = run_spmd(ranks, |comm| {
                let destinations = vec![comm.rank(); 3];
                let items: Vec<usize> = (0..3).map(|i| comm.rank() * 10 + i).collect();
                let plan = CommPlan::build(comm, &destinations);
                let received = plan.execute(comm, &items);
                plan.invert().execute(comm, &received)
            });
            for (rank, got) in results.iter().enumerate() {
                let expected: Vec<usize> = (0..3).map(|i| rank * 10 + i).collect();
                assert_eq!(*got, expected, "ranks={ranks}");
            }

            // All-remote: every item goes to the next rank; replies must
            // come all the way back around.
            let results = run_spmd(ranks, |comm| {
                let next = (comm.rank() + 1) % comm.size();
                let destinations = vec![next; 4];
                let items = vec![comm.rank() as u32; 4];
                let plan = CommPlan::build(comm, &destinations);
                let received = plan.execute(comm, &items);
                let replies: Vec<u32> = received.iter().map(|v| v + 1).collect();
                plan.invert().execute(comm, &replies)
            });
            for (rank, got) in results.iter().enumerate() {
                assert_eq!(*got, vec![rank as u32 + 1; 4], "ranks={ranks}");
            }
        }
    }
}
