//! Block distribution of a global index space across ranks.
//!
//! The parallel partitioner distributes vertex *ownership* by contiguous
//! blocks (a 1D distribution; see DESIGN.md §4 for why this simplification
//! of Zoltan's 2D layout preserves the paper's algorithmic behaviour).

/// A contiguous block distribution of `n` items over `p` ranks.
///
/// The first `n % p` ranks own one extra item, so block sizes differ by at
/// most one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    p: usize,
}

impl BlockDist {
    /// Creates a distribution of `n` items over `p > 0` ranks.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        BlockDist { n, p }
    }

    /// Total number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the index space is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// The half-open index range owned by `rank`.
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        assert!(rank < self.p, "rank out of range");
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        start..start + len
    }

    /// Number of items owned by `rank`.
    pub fn count(&self, rank: usize) -> usize {
        self.range(rank).len()
    }

    /// The rank that owns global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "index out of range");
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let boundary = extra * (base + 1);
        if i < boundary {
            i / (base + 1)
        } else {
            extra + (i - boundary) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_index_space() {
        for n in [0usize, 1, 7, 10, 64, 100] {
            for p in [1usize, 2, 3, 7, 16] {
                let d = BlockDist::new(n, p);
                let mut next = 0;
                for r in 0..p {
                    let range = d.range(r);
                    assert_eq!(range.start, next, "n={n} p={p} r={r}");
                    next = range.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn owner_agrees_with_range() {
        for n in [1usize, 9, 31, 100] {
            for p in [1usize, 2, 5, 8] {
                let d = BlockDist::new(n, p);
                for i in 0..n {
                    let r = d.owner(i);
                    assert!(d.range(r).contains(&i), "n={n} p={p} i={i} r={r}");
                }
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let d = BlockDist::new(10, 4);
        let counts: Vec<usize> = (0..4).map(|r| d.count(r)).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn more_ranks_than_items() {
        let d = BlockDist::new(2, 5);
        assert_eq!(d.count(0), 1);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.count(4), 0);
        assert_eq!(d.owner(1), 1);
    }
}
