//! Point-to-point messaging and collectives for one simulated rank.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use std::sync::mpsc::{Receiver, Sender};

/// How long a blocking receive waits before declaring the program
/// deadlocked. Simulated ranks share one machine, so any legitimate
/// message arrives quickly; a long silence means mismatched send/recv
/// calls, and panicking with context beats hanging the test suite.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

pub(crate) struct Envelope {
    pub from: usize,
    pub tag: u64,
    pub payload: Box<dyn Any + Send>,
}

/// Message counters for one rank, useful for asserting communication
/// patterns in tests and for reporting experiment statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their internal
    /// messages).
    pub messages_sent: u64,
    /// Point-to-point messages received.
    pub messages_received: u64,
    /// Payload bytes sent. Every message contributes the shallow size of
    /// its payload type; byte-aware call sites ([`Comm::alltoallv`],
    /// [`crate::CommPlan::execute`]) additionally tally the per-item
    /// bytes their element type actually carries.
    pub bytes_sent: u64,
    /// Payload bytes received (same accounting as `bytes_sent`).
    pub bytes_received: u64,
}

/// The communicator handle owned by one simulated rank.
///
/// Mirrors the subset of MPI that the parallel partitioners need. All
/// collectives must be called by every rank in the same order (the usual
/// SPMD contract); an internal sequence number keeps consecutive
/// collectives from stealing each other's messages.
pub struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    stash: HashMap<(usize, u64), VecDeque<Box<dyn Any + Send>>>,
    coll_seq: u64,
    stats: CommStats,
}

/// Tags at or above this value are reserved for collectives.
const COLL_TAG_BASE: u64 = 1 << 48;

impl Comm {
    pub(crate) fn new(rank: usize, txs: Vec<Sender<Envelope>>, rx: Receiver<Envelope>) -> Self {
        Comm {
            rank,
            size: txs.len(),
            txs,
            rx,
            stash: HashMap::new(),
            coll_seq: 0,
            stats: CommStats::default(),
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Message counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `value` to rank `to` with a user `tag` (< 2^48).
    ///
    /// Non-blocking: the channel is unbounded, matching MPI's buffered
    /// eager protocol for small messages.
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T) {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        self.send_raw(to, tag, value);
    }

    fn send_raw<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T) {
        assert!(to < self.size, "destination rank {to} out of range");
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += std::mem::size_of::<T>() as u64;
        self.txs[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("peer rank hung up");
    }

    /// Receives a `T` sent by rank `from` with `tag`, blocking until it
    /// arrives. Panics (deadlock guard) after a long timeout or if the
    /// message has a different payload type.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        self.recv_raw(from, tag)
    }

    fn recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        let key = (from, tag);
        loop {
            if let Some(queue) = self.stash.get_mut(&key) {
                if let Some(payload) = queue.pop_front() {
                    self.stats.messages_received += 1;
                    self.stats.bytes_received += std::mem::size_of::<T>() as u64;
                    return *payload.downcast::<T>().unwrap_or_else(|_| {
                        panic!(
                            "rank {}: message from {from} tag {tag} has unexpected payload type",
                            self.rank
                        )
                    });
                }
            }
            let env = self.rx.recv_timeout(RECV_TIMEOUT).unwrap_or_else(|_| {
                panic!(
                    "rank {}: deadlock waiting for message from {from} tag {tag}",
                    self.rank
                )
            });
            self.stash
                .entry((env.from, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }

    fn next_coll_tag(&mut self) -> u64 {
        self.coll_seq += 1;
        COLL_TAG_BASE + self.coll_seq
    }

    /// Synchronizes all ranks (flat gather-to-0 then release).
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            for from in 1..self.size {
                let () = self.recv_raw(from, tag);
            }
            for to in 1..self.size {
                self.send_raw(to, tag, ());
            }
        } else {
            self.send_raw(0, tag, ());
            let () = self.recv_raw(0, tag);
        }
    }

    /// Broadcasts `value` from `root` to all ranks. Non-root ranks pass
    /// their (ignored) local value too, keeping the call SPMD-symmetric.
    pub fn broadcast<T: Clone + Send + 'static>(&mut self, root: usize, value: T) -> T {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            for to in 0..self.size {
                if to != root {
                    self.send_raw(to, tag, value.clone());
                }
            }
            value
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Gathers one value per rank at `root`; returns `Some(values)` (rank
    /// order) on the root and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for from in 0..self.size {
                if from != root {
                    out[from] = Some(self.recv_raw(from, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// Gathers one value per rank on every rank (gather + broadcast).
    pub fn allgather<T: Clone + Send + 'static>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered.unwrap_or_default())
    }

    /// Reduces one value per rank at `root` with associative `op`;
    /// returns `Some(result)` on the root.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.gather(root, value)
            .map(|vals| vals.into_iter().reduce(&op).expect("world is non-empty"))
    }

    /// All-reduce: every rank receives `op` folded over all ranks' values
    /// in rank order.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced).expect("root reduced")
    }

    /// Element-wise all-reduce over equally sized vectors.
    ///
    /// # Panics
    /// Panics if ranks contribute vectors of different lengths.
    pub fn allreduce_vec<T, F>(&mut self, value: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.allreduce(value, |a, b| {
            assert_eq!(a.len(), b.len(), "allreduce_vec length mismatch");
            a.iter().zip(&b).map(|(x, y)| op(x, y)).collect()
        })
    }

    /// Sum all-reduce for `f64`.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Inclusive prefix scan: rank `r` receives `op` folded over ranks
    /// `0..=r`.
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(value);
        all.into_iter()
            .take(self.rank + 1)
            .reduce(&op)
            .expect("scan includes own value")
    }

    /// Personalized all-to-all: `outgoing[r]` is delivered to rank `r`;
    /// the return value holds one entry per source rank (rank order).
    pub fn alltoall<T: Send + 'static>(&mut self, outgoing: Vec<T>) -> Vec<T> {
        assert_eq!(outgoing.len(), self.size, "one payload per destination rank");
        let tag = self.next_coll_tag();
        let mut incoming: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        for (to, value) in outgoing.into_iter().enumerate() {
            if to == self.rank {
                incoming[to] = Some(value);
            } else {
                self.send_raw(to, tag, value);
            }
        }
        for from in 0..self.size {
            if from != self.rank {
                incoming[from] = Some(self.recv_raw(from, tag));
            }
        }
        incoming.into_iter().map(Option::unwrap).collect()
    }

    /// Variable-count personalized all-to-all (MPI `Alltoallv`):
    /// `outgoing[r]` is a batch of `T` items delivered to rank `r`.
    ///
    /// Unlike routing a `Vec<Vec<T>>` through [`Comm::alltoall`] (which
    /// can only account the shallow size of each `Vec` header), this
    /// helper tallies the actual `len * size_of::<T>()` payload bytes of
    /// every off-rank batch into [`CommStats`]. Self-delivery is free.
    pub fn alltoallv<T: Send + 'static>(&mut self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(outgoing.len(), self.size, "one batch per destination rank");
        let item = std::mem::size_of::<T>() as u64;
        let sent_items: usize = outgoing
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != self.rank)
            .map(|(_, batch)| batch.len())
            .sum();
        let incoming = self.alltoall(outgoing);
        let recv_items: usize = incoming
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != self.rank)
            .map(|(_, batch)| batch.len())
            .sum();
        self.tally_payload_bytes(sent_items as u64 * item, recv_items as u64 * item);
        incoming
    }

    /// Adds deep payload bytes that a typed call site measured itself
    /// (e.g. [`crate::CommPlan::execute`] knows `items * size_of::<T>()`
    /// while the underlying channel only sees boxed `Vec` headers).
    pub fn tally_payload_bytes(&mut self, sent: u64, received: u64) {
        self.stats.bytes_sent += sent;
        self.stats.bytes_received += received;
    }
}

#[cfg(test)]
mod tests {
    use crate::run_spmd;

    #[test]
    fn point_to_point_ring() {
        let results = run_spmd(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank());
            comm.recv::<usize>(prev, 7)
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first".to_string());
                comm.send(1, 2, "second".to_string());
                String::new()
            } else {
                // Receive tag 2 before tag 1; tag-1 message must be stashed.
                let b = comm.recv::<String>(0, 2);
                let a = comm.recv::<String>(0, 1);
                format!("{a} {b}")
            }
        });
        assert_eq!(results[1], "first second");
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..3 {
            let results = run_spmd(3, move |comm| {
                let v = if comm.rank() == root { 42u32 } else { 0 };
                comm.broadcast(root, v)
            });
            assert_eq!(results, vec![42; 3]);
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = run_spmd(4, |comm| comm.gather(2, comm.rank() * 10));
        assert_eq!(results[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[0], None);
    }

    #[test]
    fn allgather_everywhere() {
        let results = run_spmd(3, |comm| comm.allgather(comm.rank() as i64 - 1));
        for r in results {
            assert_eq!(r, vec![-1, 0, 1]);
        }
    }

    #[test]
    fn allreduce_max() {
        let results = run_spmd(5, |comm| comm.allreduce(comm.rank(), |a, b| a.max(b)));
        assert_eq!(results, vec![4; 5]);
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let results = run_spmd(3, |comm| {
            let v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_vec(v, |a, b| a + b)
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn scan_is_inclusive_prefix() {
        let results = run_spmd(4, |comm| comm.scan(1u64, |a, b| a + b));
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn alltoall_transposes() {
        let results = run_spmd(3, |comm| {
            let outgoing: Vec<String> =
                (0..comm.size()).map(|to| format!("{}->{}", comm.rank(), to)).collect();
            comm.alltoall(outgoing)
        });
        assert_eq!(results[1], vec!["0->1", "1->1", "2->1"]);
        assert_eq!(results[2], vec!["0->2", "1->2", "2->2"]);
    }

    #[test]
    fn barrier_completes() {
        let results = run_spmd(6, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn collectives_do_not_cross_talk() {
        // Two different collectives back to back with the same shape must
        // not steal each other's messages.
        let results = run_spmd(4, |comm| {
            let a = comm.allreduce(1u64, |x, y| x + y);
            let b = comm.allreduce(2u64, |x, y| x + y);
            (a, b)
        });
        for (a, b) in results {
            assert_eq!((a, b), (4, 8));
        }
    }

    #[test]
    fn stats_count_messages() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 5u8);
            } else {
                let _ = comm.recv::<u8>(0, 3);
            }
            comm.stats()
        });
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[1].messages_received, 1);
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 5u64);
            } else {
                let _ = comm.recv::<u64>(0, 3);
            }
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 8);
        assert_eq!(results[1].bytes_received, 8);
    }

    #[test]
    fn alltoallv_counts_item_bytes() {
        let results = run_spmd(2, |comm| {
            // Rank r sends r+1 items to the peer and keeps 10 for itself.
            let peer = 1 - comm.rank();
            let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
            outgoing[peer] = vec![7u32; comm.rank() + 1];
            outgoing[comm.rank()] = vec![9u32; 10];
            let incoming = comm.alltoallv(outgoing);
            (incoming[peer].len(), comm.stats())
        });
        // Self-delivered items cost nothing; off-rank item bytes counted
        // on top of the shallow Vec header from the channel layer.
        let header = std::mem::size_of::<Vec<u32>>() as u64;
        assert_eq!(results[0].0, 2);
        assert_eq!(results[0].1.bytes_sent, header + 4);
        assert_eq!(results[0].1.bytes_received, header + 8);
        assert_eq!(results[1].0, 1);
        assert_eq!(results[1].1.bytes_sent, header + 8);
        assert_eq!(results[1].1.bytes_received, header + 4);
    }

    #[test]
    fn single_rank_world() {
        let results = run_spmd(1, |comm| {
            comm.barrier();
            let v = comm.allgather(9usize);
            let s = comm.allreduce_sum(2.5);
            (v, s)
        });
        assert_eq!(results[0], (vec![9], 2.5));
    }
}
