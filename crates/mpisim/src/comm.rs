//! Point-to-point messaging and collectives for one simulated rank.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

use crate::fault::FaultState;

/// How long a blocking receive waits before declaring the program
/// deadlocked. Simulated ranks share one machine, so any legitimate
/// message arrives quickly; a long silence means mismatched send/recv
/// calls, and failing with context beats hanging the test suite.
/// Override per rank with [`Comm::set_recv_timeout`].
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Bounded retransmit budget when an installed fault plan drops
/// messages: the sender re-offers the payload up to this many times
/// before giving up with [`CommError::DropExhausted`].
const MAX_SEND_ATTEMPTS: u32 = 8;

/// Cap for the receive-side polling backoff used while a fault plan is
/// installed (injected delays make short silences normal).
const MAX_RECV_BACKOFF: Duration = Duration::from_millis(10);

pub(crate) struct Envelope {
    pub from: usize,
    pub tag: u64,
    /// Payload bytes as charged at the send site. Carrying the size on
    /// the message is the accounting hook that keeps both sides of
    /// [`CommStats`] in the same units: the receiver credits exactly
    /// what the sender debited.
    pub bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

/// Why a fallible point-to-point operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the receive timeout — with
    /// well-formed SPMD programs this means a mismatched send/recv pair
    /// (a deadlock), or a peer that died without sending.
    Timeout {
        /// The receiving rank.
        rank: usize,
        /// The rank the message was expected from.
        from: usize,
        /// The expected tag.
        tag: u64,
    },
    /// The peer's channel endpoint is gone (its thread exited).
    PeerDead {
        /// The rank that observed the dead peer.
        rank: usize,
        /// The dead peer.
        peer: usize,
    },
    /// A matching message arrived but its payload had a different type.
    /// The message is consumed.
    TypeMismatch {
        /// The receiving rank.
        rank: usize,
        /// The sender.
        from: usize,
        /// The tag.
        tag: u64,
    },
    /// An installed fault plan dropped the message on every attempt of
    /// the bounded retransmit loop.
    DropExhausted {
        /// The sending rank.
        rank: usize,
        /// The destination rank.
        to: usize,
        /// The tag.
        tag: u64,
        /// How many transmissions were attempted (and dropped).
        attempts: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CommError::Timeout { rank, from, tag } => write!(
                f,
                "rank {rank}: deadlock waiting for message from {from} tag {tag}"
            ),
            CommError::PeerDead { rank, peer } => {
                write!(f, "rank {rank}: peer rank hung up (rank {peer})")
            }
            CommError::TypeMismatch { rank, from, tag } => write!(
                f,
                "rank {rank}: message from {from} tag {tag} has unexpected payload type"
            ),
            CommError::DropExhausted { rank, to, tag, attempts } => write!(
                f,
                "rank {rank}: fault injection dropped message to {to} tag {tag} on all {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Message counters for one rank, useful for asserting communication
/// patterns in tests and for reporting experiment statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their internal
    /// messages; injected drops count each retransmission).
    pub messages_sent: u64,
    /// Point-to-point messages received.
    pub messages_received: u64,
    /// Payload bytes sent, measured once at the send site and carried
    /// on the message: the shallow `size_of::<T>()` for plain
    /// point-to-point messages and collectives, or the deep
    /// `len * size_of::<T>()` item bytes for batch calls
    /// ([`Comm::alltoallv`] and [`crate::CommPlan::execute`] on top of
    /// it). One unit system end to end — the receive side credits
    /// exactly the bytes the sender charged.
    pub bytes_sent: u64,
    /// Payload bytes received (same accounting as `bytes_sent`).
    pub bytes_received: u64,
}

/// Out-of-order messages parked until a matching receive: keyed by
/// (source, tag), each entry a queue of (payload bytes, payload).
type Stash = HashMap<(usize, u64), VecDeque<(u64, Box<dyn Any + Send>)>>;

/// The communicator handle owned by one simulated rank.
///
/// Mirrors the subset of MPI that the parallel partitioners need. All
/// collectives must be called by every rank in the same order (the usual
/// SPMD contract); an internal sequence number keeps consecutive
/// collectives from stealing each other's messages.
pub struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    stash: Stash,
    coll_seq: u64,
    stats: CommStats,
    recv_timeout: Duration,
    fault: Option<FaultState>,
}

/// Tags at or above this value are reserved for collectives.
const COLL_TAG_BASE: u64 = 1 << 48;

impl Comm {
    pub(crate) fn new(rank: usize, txs: Vec<Sender<Envelope>>, rx: Receiver<Envelope>) -> Self {
        Comm {
            rank,
            size: txs.len(),
            txs,
            rx,
            stash: HashMap::new(),
            coll_seq: 0,
            stats: CommStats::default(),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            fault: None,
        }
    }

    /// Installs per-rank message-fault state drawn from a
    /// [`crate::FaultPlan`] (done by the world launcher).
    pub(crate) fn install_fault_state(&mut self, state: FaultState) {
        self.fault = Some(state);
    }

    /// Overrides the blocking-receive timeout for this rank. Mainly for
    /// tests and fault-injection scenarios where waiting the full
    /// deadlock-guard duration would be pointless.
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Message counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `value` to rank `to` with a user `tag` (< 2^48).
    ///
    /// Non-blocking: the channel is unbounded, matching MPI's buffered
    /// eager protocol for small messages.
    ///
    /// # Panics
    /// Panics if the send fails (see [`Comm::try_send`] for the
    /// fallible variant).
    pub fn send<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T) {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        self.send_raw(to, tag, value);
    }

    /// Fallible [`Comm::send`]: returns a [`CommError`] when the peer is
    /// dead or an injected fault drops the message past the bounded
    /// retransmit budget, instead of panicking.
    pub fn try_send<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        value: T,
    ) -> Result<(), CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        let bytes = std::mem::size_of::<T>() as u64;
        self.try_send_raw_sized(to, tag, value, bytes)
    }

    fn send_raw<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T) {
        let bytes = std::mem::size_of::<T>() as u64;
        self.send_raw_sized(to, tag, value, bytes);
    }

    fn send_raw_sized<T: Send + 'static>(&mut self, to: usize, tag: u64, value: T, bytes: u64) {
        if let Err(e) = self.try_send_raw_sized(to, tag, value, bytes) {
            panic!("{e}");
        }
    }

    /// The single send path. `bytes` is the payload size charged to
    /// [`CommStats`] and carried on the envelope; plain sends pass the
    /// shallow `size_of::<T>()`, batch calls pass deep item bytes.
    fn try_send_raw_sized<T: Send + 'static>(
        &mut self,
        to: usize,
        tag: u64,
        value: T,
        bytes: u64,
    ) -> Result<(), CommError> {
        assert!(to < self.size, "destination rank {to} out of range");
        // Draw all fault decisions for this send up front from the
        // deterministic per-rank stream: one delay roll, then drop rolls
        // until one transmission survives or the budget is exhausted.
        let mut delay = None;
        let mut drops: u32 = 0;
        if let Some(fault) = self.fault.as_mut() {
            if fault.should_delay() {
                delay = Some(fault.delay());
            }
            while drops < MAX_SEND_ATTEMPTS && fault.should_drop() {
                drops += 1;
            }
        }
        if let Some(d) = delay {
            dlb_trace::count(dlb_trace::Counter::FaultsInjected, 1);
            std::thread::sleep(d);
        }
        if drops > 0 {
            dlb_trace::count(dlb_trace::Counter::FaultsInjected, drops as u64);
            // Dropped transmissions still consumed the wire.
            self.stats.messages_sent += drops as u64;
            self.stats.bytes_sent += drops as u64 * bytes;
            if drops >= MAX_SEND_ATTEMPTS {
                return Err(CommError::DropExhausted { rank: self.rank, to, tag, attempts: drops });
            }
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes;
        self.txs[to]
            .send(Envelope { from: self.rank, tag, bytes, payload: Box::new(value) })
            .map_err(|_| CommError::PeerDead { rank: self.rank, peer: to })
    }

    /// Receives a `T` sent by rank `from` with `tag`, blocking until it
    /// arrives. Panics (deadlock guard) after the receive timeout or if
    /// the message has a different payload type.
    pub fn recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        self.recv_raw(from, tag)
    }

    /// Fallible [`Comm::recv`]: returns a [`CommError`] on timeout, dead
    /// peer, or payload type mismatch instead of panicking.
    pub fn try_recv<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Result<T, CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^48");
        self.try_recv_raw(from, tag)
    }

    fn recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> T {
        self.try_recv_raw(from, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_recv_raw<T: Send + 'static>(&mut self, from: usize, tag: u64) -> Result<T, CommError> {
        let key = (from, tag);
        let deadline = Instant::now() + self.recv_timeout;
        // Under fault injection, delayed messages make short silences
        // normal: poll with exponential backoff up to the deadline
        // rather than trusting one long block.
        let mut backoff = Duration::from_micros(100);
        loop {
            if let Some(queue) = self.stash.get_mut(&key) {
                if let Some((bytes, payload)) = queue.pop_front() {
                    self.stats.messages_received += 1;
                    self.stats.bytes_received += bytes;
                    return payload
                        .downcast::<T>()
                        .map(|b| *b)
                        .map_err(|_| CommError::TypeMismatch { rank: self.rank, from, tag });
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { rank: self.rank, from, tag });
            }
            let wait =
                if self.fault.is_some() { backoff.min(deadline - now) } else { deadline - now };
            match self.rx.recv_timeout(wait) {
                Ok(env) => {
                    self.stash
                        .entry((env.from, env.tag))
                        .or_default()
                        .push_back((env.bytes, env.payload));
                }
                Err(RecvTimeoutError::Timeout) => {
                    backoff = (backoff * 2).min(MAX_RECV_BACKOFF);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerDead { rank: self.rank, peer: from });
                }
            }
        }
    }

    fn next_coll_tag(&mut self) -> u64 {
        self.coll_seq += 1;
        COLL_TAG_BASE + self.coll_seq
    }

    /// Synchronizes all ranks (flat gather-to-0 then release).
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            for from in 1..self.size {
                let () = self.recv_raw(from, tag);
            }
            for to in 1..self.size {
                self.send_raw(to, tag, ());
            }
        } else {
            self.send_raw(0, tag, ());
            let () = self.recv_raw(0, tag);
        }
    }

    /// Broadcasts `value` from `root` to all ranks. Non-root ranks pass
    /// their (ignored) local value too, keeping the call SPMD-symmetric.
    pub fn broadcast<T: Clone + Send + 'static>(&mut self, root: usize, value: T) -> T {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            for to in 0..self.size {
                if to != root {
                    self.send_raw(to, tag, value.clone());
                }
            }
            value
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Gathers one value per rank at `root`; returns `Some(values)` (rank
    /// order) on the root and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for from in 0..self.size {
                if from != root {
                    out[from] = Some(self.recv_raw(from, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// Gathers one value per rank on every rank (gather + broadcast).
    pub fn allgather<T: Clone + Send + 'static>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered.unwrap_or_default())
    }

    /// Reduces one value per rank at `root` with associative `op`;
    /// returns `Some(result)` on the root.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.gather(root, value)
            .map(|vals| vals.into_iter().reduce(&op).expect("world is non-empty"))
    }

    /// All-reduce: every rank receives `op` folded over all ranks' values
    /// in rank order.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced).expect("root reduced")
    }

    /// Element-wise all-reduce over equally sized vectors.
    ///
    /// # Panics
    /// Panics if ranks contribute vectors of different lengths.
    pub fn allreduce_vec<T, F>(&mut self, value: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.allreduce(value, |a, b| {
            assert_eq!(a.len(), b.len(), "allreduce_vec length mismatch");
            a.iter().zip(&b).map(|(x, y)| op(x, y)).collect()
        })
    }

    /// Sum all-reduce for `f64`.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Inclusive prefix scan: rank `r` receives `op` folded over ranks
    /// `0..=r`.
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(value);
        all.into_iter()
            .take(self.rank + 1)
            .reduce(&op)
            .expect("scan includes own value")
    }

    /// Personalized all-to-all: `outgoing[r]` is delivered to rank `r`;
    /// the return value holds one entry per source rank (rank order).
    pub fn alltoall<T: Send + 'static>(&mut self, outgoing: Vec<T>) -> Vec<T> {
        assert_eq!(outgoing.len(), self.size, "one payload per destination rank");
        let tag = self.next_coll_tag();
        let mut incoming: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        for (to, value) in outgoing.into_iter().enumerate() {
            if to == self.rank {
                incoming[to] = Some(value);
            } else {
                self.send_raw(to, tag, value);
            }
        }
        for from in 0..self.size {
            if from != self.rank {
                incoming[from] = Some(self.recv_raw(from, tag));
            }
        }
        incoming.into_iter().map(Option::unwrap).collect()
    }

    /// Ordered pipeline fold over block-distributed items (collective).
    ///
    /// Reproduces, bit for bit, the serial accumulator loop
    /// `for i in 0..n { add(i, &mut acc) }` when the items `0..n` are
    /// block-distributed so that rank order equals ascending global item
    /// order (the [`crate::BlockDist`] layout): a token travels rank
    /// `0 → 1 → … → size-1`, each rank applies `add` for its
    /// `my_start..my_start + my_len` items in ascending order, and the
    /// final accumulator is broadcast from the last rank. Ranks that own
    /// zero items just forward the token.
    ///
    /// With `chunk = Some(c)`, the fold instead reproduces a *chunked*
    /// serial reference: per-chunk partials on the global `c`-grid
    /// (chunk `j` covers items `j*c..(j+1)*c`), each closed chunk folded
    /// into the accumulator element-wise in chunk order. This matches
    /// the partial-then-fold shape that threaded reductions use, so the
    /// distributed result is bitwise identical to theirs even though
    /// floating-point addition is not associative. Chunk boundaries need
    /// not align with ownership boundaries: an open partial rides on the
    /// token. With `chunk = None` the items accumulate directly.
    ///
    /// The cost is one `O(accum)` point-to-point hop per rank plus a
    /// broadcast — the latency of a linear chain, bought for exact
    /// reproducibility of the fold order.
    pub fn fold_blocked<F>(
        &mut self,
        accum_len: usize,
        my_start: usize,
        my_len: usize,
        chunk: Option<usize>,
        mut add: F,
    ) -> Vec<f64>
    where
        F: FnMut(usize, &mut [f64]),
    {
        const NO_CHUNK: u64 = u64::MAX;
        let tag = self.next_coll_tag();
        let (mut acc, mut open, mut open_chunk) = if self.rank == 0 {
            (vec![0.0f64; accum_len], vec![0.0f64; accum_len], NO_CHUNK)
        } else {
            self.recv_raw::<(Vec<f64>, Vec<f64>, u64)>(self.rank - 1, tag)
        };
        match chunk {
            Some(c) => {
                assert!(c > 0, "chunk size must be positive");
                for v in my_start..my_start + my_len {
                    let j = (v / c) as u64;
                    if j != open_chunk {
                        if open_chunk != NO_CHUNK {
                            for p in 0..accum_len {
                                acc[p] += open[p];
                                open[p] = 0.0;
                            }
                        }
                        open_chunk = j;
                    }
                    add(v, &mut open);
                }
            }
            None => {
                for v in my_start..my_start + my_len {
                    add(v, &mut acc);
                }
            }
        }
        if self.rank + 1 < self.size {
            self.send_raw(self.rank + 1, tag, (acc, open, open_chunk));
            self.broadcast(self.size - 1, Vec::new())
        } else {
            if open_chunk != NO_CHUNK {
                for p in 0..accum_len {
                    acc[p] += open[p];
                }
            }
            self.broadcast(self.size - 1, acc)
        }
    }

    /// Variable-count personalized all-to-all (MPI `Alltoallv`):
    /// `outgoing[r]` is a batch of `T` items delivered to rank `r`.
    ///
    /// Unlike routing a `Vec<Vec<T>>` through [`Comm::alltoall`] (which
    /// would charge only the shallow size of each `Vec` header), each
    /// off-rank batch is sized as its `len * size_of::<T>()` item bytes
    /// at the send site; the receiver credits the same amount (the size
    /// travels on the message). Self-delivery is free.
    pub fn alltoallv<T: Send + 'static>(&mut self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(outgoing.len(), self.size, "one batch per destination rank");
        let item = std::mem::size_of::<T>() as u64;
        let tag = self.next_coll_tag();
        let mut incoming: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        for (to, batch) in outgoing.into_iter().enumerate() {
            if to == self.rank {
                incoming[to] = Some(batch);
            } else {
                let bytes = batch.len() as u64 * item;
                self.send_raw_sized(to, tag, batch, bytes);
            }
        }
        for from in 0..self.size {
            if from != self.rank {
                incoming[from] = Some(self.recv_raw(from, tag));
            }
        }
        incoming.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::run_spmd;

    #[test]
    fn point_to_point_ring() {
        let results = run_spmd(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank());
            comm.recv::<usize>(prev, 7)
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first".to_string());
                comm.send(1, 2, "second".to_string());
                String::new()
            } else {
                // Receive tag 2 before tag 1; tag-1 message must be stashed.
                let b = comm.recv::<String>(0, 2);
                let a = comm.recv::<String>(0, 1);
                format!("{a} {b}")
            }
        });
        assert_eq!(results[1], "first second");
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..3 {
            let results = run_spmd(3, move |comm| {
                let v = if comm.rank() == root { 42u32 } else { 0 };
                comm.broadcast(root, v)
            });
            assert_eq!(results, vec![42; 3]);
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = run_spmd(4, |comm| comm.gather(2, comm.rank() * 10));
        assert_eq!(results[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[0], None);
    }

    #[test]
    fn allgather_everywhere() {
        let results = run_spmd(3, |comm| comm.allgather(comm.rank() as i64 - 1));
        for r in results {
            assert_eq!(r, vec![-1, 0, 1]);
        }
    }

    #[test]
    fn allreduce_max() {
        let results = run_spmd(5, |comm| comm.allreduce(comm.rank(), |a, b| a.max(b)));
        assert_eq!(results, vec![4; 5]);
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let results = run_spmd(3, |comm| {
            let v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_vec(v, |a, b| a + b)
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn scan_is_inclusive_prefix() {
        let results = run_spmd(4, |comm| comm.scan(1u64, |a, b| a + b));
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn alltoall_transposes() {
        let results = run_spmd(3, |comm| {
            let outgoing: Vec<String> =
                (0..comm.size()).map(|to| format!("{}->{}", comm.rank(), to)).collect();
            comm.alltoall(outgoing)
        });
        assert_eq!(results[1], vec!["0->1", "1->1", "2->1"]);
        assert_eq!(results[2], vec!["0->2", "1->2", "2->2"]);
    }

    #[test]
    fn barrier_completes() {
        let results = run_spmd(6, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn collectives_do_not_cross_talk() {
        // Two different collectives back to back with the same shape must
        // not steal each other's messages.
        let results = run_spmd(4, |comm| {
            let a = comm.allreduce(1u64, |x, y| x + y);
            let b = comm.allreduce(2u64, |x, y| x + y);
            (a, b)
        });
        for (a, b) in results {
            assert_eq!((a, b), (4, 8));
        }
    }

    #[test]
    fn stats_count_messages() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 5u8);
            } else {
                let _ = comm.recv::<u8>(0, 3);
            }
            comm.stats()
        });
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[1].messages_received, 1);
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 5u64);
            } else {
                let _ = comm.recv::<u64>(0, 3);
            }
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 8);
        assert_eq!(results[1].bytes_received, 8);
    }

    #[test]
    fn alltoallv_counts_item_bytes() {
        let results = run_spmd(2, |comm| {
            // Rank r sends r+1 items to the peer and keeps 10 for itself.
            let peer = 1 - comm.rank();
            let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
            outgoing[peer] = vec![7u32; comm.rank() + 1];
            outgoing[comm.rank()] = vec![9u32; 10];
            let incoming = comm.alltoallv(outgoing);
            (incoming[peer].len(), comm.stats())
        });
        // Self-delivered items cost nothing; off-rank batches cost pure
        // item bytes (no Vec-header term), and the receive side credits
        // exactly what the sender charged.
        assert_eq!(results[0].0, 2);
        assert_eq!(results[0].1.bytes_sent, 4);
        assert_eq!(results[0].1.bytes_received, 8);
        assert_eq!(results[1].0, 1);
        assert_eq!(results[1].1.bytes_sent, 8);
        assert_eq!(results[1].1.bytes_received, 4);
    }

    #[test]
    fn recv_bytes_mirror_send_site_charge() {
        // A plain send charges shallow size; the receiver must credit
        // the same (previously it re-measured the *expected* type).
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, [0u8; 24]);
            } else {
                let _ = comm.recv::<[u8; 24]>(0, 3);
            }
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 24);
        assert_eq!(results[1].bytes_received, 24);
    }

    #[test]
    fn try_recv_times_out_with_short_timeout() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.set_recv_timeout(std::time::Duration::from_millis(20));
                comm.try_recv::<u8>(1, 5).err()
            } else {
                None
            }
        });
        assert_eq!(results[0], Some(crate::CommError::Timeout { rank: 0, from: 1, tag: 5 }));
    }

    #[test]
    fn try_recv_reports_type_mismatch() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, 42u32);
                None
            } else {
                comm.try_recv::<String>(0, 2).err()
            }
        });
        assert_eq!(results[1], Some(crate::CommError::TypeMismatch { rank: 1, from: 0, tag: 2 }));
    }

    #[test]
    fn certain_drop_exhausts_retransmit_budget() {
        use crate::{run_spmd_with_faults, CommError, FaultPlan};
        let plan = FaultPlan::new(3).with_drop(1.0);
        let results = run_spmd_with_faults(2, Some(&plan), |comm| {
            if comm.rank() == 0 {
                comm.try_send(1, 1, 1u8).err()
            } else {
                comm.set_recv_timeout(std::time::Duration::from_millis(50));
                let _ = comm.try_recv::<u8>(0, 1);
                None
            }
        });
        assert!(
            matches!(results[0], Some(CommError::DropExhausted { rank: 0, to: 1, tag: 1, .. })),
            "got {:?}",
            results[0]
        );
    }

    #[test]
    fn dropped_messages_are_retransmitted_and_delivered() {
        use crate::{run_spmd_with_faults, FaultPlan};
        let plan = FaultPlan::new(17).with_drop(0.5);
        let results = run_spmd_with_faults(4, Some(&plan), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank());
            (comm.recv::<usize>(prev, 7), comm.stats())
        });
        let got: Vec<usize> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(got, vec![3, 0, 1, 2], "payloads survive dropped transmissions");
        // Retransmissions are visible in the stats: more transmissions
        // than deliveries (deterministic for this seed).
        let sent: u64 = results.iter().map(|(_, s)| s.messages_sent).sum();
        let received: u64 = results.iter().map(|(_, s)| s.messages_received).sum();
        assert_eq!(received, 4);
        assert!(sent > received, "sent {sent} <= received {received}");
    }

    /// `fold_blocked` with a chunk grid must reproduce the serial
    /// partial-then-fold reference bitwise, at every rank count —
    /// including worlds with more ranks than items.
    #[test]
    fn fold_blocked_matches_chunked_serial_reference() {
        let n = 103usize;
        let k = 4usize;
        let chunk = 16usize;
        // Values chosen so addition order matters in f64.
        let val = |v: usize| 0.1 + (v as f64) * 1e-3 + ((v * v % 7) as f64) * 1e9;
        let bucket = |v: usize| (v * 2654435761) % 4;
        // Serial reference: per-chunk partials folded in chunk order.
        let mut expected = vec![0.0f64; k];
        let mut c = 0;
        while c * chunk < n {
            let mut partial = vec![0.0f64; k];
            for v in c * chunk..((c + 1) * chunk).min(n) {
                partial[bucket(v)] += val(v);
            }
            for p in 0..k {
                expected[p] += partial[p];
            }
            c += 1;
        }
        for ranks in [1usize, 2, 3, 8, 128] {
            let results = run_spmd(ranks, move |comm| {
                let dist = crate::BlockDist::new(n, comm.size());
                let range = dist.range(comm.rank());
                comm.fold_blocked(k, range.start, range.len(), Some(chunk), |v, acc| {
                    acc[bucket(v)] += val(v);
                })
            });
            for got in results {
                assert_eq!(
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "ranks={ranks}"
                );
            }
        }
    }

    /// `fold_blocked` without a chunk grid reproduces the direct serial
    /// accumulator loop bitwise.
    #[test]
    fn fold_blocked_direct_matches_serial_loop() {
        let n = 57usize;
        let k = 3usize;
        let val = |v: usize| (v as f64).sqrt() * 1e6 + 0.3;
        let bucket = |v: usize| v % 3;
        let mut expected = vec![0.0f64; k];
        for v in 0..n {
            expected[bucket(v)] += val(v);
        }
        for ranks in [1usize, 2, 5, 64] {
            let results = run_spmd(ranks, move |comm| {
                let dist = crate::BlockDist::new(n, comm.size());
                let range = dist.range(comm.rank());
                comm.fold_blocked(k, range.start, range.len(), None, |v, acc| {
                    acc[bucket(v)] += val(v);
                })
            });
            for got in results {
                assert_eq!(
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "ranks={ranks}"
                );
            }
        }
    }

    #[test]
    fn fold_blocked_empty_world_items() {
        // Zero items: every rank forwards an untouched token.
        let results = run_spmd(3, |comm| comm.fold_blocked(2, 0, 0, Some(8), |_, _| panic!()));
        for got in results {
            assert_eq!(got, vec![0.0, 0.0]);
        }
    }

    #[test]
    fn single_rank_world() {
        let results = run_spmd(1, |comm| {
            comm.barrier();
            let v = comm.allgather(9usize);
            let s = comm.allreduce_sum(2.5);
            (v, s)
        });
        assert_eq!(results[0], (vec![9], 2.5));
    }
}
