//! A simulated SPMD message-passing substrate.
//!
//! The paper's parallel partitioner runs on MPI over a 64-node cluster.
//! Rust MPI bindings are thin, so this crate substitutes a faithful
//! *simulated* message-passing machine: each MPI rank becomes an OS
//! thread, point-to-point messages travel over typed channels, and the
//! usual collectives (barrier, broadcast, gather, all-gather, reduce,
//! all-reduce, scan, all-to-all) are built on top of the point-to-point
//! layer exactly as an MPI implementation would build them.
//!
//! The substitution preserves what matters for reproducing the paper: the
//! partitioning algorithms are rank-symmetric SPMD programs whose quality
//! and communication *pattern* depend only on the messages exchanged and
//! the per-rank decisions, not on the physical wire. Because every
//! algorithm in the workspace runs on the same substrate, relative
//! runtime comparisons between the hypergraph and graph partitioners
//! remain meaningful.
//!
//! Repeated sparse exchanges reuse a prebuilt [`plan::CommPlan`]; its
//! `send_counts`/`send_positions` accessors additionally support the
//! *incremental* idiom (ship only a dirty subset of the planned items
//! per round) that the distributed hypergraph's ghost halos are built
//! on — see `dlb-disthg` and DESIGN.md §17.
//!
//! # Example
//!
//! ```
//! use dlb_mpisim::run_spmd;
//!
//! let results = run_spmd(4, |comm| {
//!     let sum: u64 = comm.allreduce(comm.rank() as u64, |a, b| a + b);
//!     sum
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod comm;
pub mod directory;
mod dist;
pub mod fault;
pub mod membership;
pub mod plan;
pub mod spec;
mod world;

pub use comm::{Comm, CommError, CommStats};
pub use directory::DistDirectory;
pub use dist::BlockDist;
pub use fault::{FaultPlan, FaultState, RankFailure};
pub use membership::WorldMembership;
pub use plan::CommPlan;
pub use world::{run_spmd, run_spmd_with_faults, try_run_spmd, RankPanic, SpmdError};
