//! SPMD world launcher.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;

use crate::comm::{Comm, Envelope};
use crate::fault::FaultPlan;

/// One rank's captured panic.
#[derive(Clone, Debug)]
pub struct RankPanic {
    /// The rank whose closure panicked.
    pub rank: usize,
    /// The panic payload rendered as a string.
    pub message: String,
}

/// Failure report from [`try_run_spmd`]: the originating rank's panic,
/// separated from the secondary panics it provoked.
///
/// When one rank dies mid-protocol its peers starve in `recv` and die
/// later on the deadlock-guard timeout. Joining in rank order would
/// surface whichever cascade happens to sit at the lowest rank; instead
/// all ranks are joined, panics are stamped with their real-time order,
/// and the earliest panic that is not a recognizable comm cascade
/// ("deadlock waiting" / "peer rank hung up") is reported as the origin.
#[derive(Clone, Debug)]
pub struct SpmdError {
    /// The root-cause failure.
    pub origin: RankPanic,
    /// Secondary failures attributed to the origin, in panic order.
    pub cascades: Vec<RankPanic>,
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} failed: {}", self.origin.rank, self.origin.message)?;
        if !self.cascades.is_empty() {
            let ranks: Vec<String> =
                self.cascades.iter().map(|p| p.rank.to_string()).collect();
            write!(f, " ({} rank(s) failed in cascade: {})", ranks.len(), ranks.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for SpmdError {}

/// Runs `f` as an SPMD program on `nranks` simulated ranks and returns
/// each rank's result in rank order.
///
/// Every rank runs on its own OS thread (oversubscription is fine — the
/// per-rank work in the partitioners is modest, mirroring strong scaling
/// on the paper's cluster). A panic on any rank propagates to the
/// caller, attributed to the originating rank (see [`SpmdError`]).
///
/// # Panics
/// Panics if `nranks == 0` or if any rank's closure panics.
pub fn run_spmd<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_spmd_with_faults(nranks, None, f)
}

/// [`run_spmd`] with an optional [`FaultPlan`] installed on every rank's
/// [`Comm`], enabling deterministic message drop/delay injection.
///
/// # Panics
/// Panics if `nranks == 0` or if any rank's closure panics.
pub fn run_spmd_with_faults<T, F>(nranks: usize, plan: Option<&FaultPlan>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    match try_run_spmd_impl(nranks, plan, f) {
        Ok(values) => values,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_spmd`]: joins *all* ranks and reports the originating
/// failure instead of rethrowing whichever panic a rank-order join
/// happens to see first.
///
/// # Panics
/// Panics if `nranks == 0` (a malformed launch, not a rank failure).
pub fn try_run_spmd<T, F>(nranks: usize, f: F) -> Result<Vec<T>, SpmdError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    try_run_spmd_impl(nranks, None, f)
}

fn try_run_spmd_impl<T, F>(
    nranks: usize,
    plan: Option<&FaultPlan>,
    f: F,
) -> Result<Vec<T>, SpmdError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(nranks > 0, "world must have at least one rank");

    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = channel::<Envelope>();
        txs.push(tx);
        rxs.push(rx);
    }

    let f = &f;
    let mut outcomes: Vec<Option<Result<T, (usize, String)>>> =
        (0..nranks).map(|_| None).collect();

    // If the launching thread is enrolled in a trace session, rank 0
    // inherits the enrollment (its spans nest under the caller's open
    // span); other ranks stay muted so counter values are invariant
    // across rank counts.
    let trace_ctx = dlb_trace::fork();

    // Panics are stamped with their real-time order: a cascade always
    // fires after the failure that starved it, so the stamp lets the
    // join pick the root cause no matter which rank it lands on.
    let panic_seq = AtomicUsize::new(0);
    let panic_seq = &panic_seq;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            handles.push(scope.spawn(move || {
                dlb_trace::adopt(trace_ctx, rank == 0);
                let mut comm = Comm::new(rank, txs, rx);
                if let Some(plan) = plan {
                    comm.install_fault_state(plan.state_for(rank));
                }
                catch_unwind(AssertUnwindSafe(|| f(&mut comm))).map_err(|payload| {
                    (panic_seq.fetch_add(1, Ordering::SeqCst), panic_message(&*payload))
                })
            }));
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            // The closure's panic was caught inside the thread; a join
            // error would mean the harness itself died.
            let outcome = handle
                .join()
                .unwrap_or_else(|payload| Err((usize::MAX, panic_message(&*payload))));
            outcomes[rank] = Some(outcome);
        }
    });

    let mut values: Vec<Option<T>> = Vec::with_capacity(nranks);
    let mut panics: Vec<(usize, RankPanic)> = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("every rank was joined") {
            Ok(value) => values.push(Some(value)),
            Err((order, message)) => {
                values.push(None);
                panics.push((order, RankPanic { rank, message }));
            }
        }
    }
    if panics.is_empty() {
        return Ok(values.into_iter().map(Option::unwrap).collect());
    }
    panics.sort_by_key(|&(order, _)| order);
    // Root cause: the earliest panic that is not a recognizable comm
    // cascade. If every panic looks like a cascade (e.g. a true
    // deadlock), the earliest one wins.
    let origin_idx = panics.iter().position(|(_, p)| !is_cascade(&p.message)).unwrap_or(0);
    let (_, origin) = panics.remove(origin_idx);
    let cascades = panics.into_iter().map(|(_, p)| p).collect();
    Err(SpmdError { origin, cascades })
}

/// Whether a panic message matches the comm layer's starvation panics,
/// which are symptoms of some other rank's failure rather than causes.
fn is_cascade(message: &str) -> bool {
    message.contains("deadlock waiting for message") || message.contains("peer rank hung up")
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let r = run_spmd(8, |c| c.rank() * c.rank());
        assert_eq!(r, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = run_spmd(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 1 failed: deliberate")]
    fn rank_panic_propagates() {
        let _ = run_spmd(2, |c| {
            if c.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn try_run_spmd_collects_results() {
        let r = try_run_spmd(4, |c| c.rank() + 10).unwrap();
        assert_eq!(r, vec![10, 11, 12, 13]);
    }

    /// Regression test for the panic-attribution bug: rank 2 dies first,
    /// ranks 0 and 1 starve in `recv` and die later on the cascading
    /// deadlock-guard timeout. The old rank-order join rethrew rank 0's
    /// timeout; attribution must surface rank 2's original panic.
    #[test]
    fn originating_panic_beats_cascading_timeout() {
        let err = try_run_spmd(3, |c| {
            if c.rank() == 2 {
                panic!("original failure on rank 2");
            }
            c.set_recv_timeout(std::time::Duration::from_millis(100));
            let _: u32 = c.recv(2, 1);
        })
        .unwrap_err();
        assert_eq!(err.origin.rank, 2);
        assert!(err.origin.message.contains("original failure"), "{}", err.origin.message);
        assert_eq!(err.cascades.len(), 2);
        assert!(err.cascades.iter().all(|p| p.message.contains("deadlock waiting")));
        // The rendered error leads with the root cause, not the cascade.
        let rendered = err.to_string();
        assert!(rendered.starts_with("rank 2 failed: original failure"), "{rendered}");
    }

    /// With every panic a recognizable cascade (a true deadlock), the
    /// earliest panic wins and nothing is misattributed.
    #[test]
    fn all_cascade_panics_fall_back_to_earliest() {
        let err = try_run_spmd(2, |c| {
            c.set_recv_timeout(std::time::Duration::from_millis(50));
            // Both ranks wait for a message nobody sends.
            let _: u8 = c.recv(1 - c.rank(), 9);
        })
        .unwrap_err();
        assert!(err.origin.message.contains("deadlock waiting"));
        assert_eq!(err.cascades.len(), 1);
    }
}
