//! SPMD world launcher.

use std::sync::mpsc::channel;

use crate::comm::{Comm, Envelope};

/// Runs `f` as an SPMD program on `nranks` simulated ranks and returns
/// each rank's result in rank order.
///
/// Every rank runs on its own OS thread (oversubscription is fine — the
/// per-rank work in the partitioners is modest, mirroring strong scaling
/// on the paper's cluster). A panic on any rank propagates to the caller.
///
/// # Panics
/// Panics if `nranks == 0` or if any rank's closure panics.
pub fn run_spmd<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(nranks > 0, "world must have at least one rank");

    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = channel::<Envelope>();
        txs.push(tx);
        rxs.push(rx);
    }

    let f = &f;
    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();

    // If the launching thread is enrolled in a trace session, rank 0
    // inherits the enrollment (its spans nest under the caller's open
    // span); other ranks stay muted so counter values are invariant
    // across rank counts.
    let trace_ctx = dlb_trace::fork();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            handles.push(scope.spawn(move || {
                dlb_trace::adopt(trace_ctx, rank == 0);
                let mut comm = Comm::new(rank, txs, rx);
                f(&mut comm)
            }));
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(value) => results[rank] = Some(value),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    results.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let r = run_spmd(8, |c| c.rank() * c.rank());
        assert_eq!(r, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = run_spmd(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        let _ = run_spmd(2, |c| {
            if c.rank() == 1 {
                panic!("deliberate");
            }
        });
    }
}
