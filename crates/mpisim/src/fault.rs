//! Deterministic fault injection for the simulated SPMD machine.
//!
//! A [`FaultPlan`] is a seeded, declarative description of everything
//! that will go wrong in a run: which ranks die at which epoch, and with
//! what probability individual messages are dropped or delayed in
//! transit. Determinism is the whole point — the same plan produces the
//! same faults on every run, at every driver rank count, so recovery
//! behaviour is testable bit-for-bit (DESIGN.md §12).
//!
//! Responsibilities are split between the layers:
//!
//! * `mpisim` (this module + [`crate::Comm`]) owns *message-level*
//!   faults: per-send drop and delay decisions drawn from a per-rank
//!   deterministic RNG, retransmitted or slept through inside the
//!   fallible `try_send`/`try_recv` paths.
//! * `dlb-core`'s epoch driver owns *rank-level* faults: a scheduled
//!   failure is consumed at the epoch boundary and turned into a forced
//!   repartition onto the surviving parts. The plan is shared by every
//!   rank, so "detecting" a failure needs no extra collectives — it is
//!   the limit case of a perfect failure detector whose verdicts are
//!   consistent across the world.

use std::time::Duration;

use crate::spec;

/// Default length of one injected in-transit delay.
const DEFAULT_DELAY: Duration = Duration::from_micros(500);

/// One scheduled rank failure: logical `rank` dies at the boundary of
/// `epoch` (1-based, matching the simulation driver's epoch numbering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankFailure {
    /// The logical rank (= part id in the execution model) that dies.
    pub rank: usize,
    /// The 1-based epoch at whose boundary the failure is observed.
    pub epoch: usize,
}

/// A seeded, declarative fault schedule for one run.
///
/// Build one programmatically with the builder methods or parse the CLI
/// spec grammar with [`FaultPlan::parse`]:
///
/// ```text
/// SEED:directive(,directive)*
///   rank<R>@<E>   rank R fails at epoch E        e.g. rank1@2
///   drop<P>       drop each message w.p. P       e.g. drop0.01
///   delay<P>      delay each message w.p. P      e.g. delay0.05
/// ```
///
/// ```
/// use dlb_mpisim::FaultPlan;
/// let plan = FaultPlan::parse("42:rank1@2,drop0.01").unwrap();
/// assert_eq!(plan.seed(), 42);
/// assert_eq!(plan.ranks_failing_at(2), vec![1]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    failures: Vec<RankFailure>,
    drop_prob: f64,
    delay_prob: f64,
    delay: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            failures: Vec::new(),
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: DEFAULT_DELAY,
        }
    }

    /// Schedules logical `rank` to fail at the boundary of `epoch`
    /// (1-based).
    pub fn fail_rank(mut self, rank: usize, epoch: usize) -> Self {
        assert!(epoch >= 1, "epochs are 1-based");
        self.failures.push(RankFailure { rank, epoch });
        self
    }

    /// Drops each injected-world message with probability `p`, forcing
    /// the sender through its bounded retransmit loop.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.drop_prob = p;
        self
    }

    /// Delays each injected-world message with probability `p` (by a
    /// fixed short deterministic amount).
    pub fn with_delay(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.delay_prob = p;
        self
    }

    /// Parses the `SEED:spec` grammar (see the type docs). Returns a
    /// human-readable error for malformed specs.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed, directives) = spec::split_seed_spec(s, "fault", "42:rank1@2")?;
        let mut plan = FaultPlan::new(seed);
        for directive in directives {
            if let Some(rest) = directive.strip_prefix("rank") {
                let (rank, epoch) = spec::parse_rank_at_epoch(directive, rest)?;
                plan.failures.push(RankFailure { rank, epoch });
            } else if let Some(p_str) = directive.strip_prefix("drop") {
                plan.drop_prob = spec::parse_prob(directive, p_str)?;
            } else if let Some(p_str) = directive.strip_prefix("delay") {
                plan.delay_prob = spec::parse_prob(directive, p_str)?;
            } else {
                return Err(spec::unknown_directive(
                    directive,
                    "rank<R>@<E>, drop<P> or delay<P>",
                ));
            }
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled rank failures, in insertion order.
    pub fn failures(&self) -> &[RankFailure] {
        &self.failures
    }

    /// Ranks scheduled to fail at the boundary of `epoch`, sorted and
    /// deduplicated.
    pub fn ranks_failing_at(&self, epoch: usize) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .failures
            .iter()
            .filter(|f| f.epoch == epoch)
            .map(|f| f.rank)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Whether the plan injects message-level faults (drop or delay).
    pub fn has_message_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0
    }

    /// The per-rank mutable fault state installed on a world's [`crate::Comm`].
    pub fn state_for(&self, rank: usize) -> FaultState {
        FaultState {
            // splitmix64 decorrelates nearby (seed, rank) pairs; also
            // guards against the forbidden all-zero xorshift state.
            state: splitmix64(self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rank as u64 + 1))),
            drop_prob: self.drop_prob,
            delay_prob: self.delay_prob,
            delay: self.delay,
        }
    }
}

/// Per-rank message-fault state: a deterministic RNG stream plus the
/// plan's probabilities. Lives on the [`crate::Comm`] of each rank in a
/// fault-injected world; decisions depend only on (seed, rank, draw
/// index), never on wall-clock time or scheduling.
#[derive(Clone, Debug)]
pub struct FaultState {
    state: u64,
    drop_prob: f64,
    delay_prob: f64,
    delay: Duration,
}

impl FaultState {
    fn next_f64(&mut self) -> f64 {
        // xorshift64*; uniform in [0, 1) from the top 53 bits.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Decides whether the next send attempt is dropped. Draws from the
    /// RNG only when the plan has a nonzero drop probability, so an
    /// empty plan consumes no randomness.
    pub fn should_drop(&mut self) -> bool {
        self.drop_prob > 0.0 && self.next_f64() < self.drop_prob
    }

    /// Decides whether the next send is delayed in transit.
    pub fn should_delay(&mut self) -> bool {
        self.delay_prob > 0.0 && self.next_f64() < self.delay_prob
    }

    /// Length of one injected delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse("42:rank1@2,rank3@2,drop0.01,delay0.5").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.ranks_failing_at(2), vec![1, 3]);
        assert_eq!(plan.ranks_failing_at(1), Vec::<usize>::new());
        assert!(plan.has_message_faults());
    }

    #[test]
    fn parse_empty_spec_is_no_faults() {
        let plan = FaultPlan::parse("7:").unwrap();
        assert_eq!(plan.seed(), 7);
        assert!(plan.failures().is_empty());
        assert!(!plan.has_message_faults());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nocolon",
            "x:rank1@2",
            "1:rank@2",
            "1:rank1@zero",
            "1:rank1@0",
            "1:drop1.5",
            "1:delay-0.1",
            "1:explode",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn ranks_failing_at_dedups_and_sorts() {
        let plan = FaultPlan::new(1).fail_rank(3, 5).fail_rank(1, 5).fail_rank(3, 5);
        assert_eq!(plan.ranks_failing_at(5), vec![1, 3]);
    }

    #[test]
    fn fault_state_is_deterministic_per_rank() {
        let plan = FaultPlan::new(99).with_drop(0.5);
        let draws = |rank: usize| {
            let mut s = plan.state_for(rank);
            (0..64).map(|_| s.should_drop()).collect::<Vec<_>>()
        };
        assert_eq!(draws(0), draws(0));
        assert_eq!(draws(3), draws(3));
        assert_ne!(draws(0), draws(1), "ranks draw independent streams");
    }

    #[test]
    fn zero_probability_never_fires_or_draws() {
        let mut s = FaultPlan::new(5).state_for(0);
        for _ in 0..100 {
            assert!(!s.should_drop());
            assert!(!s.should_delay());
        }
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let mut s = FaultPlan::new(11).with_drop(0.25).state_for(2);
        let hits = (0..10_000).filter(|_| s.should_drop()).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
