//! Synthetic datasets and dynamic perturbations for the repartitioning
//! experiments (Section 5 of the paper).
//!
//! The paper evaluates on five real matrices/graphs (Table 1). Those
//! datasets are not redistributable here, so [`datasets`] provides
//! parameterized generators that reproduce each dataset's *regime* —
//! vertex/edge counts (scalable), degree distribution shape (min/max/avg
//! degree), and locality — which are the properties that drive the
//! paper's results (density separates hypergraph vs graph runtimes;
//! locality governs cut structure). See DESIGN.md §4 for the
//! substitution argument.
//!
//! [`perturb`] implements the paper's two synthetic dynamics verbatim:
//!
//! * **Structural perturbation** — each iteration deletes a *different*
//!   random subset of the original vertices (with incident edges), so
//!   data both disappears and (re)appears; the headline configuration
//!   makes half of the parts lose or gain 25% of the total vertex count.
//! * **Weight perturbation (simulated mesh refinement)** — each
//!   iteration picks 10% of the parts and scales the weight *and* size
//!   of every vertex in them by a random factor in `[1.5, 7.5]`.
//!
//! [`epoch`] packages either dynamic as a stream of
//! [`epoch::EpochSnapshot`]s ready for the repartitioning driver, and
//! [`source`] abstracts over epoch generators: the synthetic
//! [`EpochStream`] and the *real* adaptive workload of [`dlb_amr`]
//! (quadtree AMR, adapted by [`source::AmrSource`]) drive the same
//! [`source::EpochSource`] protocol.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod datasets;
pub mod epoch;
pub mod nonsymmetric;
pub mod perturb;
pub mod source;

pub use datasets::{Dataset, DatasetKind};
pub use epoch::{EpochSnapshot, EpochStream};
pub use source::{
    AmrSource, DeltaNet, DeltaReweight, DeltaVertex, EpochDelta, EpochSource, EpochUpdate,
};
pub use nonsymmetric::{directed_circuit, directed_comm_volume, NonsymmetricDataset};
pub use perturb::{PerturbKind, Perturbation};
