//! The epoch-source abstraction: anything that can feed the
//! repartitioning driver a sequence of [`EpochSnapshot`]s.
//!
//! Two implementations exist: [`EpochStream`] (the paper's synthetic
//! perturbations of a static base dataset) and [`AmrSource`] (a *real*
//! adaptive computation — the quadtree AMR simulator of [`dlb_amr`],
//! whose mesh genuinely refines and coarsens every epoch). The driver in
//! `dlb_core::epoch` is generic over this trait, so every algorithm,
//! the SPMD path included, runs unchanged against either dynamic.

use std::collections::BTreeMap;

use dlb_amr::{AmrStream, Cell};
use dlb_hypergraph::PartId;

use crate::epoch::{EpochSnapshot, EpochStream};

/// A newly created vertex in an [`EpochDelta`].
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaVertex {
    /// Persistent base id of the vertex.
    pub base: usize,
    /// Computational weight (balance constraint).
    pub weight: f64,
    /// Migration data size (cost of the vertex's migration net).
    pub size: f64,
    /// The part the vertex was *created* on — where its migration net
    /// anchors for its first epoch.
    pub old_part: PartId,
}

/// A surviving vertex whose weight or size changed between epochs.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaReweight {
    /// Persistent base id of the vertex.
    pub base: usize,
    /// New computational weight.
    pub weight: f64,
    /// New migration data size.
    pub size: f64,
}

/// The refreshed adjacency of one vertex whose neighborhood changed.
///
/// In the column-net model the net owned by vertex `v` is
/// `{v} ∪ adj(v)`, so a changed neighborhood splices exactly one net.
/// The owner is implicit; `neighbors` lists the other pins by base id,
/// in any order (the patcher canonicalizes).
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaNet {
    /// Persistent base id of the owning vertex.
    pub base: usize,
    /// Base ids of the owner's face/structure neighbors after the
    /// change. Must be kept symmetric across the delta: if `u` lists
    /// `v`, some net entry must also give `v`'s refreshed list with `u`.
    pub neighbors: Vec<usize>,
}

/// A structural diff between two consecutive epochs, expressed in the
/// source's persistent base-id space.
///
/// The diff is *complete*: every vertex whose weight, size, or
/// neighborhood differs from the previous epoch appears in `added`,
/// `reweighted`, or `nets`. Applying it to the previous epoch's state
/// (see `dlb_core::delta::ModelPatcher`) must reproduce the epoch that
/// [`EpochSource::next_epoch`] would have emitted, bit for bit.
///
/// Delta-capable sources must use unit edge weights in their adjacency
/// graphs (true of the AMR lowering); sources with weighted edges
/// should keep the full-snapshot fallback.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochDelta {
    /// Base id of each vertex of the *new* epoch, in the epoch's
    /// canonical vertex order — the order spine the patcher rebuilds
    /// the CSR structures along.
    pub to_base: Vec<usize>,
    /// Base ids present in the previous epoch but not in this one
    /// (coarsened away / deleted).
    pub removed: Vec<usize>,
    /// Vertices appearing for the first time since the previous epoch
    /// (refined into existence / re-inserted).
    pub added: Vec<DeltaVertex>,
    /// Surviving vertices whose weight or size changed.
    pub reweighted: Vec<DeltaReweight>,
    /// Refreshed nets: one entry per vertex whose neighborhood changed
    /// (every added vertex, plus touched survivors).
    pub nets: Vec<DeltaNet>,
}

/// What [`EpochSource::next_delta`] yields: either a structural diff
/// against the previous epoch, or a full snapshot when no cheaper
/// description exists (first epoch, non-incremental source, or drift
/// too large to be worth diffing).
// The Full variant dominates the size, but updates are transient —
// returned once and destructured immediately — so boxing would buy
// nothing but an allocation per epoch.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum EpochUpdate {
    /// A complete epoch snapshot; resets any incremental state.
    Full(EpochSnapshot),
    /// A structural diff against the previously emitted epoch.
    Delta(EpochDelta),
}

/// A stateful generator of repartitioning epochs.
///
/// The protocol mirrors the paper's Section 3 loop: `next_epoch` yields
/// epoch `j`'s problem (hypergraph + old parts), the caller repartitions
/// it, and `commit_assignment` records the decision so epoch `j+1`'s
/// old parts (and any assignment-dependent dynamics) see it.
pub trait EpochSource {
    /// Number of parts in the decomposition.
    fn k(&self) -> usize;

    /// Number of epochs emitted so far.
    fn epochs_emitted(&self) -> usize;

    /// Generates the next epoch.
    fn next_epoch(&mut self) -> EpochSnapshot;

    /// Generates the next epoch as an incremental update.
    ///
    /// Advances the source exactly like [`Self::next_epoch`] (one call
    /// per epoch — callers use one method or the other, not both). The
    /// default emits a [`EpochUpdate::Full`] snapshot so existing
    /// sources work unchanged under the incremental driver; sources
    /// with native change tracking (the AMR quadtree) override it to
    /// return [`EpochUpdate::Delta`].
    fn next_delta(&mut self) -> EpochUpdate {
        EpochUpdate::Full(self.next_epoch())
    }

    /// Records the assignment chosen for `snapshot` (which must be the
    /// most recently emitted epoch).
    fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]);
}

/// Boxed sources delegate, so factory-style callers (`rank -> Box<dyn
/// EpochSource>`) plug straight into generic drivers.
impl<S: EpochSource + ?Sized> EpochSource for Box<S> {
    fn k(&self) -> usize {
        (**self).k()
    }

    fn epochs_emitted(&self) -> usize {
        (**self).epochs_emitted()
    }

    fn next_epoch(&mut self) -> EpochSnapshot {
        (**self).next_epoch()
    }

    fn next_delta(&mut self) -> EpochUpdate {
        (**self).next_delta()
    }

    fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]) {
        (**self).commit_assignment(snapshot, part)
    }
}

impl EpochSource for EpochStream {
    fn k(&self) -> usize {
        EpochStream::k(self)
    }

    fn epochs_emitted(&self) -> usize {
        EpochStream::epochs_emitted(self)
    }

    fn next_epoch(&mut self) -> EpochSnapshot {
        EpochStream::next_epoch(self)
    }

    fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]) {
        EpochStream::commit_assignment(self, snapshot, part)
    }
}

/// Adapts [`AmrStream`] to the [`EpochSource`] protocol.
///
/// The AMR stream identifies vertices by quadtree [`Cell`] address; the
/// snapshot protocol identifies them by *base id*. The adapter keeps a
/// persistent cell-id registry: the first time a cell appears it is
/// assigned the next free base id, and keeps it for the lifetime of the
/// source — so a cell that coarsens away and later re-refines into
/// existence maps to the same base id, exactly like a deleted base
/// vertex reappearing in a structural [`EpochStream`].
pub struct AmrSource {
    stream: AmrStream,
    base_id: BTreeMap<Cell, usize>,
    id_cell: Vec<Cell>,
}

impl AmrSource {
    /// Wraps an [`AmrStream`] whose initial mesh has been partitioned.
    /// `initial_part` must align with the stream's
    /// [`AmrStream::initial_lowering`] cell order.
    ///
    /// # Panics
    /// Panics if the stream has already emitted epochs or the partition
    /// does not fit the initial mesh.
    pub fn new(mut stream: AmrStream, initial_part: &[PartId]) -> Self {
        stream.set_initial_partition(initial_part);
        AmrSource { stream, base_id: BTreeMap::new(), id_cell: Vec::new() }
    }

    /// The underlying AMR stream.
    pub fn stream(&self) -> &AmrStream {
        &self.stream
    }

    /// The stable base id of `c`, if the cell has ever appeared in an
    /// emitted epoch. Newly refined cells get their id the moment the
    /// epoch (full or delta) naming them is emitted, so deltas can
    /// reference them immediately.
    pub fn base_id_of(&self, c: Cell) -> Option<usize> {
        self.base_id.get(&c).copied()
    }

    /// The cell behind base id `base`, if one was ever registered.
    pub fn cell_of(&self, base: usize) -> Option<Cell> {
        self.id_cell.get(base).copied()
    }

    /// Number of base ids handed out so far (registry size).
    pub fn num_base_ids(&self) -> usize {
        self.id_cell.len()
    }

    fn register(&mut self, c: Cell) -> usize {
        if let Some(&id) = self.base_id.get(&c) {
            return id;
        }
        let id = self.id_cell.len();
        self.base_id.insert(c, id);
        self.id_cell.push(c);
        id
    }
}

impl EpochSource for AmrSource {
    fn k(&self) -> usize {
        self.stream.k()
    }

    fn epochs_emitted(&self) -> usize {
        self.stream.epochs_emitted()
    }

    fn next_epoch(&mut self) -> EpochSnapshot {
        let e = self.stream.next_epoch();
        let to_base: Vec<usize> = e.cells.iter().map(|&c| self.register(c)).collect();
        EpochSnapshot {
            graph: e.graph,
            hypergraph: e.hypergraph,
            to_base,
            old_part: e.old_part,
        }
    }

    /// Native delta support: the first epoch is emitted as a full
    /// snapshot (there is no previous epoch to diff against); every
    /// later epoch is the quadtree's refine/coarsen diff, translated
    /// from cell space into the persistent base-id space.
    fn next_delta(&mut self) -> EpochUpdate {
        if self.stream.epochs_emitted() == 0 {
            return EpochUpdate::Full(self.next_epoch());
        }
        let d = self.stream.next_epoch_delta();
        // Register the new mesh's cells first (newly refined cells get
        // their stable ids here) so every lookup below is infallible.
        let to_base: Vec<usize> = d.cells.iter().map(|&c| self.register(c)).collect();
        let removed: Vec<usize> = d
            .removed
            .iter()
            .map(|c| self.base_id[c])
            .collect();
        let added: Vec<DeltaVertex> = d
            .added
            .iter()
            .map(|a| DeltaVertex {
                base: self.base_id[&a.cell],
                weight: a.weight,
                size: a.size,
                old_part: a.old_part,
            })
            .collect();
        let nets: Vec<DeltaNet> = d
            .adjacency
            .iter()
            .map(|(c, ns)| DeltaNet {
                base: self.base_id[c],
                neighbors: ns.iter().map(|n| self.base_id[n]).collect(),
            })
            .collect();
        // AMR weights are a function of the (immutable) cell level and
        // sizes are uniform, so surviving cells never reweight.
        EpochUpdate::Delta(EpochDelta {
            to_base,
            removed,
            added,
            reweighted: Vec::new(),
            nets,
        })
    }

    fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]) {
        let cells: Vec<Cell> =
            snapshot.to_base.iter().map(|&b| self.id_cell[b]).collect();
        self.stream.commit_assignment(&cells, part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_amr::AmrConfig;

    fn amr_source(seed: u64) -> AmrSource {
        let stream = AmrStream::new(AmrConfig::small(), 4, seed);
        let low = stream.initial_lowering();
        let n = low.cells.len();
        let part: Vec<usize> = (0..n).map(|v| v * 4 / n).collect();
        AmrSource::new(stream, &part)
    }

    #[test]
    fn amr_source_emits_valid_snapshots() {
        let mut s = amr_source(3);
        assert_eq!(EpochSource::k(&s), 4);
        for epoch in 1..=3 {
            let snap = s.next_epoch();
            assert_eq!(s.epochs_emitted(), epoch);
            snap.hypergraph.validate().unwrap();
            assert_eq!(snap.graph.num_vertices(), snap.to_base.len());
            assert_eq!(snap.old_part.len(), snap.to_base.len());
            assert!(snap.old_part.iter().all(|&p| p < 4));
            let part = snap.old_part.clone();
            s.commit_assignment(&snap, &part);
        }
    }

    #[test]
    fn base_ids_are_stable_across_epochs() {
        let mut s = amr_source(5);
        let mut seen: BTreeMap<usize, Cell> = BTreeMap::new();
        for _ in 0..5 {
            let snap = s.next_epoch();
            for (v, &b) in snap.to_base.iter().enumerate() {
                let cell = s.id_cell[b];
                // A base id maps to one cell, forever.
                if let Some(&prev) = seen.get(&b) {
                    assert_eq!(prev, cell, "base id {b} remapped");
                }
                seen.insert(b, cell);
                // And the registry inverts correctly.
                assert_eq!(s.base_id[&cell], b, "registry out of sync");
                let _ = v;
            }
            let part = snap.old_part.clone();
            s.commit_assignment(&snap, &part);
        }
        assert_eq!(s.base_id.len(), s.id_cell.len());
    }

    #[test]
    fn trait_object_dispatch_works() {
        // The CLI and bench select the workload at runtime.
        let mut boxed: Box<dyn EpochSource> = Box::new(amr_source(7));
        let snap = boxed.next_epoch();
        assert!(snap.graph.num_vertices() > 0);
        let part = snap.old_part.clone();
        boxed.commit_assignment(&snap, &part);
        assert_eq!(boxed.epochs_emitted(), 1);
    }
}
