//! Epoch streams: turning a base dataset plus a perturbation into the
//! sequence of per-epoch problem instances the repartitioning driver
//! consumes.
//!
//! The paper's procedure (Section 3): the application alternates epochs
//! of computation with load-balance operations; the hypergraph `H^j` of
//! epoch `j` is known when epoch `j−1` ends, and every vertex of `H^j`
//! carries an *old part* — the part it occupied at the end of epoch
//! `j−1`, or, for newly appearing vertices, the part where they were
//! created. The stream tracks identities against the *base* dataset so
//! vertices that vanish and later reappear keep their last-known part
//! (their "creation" site on reappearance).

use dlb_hypergraph::convert::column_net_model;
use dlb_hypergraph::subset::induced_subgraph;
use dlb_hypergraph::{CsrGraph, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::perturb::{PerturbKind, Perturbation};

/// One epoch's problem instance.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    /// The epoch graph (for the graph-based baselines).
    pub graph: CsrGraph,
    /// The epoch hypergraph: column-net model of `graph`, with net costs
    /// equal to the source vertex's data size (communication volume per
    /// consumer).
    pub hypergraph: Hypergraph,
    /// `to_base[epoch_vertex] = base_vertex`.
    pub to_base: Vec<usize>,
    /// Previous/creation part per epoch vertex — the "old part" the
    /// repartitioning model's migration nets attach to.
    pub old_part: Vec<PartId>,
}

/// A stateful generator of epochs over a base dataset.
pub struct EpochStream {
    base: CsrGraph,
    perturbation: Perturbation,
    k: usize,
    rng: StdRng,
    /// Last-known part per base vertex.
    last_part: Vec<PartId>,
    /// Original weights/sizes (weight perturbation scales relative to
    /// these).
    original_weight: Vec<f64>,
    original_size: Vec<f64>,
    /// Current (possibly scaled) weights/sizes per base vertex.
    current_weight: Vec<f64>,
    current_size: Vec<f64>,
    epochs_emitted: usize,
}

impl EpochStream {
    /// Creates a stream over `base` under `perturbation` for a `k`-way
    /// decomposition. `initial_part` is the static partition of epoch 1
    /// (per base vertex).
    ///
    /// # Panics
    /// Panics on invalid perturbation parameters or a wrong-length /
    /// out-of-range initial partition.
    pub fn new(
        base: CsrGraph,
        perturbation: Perturbation,
        k: usize,
        initial_part: Vec<PartId>,
        seed: u64,
    ) -> Self {
        perturbation.validate().expect("valid perturbation");
        assert!(k > 0);
        assert_eq!(initial_part.len(), base.num_vertices());
        assert!(initial_part.iter().all(|&p| p < k), "initial part out of range");
        let original_weight = base.vertex_weights().to_vec();
        let original_size = base.vertex_sizes().to_vec();
        EpochStream {
            base,
            perturbation,
            k,
            rng: StdRng::seed_from_u64(seed),
            last_part: initial_part,
            current_weight: original_weight.clone(),
            current_size: original_size.clone(),
            original_weight,
            original_size,
            epochs_emitted: 0,
        }
    }

    /// The base dataset.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of parts in the decomposition.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of epochs emitted so far.
    pub fn epochs_emitted(&self) -> usize {
        self.epochs_emitted
    }

    /// Records the assignment the load balancer chose for an epoch, so
    /// the next epoch's old parts (and part-targeted perturbations) see
    /// it. `snapshot` must be the epoch the assignment belongs to.
    /// Labels at or beyond the launch `k` are accepted — elastic worlds
    /// grow the label space past it — but the part-targeted
    /// perturbations only ever target the launch parts.
    pub fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]) {
        assert_eq!(part.len(), snapshot.to_base.len());
        for (v, &base_v) in snapshot.to_base.iter().enumerate() {
            self.last_part[base_v] = part[v];
        }
    }

    /// Generates the next epoch.
    pub fn next_epoch(&mut self) -> EpochSnapshot {
        self.epochs_emitted += 1;
        match self.perturbation.kind {
            PerturbKind::Structure => self.structural_epoch(),
            PerturbKind::Weights => self.weight_epoch(),
        }
    }

    /// Structural perturbation: delete a fresh random subset of the base
    /// vertices, drawn from a random half of the parts.
    fn structural_epoch(&mut self) -> EpochSnapshot {
        let n = self.base.num_vertices();
        let affected = self.pick_parts(self.perturbation.structure_parts_fraction);
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&v| affected.get(self.last_part[v]).copied().unwrap_or(false))
            .collect();
        candidates.shuffle(&mut self.rng);
        let quota = ((n as f64 * self.perturbation.delete_fraction) as usize)
            .min(candidates.len().saturating_sub(1));
        let mut keep = vec![true; n];
        for &v in &candidates[..quota] {
            keep[v] = false;
        }

        let ind = induced_subgraph(&self.base, &keep);
        let mut graph = ind.graph;
        // Weights/sizes reflect the current (possibly scaled) values.
        for (v, &base_v) in ind.to_base.iter().enumerate() {
            graph.set_vertex_weight(v, self.current_weight[base_v]);
            graph.set_vertex_size(v, self.current_size[base_v]);
        }
        let old_part: Vec<PartId> = ind.to_base.iter().map(|&b| self.last_part[b]).collect();
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        EpochSnapshot { graph, hypergraph, to_base: ind.to_base, old_part }
    }

    /// Weight perturbation: scale weight and size of every vertex in a
    /// random fraction of the parts to `U(lo, hi)` × original.
    fn weight_epoch(&mut self) -> EpochSnapshot {
        let n = self.base.num_vertices();
        let affected = self.pick_parts(self.perturbation.weight_parts_fraction);
        let (lo, hi) = self.perturbation.factor_range;
        for v in 0..n {
            if affected.get(self.last_part[v]).copied().unwrap_or(false) {
                let f = self.rng.gen_range(lo..hi);
                self.current_weight[v] = self.original_weight[v] * f;
                self.current_size[v] = self.original_size[v] * f;
            }
        }
        let mut graph = self.base.clone();
        graph.set_vertex_weights(self.current_weight.clone());
        graph.set_vertex_sizes(self.current_size.clone());
        let old_part = self.last_part.clone();
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        EpochSnapshot {
            graph,
            hypergraph,
            to_base: (0..n).collect(),
            old_part,
        }
    }

    /// Selects `⌈fraction·k⌉` distinct parts at random (at least one).
    fn pick_parts(&mut self, fraction: f64) -> Vec<bool> {
        let count = ((self.k as f64 * fraction).ceil() as usize).clamp(1, self.k);
        let mut parts: Vec<usize> = (0..self.k).collect();
        parts.shuffle(&mut self.rng);
        let mut affected = vec![false; self.k];
        for &p in &parts[..count] {
            affected[p] = true;
        }
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetKind};

    fn small_base() -> (CsrGraph, Vec<PartId>) {
        let d = Dataset::generate(DatasetKind::Auto, 0.0005, 1);
        let n = d.graph.num_vertices();
        let part: Vec<usize> = (0..n).map(|v| v * 4 / n).collect();
        (d.graph, part)
    }

    #[test]
    fn structural_epochs_delete_and_restore() {
        let (base, part) = small_base();
        let n = base.num_vertices();
        let mut stream = EpochStream::new(base, Perturbation::structure(), 4, part, 7);
        let e1 = stream.next_epoch();
        assert!(e1.graph.num_vertices() < n, "some vertices deleted");
        assert!(e1.graph.num_vertices() >= n / 2, "not too many deleted");
        // A different subset next epoch: deleted vertices can return.
        let e2 = stream.next_epoch();
        assert!(e2.graph.num_vertices() < n);
        assert_ne!(e1.to_base, e2.to_base, "each epoch deletes a different subset");
        e1.hypergraph.validate().unwrap();
    }

    #[test]
    fn structural_old_parts_come_from_last_assignment() {
        let (base, part) = small_base();
        let mut stream = EpochStream::new(base, Perturbation::structure(), 4, part.clone(), 8);
        let e1 = stream.next_epoch();
        for (v, &b) in e1.to_base.iter().enumerate() {
            assert_eq!(e1.old_part[v], part[b]);
        }
        // Commit a shifted assignment and verify epoch 2 sees it.
        let shifted: Vec<usize> = e1.old_part.iter().map(|&p| (p + 1) % 4).collect();
        stream.commit_assignment(&e1, &shifted);
        let e2 = stream.next_epoch();
        for (v, &b) in e2.to_base.iter().enumerate() {
            if let Some(pos) = e1.to_base.iter().position(|&x| x == b) {
                assert_eq!(e2.old_part[v], shifted[pos], "base vertex {b}");
            }
        }
    }

    #[test]
    fn weight_epochs_scale_into_range() {
        let (base, part) = small_base();
        let n = base.num_vertices();
        let mut stream = EpochStream::new(base, Perturbation::weights(), 4, part, 9);
        let e = stream.next_epoch();
        assert_eq!(e.graph.num_vertices(), n, "structure unchanged");
        let mut scaled = 0usize;
        for v in 0..n {
            let w = e.graph.vertex_weight(v);
            assert!(w == 1.0 || (1.5..7.5).contains(&w), "weight {w}");
            assert_eq!(e.graph.vertex_size(v), w, "weight and size scale together");
            if w != 1.0 {
                scaled += 1;
            }
        }
        assert!(scaled > 0, "at least one part refined");
        assert!(scaled < n, "not everything refined");
    }

    #[test]
    fn weight_scaling_is_relative_to_original() {
        let (base, part) = small_base();
        let mut stream = EpochStream::new(base, Perturbation::weights(), 4, part, 10);
        for _ in 0..12 {
            let e = stream.next_epoch();
            for v in 0..e.graph.num_vertices() {
                // Never compounds beyond the factor range.
                assert!(e.graph.vertex_weight(v) < 7.5 + 1e-9);
            }
        }
    }

    #[test]
    fn hypergraph_net_costs_track_sizes() {
        let (base, part) = small_base();
        let mut stream = EpochStream::new(base, Perturbation::weights(), 4, part, 11);
        let e = stream.next_epoch();
        for v in 0..e.graph.num_vertices() {
            assert_eq!(e.hypergraph.net_cost(v), e.graph.vertex_size(v));
        }
    }

    #[test]
    fn epochs_emitted_counts() {
        let (base, part) = small_base();
        let mut stream = EpochStream::new(base, Perturbation::structure(), 4, part, 12);
        assert_eq!(stream.epochs_emitted(), 0);
        let _ = stream.next_epoch();
        let _ = stream.next_epoch();
        assert_eq!(stream.epochs_emitted(), 2);
    }
}
