//! The paper's two synthetic dynamics (Section 5).

/// Which dynamic to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerturbKind {
    /// Biased random structural perturbation: each iteration deletes a
    /// different random subset of the base vertices (with incident
    /// edges) drawn from a randomly chosen half of the parts, so data
    /// both disappears and (re)appears.
    Structure,
    /// Weight scaling on a *static* structure: each iteration selects a
    /// fraction of the parts and scales the weight *and* size of every
    /// vertex in them by a random factor (relative to the original
    /// values). This is the paper's stand-in for mesh refinement — the
    /// graph never changes, only weights do. For a genuinely adaptive
    /// workload whose mesh refines and coarsens (and whose costs can be
    /// *measured*, not just modeled), use the quadtree AMR simulator in
    /// `crates/amr` via [`crate::source::AmrSource`].
    Weights,
}

/// Perturbation parameters. Defaults are the headline configuration the
/// paper reports: structure — half the parts lose/gain 25% of the total
/// vertices; weights — 10% of parts scaled into `[1.5, 7.5]`.
#[derive(Clone, Debug)]
pub struct Perturbation {
    /// Which dynamic.
    pub kind: PerturbKind,
    /// Structure: fraction of the *total* vertex count deleted each
    /// epoch (paper: 0.25).
    pub delete_fraction: f64,
    /// Structure: fraction of parts the deletions are drawn from
    /// (paper: 0.5).
    pub structure_parts_fraction: f64,
    /// Weights: fraction of parts refined each epoch (paper: 0.1).
    pub weight_parts_fraction: f64,
    /// Weights: scaling factor range relative to original (paper:
    /// 1.5..7.5).
    pub factor_range: (f64, f64),
}

impl Perturbation {
    /// The paper's structural-perturbation configuration.
    pub fn structure() -> Self {
        Perturbation {
            kind: PerturbKind::Structure,
            delete_fraction: 0.25,
            structure_parts_fraction: 0.5,
            weight_parts_fraction: 0.1,
            factor_range: (1.5, 7.5),
        }
    }

    /// The paper's weight-perturbation (simulated AMR) configuration.
    pub fn weights() -> Self {
        Perturbation {
            kind: PerturbKind::Weights,
            ..Perturbation::structure()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.delete_fraction) {
            return Err("delete_fraction must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.structure_parts_fraction)
            || !(0.0..=1.0).contains(&self.weight_parts_fraction)
        {
            return Err("parts fractions must be in [0, 1]".into());
        }
        if self.factor_range.0 > self.factor_range.1 || self.factor_range.0 <= 0.0 {
            return Err("factor_range must be a positive, ordered interval".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let s = Perturbation::structure();
        assert_eq!(s.kind, PerturbKind::Structure);
        assert_eq!(s.delete_fraction, 0.25);
        assert_eq!(s.structure_parts_fraction, 0.5);
        let w = Perturbation::weights();
        assert_eq!(w.kind, PerturbKind::Weights);
        assert_eq!(w.weight_parts_fraction, 0.1);
        assert_eq!(w.factor_range, (1.5, 7.5));
        s.validate().unwrap();
        w.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut p = Perturbation::structure();
        p.delete_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = Perturbation::weights();
        p.factor_range = (2.0, 1.0);
        assert!(p.validate().is_err());
    }
}
