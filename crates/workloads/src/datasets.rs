//! Parameterized generators reproducing the regimes of the paper's five
//! test datasets (Table 1).
//!
//! | Name      | \|V\|     | \|E\|      | deg min/max/avg | Application        |
//! |-----------|-----------|------------|-----------------|--------------------|
//! | xyce680s  | 682,712   | 823,232    | 1 / 209 / 2.4   | VLSI design        |
//! | 2DLipid   | 4,368     | 2,793,988  | 396/1984/1279.3 | Polymer DFT        |
//! | auto      | 448,695   | 3,314,611  | 4 / 37 / 14.8   | Structural analysis|
//! | apoa1-10  | 92,224    | 17,100,850 | 54 / 503 /370.9 | Molecular dynamics |
//! | cage14    | 1,505,785 | 13,565,176 | 3 / 41 / 18.0   | DNA electrophoresis|
//!
//! Each generator accepts a `scale ∈ (0, 1]` that shrinks the vertex
//! count. Sparse datasets (xyce680s, auto, cage14, apoa1-10) hold their
//! average degree constant under scaling — degree there is a physical
//! property (fanout, mesh valence, interaction cutoff). The dense
//! 2DLipid holds its *density* (avg degree / \|V\|, ≈29%) constant
//! instead, since its regime is "a third of the domain interacts".

use dlb_hypergraph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's datasets to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Sparse VLSI circuit: tree-like with preferential-attachment hubs.
    Xyce680s,
    /// Dense 2D polymer system: geometric graph with a huge radius.
    Lipid2D,
    /// 3D structural-analysis mesh: geometric graph, valence ~15.
    Auto,
    /// Molecular dynamics neighbor lists: 3D geometric, valence ~371.
    Apoa1_10,
    /// DNA electrophoresis matrix: near-regular random graph, valence ~18.
    Cage14,
}

impl DatasetKind {
    /// All five datasets in the paper's Table 1 order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Xyce680s,
        DatasetKind::Lipid2D,
        DatasetKind::Auto,
        DatasetKind::Apoa1_10,
        DatasetKind::Cage14,
    ];

    /// The dataset name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Xyce680s => "xyce680s",
            DatasetKind::Lipid2D => "2DLipid",
            DatasetKind::Auto => "auto",
            DatasetKind::Apoa1_10 => "apoa1-10",
            DatasetKind::Cage14 => "cage14",
        }
    }

    /// Full-scale vertex count from Table 1.
    pub fn full_vertices(self) -> usize {
        match self {
            DatasetKind::Xyce680s => 682_712,
            DatasetKind::Lipid2D => 4_368,
            DatasetKind::Auto => 448_695,
            DatasetKind::Apoa1_10 => 92_224,
            DatasetKind::Cage14 => 1_505_785,
        }
    }

    /// Full-scale edge count from Table 1.
    pub fn full_edges(self) -> usize {
        match self {
            DatasetKind::Xyce680s => 823_232,
            DatasetKind::Lipid2D => 2_793_988,
            DatasetKind::Auto => 3_314_611,
            DatasetKind::Apoa1_10 => 17_100_850,
            DatasetKind::Cage14 => 13_565_176,
        }
    }

    /// Full-scale average degree (`2|E|/|V|`).
    pub fn full_avg_degree(self) -> f64 {
        2.0 * self.full_edges() as f64 / self.full_vertices() as f64
    }

    /// The paper's application-area column.
    pub fn application(self) -> &'static str {
        match self {
            DatasetKind::Xyce680s => "VLSI design",
            DatasetKind::Lipid2D => "Polymer DFT",
            DatasetKind::Auto => "Structural analysis",
            DatasetKind::Apoa1_10 => "Molecular dynamics",
            DatasetKind::Cage14 => "DNA electrophoresis",
        }
    }
}

/// A generated dataset: the graph plus its provenance.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which regime this emulates.
    pub kind: DatasetKind,
    /// The scale it was generated at.
    pub scale: f64,
    /// The generated graph (unit vertex weights and sizes).
    pub graph: CsrGraph,
}

impl Dataset {
    /// Loads a real dataset from a MatrixMarket file, tagging it with the
    /// regime it stands in for. Use this to run the experiments on the
    /// actual Table 1 matrices when you have them (they are not
    /// redistributable with this workspace).
    pub fn from_matrix_market(
        kind: DatasetKind,
        path: &std::path::Path,
    ) -> std::io::Result<Dataset> {
        let file = std::fs::File::open(path)?;
        let graph = dlb_hypergraph::io::read_matrix_market_graph(std::io::BufReader::new(file))?;
        Ok(Dataset { kind, scale: 1.0, graph })
    }

    /// Generates the dataset at `scale ∈ (0, 1]` with the given seed.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn generate(kind: DatasetKind, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((kind.full_vertices() as f64 * scale).round() as usize).max(16);
        let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64).wrapping_mul(0x9E37_79B9));
        let graph = match kind {
            DatasetKind::Xyce680s => sparse_circuit(n, kind.full_avg_degree(), 209, &mut rng),
            DatasetKind::Lipid2D => {
                // Density regime: avg degree is ~29% of |V|.
                let density = kind.full_avg_degree() / kind.full_vertices() as f64;
                let avg_deg = (density * n as f64).max(4.0);
                geometric_torus(n, 2, avg_deg, &mut rng)
            }
            DatasetKind::Auto => geometric_torus(n, 3, kind.full_avg_degree(), &mut rng),
            DatasetKind::Apoa1_10 => {
                // Physical cutoff: constant valence, capped below |V|.
                let avg_deg = kind.full_avg_degree().min(n as f64 * 0.5);
                geometric_torus(n, 3, avg_deg, &mut rng)
            }
            DatasetKind::Cage14 => near_regular(n, kind.full_avg_degree(), &mut rng),
        };
        Dataset { kind, scale, graph }
    }
}

/// Sparse circuit generator: a random spanning tree (every vertex
/// reachable, min degree 1) plus preferential-attachment extras that
/// create the hub distribution (max degree ~200 at full scale).
fn sparse_circuit(n: usize, avg_deg: f64, hub_cap: usize, rng: &mut StdRng) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    // Endpoint pool for preferential attachment; seeded with the tree.
    let mut pool: Vec<usize> = Vec::with_capacity((avg_deg as usize + 1) * n);
    let mut degree = vec![0usize; n];
    let connect = |b: &mut GraphBuilder,
                       degree: &mut Vec<usize>,
                       pool: &mut Vec<usize>,
                       u: usize,
                       v: usize| {
        b.add_edge(u, v, 1.0);
        degree[u] += 1;
        degree[v] += 1;
        pool.push(u);
        pool.push(v);
    };
    for v in 1..n {
        let u = rng.gen_range(0..v);
        connect(&mut b, &mut degree, &mut pool, u, v);
    }
    // Extra edges to reach the target average degree, preferentially to
    // already-popular endpoints (capped so hubs stay realistic).
    let target_edges = (avg_deg * n as f64 / 2.0).round() as usize;
    let extra = target_edges.saturating_sub(n - 1);
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        // Preferential endpoint: sample from the pool, skip saturated hubs.
        let mut v = pool[rng.gen_range(0..pool.len())];
        if degree[v] >= hub_cap {
            v = rng.gen_range(0..n);
        }
        if u != v {
            connect(&mut b, &mut degree, &mut pool, u, v);
        }
    }
    b.build()
}

/// Random geometric graph on a `dim`-dimensional unit torus with the
/// radius chosen to hit `avg_deg` expected neighbors, built with a cell
/// grid so construction is near-linear in the number of edges.
fn geometric_torus(n: usize, dim: usize, avg_deg: f64, rng: &mut StdRng) -> CsrGraph {
    assert!(dim == 2 || dim == 3, "2D or 3D only");
    // Expected neighbors = n * volume(ball(r)).
    let r = if dim == 2 {
        (avg_deg / (n as f64 * std::f64::consts::PI)).sqrt()
    } else {
        (avg_deg * 3.0 / (n as f64 * 4.0 * std::f64::consts::PI)).cbrt()
    };
    let r = r.min(0.49); // torus wraparound sanity
    let points: Vec<[f64; 3]> = (0..n)
        .map(|_| {
            [
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                if dim == 3 { rng.gen::<f64>() } else { 0.0 },
            ]
        })
        .collect();

    // Cell grid with cell size >= r.
    let cells_per_axis = ((1.0 / r).floor() as usize).clamp(1, 512);
    let cell_of = |x: f64| ((x * cells_per_axis as f64) as usize).min(cells_per_axis - 1);
    let zdim = if dim == 3 { cells_per_axis } else { 1 };
    let cell_index = |p: &[f64; 3]| {
        let cx = cell_of(p[0]);
        let cy = cell_of(p[1]);
        let cz = if dim == 3 { cell_of(p[2]) } else { 0 };
        (cz * cells_per_axis + cy) * cells_per_axis + cx
    };
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); cells_per_axis * cells_per_axis * zdim];
    for (v, p) in points.iter().enumerate() {
        buckets[cell_index(p)].push(v);
    }

    let torus_d2 = |a: &[f64; 3], b: &[f64; 3]| {
        let mut d2 = 0.0;
        for i in 0..dim {
            let mut d = (a[i] - b[i]).abs();
            if d > 0.5 {
                d = 1.0 - d;
            }
            d2 += d * d;
        }
        d2
    };

    let r2 = r * r;
    let mut b = GraphBuilder::new(n);
    let reach = ((r * cells_per_axis as f64).ceil() as isize).max(1);
    let zreach = if dim == 3 { reach } else { 0 };
    let m = cells_per_axis as isize;
    for v in 0..n {
        let p = &points[v];
        let cx = cell_of(p[0]) as isize;
        let cy = cell_of(p[1]) as isize;
        let cz = if dim == 3 { cell_of(p[2]) as isize } else { 0 };
        for dz in -zreach..=zreach {
            for dy in -reach..=reach {
                for dx in -reach..=reach {
                    let nx = (cx + dx).rem_euclid(m) as usize;
                    let ny = (cy + dy).rem_euclid(m) as usize;
                    let nz = if dim == 3 { (cz + dz).rem_euclid(m) as usize } else { 0 };
                    let idx = (nz * cells_per_axis + ny) * cells_per_axis + nx;
                    for &u in &buckets[idx] {
                        if u > v && torus_d2(p, &points[u]) <= r2 {
                            b.add_edge(v, u, 1.0);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Near-regular random graph: a ring (degree ≥ 2 guaranteed) plus random
/// edges up to the target average degree, giving a tight, low-variance
/// degree distribution like cage14's (3..41 around 18).
fn near_regular(n: usize, avg_deg: f64, rng: &mut StdRng) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, 1.0);
    }
    let target_edges = (avg_deg * n as f64 / 2.0).round() as usize;
    // Spread extras evenly: each vertex draws a similar number of
    // partners, keeping the distribution concentrated.
    let extra = target_edges.saturating_sub(n);
    let per_vertex = extra / n + 1;
    let mut added = 0usize;
    'outer: for round in 0..per_vertex {
        for v in 0..n {
            if added >= extra {
                break 'outer;
            }
            let _ = round;
            let u = rng.gen_range(0..n);
            if u != v {
                b.add_edge(v, u, 1.0);
                added += 1;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(DatasetKind::Xyce680s.full_vertices(), 682_712);
        assert_eq!(DatasetKind::Cage14.full_edges(), 13_565_176);
        assert!((DatasetKind::Lipid2D.full_avg_degree() - 1279.3).abs() < 0.5);
        assert!((DatasetKind::Auto.full_avg_degree() - 14.8).abs() < 0.1);
        assert!((DatasetKind::Apoa1_10.full_avg_degree() - 370.9).abs() < 0.2);
        assert!((DatasetKind::Xyce680s.full_avg_degree() - 2.4).abs() < 0.1);
    }

    #[test]
    fn xyce_like_regime() {
        let d = Dataset::generate(DatasetKind::Xyce680s, 0.01, 1);
        let g = &d.graph;
        let s = g.degree_stats();
        assert!(g.num_vertices() >= 6_000);
        assert!((s.avg - 2.4).abs() < 0.5, "avg degree {}", s.avg);
        assert!(s.min >= 1);
        assert!(s.max >= 15, "expect hubs, max {}", s.max);
        assert!(s.max <= 250, "hubs capped, max {}", s.max);
        g.validate().unwrap();
    }

    #[test]
    fn lipid_like_is_dense() {
        let d = Dataset::generate(DatasetKind::Lipid2D, 0.125, 2);
        let g = &d.graph;
        let s = g.degree_stats();
        let density = s.avg / g.num_vertices() as f64;
        // Full-scale density is ~0.293.
        assert!((density - 0.29).abs() < 0.1, "density {density}");
        assert!(s.min > 0);
    }

    #[test]
    fn auto_like_mesh_valence() {
        let d = Dataset::generate(DatasetKind::Auto, 0.01, 3);
        let s = d.graph.degree_stats();
        assert!((s.avg - 14.8).abs() < 4.0, "avg {}", s.avg);
        assert!(s.max < 80, "geometric max degree {}", s.max);
    }

    #[test]
    fn cage_like_tight_distribution() {
        let d = Dataset::generate(DatasetKind::Cage14, 0.005, 4);
        let s = d.graph.degree_stats();
        assert!((s.avg - 18.0).abs() < 3.0, "avg {}", s.avg);
        assert!(s.min >= 2, "min {}", s.min);
        assert!(s.max <= 60, "max {}", s.max);
    }

    #[test]
    fn apoa_like_high_valence() {
        let d = Dataset::generate(DatasetKind::Apoa1_10, 0.02, 5);
        let s = d.graph.degree_stats();
        assert!((s.avg - 370.9).abs() < 80.0, "avg {}", s.avg);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Auto, 0.005, 7);
        let b = Dataset::generate(DatasetKind::Auto, 0.005, 7);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.neighbors(0), b.graph.neighbors(0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetKind::Cage14, 0.002, 1);
        let b = Dataset::generate(DatasetKind::Cage14, 0.002, 2);
        assert_ne!(a.graph.neighbors(0), b.graph.neighbors(0));
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        let _ = Dataset::generate(DatasetKind::Auto, 0.0, 1);
    }

    #[test]
    fn from_matrix_market_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dlb-ds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.mtx");
        std::fs::write(&path, "3 3 2\n1 2\n2 3\n").unwrap();
        let d = Dataset::from_matrix_market(DatasetKind::Auto, &path).unwrap();
        assert_eq!(d.graph.num_vertices(), 3);
        assert_eq!(d.graph.num_edges(), 2);
        assert_eq!(d.scale, 1.0);
    }
}
