//! Non-symmetric (directed) problems — the case the paper's conclusion
//! singles out: "the full benefit of hypergraph partitioning is realized
//! on unsymmetric and non-square problems that cannot be represented
//! easily with graph models."
//!
//! In a directed dependency structure (circuit signal flow, asymmetric
//! sparse matrix), vertex `v`'s value is needed by its *out*-neighbors
//! only. The column-net hypergraph captures that exactly: one net per
//! vertex containing the vertex and its consumers, so the k-1 cut equals
//! the true communication volume. A graph partitioner must first
//! symmetrize the structure, losing the direction information and
//! optimizing a metric that double-counts or mis-counts transfers.

use dlb_hypergraph::{CsrGraph, GraphBuilder, Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed problem instance with the two partitioner views.
#[derive(Clone, Debug)]
pub struct NonsymmetricDataset {
    /// Out-adjacency (consumers) per vertex.
    pub consumers: Vec<Vec<usize>>,
    /// Column-net hypergraph: net `v` = `{v} ∪ consumers(v)`, cost 1.
    /// Its k-1 cut is the exact communication volume.
    pub hypergraph: Hypergraph,
    /// Symmetrized graph (edge `{u,v}` if either direction exists) — the
    /// only view a graph partitioner can use.
    pub symmetrized: CsrGraph,
}

/// Generates a layered circuit-like directed structure: `n` vertices in
/// layers; each vertex draws `~fanout` consumers from the next layers,
/// plus a few long-range feedbacks. Fan-out is skewed (a few high-fanout
/// driver nets), which is where edge-cut and volume diverge most.
pub fn directed_circuit(n: usize, avg_fanout: f64, seed: u64) -> NonsymmetricDataset {
    assert!(n >= 4, "need at least 4 vertices");
    assert!(avg_fanout > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n.saturating_sub(1) {
        // Skewed fanout: mostly 1-2, occasionally large drivers.
        let fanout = if rng.gen_bool(0.05) {
            (avg_fanout * 8.0) as usize
        } else {
            ((avg_fanout * 0.7) as usize).max(1)
        };
        let lo = v + 1;
        let hi = (v + 1 + n / 8).min(n);
        for _ in 0..fanout {
            let c = if rng.gen_bool(0.9) {
                rng.gen_range(lo..hi.max(lo + 1))
            } else {
                rng.gen_range(0..n) // long-range feedback
            };
            if c != v && !consumers[v].contains(&c) {
                consumers[v].push(c);
            }
        }
    }

    let mut hb = HypergraphBuilder::new(n);
    let mut gb = GraphBuilder::new(n);
    for (v, cons) in consumers.iter().enumerate() {
        hb.add_net(1.0, std::iter::once(v).chain(cons.iter().copied()));
        for &c in cons {
            gb.add_edge(v, c, 1.0);
        }
    }
    NonsymmetricDataset {
        hypergraph: hb.build(),
        symmetrized: gb.build(),
        consumers,
    }
}

/// The exact communication volume of a partition for the directed
/// problem: for each producer `v`, one transfer per *other* part that
/// hosts at least one consumer of `v`. Equals the k-1 cut of the
/// column-net hypergraph (tested below).
pub fn directed_comm_volume(d: &NonsymmetricDataset, part: &[usize], k: usize) -> f64 {
    let mut volume = 0.0;
    let mut mark = vec![usize::MAX; k];
    for (v, cons) in d.consumers.iter().enumerate() {
        let home = part[v];
        for &c in cons {
            let p = part[c];
            if p != home && mark[p] != v {
                mark[p] = v;
                volume += 1.0;
            }
        }
        // Reset marks lazily via the `v` stamp: nothing to do.
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics::cutsize_connectivity;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn generator_shapes() {
        let d = directed_circuit(200, 2.0, 1);
        assert_eq!(d.hypergraph.num_vertices(), 200);
        assert_eq!(d.hypergraph.num_nets(), 200);
        d.hypergraph.validate().unwrap();
        d.symmetrized.validate().unwrap();
        assert!(d.symmetrized.num_edges() > 100);
    }

    #[test]
    fn hypergraph_cut_equals_directed_volume() {
        let d = directed_circuit(150, 2.5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for k in [2usize, 3, 5] {
            for _ in 0..5 {
                let part: Vec<usize> = (0..150).map(|_| rng.gen_range(0..k)).collect();
                let cut = cutsize_connectivity(&d.hypergraph, &part, k);
                let vol = directed_comm_volume(&d, &part, k);
                assert!(
                    (cut - vol).abs() < 1e-9,
                    "k={k}: hypergraph cut {cut} vs direct volume {vol}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = directed_circuit(100, 2.0, 9);
        let b = directed_circuit(100, 2.0, 9);
        assert_eq!(a.consumers, b.consumers);
    }
}
