//! Graph contraction: merge matched pairs, sum parallel edge weights,
//! drop collapsed self-edges, and (for adaptive repartitioning) carry
//! part labels down to the coarse graph.

use dlb_hypergraph::{CsrGraph, GraphBuilder};

use crate::matching::GraphMatching;

/// One graph coarsening level.
#[derive(Clone, Debug)]
pub struct GraphLevel {
    /// The coarse graph.
    pub coarse: CsrGraph,
    /// `fine_to_coarse[fine_v] = coarse_v`.
    pub fine_to_coarse: Vec<usize>,
}

/// Contracts `g` along `matching`. Vertex weights and sizes sum; edges
/// between merged endpoints vanish; parallel coarse edges merge with
/// summed weights (handled by [`GraphBuilder`]).
pub fn contract_graph(g: &CsrGraph, matching: &GraphMatching) -> GraphLevel {
    let n = g.num_vertices();
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        let m = matching.mate[v];
        if m >= v {
            fine_to_coarse[v] = next;
            if m != v {
                fine_to_coarse[m] = next;
            }
            next += 1;
        }
    }
    let nc = next;

    let mut b = GraphBuilder::new(nc);
    let mut cw = vec![0.0f64; nc];
    let mut cs = vec![0.0f64; nc];
    for v in 0..n {
        let c = fine_to_coarse[v];
        cw[c] += g.vertex_weight(v);
        cs[c] += g.vertex_size(v);
    }
    for c in 0..nc {
        b.set_vertex_weight(c, cw[c]);
        b.set_vertex_size(c, cs[c]);
    }
    for v in 0..n {
        let cv = fine_to_coarse[v];
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            if u > v {
                let cu = fine_to_coarse[u];
                if cu != cv {
                    b.add_edge(cv, cu, w);
                }
            }
        }
    }
    GraphLevel { coarse: b.build(), fine_to_coarse }
}

/// Projects per-fine-vertex labels onto the coarse graph (all fine
/// vertices of a coarse vertex must agree — guaranteed under local
/// matching).
pub fn project_labels_to_coarse(level: &GraphLevel, labels: &[usize]) -> Vec<usize> {
    let mut coarse = vec![usize::MAX; level.coarse.num_vertices()];
    for (v, &c) in level.fine_to_coarse.iter().enumerate() {
        if coarse[c] == usize::MAX {
            coarse[c] = labels[v];
        } else {
            debug_assert_eq!(coarse[c], labels[v], "coarse vertex spans two labels");
        }
    }
    coarse
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_matching(n: usize, pairs: &[(usize, usize)]) -> GraphMatching {
        let mut mate: Vec<usize> = (0..n).collect();
        for &(u, v) in pairs {
            mate[u] = v;
            mate[v] = u;
        }
        GraphMatching { mate, num_pairs: pairs.len() }
    }

    #[test]
    fn contraction_merges_and_sums() {
        // Square 0-1-2-3-0 with an extra 0-2 diagonal.
        let g = CsrGraph::from_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0), (0, 2, 5.0)],
        );
        let lvl = contract_graph(&g, &pair_matching(4, &[(0, 1), (2, 3)]));
        assert_eq!(lvl.coarse.num_vertices(), 2);
        // Edges between the two coarse vertices: 1-2 (2.0), 3-0 (4.0),
        // 0-2 (5.0) → one edge weight 11; internal 0-1 and 2-3 vanish.
        assert_eq!(lvl.coarse.num_edges(), 1);
        assert_eq!(lvl.coarse.edge_weights(0), &[11.0]);
        assert_eq!(lvl.coarse.vertex_weight(0), 2.0);
        lvl.coarse.validate().unwrap();
    }

    #[test]
    fn weight_is_conserved() {
        let g = crate::tests::random_graph(40, 100, 5);
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let m = crate::matching::heavy_edge_matching(&g, None, &mut rng);
        let lvl = contract_graph(&g, &m);
        assert!((lvl.coarse.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9);
    }

    #[test]
    fn label_projection() {
        let g = crate::tests::grid_graph(2, 4);
        let labels = vec![0, 0, 1, 1, 0, 0, 1, 1];
        // Match within labels only: (0,1), (2,3).
        let m = pair_matching(8, &[(0, 1), (2, 3)]);
        let lvl = contract_graph(&g, &m);
        let coarse = project_labels_to_coarse(&lvl, &labels);
        assert_eq!(coarse.len(), 6);
        assert_eq!(coarse[lvl.fine_to_coarse[0]], 0);
        assert_eq!(coarse[lvl.fine_to_coarse[2]], 1);
    }
}
