//! Adaptive repartitioning (the ParMETIS `AdaptiveRepart` analog, after
//! Schloegel, Karypis & Kumar's unified repartitioning algorithm).
//!
//! Structure, and how it contrasts with the paper's model:
//!
//! 1. **Local coarsening** — heavy-edge matching restricted to pairs in
//!    the same *old* part, so the previous partition is exactly
//!    representable at every level.
//! 2. **Coarse solution = old partition** — projected down the hierarchy
//!    and rebalanced by greedy diffusion (overweight parts drain into
//!    underweight ones along the cheapest moves).
//! 3. **Combined-objective refinement** — boundary FM on
//!    `α·edgecut + migration` at every level, the only place migration
//!    cost enters. `α` is the paper's iteration count (ParMETIS's `ITR`).
//!
//! Because migration is visible *only* to refinement (not to the
//! coarsening that decides what can move together), this scheme trades
//! migration against communication less globally than the paper's
//! fixed-vertex hypergraph model — the behaviour the paper's experiments
//! surface as growing migration cost at large `k`.

use dlb_hypergraph::{CsrGraph, PartTargets, PartId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::coarsen::{contract_graph, project_labels_to_coarse, GraphLevel};
use crate::config::GraphConfig;
use crate::matching::heavy_edge_matching;
use crate::refine::{refine_graph, Objective};
use crate::GraphPartitionResult;

/// Parameters for adaptive repartitioning.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Base multilevel knobs (ε, seed, coarsening limits, pass counts).
    pub base: GraphConfig,
    /// The communication-vs-migration trade-off: iterations per epoch
    /// (paper's α, ParMETIS's ITR). Larger values emphasize edge cut.
    pub alpha: f64,
}

impl AdaptiveConfig {
    /// Adaptive configuration with the given α and default base knobs.
    pub fn with_alpha(alpha: f64) -> Self {
        AdaptiveConfig { base: GraphConfig::default(), alpha }
    }

    /// Same, with a specific seed.
    pub fn seeded(alpha: f64, seed: u64) -> Self {
        AdaptiveConfig { base: GraphConfig::seeded(seed), alpha }
    }
}

/// Repartitions `g` into `k` parts, starting from `old_part`, minimizing
/// `α·edgecut + migration` subject to the balance constraint.
///
/// # Panics
/// Panics if `old_part` has the wrong length or contains parts `>= k`.
pub fn adaptive_repart(
    g: &CsrGraph,
    k: usize,
    old_part: &[PartId],
    cfg: &AdaptiveConfig,
) -> GraphPartitionResult {
    assert!(k > 0, "k must be positive");
    assert_eq!(old_part.len(), g.num_vertices(), "old partition length mismatch");
    assert!(old_part.iter().all(|&p| p < k), "old partition references part >= k");

    let mut rng = StdRng::seed_from_u64(cfg.base.seed);
    let targets = PartTargets::uniform(g.total_vertex_weight(), k, cfg.base.epsilon);

    // --- Local coarsening, carrying old-part labels down. ---
    let coarse_target = (cfg.base.coarse_to_factor * k).max(cfg.base.min_coarse_vertices);
    let mut levels: Vec<(GraphLevel, Vec<PartId>)> = Vec::new();
    let mut current = g.clone();
    let mut current_old = old_part.to_vec();
    while current.num_vertices() > coarse_target && levels.len() < cfg.base.max_levels {
        let m = heavy_edge_matching(&current, Some(&current_old), &mut rng);
        let before = current.num_vertices();
        if ((before - m.coarse_count()) as f64) < before as f64 * cfg.base.min_reduction {
            break;
        }
        let level = contract_graph(&current, &m);
        let coarse_old = project_labels_to_coarse(&level, &current_old);
        current = level.coarse.clone();
        current_old = coarse_old.clone();
        levels.push((level, coarse_old));
    }

    // --- Coarse solution: the old partition, rebalanced + refined under
    // the combined objective. ---
    let (coarsest, coarsest_old): (&CsrGraph, &[PartId]) = match levels.last() {
        Some((l, o)) => (&l.coarse, o),
        None => (g, old_part),
    };
    let obj = Objective { alpha: cfg.alpha, old_part: Some(coarsest_old) };
    let mut part = coarsest_old.to_vec();
    refine_graph(coarsest, &targets, &obj, &mut part, cfg.base.max_refine_passes, &mut rng);

    // --- Uncoarsen with combined-objective refinement per level. ---
    for i in (0..levels.len()).rev() {
        let (level, _) = &levels[i];
        let (finer, finer_old): (&CsrGraph, &[PartId]) = if i == 0 {
            (g, old_part)
        } else {
            (&levels[i - 1].0.coarse, &levels[i - 1].1)
        };
        let mut finer_part = vec![0usize; finer.num_vertices()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            finer_part[v] = part[c];
        }
        let obj = Objective { alpha: cfg.alpha, old_part: Some(finer_old) };
        refine_graph(finer, &targets, &obj, &mut finer_part, cfg.base.max_refine_passes, &mut rng);
        part = finer_part;
    }

    GraphPartitionResult::evaluate(g, part, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;

    #[test]
    fn balanced_input_barely_moves() {
        // A well-balanced, well-cut old partition should stay put when
        // alpha is small (migration dominates).
        let g = crate::tests::grid_graph(8, 8);
        let old: Vec<usize> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        let cfg = AdaptiveConfig::seeded(1.0, 3);
        let r = adaptive_repart(&g, 2, &old, &cfg);
        let moved = metrics::moved_vertex_count(&old, &r.part);
        assert!(moved <= 4, "{moved} vertices moved from a good partition");
    }

    #[test]
    fn rebalances_weight_growth() {
        // Inflate weights in part 0 so it is badly overweight; the
        // repartitioner must restore balance.
        let mut g = crate::tests::grid_graph(8, 8);
        let old: Vec<usize> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        for v in 0..64 {
            if old[v] == 0 {
                g.set_vertex_weight(v, 3.0);
            }
        }
        let cfg = AdaptiveConfig::seeded(10.0, 4);
        let r = adaptive_repart(&g, 2, &old, &cfg);
        assert!(r.imbalance <= 1.0 + cfg.base.epsilon + 0.05, "imbalance {}", r.imbalance);
        // Migration should be moderate: far fewer than half the vertices.
        let moved = metrics::moved_vertex_count(&old, &r.part);
        assert!(moved < 32, "{moved} moved");
    }

    #[test]
    fn high_alpha_tolerates_more_migration_for_cut() {
        // A scrambled old partition: with high alpha the result should
        // approach a good cut even at migration expense.
        let g = crate::tests::grid_graph(10, 10);
        let old: Vec<usize> = (0..100).map(|v| v % 2).collect(); // terrible cut
        let lo = adaptive_repart(&g, 2, &old, &AdaptiveConfig::seeded(0.5, 5));
        let hi = adaptive_repart(&g, 2, &old, &AdaptiveConfig::seeded(1000.0, 5));
        let mig_lo = metrics::moved_vertex_count(&old, &lo.part);
        let mig_hi = metrics::moved_vertex_count(&old, &hi.part);
        assert!(
            hi.edge_cut <= lo.edge_cut,
            "high alpha cut {} should be <= low alpha cut {}",
            hi.edge_cut,
            lo.edge_cut
        );
        assert!(
            mig_hi >= mig_lo,
            "high alpha should migrate at least as much ({mig_hi} vs {mig_lo})"
        );
    }

    #[test]
    fn respects_old_partition_representability() {
        // Local matching must never merge across old parts, so the old
        // partition projects exactly; smoke-test via determinism + zero
        // migration at alpha -> 0 on balanced input.
        let g = crate::tests::random_graph(80, 200, 6);
        let old: Vec<usize> = (0..80).map(|v| v % 4).collect();
        let cfg = AdaptiveConfig::seeded(1e-9, 7);
        let r = adaptive_repart(&g, 4, &old, &cfg);
        // Weights are unit and old is perfectly balanced: nothing should move.
        assert_eq!(metrics::moved_vertex_count(&old, &r.part), 0);
    }
}
