//! Coarse partitioning for graphs: randomized greedy graph growing (GGG)
//! with a best-of-N wrapper, mirroring METIS's coarse phase.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dlb_hypergraph::{metrics, CsrGraph, PartTargets, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const UNASSIGNED: usize = usize::MAX;

struct Cand {
    affinity: f64,
    v: usize,
}
impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.affinity.total_cmp(&other.affinity).then_with(|| other.v.cmp(&self.v))
    }
}

/// One greedy-graph-growing attempt.
fn greedy_growing(g: &CsrGraph, targets: &PartTargets, rng: &mut StdRng) -> Vec<PartId> {
    let n = g.num_vertices();
    let k = targets.k();
    let mut part = vec![UNASSIGNED; n];
    let mut weights = vec![0.0f64; k];
    let mut affinity = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;

    for p in 0..k.saturating_sub(1) {
        affinity.iter_mut().for_each(|a| *a = 0.0);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
        while weights[p] < targets.target[p] {
            let next = loop {
                match heap.pop() {
                    Some(c) => {
                        if part[c.v] != UNASSIGNED {
                            continue;
                        }
                        if (c.affinity - affinity[c.v]).abs() > 1e-12 {
                            heap.push(Cand { affinity: affinity[c.v], v: c.v });
                            continue;
                        }
                        break Some(c.v);
                    }
                    None => break None,
                }
            };
            let v = match next {
                Some(v) => v,
                None => {
                    while cursor < order.len() && part[order[cursor]] != UNASSIGNED {
                        cursor += 1;
                    }
                    match order.get(cursor) {
                        Some(&v) => v,
                        None => break,
                    }
                }
            };
            part[v] = p;
            weights[p] += g.vertex_weight(v);
            for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
                if part[u] == UNASSIGNED {
                    affinity[u] += w;
                    heap.push(Cand { affinity: affinity[u], v: u });
                }
            }
        }
    }
    for v in 0..n {
        if part[v] == UNASSIGNED {
            let w = g.vertex_weight(v);
            let last = k - 1;
            let p = if weights[last] + w <= targets.cap(last) {
                last
            } else {
                (0..k)
                    .min_by(|&a, &b| {
                        (weights[a] + w - targets.target[a])
                            .total_cmp(&(weights[b] + w - targets.target[b]))
                    })
                    .unwrap()
            };
            part[v] = p;
            weights[p] += w;
        }
    }
    part
}

/// Scores an assignment: edge cut plus a heavy penalty for cap overshoot.
fn score(g: &CsrGraph, part: &[PartId], targets: &PartTargets) -> f64 {
    let k = targets.k();
    let cut = metrics::edge_cut(g, part, k);
    let weights = metrics::graph_part_weights(g, part, k);
    let violation = (targets.violation(&weights) - targets.epsilon).max(0.0);
    let total_w: f64 = (0..g.num_vertices())
        .map(|v| g.edge_weights(v).iter().sum::<f64>())
        .sum();
    cut + violation * (1.0 + total_w)
}

/// Best-of-N greedy graph growing.
pub fn initial_graph_partition(
    g: &CsrGraph,
    targets: &PartTargets,
    attempts: usize,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let mut best: Option<(f64, Vec<PartId>)> = None;
    for _ in 0..attempts.max(1) {
        let mut attempt_rng = StdRng::seed_from_u64(rng.gen());
        let part = greedy_growing(g, targets, &mut attempt_rng);
        let s = score(g, &part, targets);
        if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
            best = Some((s, part));
        }
    }
    best.expect("at least one attempt").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_assignment() {
        let g = crate::tests::random_graph(50, 120, 1);
        let t = PartTargets::uniform(g.total_vertex_weight(), 4, 0.05);
        let mut rng = StdRng::seed_from_u64(0);
        let part = initial_graph_partition(&g, &t, 4, &mut rng);
        assert_eq!(part.len(), 50);
        assert!(part.iter().all(|&p| p < 4));
    }

    #[test]
    fn grows_connected_regions_on_grid() {
        let g = crate::tests::grid_graph(8, 8);
        let t = PartTargets::uniform(64.0, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let part = initial_graph_partition(&g, &t, 8, &mut rng);
        let cut = metrics::edge_cut(&g, &part, 2);
        // A good bisection of an 8x8 grid cuts ~8; grown regions should
        // be far below the random expectation (~56).
        assert!(cut <= 20.0, "cut {cut}");
    }

    #[test]
    fn respects_targets_roughly() {
        let g = crate::tests::grid_graph(10, 10);
        let t = PartTargets::proportional(100.0, &[3, 1], 0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let part = initial_graph_partition(&g, &t, 4, &mut rng);
        let w = metrics::graph_part_weights(&g, &part, 2);
        assert!((w[0] - 75.0).abs() <= 8.0, "weights {w:?}");
    }
}
