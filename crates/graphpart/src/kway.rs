//! K-way graph partitioning from scratch (the `Partkway` analog):
//! multilevel recursive bisection with heavy-edge matching, greedy graph
//! growing, and boundary FM on the edge cut.

use dlb_hypergraph::subset::induced_subgraph;
use dlb_hypergraph::{CsrGraph, PartTargets, PartId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::coarsen::{contract_graph, GraphLevel};
use crate::config::GraphConfig;
use crate::initial::initial_graph_partition;
use crate::matching::heavy_edge_matching;
use crate::refine::{refine_graph, Objective};
use crate::GraphPartitionResult;

/// One multilevel V-cycle on a graph (any number of parts in `targets`).
pub(crate) fn multilevel_graph(
    g: &CsrGraph,
    targets: &PartTargets,
    cfg: &GraphConfig,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let k = targets.k();
    if k == 1 {
        return vec![0; g.num_vertices()];
    }
    if g.num_vertices() == 0 {
        return Vec::new();
    }

    // Coarsen.
    let coarse_target = (cfg.coarse_to_factor * k).max(cfg.min_coarse_vertices);
    let mut levels: Vec<GraphLevel> = Vec::new();
    let mut current = g.clone();
    while current.num_vertices() > coarse_target && levels.len() < cfg.max_levels {
        let m = heavy_edge_matching(&current, None, rng);
        let before = current.num_vertices();
        if ((before - m.coarse_count()) as f64) < before as f64 * cfg.min_reduction {
            break;
        }
        let level = contract_graph(&current, &m);
        current = level.coarse.clone();
        levels.push(level);
    }

    // Coarse partition + refine.
    let coarsest: &CsrGraph = levels.last().map(|l| &l.coarse).unwrap_or(g);
    let mut part = initial_graph_partition(coarsest, targets, cfg.initial_attempts, rng);
    refine_graph(coarsest, targets, &Objective::CUT_ONLY, &mut part, cfg.max_refine_passes, rng);

    // Uncoarsen.
    for i in (0..levels.len()).rev() {
        let level = &levels[i];
        let finer: &CsrGraph = if i == 0 { g } else { &levels[i - 1].coarse };
        let mut finer_part = vec![0usize; finer.num_vertices()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            finer_part[v] = part[c];
        }
        refine_graph(finer, targets, &Objective::CUT_ONLY, &mut finer_part, cfg.max_refine_passes, rng);
        part = finer_part;
    }
    part
}

fn per_level_epsilon(epsilon: f64, k: usize) -> f64 {
    let depth = (k.max(2) as f64).log2().ceil().max(1.0);
    (1.0 + epsilon).powf(1.0 / depth) - 1.0
}

fn recurse(
    g: &CsrGraph,
    k: usize,
    cfg: &GraphConfig,
    eps: f64,
    rng: &mut StdRng,
) -> Vec<PartId> {
    if k == 1 {
        return vec![0; g.num_vertices()];
    }
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let targets = PartTargets::proportional(g.total_vertex_weight(), &[k0, k1], eps);
    let sides = multilevel_graph(g, &targets, cfg, rng);

    let keep0: Vec<bool> = sides.iter().map(|&s| s == 0).collect();
    let keep1: Vec<bool> = sides.iter().map(|&s| s == 1).collect();
    let side0 = induced_subgraph(g, &keep0);
    let side1 = induced_subgraph(g, &keep1);
    let part0 = recurse(&side0.graph, k0, cfg, eps, rng);
    let part1 = recurse(&side1.graph, k1, cfg, eps, rng);

    let mut part = vec![0usize; g.num_vertices()];
    for (new_v, &old_v) in side0.to_base.iter().enumerate() {
        part[old_v] = part0[new_v];
    }
    for (new_v, &old_v) in side1.to_base.iter().enumerate() {
        part[old_v] = k0 + part1[new_v];
    }
    part
}

/// Partitions `g` into `k` parts from scratch (edge-cut objective).
pub fn partition_kway(g: &CsrGraph, k: usize, cfg: &GraphConfig) -> GraphPartitionResult {
    assert!(k > 0, "k must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let eps = per_level_epsilon(cfg.epsilon, k);
    let part = recurse(g, k, cfg, eps, &mut rng);
    GraphPartitionResult::evaluate(g, part, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;

    #[test]
    fn eight_way_grid() {
        let g = crate::tests::grid_graph(16, 16);
        let cfg = GraphConfig::seeded(3);
        let r = partition_kway(&g, 8, &cfg);
        assert!(r.part.iter().all(|&p| p < 8));
        assert!(r.imbalance <= 1.0 + cfg.epsilon + 0.02, "imbalance {}", r.imbalance);
        let w = metrics::graph_part_weights(&g, &r.part, 8);
        assert!(w.iter().all(|&x| x > 0.0), "empty part: {w:?}");
    }

    #[test]
    fn deterministic() {
        let g = crate::tests::random_graph(150, 400, 9);
        let a = partition_kway(&g, 4, &GraphConfig::seeded(5));
        let b = partition_kway(&g, 4, &GraphConfig::seeded(5));
        assert_eq!(a.part, b.part);
    }

    #[test]
    fn k_one() {
        let g = crate::tests::grid_graph(3, 3);
        let r = partition_kway(&g, 1, &GraphConfig::default());
        assert!(r.part.iter().all(|&p| p == 0));
        assert_eq!(r.edge_cut, 0.0);
    }

    #[test]
    fn odd_k() {
        let g = crate::tests::grid_graph(12, 12);
        let r = partition_kway(&g, 5, &GraphConfig::seeded(7));
        assert!(r.imbalance <= 1.15, "imbalance {}", r.imbalance);
    }
}
