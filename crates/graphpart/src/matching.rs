//! Heavy-edge matching (HEM) for graph coarsening.
//!
//! Greedy first-choice matching in random visit order: each unmatched
//! vertex pairs with its unmatched neighbor across the heaviest edge.
//! The adaptive repartitioner uses the *local* variant that only matches
//! vertices assigned to the same old part, which keeps the old partition
//! exactly representable on every coarse level (the ParMETIS adaptive
//! strategy).

use dlb_hypergraph::CsrGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A graph matching: `mate[v] == v` when unmatched.
#[derive(Clone, Debug)]
pub struct GraphMatching {
    /// Partner per vertex (self if unmatched).
    pub mate: Vec<usize>,
    /// Matched pair count.
    pub num_pairs: usize,
}

impl GraphMatching {
    /// Number of coarse vertices the matching produces.
    pub fn coarse_count(&self) -> usize {
        self.mate.len() - self.num_pairs
    }
}

/// Heavy-edge matching. When `same_part_only` is `Some(part)`, vertices
/// may only match within the same part label (local matching for
/// adaptive repartitioning).
pub fn heavy_edge_matching(
    g: &CsrGraph,
    same_part_only: Option<&[usize]>,
    rng: &mut StdRng,
) -> GraphMatching {
    let n = g.num_vertices();
    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    for &u in &order {
        if mate[u] != u {
            continue;
        }
        let mut best: Option<usize> = None;
        let mut best_w = 0.0f64;
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            if mate[v] != v || v == u {
                continue;
            }
            if let Some(part) = same_part_only {
                if part[u] != part[v] {
                    continue;
                }
            }
            if w > best_w {
                best_w = w;
                best = Some(v);
            }
        }
        if let Some(v) = best {
            mate[u] = v;
            mate[v] = u;
            num_pairs += 1;
        }
    }
    GraphMatching { mate, num_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn picks_heaviest_edges() {
        // Path 0 -5- 1 -1- 2 -5- 3: heavy pairs (0,1) and (2,3).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 5.0);
        let g = b.build();
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = heavy_edge_matching(&g, None, &mut rng);
            assert_eq!(m.mate[0], 1, "seed {seed}");
            assert_eq!(m.mate[2], 3, "seed {seed}");
        }
    }

    #[test]
    fn local_matching_respects_parts() {
        let g = crate::tests::grid_graph(4, 4);
        let part: Vec<usize> = (0..16).map(|v| v / 8).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let m = heavy_edge_matching(&g, Some(&part), &mut rng);
        for v in 0..16 {
            let u = m.mate[v];
            if u != v {
                assert_eq!(part[v], part[u], "cross-part match {v}-{u}");
            }
        }
    }

    #[test]
    fn matching_is_symmetric() {
        let g = crate::tests::random_graph(50, 120, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let m = heavy_edge_matching(&g, None, &mut rng);
        let mut pairs = 0;
        for v in 0..50 {
            assert_eq!(m.mate[m.mate[v]], v);
            if m.mate[v] != v {
                pairs += 1;
            }
        }
        assert_eq!(pairs, 2 * m.num_pairs);
    }

    #[test]
    fn isolated_vertices_unmatched() {
        let g = CsrGraph::from_edges_unit(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(0);
        let m = heavy_edge_matching(&g, None, &mut rng);
        assert_eq!(m.mate[2], 2);
    }
}
