//! A ParMETIS-like multilevel **graph** partitioner: the baseline the
//! paper compares against.
//!
//! Two entry points mirror the two ParMETIS options used in Section 5:
//!
//! * [`partition_kway`] — multilevel k-way graph partitioning from
//!   scratch via recursive bisection (`Partkway` analog): heavy-edge
//!   matching, greedy graph growing, boundary FM on the edge cut.
//! * [`adaptive_repart`] — the adaptive repartitioning scheme
//!   (`AdaptiveRepart` analog, after Schloegel et al.'s unified
//!   algorithm): coarsening matches only vertices in the same old part so
//!   the old partition stays representable, the coarsest solution *is*
//!   the old partition (rebalanced by greedy diffusion), and refinement
//!   optimizes the combined objective `α·edgecut + migration` — i.e.
//!   migration cost is accounted for **only during refinement**, which is
//!   exactly the structural property the paper contrasts with its own
//!   model (where migration is part of the hypergraph itself, "deeply
//!   integrated starting from coarsening").
//!
//! The trade-off measured in the paper follows from this structure: the
//! graph partitioner is markedly faster (edge gains are O(degree), no
//! pin-count bookkeeping) but optimizes the approximate edge-cut metric
//! rather than true communication volume, and its migration control is
//! shallower.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod coarsen;
pub mod config;
pub mod initial;
pub mod kway;
pub mod matching;
pub mod refine;

pub use adaptive::{adaptive_repart, AdaptiveConfig};
pub use config::GraphConfig;
pub use kway::partition_kway;

use dlb_hypergraph::{metrics, CsrGraph, PartId};

/// Result of a graph partitioning call.
#[derive(Clone, Debug)]
pub struct GraphPartitionResult {
    /// Part per vertex.
    pub part: Vec<PartId>,
    /// Weighted edge cut of the assignment.
    pub edge_cut: f64,
    /// Load imbalance `max W_p / W_avg`.
    pub imbalance: f64,
}

impl GraphPartitionResult {
    /// Computes edge cut and imbalance for `part` on `g`.
    pub fn evaluate(g: &CsrGraph, part: Vec<PartId>, k: usize) -> Self {
        let edge_cut = metrics::edge_cut(g, &part, k);
        let imbalance = metrics::graph_imbalance(g, &part, k);
        GraphPartitionResult { part, edge_cut, imbalance }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dlb_hypergraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 2D grid graph.
    pub fn grid_graph(rows: usize, cols: usize) -> CsrGraph {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut b = GraphBuilder::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        b.build()
    }

    /// Random graph for smoke tests.
    pub fn random_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1..4) as f64);
            }
        }
        b.build()
    }

    #[test]
    fn kway_scratch_on_grid() {
        let g = grid_graph(16, 16);
        let cfg = GraphConfig::seeded(1);
        let r = partition_kway(&g, 4, &cfg);
        assert!(r.imbalance <= 1.0 + cfg.epsilon + 0.02, "imbalance {}", r.imbalance);
        assert!(r.edge_cut <= 64.0, "edge cut {}", r.edge_cut);
    }

    #[test]
    fn kway_two_cliques() {
        let mut b = GraphBuilder::new(12);
        for i in 0..6 {
            for j in i + 1..6 {
                b.add_edge(i, j, 5.0);
                b.add_edge(6 + i, 6 + j, 5.0);
            }
        }
        b.add_edge(5, 6, 1.0);
        let g = b.build();
        let r = partition_kway(&g, 2, &GraphConfig::seeded(2));
        assert_eq!(r.edge_cut, 1.0, "should cut only the bridge");
    }
}
