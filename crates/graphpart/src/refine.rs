//! Boundary FM refinement for graphs, on the plain edge cut or on the
//! combined adaptive objective `α·edgecut + migration`.
//!
//! The combined objective is how the ParMETIS-like adaptive scheme
//! accounts for data migration: *only* in refinement, as a per-move gain
//! adjustment — moving `v` off the part it occupied in the previous
//! epoch adds `size(v)` to migration, moving it back removes it. This is
//! the structural contrast with the paper's model, which encodes
//! migration in the (hyper)graph itself so coarsening sees it too.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dlb_hypergraph::{CsrGraph, PartTargets, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// What the refiner optimizes.
#[derive(Clone, Copy, Debug)]
pub struct Objective<'a> {
    /// Weight of the edge-cut term (the paper's α / ParMETIS's ITR).
    pub alpha: f64,
    /// Previous-epoch assignment; when present, the migration term
    /// `Σ size(v)·[part(v) ≠ old(v)]` is active with unit weight.
    pub old_part: Option<&'a [PartId]>,
}

impl Objective<'_> {
    /// Pure edge-cut objective (scratch partitioning).
    pub const CUT_ONLY: Objective<'static> = Objective { alpha: 1.0, old_part: None };
}

/// Incrementally maintained graph partition state.
pub struct GraphState<'a> {
    g: &'a CsrGraph,
    k: usize,
    /// Current assignment.
    pub part: Vec<PartId>,
    /// Total vertex weight per part.
    pub weights: Vec<f64>,
}

impl<'a> GraphState<'a> {
    /// Builds state for `part` on `g`.
    pub fn new(g: &'a CsrGraph, k: usize, part: Vec<PartId>) -> Self {
        assert_eq!(part.len(), g.num_vertices());
        let mut weights = vec![0.0f64; k];
        for (v, &p) in part.iter().enumerate() {
            weights[p] += g.vertex_weight(v);
        }
        GraphState { g, k, part, weights }
    }

    /// Moves `v` to `q`.
    pub fn apply(&mut self, v: usize, q: PartId) {
        let p = self.part[v];
        if p == q {
            return;
        }
        let w = self.g.vertex_weight(v);
        self.weights[p] -= w;
        self.weights[q] += w;
        self.part[v] = q;
    }

    /// Objective gain (decrease) of moving `v` to `q`.
    pub fn gain(&self, v: usize, q: PartId, obj: &Objective) -> f64 {
        let p = self.part[v];
        if p == q {
            return 0.0;
        }
        let mut to_p = 0.0;
        let mut to_q = 0.0;
        for (&u, &w) in self.g.neighbors(v).iter().zip(self.g.edge_weights(v)) {
            if self.part[u] == p {
                to_p += w;
            } else if self.part[u] == q {
                to_q += w;
            }
        }
        let cut_gain = to_q - to_p;
        let mig_gain = match obj.old_part {
            Some(old) => {
                let o = old[v];
                let before = if p != o { self.g.vertex_size(v) } else { 0.0 };
                let after = if q != o { self.g.vertex_size(v) } else { 0.0 };
                before - after
            }
            None => 0.0,
        };
        obj.alpha * cut_gain + mig_gain
    }

    /// Best feasible move for `v` among parts its neighbors occupy (and,
    /// under the adaptive objective, its old part).
    pub fn best_move(
        &self,
        v: usize,
        targets: &PartTargets,
        obj: &Objective,
        scratch: &mut GraphMoveScratch,
    ) -> Option<(PartId, f64)> {
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.cands.clear();
        for &u in self.g.neighbors(v) {
            let q = self.part[u];
            if q != p && scratch.mark[q] != stamp {
                scratch.mark[q] = stamp;
                scratch.cands.push(q);
            }
        }
        if let Some(old) = obj.old_part {
            let o = old[v];
            if o != p && o < self.k && scratch.mark[o] != stamp {
                scratch.mark[o] = stamp;
                scratch.cands.push(o);
            }
        }
        let w = self.g.vertex_weight(v);
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) {
                continue;
            }
            let gain = self.gain(v, q, obj);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12
                        || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        best
    }

    /// Vertices with a neighbor in another part.
    pub fn boundary_vertices(&self) -> Vec<usize> {
        (0..self.g.num_vertices())
            .filter(|&v| {
                let p = self.part[v];
                self.g.neighbors(v).iter().any(|&u| self.part[u] != p)
            })
            .collect()
    }
}

/// Reusable scratch for [`GraphState::best_move`].
pub struct GraphMoveScratch {
    mark: Vec<u64>,
    cands: Vec<usize>,
    stamp: u64,
}

impl GraphMoveScratch {
    /// Scratch for `k` parts.
    pub fn new(k: usize) -> Self {
        GraphMoveScratch { mark: vec![0; k], cands: Vec::new(), stamp: 0 }
    }
}

struct Cand {
    gain: f64,
    v: usize,
    to: PartId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.total_cmp(&other.gain).then_with(|| other.v.cmp(&self.v))
    }
}

/// Greedy diffusion-style rebalance: drain overweight parts into the
/// relatively lightest feasible parts, cheapest moves first.
pub fn rebalance_graph(
    state: &mut GraphState,
    targets: &PartTargets,
    obj: &Objective,
    scratch: &mut GraphMoveScratch,
) {
    let n = state.part.len();
    let total_violation = |weights: &[f64]| -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(p, &w)| (w - targets.cap(p)).max(0.0))
            .sum()
    };
    for _ in 0..2 * n + 16 {
        let violation_before = total_violation(&state.weights);
        let over = (0..state.k)
            .filter(|&p| state.weights[p] > targets.cap(p) + 1e-9)
            .max_by(|&a, &b| {
                (state.weights[a] - targets.cap(a)).total_cmp(&(state.weights[b] - targets.cap(b)))
            });
        let p = match over {
            Some(p) => p,
            None => return,
        };
        let mut best: Option<(usize, PartId, f64)> = None;
        for v in 0..n {
            if state.part[v] != p {
                continue;
            }
            let w = state.g.vertex_weight(v);
            let cand = match state.best_move(v, targets, obj, scratch) {
                Some((q, g)) => (q, g),
                None => {
                    let q = (0..state.k)
                        .filter(|&q| q != p)
                        .min_by(|&a, &b| {
                            ((state.weights[a] + w) / targets.target[a].max(1e-12))
                                .total_cmp(&((state.weights[b] + w) / targets.target[b].max(1e-12)))
                        })
                        .unwrap();
                    (q, state.gain(v, q, obj))
                }
            };
            if best.is_none_or(|(_, _, bg)| cand.1 > bg) {
                best = Some((v, cand.0, cand.1));
            }
        }
        match best {
            Some((v, q, _)) => {
                state.apply(v, q);
                // Only keep moves that strictly reduce total violation;
                // otherwise the loop is shuffling load it cannot place.
                if total_violation(&state.weights) >= violation_before - 1e-12 {
                    state.apply(v, p);
                    return;
                }
            }
            None => return,
        }
    }
}

fn fm_pass(
    state: &mut GraphState,
    targets: &PartTargets,
    obj: &Objective,
    scratch: &mut GraphMoveScratch,
    rng: &mut StdRng,
) -> f64 {
    let n = state.part.len();
    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    // One live heap entry per vertex (pops revalidate, extras are churn).
    let mut queued = vec![false; n];
    let mut boundary = state.boundary_vertices();
    boundary.shuffle(rng);
    for &v in &boundary {
        if let Some((to, gain)) = state.best_move(v, targets, obj, scratch) {
            heap.push(Cand { gain, v, to });
            queued[v] = true;
        }
    }

    let mut applied: Vec<(usize, PartId)> = Vec::new();
    let mut cum = 0.0;
    let mut best_cum = 0.0;
    let mut best_len = 0usize;
    let mut neg_streak = 0usize;
    const MAX_NEG_STREAK: usize = 200;

    while let Some(c) = heap.pop() {
        queued[c.v] = false;
        if locked[c.v] {
            continue;
        }
        match state.best_move(c.v, targets, obj, scratch) {
            None => continue,
            Some((to, gain)) => {
                if to != c.to || (gain - c.gain).abs() > 1e-9 {
                    heap.push(Cand { gain, v: c.v, to });
                    queued[c.v] = true;
                    continue;
                }
                let from = state.part[c.v];
                state.apply(c.v, to);
                locked[c.v] = true;
                applied.push((c.v, from));
                cum += gain;
                if cum > best_cum + 1e-12 {
                    best_cum = cum;
                    best_len = applied.len();
                    neg_streak = 0;
                } else {
                    neg_streak += 1;
                    if neg_streak >= MAX_NEG_STREAK {
                        break;
                    }
                }
                for &u in state.g.neighbors(c.v) {
                    if !locked[u] && !queued[u] {
                        if let Some((to, gain)) = state.best_move(u, targets, obj, scratch) {
                            heap.push(Cand { gain, v: u, to });
                            queued[u] = true;
                        }
                    }
                }
            }
        }
    }
    for &(v, from) in applied[best_len..].iter().rev() {
        state.apply(v, from);
    }
    best_cum
}

/// Refines `part` in place: rebalance, then FM passes until no
/// improvement (or `max_passes`). Returns total objective improvement.
pub fn refine_graph(
    g: &CsrGraph,
    targets: &PartTargets,
    obj: &Objective,
    part: &mut Vec<PartId>,
    max_passes: usize,
    rng: &mut StdRng,
) -> f64 {
    let k = targets.k();
    if k < 2 || g.num_vertices() == 0 {
        return 0.0;
    }
    let mut state = GraphState::new(g, k, std::mem::take(part));
    let mut scratch = GraphMoveScratch::new(k);
    rebalance_graph(&mut state, targets, obj, &mut scratch);
    let mut total = 0.0;
    for _ in 0..max_passes {
        let improvement = fm_pass(&mut state, targets, obj, &mut scratch, rng);
        total += improvement;
        if improvement <= 1e-12 {
            break;
        }
    }
    *part = state.part;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use rand::SeedableRng;

    #[test]
    fn gain_matches_cut_delta() {
        let g = crate::tests::random_graph(30, 80, 4);
        let part: Vec<usize> = (0..30).map(|v| v % 3).collect();
        let mut state = GraphState::new(&g, 3, part);
        let obj = Objective::CUT_ONLY;
        for v in [0usize, 5, 17, 29] {
            for q in 0..3 {
                if q == state.part[v] {
                    continue;
                }
                let before = metrics::edge_cut(&g, &state.part, 3);
                let gain = state.gain(v, q, &obj);
                let from = state.part[v];
                state.apply(v, q);
                let after = metrics::edge_cut(&g, &state.part, 3);
                assert!((before - after - gain).abs() < 1e-9, "v={v} q={q}");
                state.apply(v, from);
            }
        }
    }

    #[test]
    fn migration_term_discourages_moves_off_old_part() {
        let g = crate::tests::grid_graph(2, 2);
        let old = vec![0usize, 0, 1, 1];
        let part = old.clone();
        let state = GraphState::new(&g, 2, part);
        // alpha tiny: migration dominates; moving 0 to part 1 costs its
        // size with no migration benefit.
        let obj = Objective { alpha: 1e-6, old_part: Some(&old) };
        assert!(state.gain(0, 1, &obj) < 0.0);
    }

    #[test]
    fn migration_term_rewards_returning_home() {
        let g = crate::tests::grid_graph(2, 2);
        let old = vec![0usize, 0, 1, 1];
        let mut part = old.clone();
        part[0] = 1; // strayed
        let state = GraphState::new(&g, 2, part);
        let obj = Objective { alpha: 1e-6, old_part: Some(&old) };
        assert!(state.gain(0, 0, &obj) > 0.0);
    }

    #[test]
    fn refine_improves_stripes() {
        let g = crate::tests::grid_graph(8, 8);
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let before = metrics::edge_cut(&g, &part, 2);
        let t = PartTargets::uniform(64.0, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(0);
        refine_graph(&g, &t, &Objective::CUT_ONLY, &mut part, 4, &mut rng);
        let after = metrics::edge_cut(&g, &part, 2);
        assert!(after < before / 2.0, "{before} -> {after}");
        assert!(metrics::graph_imbalance(&g, &part, 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn rebalance_restores_caps() {
        let g = crate::tests::grid_graph(6, 6);
        let mut part = vec![0usize; 36];
        let t = PartTargets::uniform(36.0, 3, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        refine_graph(&g, &t, &Objective::CUT_ONLY, &mut part, 4, &mut rng);
        let w = metrics::graph_part_weights(&g, &part, 3);
        for p in 0..3 {
            assert!(w[p] <= t.cap(p) + 1e-9, "part {p}: {}", w[p]);
        }
    }

    #[test]
    fn boundary_detection() {
        let g = crate::tests::grid_graph(2, 4);
        let part = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let state = GraphState::new(&g, 2, part);
        assert_eq!(state.boundary_vertices(), vec![1, 2, 5, 6]);
    }
}
