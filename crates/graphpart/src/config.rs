//! Graph-partitioner configuration.

/// Configuration for the ParMETIS-like graph partitioner.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Allowed imbalance ε: every part must satisfy `W_p ≤ (1+ε) W_avg`.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Stop coarsening at roughly `coarse_to_factor * k` vertices.
    pub coarse_to_factor: usize,
    /// Hard floor on coarse size regardless of `k`.
    pub min_coarse_vertices: usize,
    /// Abort coarsening when a level shrinks by less than this fraction.
    pub min_reduction: f64,
    /// Safety cap on coarsening levels.
    pub max_levels: usize,
    /// Randomized greedy-graph-growing attempts for the coarse partition.
    pub initial_attempts: usize,
    /// Maximum FM passes per level.
    pub max_refine_passes: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            epsilon: 0.05,
            seed: 0,
            coarse_to_factor: 20,
            min_coarse_vertices: 80,
            min_reduction: 0.10,
            max_levels: 40,
            initial_attempts: 8,
            max_refine_passes: 4,
        }
    }
}

impl GraphConfig {
    /// Default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        GraphConfig { seed, ..GraphConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GraphConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 1.0);
        assert!(c.min_reduction > 0.0);
        assert!(c.initial_attempts >= 1);
    }
}
