//! The AMR epoch stream: the adaptive computation the repartitioner
//! balances.
//!
//! Each epoch the Gaussian features move, the mesh refines/coarsens
//! around them (2:1-balanced), and the resulting leaf set is lowered to
//! the epoch's partitioning problem. Cell identity persists across
//! epochs through the quadtree address: a cell that survives keeps its
//! part; children created by refinement are *created* on their parent's
//! part; a parent recreated by coarsening is created where its first
//! (canonical-order) surviving descendant lived. That "previous or
//! creation part" is exactly what the paper's migration nets attach to.

use std::collections::{BTreeMap, BTreeSet};

use dlb_hypergraph::{CsrGraph, Hypergraph, PartId};

use crate::cell::{Cell, Direction};
use crate::feature::{indicator, seeded_features, Feature};
use crate::lower::{lower, LoweredMesh};
use crate::mesh::QuadMesh;
use crate::AmrConfig;

/// One epoch's AMR problem instance.
#[derive(Clone, Debug)]
pub struct AmrEpoch {
    /// Face-adjacency graph of the epoch mesh.
    pub graph: CsrGraph,
    /// Column-net hypergraph of the epoch mesh.
    pub hypergraph: Hypergraph,
    /// The leaf cell behind each vertex, in canonical order.
    pub cells: Vec<Cell>,
    /// Previous/creation part per vertex.
    pub old_part: Vec<PartId>,
}

/// A cell created by the current adaptation step, with the lowering
/// attributes a patcher needs to splice it in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmrDeltaCell {
    /// The new leaf.
    pub cell: Cell,
    /// Creation part (the parent's part for refined children, the first
    /// surviving descendant's part for a coarsened parent).
    pub old_part: PartId,
    /// Subcycling weight, exactly as [`lower`] computes it.
    pub weight: f64,
    /// Migration data size (`state_bytes`).
    pub size: f64,
}

/// The structural diff produced by one adaptation step — what changed
/// between the previous epoch's leaf set and the current one.
///
/// `adjacency` is *complete for the change*: it lists the refreshed
/// face-neighbor set of every new leaf and of every surviving leaf
/// whose neighborhood was altered by the step, and of no others. A
/// survivor's neighborhood changes only when a leaf across one of its
/// faces appears or disappears, so scanning the new mesh's
/// `neighbor_leaves` around every added *and* removed cell's region
/// finds each such survivor.
#[derive(Clone, Debug)]
pub struct AmrDelta {
    /// The new epoch's leaves, in canonical order.
    pub cells: Vec<Cell>,
    /// Former leaves no longer in the mesh, in canonical order.
    pub removed: Vec<Cell>,
    /// New leaves with creation parts and lowering attributes, in
    /// canonical order.
    pub added: Vec<AmrDeltaCell>,
    /// `(cell, face neighbors)` for every cell whose neighborhood
    /// changed, in canonical cell order; neighbor lists follow the
    /// canonical direction order (west, east, south, north).
    pub adjacency: Vec<(Cell, Vec<Cell>)>,
}

/// A stateful generator of AMR epochs.
pub struct AmrStream {
    cfg: AmrConfig,
    mesh: QuadMesh,
    features: Vec<Feature>,
    k: usize,
    /// Last committed part per leaf cell (exactly the current leaves
    /// after a commit).
    last_part: BTreeMap<Cell, PartId>,
    epochs_emitted: usize,
}

impl AmrStream {
    /// Creates a stream for a `k`-way decomposition. The initial mesh is
    /// adapted to a fixed point around the features' starting positions;
    /// call [`Self::initial_lowering`], partition it, and hand the result
    /// to [`Self::set_initial_partition`] before the first epoch.
    ///
    /// # Panics
    /// Panics on an invalid configuration or `k == 0`.
    pub fn new(cfg: AmrConfig, k: usize, seed: u64) -> Self {
        cfg.validate().expect("valid AMR configuration");
        assert!(k > 0, "k must be positive");
        let mut mesh = QuadMesh::uniform(cfg.base_level, cfg.max_level);
        let features = seeded_features(cfg.num_features, cfg.speed, seed);
        let sigma = cfg.sigma;
        let fs = features.clone();
        mesh.adapt_to_stable(
            |x, y| indicator(&fs, sigma, x, y),
            cfg.refine_threshold,
            cfg.coarsen_threshold,
        );
        AmrStream {
            cfg,
            mesh,
            features,
            k,
            last_part: BTreeMap::new(),
            epochs_emitted: 0,
        }
    }

    /// Number of parts in the decomposition.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of epochs emitted so far.
    pub fn epochs_emitted(&self) -> usize {
        self.epochs_emitted
    }

    /// The current mesh (epoch `j`'s leaves once epoch `j` is emitted).
    pub fn mesh(&self) -> &QuadMesh {
        &self.mesh
    }

    /// Lowers the *initial* mesh (before the first epoch) so the caller
    /// can compute the static starting partition.
    pub fn initial_lowering(&self) -> LoweredMesh {
        assert_eq!(self.epochs_emitted, 0, "initial lowering requested mid-stream");
        lower(&self.mesh, &self.cfg)
    }

    /// Records the static partition of the initial mesh, aligned with
    /// [`Self::initial_lowering`]'s cell order.
    pub fn set_initial_partition(&mut self, part: &[PartId]) {
        assert_eq!(self.epochs_emitted, 0, "initial partition set mid-stream");
        assert_eq!(part.len(), self.mesh.num_leaves(), "partition length mismatch");
        assert!(part.iter().all(|&p| p < self.k), "initial part out of range");
        self.last_part = self.mesh.leaves().zip(part.iter().copied()).collect();
    }

    /// Generates the next epoch: features advance, the mesh re-adapts to
    /// a fixed point, and the leaves are lowered with inherited parts.
    ///
    /// # Panics
    /// Panics if no initial partition was set.
    pub fn next_epoch(&mut self) -> AmrEpoch {
        assert!(
            !self.last_part.is_empty(),
            "set_initial_partition must be called before the first epoch"
        );
        self.epochs_emitted += 1;
        for f in &mut self.features {
            f.advance();
        }
        let sigma = self.cfg.sigma;
        let fs = self.features.clone();
        self.mesh.adapt_to_stable(
            |x, y| indicator(&fs, sigma, x, y),
            self.cfg.refine_threshold,
            self.cfg.coarsen_threshold,
        );
        let low = lower(&self.mesh, &self.cfg);
        let old_part: Vec<PartId> =
            low.cells.iter().map(|&c| self.inherited_part(c)).collect();
        AmrEpoch {
            graph: low.graph,
            hypergraph: low.hypergraph,
            cells: low.cells,
            old_part,
        }
    }

    /// Generates the next epoch as a structural diff against the
    /// previous one: features advance and the mesh re-adapts exactly as
    /// in [`Self::next_epoch`], but instead of lowering the whole mesh
    /// the step reports only what changed — removed leaves, created
    /// leaves (with creation parts and lowering attributes), and the
    /// refreshed neighborhoods of every cell the change touched.
    ///
    /// Advances the stream by one epoch; callers use this *instead of*
    /// [`Self::next_epoch`] for the epoch in question.
    ///
    /// # Panics
    /// Panics if no initial partition was set.
    pub fn next_epoch_delta(&mut self) -> AmrDelta {
        assert!(
            !self.last_part.is_empty(),
            "set_initial_partition must be called before the first epoch"
        );
        self.epochs_emitted += 1;
        let before: BTreeSet<Cell> = self.mesh.leaves().collect();
        for f in &mut self.features {
            f.advance();
        }
        let sigma = self.cfg.sigma;
        let fs = self.features.clone();
        self.mesh.adapt_to_stable(
            |x, y| indicator(&fs, sigma, x, y),
            self.cfg.refine_threshold,
            self.cfg.coarsen_threshold,
        );
        let after: BTreeSet<Cell> = self.mesh.leaves().collect();

        let removed: Vec<Cell> = before.difference(&after).copied().collect();
        let added_cells: Vec<Cell> = after.difference(&before).copied().collect();

        // Every new leaf needs its neighborhood; every survivor whose
        // neighborhood changed is face-adjacent to some added or
        // removed cell's region, so scanning `neighbor_leaves` of the
        // *new* mesh around each changed cell finds them all
        // (`neighbor_leaves` accepts non-leaf query cells, which covers
        // removed cells both finer and coarser than the current leaves).
        let mut dirty: BTreeSet<Cell> = added_cells.iter().copied().collect();
        for &c in removed.iter().chain(added_cells.iter()) {
            for dir in Direction::ALL {
                for n in self.mesh.neighbor_leaves(c, dir) {
                    dirty.insert(n);
                }
            }
        }
        let adjacency: Vec<(Cell, Vec<Cell>)> = dirty
            .iter()
            .map(|&c| {
                debug_assert!(self.mesh.is_leaf(c), "dirty cell {c:?} is not a leaf");
                let mut ns = Vec::new();
                for dir in Direction::ALL {
                    ns.extend(self.mesh.neighbor_leaves(c, dir));
                }
                (c, ns)
            })
            .collect();

        let base = self.mesh.base_level();
        let added: Vec<AmrDeltaCell> = added_cells
            .iter()
            .map(|&c| AmrDeltaCell {
                cell: c,
                old_part: self.inherited_part(c),
                // Bitwise the same expressions `lower` uses.
                weight: (1u64 << (c.level - base)) as f64,
                size: self.cfg.state_bytes,
            })
            .collect();

        AmrDelta {
            cells: after.iter().copied().collect(),
            removed,
            added,
            adjacency,
        }
    }

    /// Records the assignment the load balancer chose for the epoch
    /// whose vertices are `cells` (an [`AmrEpoch`]'s cell list), so the
    /// next epoch's old parts see it.
    pub fn commit_assignment(&mut self, cells: &[Cell], part: &[PartId]) {
        assert_eq!(part.len(), cells.len(), "assignment length mismatch");
        // Labels at or beyond the launch `k` are accepted: elastic
        // worlds grow the label space, and the mesh dynamics never
        // depend on the decomposition.
        self.last_part = cells.iter().copied().zip(part.iter().copied()).collect();
    }

    /// The previous/creation part of leaf `c` against the last committed
    /// assignment: `c`'s own part if it survived, else the nearest
    /// assigned ancestor (refinement creates children on the parent's
    /// part), else the first assigned descendant in canonical child
    /// order (coarsening recreates the parent where its children lived).
    fn inherited_part(&self, c: Cell) -> PartId {
        let mut cur = Some(c);
        while let Some(cell) = cur {
            if let Some(&p) = self.last_part.get(&cell) {
                return p;
            }
            cur = cell.parent();
        }
        self.first_descendant_part(c)
            .expect("cell has neither assigned ancestors nor descendants")
    }

    fn first_descendant_part(&self, c: Cell) -> Option<PartId> {
        if c.level >= self.cfg.max_level {
            return None;
        }
        for child in c.children() {
            if let Some(&p) = self.last_part.get(&child) {
                return Some(p);
            }
            if let Some(p) = self.first_descendant_part(child) {
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> AmrStream {
        let mut s = AmrStream::new(AmrConfig::default(), 4, seed);
        let low = s.initial_lowering();
        // Block partition of the initial cells, deterministic.
        let n = low.cells.len();
        let part: Vec<usize> = (0..n).map(|v| v * 4 / n).collect();
        s.set_initial_partition(&part);
        s
    }

    #[test]
    fn epochs_evolve_the_mesh() {
        let mut s = stream(3);
        let e1 = s.next_epoch();
        e1.hypergraph.validate().unwrap();
        s.mesh().validate().unwrap();
        s.commit_assignment(&e1.cells, &e1.old_part.clone());
        let mut changed = false;
        let mut prev = e1.cells.clone();
        for _ in 0..6 {
            let e = s.next_epoch();
            s.mesh().validate().unwrap();
            changed |= e.cells != prev;
            prev = e.cells.clone();
            s.commit_assignment(&e.cells, &e.old_part.clone());
        }
        assert!(changed, "moving features must change the mesh within 6 epochs");
    }

    #[test]
    fn surviving_cells_keep_their_parts() {
        let mut s = stream(5);
        let e1 = s.next_epoch();
        let assigned: Vec<usize> = (0..e1.cells.len()).map(|v| v % 4).collect();
        s.commit_assignment(&e1.cells, &assigned);
        let e2 = s.next_epoch();
        for (v, c) in e2.cells.iter().enumerate() {
            if let Ok(prev) = e1.cells.binary_search(c) {
                assert_eq!(e2.old_part[v], assigned[prev], "surviving cell {c:?}");
            }
        }
    }

    #[test]
    fn refined_children_inherit_the_parent_part() {
        let mut s = stream(7);
        let e1 = s.next_epoch();
        let assigned: Vec<usize> = (0..e1.cells.len()).map(|v| (v * 7) % 4).collect();
        s.commit_assignment(&e1.cells, &assigned);
        let e2 = s.next_epoch();
        let mut checked = 0;
        for (v, c) in e2.cells.iter().enumerate() {
            if e1.cells.binary_search(c).is_ok() {
                continue;
            }
            // New cell: if its parent was an epoch-1 leaf it came from a
            // refinement and must inherit that part.
            if let Some(parent) = c.parent() {
                if let Ok(pi) = e1.cells.binary_search(&parent) {
                    assert_eq!(e2.old_part[v], assigned[pi], "child of {parent:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no refinements happened; weak test scenario");
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = stream(11);
        let mut b = stream(11);
        for _ in 0..4 {
            let ea = a.next_epoch();
            let eb = b.next_epoch();
            assert_eq!(ea.cells, eb.cells);
            assert_eq!(ea.old_part, eb.old_part);
            a.commit_assignment(&ea.cells, &ea.old_part.clone());
            b.commit_assignment(&eb.cells, &eb.old_part.clone());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream(1);
        let mut b = stream(2);
        let ea = a.next_epoch();
        let eb = b.next_epoch();
        assert_ne!(ea.cells, eb.cells, "seeds must move features differently");
    }

    #[test]
    #[should_panic(expected = "set_initial_partition")]
    fn next_epoch_requires_initialization() {
        let mut s = AmrStream::new(AmrConfig::default(), 4, 1);
        let _ = s.next_epoch();
    }
}
