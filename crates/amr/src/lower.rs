//! Lowering a quadtree mesh to the partitioning problem's graph and
//! hypergraph.
//!
//! * **Vertices** — one per leaf cell, in canonical cell order.
//! * **Vertex weight** — local work: a cell at level `ℓ` performs
//!   `2^(ℓ − base)` sub-timesteps per epoch step (standard AMR time
//!   sub-cycling), so finer cells are proportionally heavier.
//! * **Vertex size** — migration payload: the cell's state vector in
//!   bytes (`AmrConfig::state_bytes`), the volume [`dlb_core`]'s
//!   migration service moves when the cell changes owner.
//! * **Graph edges** — one per face-adjacent leaf pair (the stencil
//!   couplings a finite-volume scheme exchanges fluxes over).
//! * **Nets** — the column-net model of that adjacency: net `v` pins
//!   `{v} ∪ face-neighbors(v)` with cost `state_bytes`, so the k-1 cut
//!   is exactly the ghost-exchange volume per iteration in bytes.
//!
//! Weights, sizes, and net costs are all integer-valued `f64`s, which
//! keeps every downstream cost sum exact and order-independent.
//!
//! With [`AmrConfig::multi_constraint`] the hypergraph carries
//! two-constraint load vectors — constraint 0 the flops weight above,
//! constraint 1 the resident state bytes — so the partitioner balances
//! compute and memory footprint simultaneously. The two columns
//! genuinely diverge on an adapted mesh: flops grow like
//! `2^(ℓ − base)` with depth while every cell's state is the same
//! `state_bytes`.

use dlb_hypergraph::convert::column_net_model;
use dlb_hypergraph::{CsrGraph, GraphBuilder, Hypergraph};

use crate::cell::{Cell, Direction};
use crate::mesh::QuadMesh;
use crate::AmrConfig;

/// One epoch's mesh, lowered.
#[derive(Clone, Debug)]
pub struct LoweredMesh {
    /// Face-adjacency graph (for the graph-based baselines).
    pub graph: CsrGraph,
    /// Column-net hypergraph of the face adjacency.
    pub hypergraph: Hypergraph,
    /// `cells[v]` is the leaf cell behind vertex `v`, in canonical order.
    pub cells: Vec<Cell>,
}

/// Lowers the current leaves of `mesh` under `cfg`'s work/payload model.
pub fn lower(mesh: &QuadMesh, cfg: &AmrConfig) -> LoweredMesh {
    let cells: Vec<Cell> = mesh.leaves().collect();
    let index_of = |c: Cell| cells.binary_search(&c).expect("neighbor leaf not in leaf list");

    let mut b = GraphBuilder::new(cells.len());
    for (v, &c) in cells.iter().enumerate() {
        b.set_vertex_weight(v, (1u64 << (c.level - mesh.base_level())) as f64);
        b.set_vertex_size(v, cfg.state_bytes);
        // Scanning only +x and +y discovers every face-adjacent pair
        // exactly once: for a pair split across a face, the west/south
        // cell sees the east/north cell regardless of which is finer.
        for dir in [Direction::East, Direction::North] {
            for n in mesh.neighbor_leaves(c, dir) {
                b.add_edge(v, index_of(n), 1.0);
            }
        }
    }
    let graph = b.build();
    let mut hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
    // Two-constraint lowering: balance flops AND resident state bytes.
    // The flops column is exactly the scalar weights, so constraint 0 of
    // the multi-constraint hypergraph is bitwise the scalar lowering.
    if cfg.multi_constraint {
        let flops: Vec<f64> = (0..cells.len()).map(|v| graph.vertex_weight(v)).collect();
        let bytes = vec![cfg.state_bytes; cells.len()];
        hypergraph.set_loads(dlb_hypergraph::VertexLoads::from_columns(vec![flops, bytes]));
    }
    LoweredMesh { graph, hypergraph, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sample_mesh() -> QuadMesh {
        let mut m = QuadMesh::uniform(2, 5);
        let ind = |x: f64, y: f64| {
            let d2 = (x - 1.0f64 / 3.0).powi(2) + (y - 0.6f64).powi(2);
            (-d2 / (2.0 * 0.1 * 0.1)).exp()
        };
        m.adapt_to_stable(ind, 0.4, 0.1);
        m
    }

    #[test]
    fn uniform_mesh_lowers_to_a_grid() {
        let m = QuadMesh::uniform(2, 4);
        let low = lower(&m, &AmrConfig::default());
        assert_eq!(low.graph.num_vertices(), 16);
        // 4×4 grid: 2 * 4 * 3 = 24 interior faces.
        assert_eq!(low.graph.num_edges(), 24);
        assert_eq!(low.hypergraph.num_nets(), 16);
        low.hypergraph.validate().unwrap();
        for v in 0..16 {
            assert_eq!(low.graph.vertex_weight(v), 1.0, "uniform level ⇒ unit work");
        }
    }

    #[test]
    fn nets_exactly_match_face_adjacencies() {
        let m = sample_mesh();
        let cfg = AmrConfig::default();
        let low = lower(&m, &cfg);
        for (v, &c) in low.cells.iter().enumerate() {
            // Independently recompute the face neighbors from the mesh.
            let mut expect: BTreeSet<usize> = Direction::ALL
                .into_iter()
                .flat_map(|dir| m.neighbor_leaves(c, dir))
                .map(|n| low.cells.binary_search(&n).unwrap())
                .collect();
            expect.insert(v);
            let got: BTreeSet<usize> = low.hypergraph.net(v).iter().copied().collect();
            assert_eq!(got, expect, "net of cell {c:?}");
            assert_eq!(low.hypergraph.net_cost(v), cfg.state_bytes);
        }
    }

    #[test]
    fn multi_constraint_lowering_diverges_bytes_from_flops() {
        let m = sample_mesh();
        let cfg = AmrConfig { multi_constraint: true, ..AmrConfig::default() };
        let low = lower(&m, &cfg);
        let scalar = lower(&m, &AmrConfig::default());
        assert_eq!(scalar.hypergraph.load_arity(), 1);
        assert_eq!(low.hypergraph.load_arity(), 2);
        // Constraint 0 is bitwise the scalar lowering's weights.
        assert_eq!(
            low.hypergraph.loads().scalar(),
            scalar.hypergraph.loads().scalar()
        );
        for (v, &c) in low.cells.iter().enumerate() {
            assert_eq!(
                low.hypergraph.vertex_load(v, 0),
                (1u64 << (c.level - m.base_level())) as f64
            );
            assert_eq!(low.hypergraph.vertex_load(v, 1), cfg.state_bytes);
        }
        // An adapted mesh has refined cells, so the columns are not
        // proportional: flops vary with level, bytes do not.
        let flops = low.hypergraph.loads().constraint(0);
        assert!(flops.iter().any(|&w| w != flops[0]), "mesh must be adapted");
    }

    #[test]
    fn graph_adjacency_is_symmetric_across_levels() {
        let m = sample_mesh();
        let low = lower(&m, &AmrConfig::default());
        let g = &low.graph;
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v), "edge {v}-{u} one-sided");
            }
        }
    }

    #[test]
    fn weights_encode_subcycling() {
        let m = sample_mesh();
        let low = lower(&m, &AmrConfig::default());
        for (v, &c) in low.cells.iter().enumerate() {
            let expect = (1u64 << (c.level - m.base_level())) as f64;
            assert_eq!(low.graph.vertex_weight(v), expect);
            assert_eq!(low.hypergraph.vertex_weight(v), expect);
        }
        let max_w = low
            .cells
            .iter()
            .enumerate()
            .map(|(v, _)| low.graph.vertex_weight(v) as u64)
            .max()
            .unwrap();
        assert!(max_w >= 8, "refined cells are heavier ({max_w})");
    }
}
