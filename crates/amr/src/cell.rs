//! Quadtree cells: addressing, geometry, and tree navigation.
//!
//! The domain is the unit square `[0,1]²`. At refinement level `ℓ` the
//! square is a uniform `2^ℓ × 2^ℓ` grid; a cell is addressed by its
//! level and its integer grid coordinates. The `Ord` derive (level
//! first, then `y`, then `x`) fixes one canonical cell order used
//! everywhere — leaf enumeration, vertex numbering, tie-breaking — so
//! the whole AMR subsystem is deterministic by construction.

/// A face direction of a cell.
///
/// Replaces the old raw-`usize` direction API (where an out-of-range
/// index panicked at runtime): the enum makes every direction value
/// valid by construction, so [`Cell::neighbor`] and
/// [`Cell::face_children`] are total functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `-x`.
    West,
    /// `+x`.
    East,
    /// `-y`.
    South,
    /// `+y`.
    North,
}

impl Direction {
    /// The four directions in canonical order (west, east, south,
    /// north) — the iteration order everywhere in the mesh code, so the
    /// AMR subsystem stays deterministic by construction.
    pub const ALL: [Direction; 4] = [
        Direction::West,
        Direction::East,
        Direction::South,
        Direction::North,
    ];

    /// The opposite face direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::West => Direction::East,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::North => Direction::South,
        }
    }
}

/// One quadtree cell: refinement level plus grid coordinates at that
/// level. Only cells stored in a [`crate::QuadMesh`]'s leaf set are part
/// of the mesh; the type itself is a pure address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// Refinement level (`0` = the whole domain as one cell).
    pub level: u8,
    /// Row index in `0..2^level` (y direction).
    pub y: u32,
    /// Column index in `0..2^level` (x direction).
    pub x: u32,
}

impl Cell {
    /// The cell covering `[x/2^ℓ, (x+1)/2^ℓ] × [y/2^ℓ, (y+1)/2^ℓ]`.
    ///
    /// # Panics
    /// Panics if the coordinates are outside the level's grid.
    pub fn new(level: u8, x: u32, y: u32) -> Self {
        let side = 1u32 << level;
        assert!(x < side && y < side, "cell ({x},{y}) outside level-{level} grid");
        Cell { level, x, y }
    }

    /// Cell edge length.
    #[inline]
    pub fn width(self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Cell center coordinates.
    #[inline]
    pub fn center(self) -> (f64, f64) {
        let w = self.width();
        ((self.x as f64 + 0.5) * w, (self.y as f64 + 0.5) * w)
    }

    /// The parent cell, or `None` at the root.
    #[inline]
    pub fn parent(self) -> Option<Cell> {
        if self.level == 0 {
            None
        } else {
            Some(Cell { level: self.level - 1, x: self.x / 2, y: self.y / 2 })
        }
    }

    /// The four children, in canonical order: `(2x,2y)`, `(2x+1,2y)`,
    /// `(2x,2y+1)`, `(2x+1,2y+1)` (south-west, south-east, north-west,
    /// north-east).
    #[inline]
    pub fn children(self) -> [Cell; 4] {
        let (l, x, y) = (self.level + 1, self.x * 2, self.y * 2);
        [
            Cell { level: l, x, y },
            Cell { level: l, x: x + 1, y },
            Cell { level: l, x, y: y + 1 },
            Cell { level: l, x: x + 1, y: y + 1 },
        ]
    }

    /// The same-level neighbor in direction `dir`, or `None` past the
    /// domain boundary.
    #[inline]
    pub fn neighbor(self, dir: Direction) -> Option<Cell> {
        let side = 1u32 << self.level;
        let (x, y) = (self.x, self.y);
        let (nx, ny) = match dir {
            Direction::West => (x.checked_sub(1)?, y),
            Direction::East => {
                if x + 1 >= side {
                    return None;
                }
                (x + 1, y)
            }
            Direction::South => (x, y.checked_sub(1)?),
            Direction::North => {
                if y + 1 >= side {
                    return None;
                }
                (x, y + 1)
            }
        };
        Some(Cell { level: self.level, x: nx, y: ny })
    }

    /// The two children of `self` that touch the face in direction
    /// `dir` — used when descending into a *finer* neighbor: from a
    /// cell's perspective, the relevant children of its neighbor in
    /// direction `dir` are the neighbor's children on the *opposite*
    /// face, `face_children(dir.opposite())`.
    #[inline]
    pub fn face_children(self, dir: Direction) -> [Cell; 2] {
        let c = self.children();
        match dir {
            Direction::West => [c[0], c[2]],  // left column
            Direction::East => [c[1], c[3]],  // right column
            Direction::South => [c[0], c[1]], // bottom row
            Direction::North => [c[2], c[3]], // top row
        }
    }

    /// True if `self` lies inside (or equals) `ancestor`.
    pub fn descends_from(self, ancestor: Cell) -> bool {
        if self.level < ancestor.level {
            return false;
        }
        let shift = self.level - ancestor.level;
        (self.x >> shift) == ancestor.x && (self.y >> shift) == ancestor.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cell::new(2, 1, 2);
        assert_eq!(c.width(), 0.25);
        assert_eq!(c.center(), (0.375, 0.625));
        assert_eq!(c.parent(), Some(Cell::new(1, 0, 1)));
        assert_eq!(Cell::new(0, 0, 0).parent(), None);
    }

    #[test]
    fn children_partition_parent() {
        let p = Cell::new(1, 1, 0);
        let kids = p.children();
        assert_eq!(kids[0], Cell::new(2, 2, 0));
        assert_eq!(kids[3], Cell::new(2, 3, 1));
        for child in kids {
            assert!(child.descends_from(p));
            assert_eq!(child.parent(), Some(p));
        }
        assert!(!Cell::new(2, 0, 0).descends_from(p));
    }

    #[test]
    fn neighbors_respect_boundary() {
        let c = Cell::new(1, 0, 0);
        assert_eq!(c.neighbor(Direction::West), None);
        assert_eq!(c.neighbor(Direction::South), None);
        assert_eq!(c.neighbor(Direction::East), Some(Cell::new(1, 1, 0)));
        assert_eq!(c.neighbor(Direction::North), Some(Cell::new(1, 0, 1)));
        assert_eq!(Cell::new(1, 1, 1).neighbor(Direction::East), None);
        assert_eq!(Cell::new(1, 1, 1).neighbor(Direction::North), None);
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::West.opposite(), Direction::East);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::South.opposite(), Direction::North);
        assert_eq!(Direction::North.opposite(), Direction::South);
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn face_children_touch_the_face() {
        let p = Cell::new(0, 0, 0);
        // East face children have x = 1 at level 1.
        assert!(p.face_children(Direction::East).iter().all(|c| c.x == 1));
        assert!(p.face_children(Direction::West).iter().all(|c| c.x == 0));
        assert!(p.face_children(Direction::North).iter().all(|c| c.y == 1));
        assert!(p.face_children(Direction::South).iter().all(|c| c.y == 0));
    }

    /// Neighboring and direction opposition round-trip: if `n` is `c`'s
    /// neighbor in direction `d`, then `c` is `n`'s neighbor in
    /// `d.opposite()`, at every interior cell of a grid.
    #[test]
    fn neighbor_direction_round_trip() {
        for level in 1..=3u8 {
            let side = 1u32 << level;
            for y in 0..side {
                for x in 0..side {
                    let c = Cell::new(level, x, y);
                    for d in Direction::ALL {
                        if let Some(n) = c.neighbor(d) {
                            assert_eq!(n.neighbor(d.opposite()), Some(c), "{c:?} via {d:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn canonical_order_is_level_major() {
        let mut cells = [Cell::new(2, 3, 0), Cell::new(1, 0, 1), Cell::new(2, 0, 0)];
        cells.sort();
        assert_eq!(cells[0].level, 1);
        assert!(cells[1] < cells[2]);
    }
}
