//! Quadtree cells: addressing, geometry, and tree navigation.
//!
//! The domain is the unit square `[0,1]²`. At refinement level `ℓ` the
//! square is a uniform `2^ℓ × 2^ℓ` grid; a cell is addressed by its
//! level and its integer grid coordinates. The `Ord` derive (level
//! first, then `y`, then `x`) fixes one canonical cell order used
//! everywhere — leaf enumeration, vertex numbering, tie-breaking — so
//! the whole AMR subsystem is deterministic by construction.

/// The four face directions of a cell.
///
/// `0 = -x` (west), `1 = +x` (east), `2 = -y` (south), `3 = +y` (north).
pub const NUM_DIRS: usize = 4;

/// One quadtree cell: refinement level plus grid coordinates at that
/// level. Only cells stored in a [`crate::QuadMesh`]'s leaf set are part
/// of the mesh; the type itself is a pure address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// Refinement level (`0` = the whole domain as one cell).
    pub level: u8,
    /// Row index in `0..2^level` (y direction).
    pub y: u32,
    /// Column index in `0..2^level` (x direction).
    pub x: u32,
}

impl Cell {
    /// The cell covering `[x/2^ℓ, (x+1)/2^ℓ] × [y/2^ℓ, (y+1)/2^ℓ]`.
    ///
    /// # Panics
    /// Panics if the coordinates are outside the level's grid.
    pub fn new(level: u8, x: u32, y: u32) -> Self {
        let side = 1u32 << level;
        assert!(x < side && y < side, "cell ({x},{y}) outside level-{level} grid");
        Cell { level, x, y }
    }

    /// Cell edge length.
    #[inline]
    pub fn width(self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Cell center coordinates.
    #[inline]
    pub fn center(self) -> (f64, f64) {
        let w = self.width();
        ((self.x as f64 + 0.5) * w, (self.y as f64 + 0.5) * w)
    }

    /// The parent cell, or `None` at the root.
    #[inline]
    pub fn parent(self) -> Option<Cell> {
        if self.level == 0 {
            None
        } else {
            Some(Cell { level: self.level - 1, x: self.x / 2, y: self.y / 2 })
        }
    }

    /// The four children, in canonical order: `(2x,2y)`, `(2x+1,2y)`,
    /// `(2x,2y+1)`, `(2x+1,2y+1)` (south-west, south-east, north-west,
    /// north-east).
    #[inline]
    pub fn children(self) -> [Cell; 4] {
        let (l, x, y) = (self.level + 1, self.x * 2, self.y * 2);
        [
            Cell { level: l, x, y },
            Cell { level: l, x: x + 1, y },
            Cell { level: l, x, y: y + 1 },
            Cell { level: l, x: x + 1, y: y + 1 },
        ]
    }

    /// The same-level neighbor in direction `dir`, or `None` past the
    /// domain boundary.
    #[inline]
    pub fn neighbor(self, dir: usize) -> Option<Cell> {
        let side = 1u32 << self.level;
        let (x, y) = (self.x, self.y);
        let (nx, ny) = match dir {
            0 => (x.checked_sub(1)?, y),
            1 => {
                if x + 1 >= side {
                    return None;
                }
                (x + 1, y)
            }
            2 => (x, y.checked_sub(1)?),
            3 => {
                if y + 1 >= side {
                    return None;
                }
                (x, y + 1)
            }
            _ => panic!("direction {dir} out of range"),
        };
        Some(Cell { level: self.level, x: nx, y: ny })
    }

    /// The two children of `self` that touch the face in direction
    /// `dir` — used when descending into a *finer* neighbor: from a
    /// cell's perspective, the relevant children of its neighbor in
    /// direction `dir` are the neighbor's children on the *opposite*
    /// face, `face_children(opposite(dir))`.
    #[inline]
    pub fn face_children(self, dir: usize) -> [Cell; 2] {
        let c = self.children();
        match dir {
            0 => [c[0], c[2]], // west face: left column
            1 => [c[1], c[3]], // east face: right column
            2 => [c[0], c[1]], // south face: bottom row
            3 => [c[2], c[3]], // north face: top row
            _ => panic!("direction {dir} out of range"),
        }
    }

    /// True if `self` lies inside (or equals) `ancestor`.
    pub fn descends_from(self, ancestor: Cell) -> bool {
        if self.level < ancestor.level {
            return false;
        }
        let shift = self.level - ancestor.level;
        (self.x >> shift) == ancestor.x && (self.y >> shift) == ancestor.y
    }
}

/// The opposite face direction.
#[inline]
pub fn opposite(dir: usize) -> usize {
    dir ^ 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cell::new(2, 1, 2);
        assert_eq!(c.width(), 0.25);
        assert_eq!(c.center(), (0.375, 0.625));
        assert_eq!(c.parent(), Some(Cell::new(1, 0, 1)));
        assert_eq!(Cell::new(0, 0, 0).parent(), None);
    }

    #[test]
    fn children_partition_parent() {
        let p = Cell::new(1, 1, 0);
        let kids = p.children();
        assert_eq!(kids[0], Cell::new(2, 2, 0));
        assert_eq!(kids[3], Cell::new(2, 3, 1));
        for child in kids {
            assert!(child.descends_from(p));
            assert_eq!(child.parent(), Some(p));
        }
        assert!(!Cell::new(2, 0, 0).descends_from(p));
    }

    #[test]
    fn neighbors_respect_boundary() {
        let c = Cell::new(1, 0, 0);
        assert_eq!(c.neighbor(0), None);
        assert_eq!(c.neighbor(2), None);
        assert_eq!(c.neighbor(1), Some(Cell::new(1, 1, 0)));
        assert_eq!(c.neighbor(3), Some(Cell::new(1, 0, 1)));
        assert_eq!(Cell::new(1, 1, 1).neighbor(1), None);
        assert_eq!(Cell::new(1, 1, 1).neighbor(3), None);
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(opposite(0), 1);
        assert_eq!(opposite(1), 0);
        assert_eq!(opposite(2), 3);
        assert_eq!(opposite(3), 2);
    }

    #[test]
    fn face_children_touch_the_face() {
        let p = Cell::new(0, 0, 0);
        // East face children have x = 1 at level 1.
        assert!(p.face_children(1).iter().all(|c| c.x == 1));
        assert!(p.face_children(0).iter().all(|c| c.x == 0));
        assert!(p.face_children(3).iter().all(|c| c.y == 1));
        assert!(p.face_children(2).iter().all(|c| c.y == 0));
    }

    #[test]
    fn canonical_order_is_level_major() {
        let mut cells = vec![Cell::new(2, 3, 0), Cell::new(1, 0, 1), Cell::new(2, 0, 0)];
        cells.sort();
        assert_eq!(cells[0].level, 1);
        assert!(cells[1] < cells[2]);
    }
}
