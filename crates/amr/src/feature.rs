//! Moving Gaussian features: the "physics" driving refinement.
//!
//! Each feature is a Gaussian bump of unit amplitude that translates
//! across the unit square at constant speed, reflecting off the walls.
//! The error indicator at a point is the sum of the feature Gaussians;
//! cells near a feature refine, cells left behind coarsen — producing a
//! refinement front that tracks the features like an AMR shock tracker.
//!
//! Feature initial positions and headings come from one seeded RNG draw
//! at construction; motion afterwards is closed-form, so the entire
//! trajectory is a deterministic function of the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Features bounce inside `[MARGIN, 1 - MARGIN]²` so their support never
/// fully leaves the domain.
const MARGIN: f64 = 0.08;

/// One moving Gaussian feature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Feature {
    /// Current center.
    pub x: f64,
    /// Current center.
    pub y: f64,
    /// Velocity per epoch.
    pub vx: f64,
    /// Velocity per epoch.
    pub vy: f64,
}

impl Feature {
    /// Advances one epoch, reflecting off the walls of the bounce box.
    pub fn advance(&mut self) {
        self.x += self.vx;
        self.y += self.vy;
        let lo = MARGIN;
        let hi = 1.0 - MARGIN;
        if self.x < lo {
            self.x = 2.0 * lo - self.x;
            self.vx = -self.vx;
        } else if self.x > hi {
            self.x = 2.0 * hi - self.x;
            self.vx = -self.vx;
        }
        if self.y < lo {
            self.y = 2.0 * lo - self.y;
            self.vy = -self.vy;
        } else if self.y > hi {
            self.y = 2.0 * hi - self.y;
            self.vy = -self.vy;
        }
    }
}

/// Draws `count` features with random positions and headings (speed
/// fixed) from a seeded RNG.
pub fn seeded_features(count: usize, speed: f64, seed: u64) -> Vec<Feature> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0.2f64..0.8);
            let y = rng.gen_range(0.2f64..0.8);
            let theta = rng.gen_range(0.0f64..std::f64::consts::TAU);
            Feature { x, y, vx: theta.cos() * speed, vy: theta.sin() * speed }
        })
        .collect()
}

/// The error indicator at `(x, y)`: the sum of unit-amplitude Gaussians
/// of width `sigma` centered on the features.
pub fn indicator(features: &[Feature], sigma: f64, x: f64, y: f64) -> f64 {
    let inv = 1.0 / (2.0 * sigma * sigma);
    features
        .iter()
        .map(|f| {
            let d2 = (x - f.x).powi(2) + (y - f.y).powi(2);
            (-d2 * inv).exp()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_stay_in_the_box_forever() {
        let mut fs = seeded_features(3, 0.11, 7);
        for _ in 0..500 {
            for f in &mut fs {
                f.advance();
                assert!((MARGIN..=1.0 - MARGIN).contains(&f.x), "x escaped: {}", f.x);
                assert!((MARGIN..=1.0 - MARGIN).contains(&f.y), "y escaped: {}", f.y);
                let speed = (f.vx * f.vx + f.vy * f.vy).sqrt();
                assert!((speed - 0.11).abs() < 1e-12, "speed drifted: {speed}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        assert_eq!(seeded_features(2, 0.05, 1), seeded_features(2, 0.05, 1));
        assert_ne!(seeded_features(2, 0.05, 1), seeded_features(2, 0.05, 2));
    }

    #[test]
    fn indicator_peaks_at_the_feature() {
        let fs = vec![Feature { x: 0.5, y: 0.5, vx: 0.0, vy: 0.0 }];
        let at = |x, y| indicator(&fs, 0.1, x, y);
        assert!((at(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert!(at(0.5, 0.5) > at(0.6, 0.5));
        assert!(at(0.9, 0.9) < 0.01);
    }
}
