//! The adaptive quadtree mesh with 2:1 face balance.
//!
//! The mesh is the set of quadtree *leaves* covering the unit square.
//! Adaptation is indicator-driven: cells whose error indicator exceeds
//! the refine threshold split into four children; sibling quartets whose
//! indicators all fall below the coarsen threshold merge back into their
//! parent. Both operations preserve the standard **2:1 balance**
//! invariant — face-adjacent leaves differ by at most one level — via
//! ripple propagation on refinement and an eligibility check on
//! coarsening.
//!
//! Everything iterates in the canonical [`Cell`] order, so the mesh
//! evolution is a pure function of the initial state and the indicator
//! sequence: bit-identical on every rank, at every thread count.

use std::collections::{BTreeMap, BTreeSet};

use crate::cell::{Cell, Direction};

/// The leaf set of an adaptive quadtree over `[0,1]²`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuadMesh {
    leaves: BTreeSet<Cell>,
    /// Coarsest level any leaf may reach (the initial uniform level).
    base_level: u8,
    /// Finest level any leaf may reach.
    max_level: u8,
}

impl QuadMesh {
    /// A uniform mesh of `2^base_level × 2^base_level` cells.
    ///
    /// # Panics
    /// Panics if `max_level < base_level` or `max_level` exceeds 20
    /// (beyond which `u32` cell coordinates and `f64` geometry stop
    /// being comfortable).
    pub fn uniform(base_level: u8, max_level: u8) -> Self {
        assert!(base_level <= max_level, "base_level must not exceed max_level");
        assert!(max_level <= 20, "max_level too deep");
        let side = 1u32 << base_level;
        let mut leaves = BTreeSet::new();
        for y in 0..side {
            for x in 0..side {
                leaves.insert(Cell { level: base_level, x, y });
            }
        }
        QuadMesh { leaves, base_level, max_level }
    }

    /// Number of leaf cells.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The coarsest admissible level.
    pub fn base_level(&self) -> u8 {
        self.base_level
    }

    /// The finest admissible level.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// The leaves in canonical order (level-major, then row, column).
    pub fn leaves(&self) -> impl Iterator<Item = Cell> + '_ {
        self.leaves.iter().copied()
    }

    /// True if `c` is a leaf of the mesh.
    pub fn is_leaf(&self, c: Cell) -> bool {
        self.leaves.contains(&c)
    }

    /// The leaf equal to `c` or the nearest ancestor of `c` that is a
    /// leaf, if any.
    fn leaf_covering(&self, c: Cell) -> Option<Cell> {
        let mut cur = Some(c);
        while let Some(cell) = cur {
            if self.leaves.contains(&cell) {
                return Some(cell);
            }
            cur = cell.parent();
        }
        None
    }

    /// All leaves sharing the face of `c` in direction `dir`. `c` itself
    /// need not be a leaf: for an interior (refined) cell this returns
    /// the leaves adjacent to that side of `c`'s region, which is what
    /// coarsening eligibility needs.
    ///
    /// Returns at most one coarser/equal leaf, or the finer leaves along
    /// the face (any number for a non-leaf query cell).
    pub fn neighbor_leaves(&self, c: Cell, dir: Direction) -> Vec<Cell> {
        let Some(n) = c.neighbor(dir) else {
            return Vec::new(); // domain boundary
        };
        if let Some(leaf) = self.leaf_covering(n) {
            return vec![leaf];
        }
        // The neighbor region is refined: descend along the shared face.
        let mut out = Vec::new();
        self.collect_face_leaves(n, dir.opposite(), &mut out);
        out
    }

    fn collect_face_leaves(&self, region: Cell, face: Direction, out: &mut Vec<Cell>) {
        if self.leaves.contains(&region) {
            out.push(region);
            return;
        }
        if region.level >= self.max_level {
            return;
        }
        for child in region.face_children(face) {
            self.collect_face_leaves(child, face, out);
        }
    }

    /// One adaptation step driven by `indicator` (evaluated at cell
    /// centers): refine leaves above `refine_t` (up to `max_level`),
    /// then coarsen sibling quartets entirely below `coarsen_t` (down to
    /// `base_level`), maintaining 2:1 balance throughout. Returns `true`
    /// if the mesh changed.
    ///
    /// Refinement moves a cell at most one level per call, so a feature
    /// appearing over a coarse region takes several calls to resolve
    /// fully; [`Self::adapt_to_stable`] iterates to the fixed point.
    pub fn adapt(
        &mut self,
        indicator: impl Fn(f64, f64) -> f64,
        refine_t: f64,
        coarsen_t: f64,
    ) -> bool {
        assert!(refine_t > coarsen_t, "thresholds must leave a hysteresis band");
        let mut changed = false;

        // --- Refinement marks, then 2:1 ripple propagation. ---
        let mut marked: BTreeSet<Cell> = self
            .leaves
            .iter()
            .copied()
            .filter(|c| {
                let (cx, cy) = c.center();
                c.level < self.max_level && indicator(cx, cy) > refine_t
            })
            .collect();
        // Refining `c` puts children at level+1 next to every face
        // neighbor; a neighbor more than one level coarser than the
        // children (i.e. coarser than `c`) must refine too. Worklist in
        // canonical order for determinism (the result is order-free —
        // marking is monotone — but keep traversal canonical anyway).
        let mut worklist: Vec<Cell> = marked.iter().copied().collect();
        while let Some(c) = worklist.pop() {
            for dir in Direction::ALL {
                for n in self.neighbor_leaves(c, dir) {
                    if n.level < c.level && marked.insert(n) {
                        worklist.push(n);
                    }
                }
            }
        }
        for c in &marked {
            let removed = self.leaves.remove(c);
            debug_assert!(removed, "marked cell was not a leaf");
            for child in c.children() {
                self.leaves.insert(child);
            }
            changed = true;
        }

        // --- Coarsening: sibling quartets, eligibility-checked. ---
        // Group leaves by parent; a quartet merges when all four
        // siblings are leaves not created by this call's refinement,
        // every sibling's indicator is below the coarsen threshold, and
        // no face-adjacent leaf of the parent region is finer than the
        // siblings (which would break 2:1 after the merge). Applying
        // merges in canonical order only ever *lowers* neighbor levels,
        // so eligibility established against the pre-pass mesh stays
        // valid as merges land.
        let mut quartets: BTreeMap<Cell, usize> = BTreeMap::new();
        for c in &self.leaves {
            if c.level > self.base_level && !marked.contains(&c.parent().expect("level > 0")) {
                *quartets.entry(c.parent().expect("level > 0")).or_insert(0) += 1;
            }
        }
        for (parent, siblings) in quartets {
            if siblings != 4 {
                continue;
            }
            let quiet = parent.children().iter().all(|c| {
                let (cx, cy) = c.center();
                indicator(cx, cy) < coarsen_t
            });
            if !quiet {
                continue;
            }
            let child_level = parent.level + 1;
            let balanced = Direction::ALL.iter().all(|&dir| {
                self.neighbor_leaves(parent, dir)
                    .iter()
                    .all(|n| n.level <= child_level)
            });
            if !balanced {
                continue;
            }
            for c in parent.children() {
                let removed = self.leaves.remove(&c);
                debug_assert!(removed, "quartet sibling was not a leaf");
            }
            self.leaves.insert(parent);
            changed = true;
        }

        debug_assert_eq!(self.validate(), Ok(()));
        changed
    }

    /// Iterates [`Self::adapt`] until the mesh stops changing (bounded
    /// by the level range, plus slack for refinement ripples). Returns
    /// the number of adaptation passes that changed the mesh.
    pub fn adapt_to_stable(
        &mut self,
        indicator: impl Fn(f64, f64) -> f64,
        refine_t: f64,
        coarsen_t: f64,
    ) -> usize {
        let cap = (self.max_level - self.base_level) as usize * 2 + 2;
        let mut passes = 0;
        while passes < cap && self.adapt(&indicator, refine_t, coarsen_t) {
            passes += 1;
        }
        passes
    }

    /// Checks every structural invariant: leaves tile the domain exactly
    /// (no gaps, no overlaps), levels lie in `[base_level, max_level]`,
    /// and 2:1 face balance holds.
    pub fn validate(&self) -> Result<(), String> {
        // Exact area accounting in integer units of the finest grid.
        let mut area: u64 = 0;
        let unit = |level: u8| -> u64 {
            let d = (self.max_level - level) as u32;
            1u64 << (2 * d)
        };
        for c in &self.leaves {
            if c.level < self.base_level || c.level > self.max_level {
                return Err(format!("leaf {c:?} outside level range"));
            }
            area += unit(c.level);
        }
        let full = 1u64 << (2 * self.max_level as u32);
        if area != full {
            return Err(format!("leaves cover {area}/{full} of the domain"));
        }
        // Overlap: tiling + exact area already rules overlaps out only
        // if no leaf is an ancestor of another.
        for c in &self.leaves {
            let mut p = c.parent();
            while let Some(anc) = p {
                if self.leaves.contains(&anc) {
                    return Err(format!("leaf {anc:?} is an ancestor of leaf {c:?}"));
                }
                p = anc.parent();
            }
        }
        // 2:1 face balance.
        for c in &self.leaves {
            for dir in Direction::ALL {
                for n in self.neighbor_leaves(*c, dir) {
                    let diff = (n.level as i32 - c.level as i32).abs();
                    if diff > 1 {
                        return Err(format!(
                            "2:1 violated: {c:?} and {n:?} across dir {dir:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_indicator(px: f64, py: f64, sigma: f64) -> impl Fn(f64, f64) -> f64 {
        move |x, y| {
            let d2 = (x - px).powi(2) + (y - py).powi(2);
            (-d2 / (2.0 * sigma * sigma)).exp()
        }
    }

    #[test]
    fn uniform_mesh_is_valid() {
        let m = QuadMesh::uniform(3, 6);
        assert_eq!(m.num_leaves(), 64);
        m.validate().unwrap();
    }

    #[test]
    fn refinement_concentrates_at_the_feature() {
        let mut m = QuadMesh::uniform(2, 6);
        // (1/3, 1/3) stays within ~0.24·2^-ℓ of a cell center at every
        // level, so the center-sampled indicator sees the feature from
        // the base grid all the way down.
        let ind = point_indicator(1.0 / 3.0, 1.0 / 3.0, 0.1);
        m.adapt_to_stable(&ind, 0.4, 0.1);
        m.validate().unwrap();
        let finest = m.leaves().map(|c| c.level).max().unwrap();
        assert_eq!(finest, 6, "feature fully resolved");
        // The far corner stays coarse.
        let far = m
            .leaves()
            .filter(|c| {
                let (x, y) = c.center();
                x > 0.75 && y > 0.75
            })
            .map(|c| c.level)
            .max()
            .unwrap();
        assert!(far <= 3, "far corner over-refined to level {far}");
    }

    #[test]
    fn coarsening_returns_to_uniform_when_feature_leaves() {
        let mut m = QuadMesh::uniform(2, 5);
        let ind = point_indicator(1.0 / 3.0, 1.0 / 3.0, 0.1);
        m.adapt_to_stable(&ind, 0.4, 0.1);
        assert!(m.num_leaves() > 16);
        // Feature gone: everything decays to the base level.
        let gone = |_x: f64, _y: f64| 0.0;
        m.adapt_to_stable(gone, 0.4, 0.1);
        m.validate().unwrap();
        assert_eq!(m.num_leaves(), 16, "mesh re-coarsened to the base grid");
    }

    #[test]
    fn two_one_balance_holds_after_every_single_step() {
        let mut m = QuadMesh::uniform(2, 7);
        // March a narrow feature across the domain; validate after every
        // individual adapt call (not only at stable points).
        for step in 0..24 {
            let t = step as f64 / 24.0;
            let ind = point_indicator(0.1 + 0.8 * t, 0.3 + 0.4 * t, 0.03);
            m.adapt(&ind, 0.5, 0.15);
            m.validate().unwrap();
        }
    }

    #[test]
    fn neighbor_leaves_spans_levels() {
        let mut m = QuadMesh::uniform(1, 4);
        // Refine the SW cell only: its neighbors see two finer leaves.
        let sw = Cell::new(1, 0, 0);
        let ind = move |x: f64, y: f64| if x < 0.5 && y < 0.5 { 1.0 } else { 0.0 };
        m.adapt(ind, 0.5, 0.1);
        let east = Cell::new(1, 1, 0);
        let ns = m.neighbor_leaves(east, Direction::West);
        assert_eq!(ns.len(), 2, "west neighbor refined into two face leaves");
        assert!(ns.iter().all(|c| c.level == 2 && c.descends_from(sw)));
        // And from a fine leaf, the coarse neighbor comes back whole.
        let fine = Cell::new(2, 1, 0);
        assert_eq!(m.neighbor_leaves(fine, Direction::East), vec![east]);
    }

    #[test]
    fn refinement_ripples_preserve_balance() {
        let mut m = QuadMesh::uniform(2, 6);
        // The indicator crosses the refine threshold at radius ~0.12
        // from the feature — a cliff relative to coarse cell widths, so
        // every intermediate level around the refined disk exists only
        // because 2:1 ripples created it.
        let ind = point_indicator(1.0 / 3.0, 1.0 / 3.0, 0.1);
        m.adapt_to_stable(&ind, 0.5, 0.1);
        m.validate().unwrap();
        let levels: BTreeSet<u8> = m.leaves().map(|c| c.level).collect();
        assert!(levels.contains(&6), "feature resolved to the finest level");
        for l in 3..=5 {
            assert!(levels.contains(&l), "ripple gradation missing level {l}");
        }
    }

    #[test]
    fn adapt_is_deterministic() {
        let run = || {
            let mut m = QuadMesh::uniform(2, 6);
            for step in 0..10 {
                let t = step as f64 * 0.07;
                let ind = point_indicator(0.2 + t, 0.8 - t, 0.04);
                m.adapt(&ind, 0.45, 0.12);
            }
            m.leaves().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
