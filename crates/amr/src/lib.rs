//! # dlb-amr — a real adaptive workload for the load balancer
//!
//! The paper's repartitioners are evaluated elsewhere in this repo on
//! synthetic perturbations of static graphs. This crate supplies the
//! workload the paper is actually about: an adaptive scientific
//! computation whose mesh changes every epoch.
//!
//! It simulates a deterministic 2D quadtree AMR mesh on the unit
//! square. Moving Gaussian [`Feature`]s drive an error indicator; each
//! epoch the mesh refines where the indicator is high and coarsens
//! where it has dropped, always restoring the standard 2:1 face-balance
//! invariant. Each epoch's leaf set is lowered ([`lower`]) to the face
//! adjacency graph and its column-net hypergraph — vertex weight = time
//! sub-cycling work `2^(level − base)`, vertex size = migration payload
//! in bytes, net cost = ghost-exchange volume — and emitted through
//! [`AmrStream`] with per-vertex previous/creation parts, ready for the
//! repartitioning drivers in `dlb-core`.
//!
//! Everything is a deterministic function of ([`AmrConfig`], `k`,
//! seed): feature trajectories are closed-form after one seeded draw,
//! leaves live in a `BTreeSet` under a canonical [`Cell`] order, and
//! all lowered weights are integer-valued `f64`s so cost sums are exact
//! under any summation order.

pub mod cell;
pub mod feature;
pub mod lower;
pub mod mesh;
pub mod stream;

pub use cell::{Cell, Direction};
pub use feature::{indicator, seeded_features, Feature};
pub use lower::{lower, LoweredMesh};
pub use mesh::QuadMesh;
pub use stream::{AmrDelta, AmrDeltaCell, AmrEpoch, AmrStream};

/// Parameters of the AMR simulation and its lowering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmrConfig {
    /// Coarsest refinement level; the mesh never coarsens below the
    /// uniform `2^base × 2^base` grid.
    pub base_level: u8,
    /// Finest refinement level allowed.
    pub max_level: u8,
    /// Number of moving Gaussian features.
    pub num_features: usize,
    /// Gaussian width of each feature.
    pub sigma: f64,
    /// Feature speed in domain units per epoch.
    pub speed: f64,
    /// Refine a leaf whose center indicator exceeds this.
    pub refine_threshold: f64,
    /// Coarsen a quartet whose centers are all below this.
    pub coarsen_threshold: f64,
    /// Migration payload per cell in bytes (vertex size and net cost).
    pub state_bytes: f64,
    /// Emit two-constraint load vectors from [`lower`]: constraint 0
    /// stays the sub-cycling flops weight `2^(level − base)`, constraint
    /// 1 is the cell's resident state in bytes (`state_bytes`). Off by
    /// default — the scalar lowering is bitwise unchanged, and flops
    /// remain the only balance constraint.
    pub multi_constraint: bool,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig {
            base_level: 4,
            max_level: 7,
            num_features: 2,
            sigma: 0.08,
            speed: 0.06,
            refine_threshold: 0.4,
            coarsen_threshold: 0.1,
            state_bytes: 40.0,
            multi_constraint: false,
        }
    }
}

impl AmrConfig {
    /// A smaller instance for quick tests and smoke runs.
    pub fn small() -> Self {
        AmrConfig { base_level: 3, max_level: 5, ..Self::default() }
    }

    /// Scales the default mesh resolution: `scale` adds that many levels
    /// to both base and max (clamped to the addressable range).
    pub fn for_scale(scale: u8) -> Self {
        let d = Self::default();
        AmrConfig {
            base_level: (d.base_level + scale).min(12),
            max_level: (d.max_level + scale).min(15),
            ..d
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_level > self.max_level {
            return Err(format!(
                "base_level {} exceeds max_level {}",
                self.base_level, self.max_level
            ));
        }
        if self.max_level > 20 {
            return Err(format!("max_level {} exceeds addressable 20", self.max_level));
        }
        if self.num_features == 0 {
            return Err("num_features must be positive".into());
        }
        // NaN must fail every check, so each test names the accepting
        // range and rejects its complement plus NaN explicitly.
        if self.sigma <= 0.0 || self.sigma.is_nan() {
            return Err(format!("sigma must be positive, got {}", self.sigma));
        }
        if self.speed < 0.0 || self.speed.is_nan() {
            return Err(format!("speed must be non-negative, got {}", self.speed));
        }
        if self.refine_threshold <= self.coarsen_threshold
            || self.refine_threshold.is_nan()
            || self.coarsen_threshold.is_nan()
        {
            return Err(format!(
                "refine_threshold {} must exceed coarsen_threshold {}",
                self.refine_threshold, self.coarsen_threshold
            ));
        }
        if self.state_bytes <= 0.0 || self.state_bytes.is_nan() || self.state_bytes.fract() != 0.0 {
            return Err(format!(
                "state_bytes must be a positive integer-valued f64, got {}",
                self.state_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        AmrConfig::default().validate().unwrap();
        AmrConfig::small().validate().unwrap();
        AmrConfig::for_scale(2).validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let bad = AmrConfig { base_level: 8, max_level: 5, ..AmrConfig::default() };
        assert!(bad.validate().is_err());
        let bad = AmrConfig { refine_threshold: 0.1, coarsen_threshold: 0.4, ..AmrConfig::default() };
        assert!(bad.validate().is_err());
        let bad = AmrConfig { state_bytes: 40.5, ..AmrConfig::default() };
        assert!(bad.validate().is_err());
        let bad = AmrConfig { num_features: 0, ..AmrConfig::default() };
        assert!(bad.validate().is_err());
    }
}
