//! Inert implementation (compiled when the `enabled` feature is off).
//!
//! Every entry point exists with the same signature as the live
//! implementation but does nothing and returns empty values, so call
//! sites compile unchanged and the optimizer erases them.

use crate::{AttrValue, Counter, TraceReport};

/// Always false without the `enabled` feature.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Always false without the `enabled` feature.
#[inline(always)]
pub fn session_active() -> bool {
    false
}

/// No-op without the `enabled` feature.
#[inline(always)]
pub fn count(_c: Counter, _n: u64) {}

/// Inert enrollment snapshot.
#[derive(Debug, Clone, Copy)]
pub struct ForkCtx;

/// Returns an inert snapshot.
#[inline(always)]
pub fn fork() -> ForkCtx {
    ForkCtx
}

/// No-op without the `enabled` feature.
#[inline(always)]
pub fn adopt(_ctx: ForkCtx, _record: bool) {}

/// Inert span guard.
pub struct SpanGuard;

impl SpanGuard {
    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn attr(&self, _name: &'static str, _value: impl Into<AttrValue>) {}
}

/// Returns an inert guard.
#[inline(always)]
pub fn span_start(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Inert session handle.
pub struct TraceSession;

/// Returns an inert session.
#[inline(always)]
pub fn session() -> TraceSession {
    TraceSession
}

impl TraceSession {
    /// Returns an empty report.
    pub fn finish(self) -> TraceReport {
        TraceReport::default()
    }
}
