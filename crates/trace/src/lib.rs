//! Phase-level tracing and deterministic metrics.
//!
//! The paper's evaluation attributes cost to *phases* — coarsening,
//! coarse solve, refinement, migration — so the workspace needs a
//! measurement substrate that every layer can feed. This crate provides
//! it in three parts:
//!
//! * **Spans** — a hierarchical tree of timed regions recorded through
//!   RAII guards ([`span!`]). Spans carry static names plus typed
//!   attributes (level numbers, coarse shapes, per-level communication
//!   ledgers) and nest through a thread-local stack.
//! * **Counters** — a fixed vocabulary ([`Counter`]) of monotonically
//!   increasing integers (pins scanned by IPM, FM moves
//!   attempted/accepted/rolled back, GHG seeds, rebalance invocations,
//!   …). Counter values are *deterministic*: instrumented kernels only
//!   count work that is invariant across thread counts, and in SPMD
//!   runs only rank 0 of a world records, so values are invariant
//!   across rank counts too (see DESIGN.md §11 for the argument).
//! * **Export** — a [`TraceReport`] that renders both a BENCH-style
//!   JSON summary and the chrome://tracing trace-event format.
//!
//! # Sessions and enrollment
//!
//! Recording is off until a [`TraceSession`] is opened; sessions are
//! globally serialized (a second concurrent `session()` blocks until
//! the first finishes) so concurrently running tests cannot interleave
//! their spans. Within a session only *enrolled* threads record: the
//! thread that opened the session is enrolled, and `mpisim::run_spmd`
//! propagates enrollment to rank 0 of each world it launches (other
//! ranks stay muted — they perform identical SPMD work, so rank 0's
//! view is both representative and rank-count-invariant). Threads from
//! unrelated tests are never enrolled and can neither pollute the span
//! tree nor the counters.
//!
//! # Zero cost when disabled
//!
//! Building with `default-features = false` (dropping the `enabled`
//! feature) compiles every entry point to an inert no-op; call sites
//! need no `cfg` guards. Even with the feature on, the fast path when
//! no session is active is a single relaxed atomic load.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[cfg(feature = "enabled")]
mod imp;
#[cfg(feature = "enabled")]
pub use imp::{
    adopt, count, enabled, fork, session, session_active, span_start, ForkCtx, SpanGuard,
    TraceSession,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    adopt, count, enabled, fork, session, session_active, span_start, ForkCtx, SpanGuard,
    TraceSession,
};

/// `true` when the crate was built with the `enabled` feature (the
/// default); `false` for the inert no-op build. Lets downstream tests
/// branch without repeating the feature gate.
pub const COMPILED_IN: bool = cfg!(feature = "enabled");

/// Opens a timed span; returns a guard that records the duration when
/// dropped. Bind it (`let _span = span!(...)`) — an unbound guard drops
/// immediately and records a zero-length span.
///
/// ```
/// let session = dlb_trace::session();
/// {
///     let _span = dlb_trace::span!("coarsen.level", level = 3usize);
/// }
/// let report = session.finish();
/// // One span with the `enabled` feature (the default), none without.
/// assert_eq!(report.spans.len(), usize::from(cfg!(feature = "enabled")));
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_start($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let guard = $crate::span_start($name);
        $( guard.attr(stringify!($key), $value); )+
        guard
    }};
}

/// The fixed vocabulary of deterministic counters.
///
/// Every variant is documented with *where* it is counted, because that
/// placement is what makes the value invariant across thread and rank
/// counts (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Coarsening levels built (one per contraction, all drivers).
    CoarsenLevels,
    /// Matched pairs accepted by IPM matching, summed over levels.
    CoarsenMatchesAccepted,
    /// IPM candidates discarded because fixed-vertex assignments were
    /// incompatible (counted in the serial selection loop).
    CoarsenMatchesRefusedFixed,
    /// Pins iterated while scoring vertices that the serial IPM
    /// selection loop actually visited unmatched.
    CoarsenPinsScanned,
    /// Vertices of the coarsest hypergraph handed to the coarse solve.
    CoarseVertices,
    /// Nets of the coarsest hypergraph handed to the coarse solve.
    CoarseNets,
    /// Pins of the coarsest hypergraph handed to the coarse solve.
    CoarsePins,
    /// Greedy-hypergraph-growing attempts executed (coarse-solve seeds).
    InitialGhgSeeds,
    /// FM refinement passes run by the serial/shared-memory refiner.
    FmPasses,
    /// FM moves applied during passes, before prefix rollback.
    FmMovesAttempted,
    /// FM moves kept after rolling back to the best prefix.
    FmMovesAccepted,
    /// FM moves undone by prefix rollback.
    FmMovesRolledBack,
    /// Invocations of the greedy rebalance fixer (serial and
    /// distributed variants).
    RebalanceInvocations,
    /// Vertices whose part changed during a parallel/distributed
    /// refinement level (outcome diff — invariant because partitions
    /// are bit-identical across rank counts).
    ParRefineMovesCommitted,
    /// V-cycle iterations executed.
    VcyclesRun,
    /// V-cycle iterations whose result improved the cut and was kept.
    VcyclesKept,
    /// Epochs executed by the simulation driver.
    Epochs,
    /// Items physically moved by measured migration (summed over the
    /// execution world's ranks from the returned per-rank stats).
    MigrationItemsMoved,
    /// Faults injected by an installed `FaultPlan`: one per scheduled
    /// rank failure consumed by the epoch driver, plus one per message
    /// drop/delay injected inside the measured execution world (counted
    /// on that world's enrolled rank 0, so the value is invariant
    /// across driver rank counts).
    FaultsInjected,
    /// Recovery repartitions run after a rank failure (one per dead
    /// rank, counted in the epoch driver).
    RecoveriesRun,
    /// Epochs served by the incremental path via a patched model with a
    /// warm-started (refine-only) repartition — counted in the epoch
    /// driver's drift policy.
    DeltaEpochs,
    /// Epochs in an incremental run that fell back to a full V-cycle
    /// (drift at/above threshold, non-repartitioning algorithm, or a
    /// full-snapshot update) — counted in the epoch driver.
    FullRebuilds,
    /// Cells touched by delta patching: removed + added + reweighted +
    /// survivors whose nets were spliced (counted in `ModelPatcher`).
    CellsPatched,
    /// Planned world resizes performed at epoch boundaries (one per
    /// epoch with a net `WorldPlan` change, counted in the epoch
    /// driver).
    ResizesRun,
    /// Ranks that joined the world through planned resizes.
    RanksJoined,
    /// Ranks that departed the world through planned resizes (planned
    /// leaves only; failures count under `RecoveriesRun`).
    RanksDeparted,
    /// Resizes where the measured cost model picked the fixed-vertex
    /// repartition candidate (counted in the epoch driver's arbitration).
    ResizeChoseRepart,
    /// Resizes where the measured cost model picked the scratch-partition
    /// + remap candidate.
    ResizeChoseScratch,
    /// Invocations of the multi-constraint greedy repair pass (serial
    /// refiner; never incremented by scalar arity-1 runs).
    RepairInvocations,
    /// Vertex moves kept by the greedy repair pass.
    RepairMovesApplied,
}

impl Counter {
    /// Every counter, in declaration (= export) order.
    pub const ALL: [Counter; 30] = [
        Counter::CoarsenLevels,
        Counter::CoarsenMatchesAccepted,
        Counter::CoarsenMatchesRefusedFixed,
        Counter::CoarsenPinsScanned,
        Counter::CoarseVertices,
        Counter::CoarseNets,
        Counter::CoarsePins,
        Counter::InitialGhgSeeds,
        Counter::FmPasses,
        Counter::FmMovesAttempted,
        Counter::FmMovesAccepted,
        Counter::FmMovesRolledBack,
        Counter::RebalanceInvocations,
        Counter::ParRefineMovesCommitted,
        Counter::VcyclesRun,
        Counter::VcyclesKept,
        Counter::Epochs,
        Counter::MigrationItemsMoved,
        Counter::FaultsInjected,
        Counter::RecoveriesRun,
        Counter::DeltaEpochs,
        Counter::FullRebuilds,
        Counter::CellsPatched,
        Counter::ResizesRun,
        Counter::RanksJoined,
        Counter::RanksDeparted,
        Counter::ResizeChoseRepart,
        Counter::ResizeChoseScratch,
        Counter::RepairInvocations,
        Counter::RepairMovesApplied,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CoarsenLevels => "coarsen_levels",
            Counter::CoarsenMatchesAccepted => "coarsen_matches_accepted",
            Counter::CoarsenMatchesRefusedFixed => "coarsen_matches_refused_fixed",
            Counter::CoarsenPinsScanned => "coarsen_pins_scanned",
            Counter::CoarseVertices => "coarse_vertices",
            Counter::CoarseNets => "coarse_nets",
            Counter::CoarsePins => "coarse_pins",
            Counter::InitialGhgSeeds => "initial_ghg_seeds",
            Counter::FmPasses => "fm_passes",
            Counter::FmMovesAttempted => "fm_moves_attempted",
            Counter::FmMovesAccepted => "fm_moves_accepted",
            Counter::FmMovesRolledBack => "fm_moves_rolled_back",
            Counter::RebalanceInvocations => "rebalance_invocations",
            Counter::ParRefineMovesCommitted => "par_refine_moves_committed",
            Counter::VcyclesRun => "vcycles_run",
            Counter::VcyclesKept => "vcycles_kept",
            Counter::Epochs => "epochs",
            Counter::MigrationItemsMoved => "migration_items_moved",
            Counter::FaultsInjected => "faults_injected",
            Counter::RecoveriesRun => "recoveries_run",
            Counter::DeltaEpochs => "delta_epochs",
            Counter::FullRebuilds => "full_rebuilds",
            Counter::CellsPatched => "cells_patched",
            Counter::ResizesRun => "resizes_run",
            Counter::RanksJoined => "ranks_joined",
            Counter::RanksDeparted => "ranks_departed",
            Counter::ResizeChoseRepart => "resize_chose_repart",
            Counter::ResizeChoseScratch => "resize_chose_scratch",
            Counter::RepairInvocations => "repair_invocations",
            Counter::RepairMovesApplied => "repair_moves_applied",
        }
    }
}

/// Typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer (counts, levels, byte totals).
    Int(i64),
    /// Floating-point (times, ratios).
    Float(f64),
    /// Short descriptive string (scheme, algorithm).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static span name (dotted taxonomy, e.g. `coarsen.level`).
    pub name: &'static str,
    /// Start offset from the session epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Index of the parent span in [`TraceReport::spans`], if any.
    pub parent: Option<usize>,
    /// Indices of child spans, in start order.
    pub children: Vec<usize>,
    /// Attributes, in the order they were attached.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The immutable result of a finished [`TraceSession`].
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// All recorded spans in creation (= start) order; children always
    /// come after their parent.
    pub spans: Vec<Span>,
    /// Final counter values, by stable name, for every counter that is
    /// non-zero plus all-zero maps stay empty.
    pub counters: BTreeMap<&'static str, u64>,
}

impl TraceReport {
    /// Value of one counter (0 if never incremented).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// Indices of root spans (no parent).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect()
    }

    /// The first span with the given name, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.spans.iter().position(|s| s.name == name)
    }

    /// Sum of the durations of the *leaf* descendants of `root`
    /// (a leaf root counts itself), in nanoseconds.
    pub fn leaf_duration_ns(&self, root: usize) -> u64 {
        if self.spans[root].children.is_empty() {
            return self.spans[root].dur_ns;
        }
        self.spans[root]
            .children
            .iter()
            .map(|&c| self.leaf_duration_ns(c))
            .sum()
    }

    /// Fraction of the wall time of the first span named `root_name`
    /// that is covered by its leaf descendants. Returns `None` when the
    /// span is missing or has zero duration.
    pub fn leaf_coverage(&self, root_name: &str) -> Option<f64> {
        let root = self.find(root_name)?;
        let total = self.spans[root].dur_ns;
        if total == 0 {
            return None;
        }
        Some(self.leaf_duration_ns(root) as f64 / total as f64)
    }

    /// A canonical, time-free signature of the span tree: preorder walk
    /// over span names. Two runs with identical control flow produce
    /// identical signatures regardless of timing.
    pub fn structure_signature(&self) -> String {
        fn walk(report: &TraceReport, i: usize, depth: usize, out: &mut String) {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), report.spans[i].name);
            for &c in &report.spans[i].children {
                walk(report, c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for root in self.roots() {
            walk(self, root, 0, &mut out);
        }
        out
    }

    /// Aggregates total duration and invocation count per span name.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = totals.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        totals
    }

    /// Renders the report as a chrome://tracing trace-event JSON file
    /// (object form, so counters and a per-phase summary ride along as
    /// extra top-level keys).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let mut args = String::new();
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    args.push_str(", ");
                }
                let _ = write!(args, "{}: {}", json_str(k), json_attr(v));
            }
            let _ = write!(
                out,
                "    {{\"name\": {}, \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{}}}}}",
                json_str(s.name),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                args
            );
            out.push_str(if i + 1 < self.spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"counters\": {\n");
        let n = self.counters.len();
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_str(k), v);
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  },\n  \"summary\": {\n");
        let totals = self.phase_totals();
        let n = totals.len();
        for (i, (name, (calls, dur))) in totals.iter().enumerate() {
            let _ = write!(
                out,
                "    {}: {{\"calls\": {}, \"total_ms\": {:.3}}}",
                json_str(name),
                calls,
                *dur as f64 / 1e6
            );
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) if f.is_finite() => format!("{f}"),
        AttrValue::Float(_) => "null".to_string(),
        AttrValue::Str(s) => json_str(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
