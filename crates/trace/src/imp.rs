//! Live implementation (compiled when the `enabled` feature is on).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::{AttrValue, Counter, Span, TraceReport};

/// Whether a session is currently active, globally.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Session generation, bumped at each session start; thread enrollment
/// is tagged with the generation it belongs to so stale thread-local
/// state from a previous session can never record into a new one.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// The recorder for the active session.
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);
/// Serializes sessions: a second concurrent `session()` blocks here.
static SESSION_GATE: Mutex<()> = Mutex::new(());

const NUM_COUNTERS: usize = Counter::ALL.len();
#[allow(clippy::declare_interior_mutable_const)]
const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; NUM_COUNTERS] = [COUNTER_ZERO; NUM_COUNTERS];

thread_local! {
    /// Generation this thread is enrolled in (0 = never enrolled;
    /// generations start at 1).
    static ENROLLED_GEN: Cell<u64> = const { Cell::new(0) };
    /// Parent adopted from a forking thread (used when the local span
    /// stack is empty, e.g. on rank 0 of an SPMD world).
    static ADOPTED_PARENT: Cell<Option<usize>> = const { Cell::new(None) };
    /// Stack of open span indices on this thread.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

struct Recorder {
    epoch: Instant,
    spans: Vec<Span>,
}

/// True when a session is active *and* the current thread is enrolled
/// in it. Gates every record operation.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
        && ENROLLED_GEN.with(|g| g.get()) == GENERATION.load(Ordering::Relaxed)
}

/// True when a session is active anywhere in the process, regardless of
/// this thread's enrollment. SPMD code gating *collective* trace
/// operations (where every rank must participate or none) must use this
/// instead of [`enabled`], or muted ranks would skip the collective and
/// deadlock the world.
#[inline]
pub fn session_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Adds `n` to a deterministic counter. No-op unless [`enabled`].
#[inline]
pub fn count(c: Counter, n: u64) {
    if n > 0 && enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Enrollment snapshot carried from a forking thread to the threads it
/// spawns (see `mpisim::run_spmd`).
#[derive(Debug, Clone, Copy)]
pub struct ForkCtx {
    generation: u64,
    parent: Option<usize>,
    enrolled: bool,
}

/// Captures the calling thread's enrollment and current span, to hand
/// to [`adopt`] on a spawned thread.
pub fn fork() -> ForkCtx {
    let generation = GENERATION.load(Ordering::Relaxed);
    let enrolled = ACTIVE.load(Ordering::Relaxed) && ENROLLED_GEN.with(|g| g.get()) == generation;
    let parent = if enrolled {
        STACK
            .with(|s| s.borrow().last().copied())
            .or_else(|| ADOPTED_PARENT.with(|p| p.get()))
    } else {
        None
    };
    ForkCtx {
        generation,
        parent,
        enrolled,
    }
}

/// Enrolls the calling thread under `ctx` if the forking thread was
/// enrolled and `record` is true (callers pass `rank == 0` so exactly
/// one rank of each SPMD world records). Spans opened while the local
/// stack is empty attach under the forking thread's current span.
pub fn adopt(ctx: ForkCtx, record: bool) {
    if ctx.enrolled && record && GENERATION.load(Ordering::Relaxed) == ctx.generation {
        ENROLLED_GEN.with(|g| g.set(ctx.generation));
        ADOPTED_PARENT.with(|p| p.set(ctx.parent));
    } else {
        ENROLLED_GEN.with(|g| g.set(0));
        ADOPTED_PARENT.with(|p| p.set(None));
    }
}

/// RAII guard for an open span; records the duration on drop.
pub struct SpanGuard {
    /// `Some((generation, span index))` when live; `None` when the
    /// guard was created disabled and is inert.
    slot: Option<(u64, usize)>,
    start: Instant,
}

/// Opens a span. Prefer the [`span!`](crate::span) macro, which also
/// attaches attributes.
pub fn span_start(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            slot: None,
            start: Instant::now(),
        };
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let mut rec = lock_recorder();
    let Some(rec) = rec.as_mut() else {
        return SpanGuard {
            slot: None,
            start: Instant::now(),
        };
    };
    let parent = STACK
        .with(|s| s.borrow().last().copied())
        .or_else(|| ADOPTED_PARENT.with(|p| p.get()));
    let idx = rec.spans.len();
    let start = Instant::now();
    rec.spans.push(Span {
        name,
        start_ns: start.duration_since(rec.epoch).as_nanos() as u64,
        dur_ns: 0,
        parent,
        children: Vec::new(),
        attrs: Vec::new(),
    });
    if let Some(p) = parent {
        rec.spans[p].children.push(idx);
    }
    STACK.with(|s| s.borrow_mut().push(idx));
    SpanGuard {
        slot: Some((generation, idx)),
        start,
    }
}

impl SpanGuard {
    /// Attaches an attribute to the span. Inert on a disabled guard.
    pub fn attr(&self, name: &'static str, value: impl Into<AttrValue>) {
        let Some((generation, idx)) = self.slot else {
            return;
        };
        if GENERATION.load(Ordering::Relaxed) != generation {
            return;
        }
        let mut rec = lock_recorder();
        if let Some(rec) = rec.as_mut() {
            if let Some(span) = rec.spans.get_mut(idx) {
                span.attrs.push((name, value.into()));
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((generation, idx)) = self.slot else {
            return;
        };
        if GENERATION.load(Ordering::Relaxed) != generation {
            return;
        }
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&idx) {
                s.pop();
            }
        });
        let mut rec = lock_recorder();
        if let Some(rec) = rec.as_mut() {
            if let Some(span) = rec.spans.get_mut(idx) {
                span.dur_ns = dur_ns;
            }
        }
    }
}

fn lock_recorder() -> MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// An active recording session. Obtain with [`session`]; consume with
/// [`TraceSession::finish`] to get the [`TraceReport`].
pub struct TraceSession {
    _gate: MutexGuard<'static, ()>,
}

/// Opens a recording session and enrolls the calling thread. Blocks if
/// another session is active anywhere in the process (sessions are
/// globally serialized).
pub fn session() -> TraceSession {
    let gate = SESSION_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    *lock_recorder() = Some(Recorder {
        epoch: Instant::now(),
        spans: Vec::new(),
    });
    ENROLLED_GEN.with(|g| g.set(generation));
    ADOPTED_PARENT.with(|p| p.set(None));
    STACK.with(|s| s.borrow_mut().clear());
    ACTIVE.store(true, Ordering::Relaxed);
    TraceSession { _gate: gate }
}

impl TraceSession {
    /// Ends the session and returns everything recorded.
    pub fn finish(self) -> TraceReport {
        ACTIVE.store(false, Ordering::Relaxed);
        // Invalidate enrollment (and any outstanding guards) before
        // releasing the gate.
        GENERATION.fetch_add(1, Ordering::Relaxed);
        ENROLLED_GEN.with(|g| g.set(0));
        ADOPTED_PARENT.with(|p| p.set(None));
        STACK.with(|s| s.borrow_mut().clear());
        let rec = lock_recorder().take();
        let mut counters = std::collections::BTreeMap::new();
        for c in Counter::ALL {
            let v = COUNTERS[c as usize].swap(0, Ordering::Relaxed);
            if v > 0 {
                counters.insert(c.name(), v);
            }
        }
        TraceReport {
            spans: rec.map(|r| r.spans).unwrap_or_default(),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_records_nested_spans_and_counters() {
        let session = session();
        {
            let outer = crate::span!("outer", k = 4usize);
            let _ = &outer;
            {
                let _inner = crate::span!("inner");
                count(Counter::FmPasses, 2);
            }
            {
                let _inner = crate::span!("inner");
            }
        }
        let report = session.finish();
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].children, vec![1, 2]);
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.counter(Counter::FmPasses), 2);
        assert_eq!(
            report.spans[0].attrs,
            vec![("k", AttrValue::Int(4))]
        );
    }

    #[test]
    fn no_session_records_nothing() {
        {
            let _span = crate::span!("ghost");
            count(Counter::FmPasses, 1);
        }
        let session = session();
        let report = session.finish();
        assert!(report.spans.is_empty(), "spans leaked: {:?}", report.spans);
        assert!(report.counters.is_empty());
    }

    #[test]
    fn unenrolled_thread_does_not_record() {
        let session = session();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _span = crate::span!("foreign");
                    count(Counter::Epochs, 7);
                })
                .join()
                .unwrap();
        });
        let report = session.finish();
        assert!(report.spans.is_empty());
        assert_eq!(report.counter(Counter::Epochs), 0);
    }

    #[test]
    fn forked_thread_adopts_parent_when_recording() {
        let session = session();
        {
            let _root = crate::span!("root");
            let ctx = fork();
            std::thread::scope(|scope| {
                scope
                    .spawn(move || {
                        adopt(ctx, true);
                        let _child = crate::span!("child");
                    })
                    .join()
                    .unwrap();
                scope
                    .spawn(move || {
                        adopt(ctx, false);
                        let _child = crate::span!("muted");
                    })
                    .join()
                    .unwrap();
            });
        }
        let report = session.finish();
        let names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["root", "child"]);
        assert_eq!(report.spans[1].parent, Some(0));
    }

    #[test]
    fn coverage_and_signature() {
        let session = session();
        {
            let _root = crate::span!("partition");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _leaf = crate::span!("coarsen.level");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let report = session.finish();
        let cov = report.leaf_coverage("partition").unwrap();
        assert!(cov > 0.0 && cov <= 1.0, "coverage {cov}");
        assert_eq!(
            report.structure_signature(),
            "partition\n  coarsen.level\n"
        );
        let json = report.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"coarsen.level\""));
    }
}
