//! Block-distributed hypergraph storage (owner-computes nets + ghost
//! pin halos).
//!
//! The paper's parallel refinement lives inside Zoltan's PHG, where the
//! hypergraph is *distributed*: no rank holds the whole structure, so
//! per-rank memory scales as `O((|pins| + n)/p + halo)` instead of
//! `O(|pins| + n)`. This crate provides that storage layer for the
//! simulated SPMD machine in `dlb-mpisim`:
//!
//! * [`DistHypergraph`] — vertices block-distributed via [`BlockDist`];
//!   each net's **full pin list lives only on its owner rank**. Every
//!   other rank that owns at least one of the net's pins holds a compact
//!   *stub*: the net's global id, cost, global size, owner rank, and
//!   only this rank's own pins in net order — exactly the incidence the
//!   matching and FM kernels read locally. Remote pins of *owned* nets
//!   become ghost vertices; stub pins are owned by construction, so the
//!   ghost list stays proportional to the owned-net halo rather than to
//!   every net the rank touches.
//! * [`GhostExchange`] — a reusable [`CommPlan`]-based halo update that
//!   pulls per-vertex data (parts, weights, match targets) from owner
//!   ranks into ghost-aligned buffers, plus an **incremental** push path
//!   ([`GhostExchange::push_dirty`], wrapped by [`GhostHalo`]): owners
//!   send only the entries whose value changed since the last sync, so
//!   a quiet FM round costs bytes proportional to the moved vertices,
//!   not to the halo (PMondriaan-style dirty push; the delta bytes are
//!   charged to `CommStats` like any other exchange).
//! * Distributed metrics — `cut_k1`, part weights and imbalance
//!   computed from owned data plus an `allreduce`.
//!
//! Per-vertex state in the algorithms above (part vector, loads, sizes,
//! fixed assignments, contraction maps) is block-distributed alongside
//! the vertices and accessed through the halo; see DESIGN.md §9 and
//! §17. Local nets are kept sorted by global net id, and pin order
//! within a net (full list or stub) preserves the replicated
//! hypergraph's order — both invariants are load-bearing for the
//! bit-identical distributed V-cycle in `dlb-partitioner`.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

use dlb_hypergraph::{Hypergraph, PartId};
use dlb_mpisim::{BlockDist, Comm, CommPlan};

/// One rank's share of one net, as routed during distributed
/// contraction: either the full pin list (for the owner) or the stub
/// (this rank's own pins in net order).
#[derive(Clone, Debug)]
pub struct NetShare {
    /// Global net id.
    pub gid: usize,
    /// Net cost.
    pub cost: f64,
    /// Global pin count of the net.
    pub global_size: usize,
    /// The rank that stores the full pin list.
    pub owner: usize,
    /// Pins carried by this share: the full list when `owner` is the
    /// receiving rank, otherwise the receiver's own pins in net order.
    pub pins: Vec<usize>,
}

/// One rank's share of a block-distributed hypergraph.
///
/// Vertices are owned by contiguous blocks ([`BlockDist`]). A net is
/// *local* to every rank owning at least one of its pins; the net's
/// **owner** rank stores the full pin list, every other local rank
/// stores a stub with only its own pins. Local nets are sorted by
/// global net id and pin order follows the replicated hypergraph.
#[derive(Clone, Debug)]
pub struct DistHypergraph {
    rank: usize,
    vdist: BlockDist,
    num_nets_global: usize,
    /// Global ids of local nets, strictly ascending.
    net_ids: Vec<usize>,
    /// Per local net: does this rank store the full pin list?
    owned: Vec<bool>,
    /// Per local net: the owning rank.
    owner_rank: Vec<usize>,
    /// Per local net: global pin count (stubs store fewer pins).
    gsize: Vec<usize>,
    /// CSR offsets into `pins`, one slot per local net.
    xpins: Vec<usize>,
    /// Global vertex ids: the full pin list for owned nets, this rank's
    /// own pins (in net order) for stubs.
    pins: Vec<usize>,
    /// Cost per local net.
    cost: Vec<f64>,
    /// Remote pins of *owned* nets, sorted ascending (stub pins are
    /// owned, so these are the only non-owned vertices stored).
    ghosts: Vec<usize>,
    /// Weight per owned vertex (indexed by `v - my_range().start`).
    owned_wgt: Vec<f64>,
    /// Transpose CSR: slot (owned offset, then ghost offset) → indices
    /// of local nets containing that vertex, ascending.
    xslot: Vec<usize>,
    slot_nets: Vec<usize>,
}

impl DistHypergraph {
    /// Builds rank `rank`'s share of `h` under a `size`-rank block
    /// distribution. Purely local — every rank derives its share from
    /// the replicated input without communication (the simulation
    /// analogue of reading a pre-distributed file in parallel). Ranks
    /// that own no vertices (more ranks than vertices) get an empty but
    /// fully valid share.
    pub fn from_replicated(h: &Hypergraph, rank: usize, size: usize) -> Self {
        let vdist = BlockDist::new(h.num_vertices(), size);
        let my_range = vdist.range(rank);
        let mut shares = Vec::new();
        for j in 0..h.num_nets() {
            let net = h.net(j);
            // Owner = owner of the pin at position `id % size`; rotating
            // over pin positions balances ownership even when every
            // net's first pin falls in the same vertex block.
            let owner = vdist.owner(net[j % net.len()]);
            let pins: Vec<usize> = if owner == rank {
                net.to_vec()
            } else {
                net.iter().copied().filter(|v| my_range.contains(v)).collect()
            };
            if pins.is_empty() {
                continue;
            }
            shares.push(NetShare {
                gid: j,
                cost: h.net_cost(j),
                global_size: net.len(),
                owner,
                pins,
            });
        }
        let owned_wgt = h.loads().scalar()[my_range].to_vec();
        Self::from_local_nets(h.num_vertices(), h.num_nets(), rank, size, shares, owned_wgt)
    }

    /// Builds a rank's share directly from its net shares — used by
    /// distributed contraction, where no rank ever materializes the
    /// replicated coarse hypergraph. `shares` must be sorted strictly
    /// ascending by `gid`; the owner share must carry the full pin
    /// list, stubs only the receiver's own pins in net order.
    pub fn from_local_nets(
        num_vertices: usize,
        num_nets_global: usize,
        rank: usize,
        size: usize,
        shares: Vec<NetShare>,
        owned_wgt: Vec<f64>,
    ) -> Self {
        let vdist = BlockDist::new(num_vertices, size);
        assert!(shares.windows(2).all(|w| w[0].gid < w[1].gid), "net ids must be ascending");
        let mut net_ids = Vec::with_capacity(shares.len());
        let mut owned = Vec::with_capacity(shares.len());
        let mut owner_rank = Vec::with_capacity(shares.len());
        let mut gsize = Vec::with_capacity(shares.len());
        let mut cost = Vec::with_capacity(shares.len());
        let mut xpins = Vec::with_capacity(shares.len() + 1);
        xpins.push(0);
        let mut pins = Vec::new();
        for s in shares {
            let is_owner = s.owner == rank;
            debug_assert!(
                !is_owner || s.pins.len() == s.global_size,
                "owner share of net {} must carry the full pin list",
                s.gid
            );
            net_ids.push(s.gid);
            owned.push(is_owner);
            owner_rank.push(s.owner);
            gsize.push(s.global_size);
            cost.push(s.cost);
            pins.extend_from_slice(&s.pins);
            xpins.push(pins.len());
        }
        let my_range = vdist.range(rank);
        assert_eq!(owned_wgt.len(), my_range.len());
        // Ghost list: sorted distinct remote pins of owned nets. Stub
        // pins are owned by construction and need no ghost slots.
        let mut ghosts: Vec<usize> = Vec::new();
        for lj in 0..net_ids.len() {
            if owned[lj] {
                ghosts.extend(
                    pins[xpins[lj]..xpins[lj + 1]].iter().copied().filter(|v| !my_range.contains(v)),
                );
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();
        let mut dh = DistHypergraph {
            rank,
            vdist,
            num_nets_global,
            net_ids,
            owned,
            owner_rank,
            gsize,
            xpins,
            pins,
            cost,
            ghosts,
            owned_wgt,
            xslot: Vec::new(),
            slot_nets: Vec::new(),
        };
        dh.build_transpose();
        dh
    }

    /// Transpose the local pin lists: slot → local nets, counting-sorted
    /// over nets in ascending order so every per-vertex net list comes
    /// out ascending (mirroring `Hypergraph::vertex_nets`).
    fn build_transpose(&mut self) {
        let nslots = self.my_range().len() + self.ghosts.len();
        let mut counts = vec![0usize; nslots];
        for &v in &self.pins {
            counts[self.slot(v).expect("pin has a slot")] += 1;
        }
        let mut xslot = Vec::with_capacity(nslots + 1);
        xslot.push(0);
        for s in 0..nslots {
            xslot.push(xslot[s] + counts[s]);
        }
        let mut cursor = xslot.clone();
        let mut slot_nets = vec![0usize; self.pins.len()];
        for lj in 0..self.net_ids.len() {
            for p in self.xpins[lj]..self.xpins[lj + 1] {
                let s = self.slot(self.pins[p]).expect("pin has a slot");
                slot_nets[cursor[s]] = lj;
                cursor[s] += 1;
            }
        }
        self.xslot = xslot;
        self.slot_nets = slot_nets;
    }

    /// Global vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vdist.len()
    }

    /// Global net count.
    #[inline]
    pub fn num_nets_global(&self) -> usize {
        self.num_nets_global
    }

    /// This rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The vertex ownership distribution.
    #[inline]
    pub fn vertex_dist(&self) -> BlockDist {
        self.vdist
    }

    /// The contiguous global vertex range owned by this rank.
    #[inline]
    pub fn my_range(&self) -> std::ops::Range<usize> {
        self.vdist.range(self.rank)
    }

    /// Number of local (visible) nets: owned nets plus stubs.
    #[inline]
    pub fn num_local_nets(&self) -> usize {
        self.net_ids.len()
    }

    /// Global id of local net `lj`.
    #[inline]
    pub fn net_global_id(&self, lj: usize) -> usize {
        self.net_ids[lj]
    }

    /// Local index of the net with global id `gid`, if this rank sees
    /// it (as owner or stub holder). Local nets are stored ascending by
    /// global id, so this is a binary search.
    #[inline]
    pub fn local_net_index(&self, gid: usize) -> Option<usize> {
        self.net_ids.binary_search(&gid).ok()
    }

    /// Locally stored pins of net `lj` (global vertex ids): the full
    /// list in replicated order when this rank owns the net, otherwise
    /// the stub — this rank's own pins in net order.
    #[inline]
    pub fn net_pins(&self, lj: usize) -> &[usize] {
        &self.pins[self.xpins[lj]..self.xpins[lj + 1]]
    }

    /// Cost of local net `lj`.
    #[inline]
    pub fn net_cost(&self, lj: usize) -> f64 {
        self.cost[lj]
    }

    /// Global pin count of local net `lj` (stubs carry the true global
    /// size even though they store fewer pins).
    #[inline]
    pub fn net_size(&self, lj: usize) -> usize {
        self.gsize[lj]
    }

    /// True if this rank stores the full pin list of local net `lj`.
    /// Exactly one rank owns each net, and the owner always sees it.
    #[inline]
    pub fn owns_net(&self, lj: usize) -> bool {
        self.owned[lj]
    }

    /// The rank that owns local net `lj` (stores its full pin list).
    #[inline]
    pub fn net_owner(&self, lj: usize) -> usize {
        self.owner_rank[lj]
    }

    /// Local pin entries on this rank: full lists of owned nets plus
    /// stub entries — the memory-scaling figure of merit
    /// (≈ `|pins|/p` owned plus a halo term).
    #[inline]
    pub fn local_pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Pins of the nets this rank *owns* — the canonical share of the
    /// global pin storage, with each net counted exactly once (at its
    /// owner). Sums to the hypergraph's total pin count across ranks.
    pub fn owned_pin_count(&self) -> usize {
        (0..self.num_local_nets())
            .filter(|&lj| self.owned[lj])
            .map(|lj| self.xpins[lj + 1] - self.xpins[lj])
            .sum()
    }

    /// Stub pin entries (halo incidence): `local_pin_count() -
    /// owned_pin_count()`. Each entry is one of this rank's own pins
    /// listed under a remotely owned net.
    pub fn halo_pin_count(&self) -> usize {
        self.local_pin_count() - self.owned_pin_count()
    }

    /// Ghost vertices (sorted ascending global ids): the distinct
    /// remote pins of this rank's owned nets.
    #[inline]
    pub fn ghosts(&self) -> &[usize] {
        &self.ghosts
    }

    /// Weights of owned vertices, indexed by owned offset.
    #[inline]
    pub fn owned_weights(&self) -> &[f64] {
        &self.owned_wgt
    }

    /// Position of global vertex `v` in [`DistHypergraph::ghosts`], if
    /// it is a ghost of this rank.
    #[inline]
    pub fn ghost_index(&self, v: usize) -> Option<usize> {
        self.ghosts.binary_search(&v).ok()
    }

    /// Resident bytes of this rank's share of the *hypergraph* itself:
    /// pin entries (owned full lists + stubs) with their transpose,
    /// ghost ids, per-net metadata, and the owned weight block. The
    /// driver adds its own per-vertex working arrays on top; everything
    /// here is `O((|pins| + nets + n)/p + halo)` — no term is
    /// proportional to the global instance.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pins.len() * size_of::<usize>()
            + self.slot_nets.len() * size_of::<usize>()
            + self.xpins.len() * size_of::<usize>()
            + self.xslot.len() * size_of::<usize>()
            + self.ghosts.len() * size_of::<usize>()
            + self.owned_wgt.len() * size_of::<f64>()
            + self.net_ids.len()
                * (3 * size_of::<usize>() + size_of::<f64>() + size_of::<bool>())
    }

    /// The storage slot of global vertex `v` — owned offset for owned
    /// vertices, `owned + ghost_index` for ghosts, `None` if `v` is
    /// neither owned nor a ghost of an owned net.
    #[inline]
    pub fn slot(&self, v: usize) -> Option<usize> {
        let my_range = self.my_range();
        if my_range.contains(&v) {
            Some(v - my_range.start)
        } else {
            self.ghosts.binary_search(&v).ok().map(|i| my_range.len() + i)
        }
    }

    /// Indices of local nets containing vertex `v`, ascending. For an
    /// owned vertex this is its complete incidence list (every net of
    /// an owned vertex is local — as an owned net or a stub — by
    /// construction); for a ghost it is the owned nets listing it.
    /// Unknown vertices get `&[]`.
    pub fn vertex_local_nets(&self, v: usize) -> &[usize] {
        match self.slot(v) {
            Some(s) => &self.slot_nets[self.xslot[s]..self.xslot[s + 1]],
            None => &[],
        }
    }

    /// Gathers the full hypergraph onto every rank (collective):
    /// owner ranks contribute their nets, and each rank rebuilds the
    /// replicated structure with nets in global-id order. Vertex
    /// weights come from an allgather of the owned blocks. Ranks that
    /// own nothing contribute empty batches.
    pub fn gather_replicated(&self, comm: &mut Comm) -> Hypergraph {
        let mine: Vec<(usize, f64, Vec<usize>)> = (0..self.num_local_nets())
            .filter(|&lj| self.owned[lj])
            .map(|lj| (self.net_ids[lj], self.cost[lj], self.net_pins(lj).to_vec()))
            .collect();
        let mut all: Vec<(usize, f64, Vec<usize>)> =
            comm.allgather(mine).into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(id, _, _)| id);
        let weights: Vec<f64> =
            comm.allgather(self.owned_wgt.clone()).into_iter().flatten().collect();
        let mut b = dlb_hypergraph::HypergraphBuilder::new(self.num_vertices());
        for (v, &w) in weights.iter().enumerate() {
            b.set_vertex_weight(v, w);
        }
        for (id, cost, pins) in all {
            let j = b.add_net(cost, pins);
            debug_assert_eq!(j, id, "gathered nets must arrive densely in id order");
        }
        b.build()
    }

    /// Distributed connectivity−1 cut (collective): each net is counted
    /// once, by its owner (which stores its full pin list), and partial
    /// sums are combined with an `allreduce`. `owned_part` holds the
    /// parts of this rank's owned vertices; ghost parts are fetched
    /// through `exch`.
    pub fn cut_k1(
        &self,
        comm: &mut Comm,
        exch: &GhostExchange,
        owned_part: &[PartId],
        k: usize,
    ) -> f64 {
        assert_eq!(owned_part.len(), self.my_range().len());
        let ghost_part = exch.pull(comm, owned_part);
        let my_range = self.my_range();
        let owned = my_range.len();
        let mut seen = vec![false; k];
        let mut local = 0.0;
        for lj in 0..self.num_local_nets() {
            if !self.owned[lj] {
                continue;
            }
            let mut lambda = 0usize;
            let mut marked: Vec<PartId> = Vec::new();
            for &v in self.net_pins(lj) {
                let s = self.slot(v).expect("pin has a slot");
                let p = if s < owned { owned_part[s] } else { ghost_part[s - owned] };
                if !seen[p] {
                    seen[p] = true;
                    marked.push(p);
                    lambda += 1;
                }
            }
            for p in marked {
                seen[p] = false;
            }
            local += self.cost[lj] * (lambda.saturating_sub(1)) as f64;
        }
        comm.allreduce_sum(local)
    }

    /// Distributed part weights (collective): owned partial sums
    /// combined element-wise with an `allreduce`.
    pub fn part_weights(&self, comm: &mut Comm, owned_part: &[PartId], k: usize) -> Vec<f64> {
        assert_eq!(owned_part.len(), self.my_range().len());
        let mut local = vec![0.0f64; k];
        for (i, &p) in owned_part.iter().enumerate() {
            local[p] += self.owned_wgt[i];
        }
        comm.allreduce_vec(local, |a, b| a + b)
    }

    /// Distributed load imbalance (collective): `max_p W_p / (W / k)`.
    pub fn imbalance(&self, comm: &mut Comm, owned_part: &[PartId], k: usize) -> f64 {
        let weights = self.part_weights(comm, owned_part, k);
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let avg = total / k.max(1) as f64;
        weights.iter().fold(0.0f64, |m, &w| m.max(w)) / avg
    }
}

/// A reusable halo update: pulls per-vertex values from owner ranks
/// into buffers aligned with a ghost id list (by default
/// [`DistHypergraph::ghosts`]).
///
/// Built once per distribution (collective); each [`GhostExchange::pull`]
/// is then a single plan execution carrying only the requested values,
/// and [`GhostExchange::push_dirty`] moves just a changed subset.
pub struct GhostExchange {
    /// Reply plan: owners → ghost holders.
    inverse: CommPlan,
    /// For each incoming query (grouped by source rank, the grouping of
    /// `inverse.send_counts()`), the owned offset it is served from.
    serve: Vec<usize>,
    /// Scatter map: reply `j` answers ghost `positions[j]`.
    positions: Vec<usize>,
    num_ghosts: usize,
}

impl GhostExchange {
    /// Builds the exchange for `dh`'s ghost list (collective).
    pub fn build(comm: &mut Comm, dh: &DistHypergraph) -> Self {
        Self::build_for_ids(comm, &dh.vdist, &dh.ghosts)
    }

    /// Builds an exchange for an arbitrary list of remote vertex ids
    /// under `dist` (collective). `ids[i]` must not be owned by the
    /// calling rank; pulls return values aligned with `ids`. Used for
    /// ad-hoc halos such as the coarse-vertex targets of a contraction
    /// map during projection.
    pub fn build_for_ids(comm: &mut Comm, dist: &BlockDist, ids: &[usize]) -> Self {
        let dests: Vec<usize> = ids.iter().map(|&g| dist.owner(g)).collect();
        let plan = CommPlan::build(comm, &dests);
        let queried = plan.execute(comm, ids);
        let owner_range = dist.range(comm.rank());
        let serve: Vec<usize> = queried
            .iter()
            .map(|&g| {
                assert!(owner_range.contains(&g), "ghost query reached the wrong owner");
                g - owner_range.start
            })
            .collect();
        GhostExchange {
            positions: plan.send_positions().to_vec(),
            inverse: plan.invert(),
            serve,
            num_ghosts: ids.len(),
        }
    }

    /// Number of ghost values a pull produces.
    pub fn num_ghosts(&self) -> usize {
        self.num_ghosts
    }

    /// Fetches `owned[offset]` from each ghost's owner (collective).
    /// Returns values aligned with the id list the exchange was built
    /// for.
    pub fn pull<T: Clone + Send + 'static>(&self, comm: &mut Comm, owned: &[T]) -> Vec<T> {
        let replies: Vec<T> = self.serve.iter().map(|&i| owned[i].clone()).collect();
        let back = self.inverse.execute(comm, &replies);
        let mut out: Vec<Option<T>> = vec![None; self.num_ghosts];
        for (j, &pos) in self.positions.iter().enumerate() {
            out[pos] = Some(back[j].clone());
        }
        out.into_iter().map(|v| v.expect("every ghost answered")).collect()
    }

    /// Incremental halo update (collective): pushes `owned[offset]` to
    /// the ranks ghosting it, but **only** for offsets flagged in
    /// `dirty`, patching the ghost-aligned buffer `ghost_vals` in
    /// place. Returns the patched entries as `(ghost slot, old, new)`
    /// triples — each slot answers one owner vertex, so a slot appears
    /// at most once — letting callers apply exact deltas (e.g. sigma
    /// row updates in distributed FM). The wire carries one
    /// `(slot, value)` pair per dirty ghost copy — a quiet round costs
    /// bytes proportional to the changes, not the halo — and
    /// `CommStats` charges those delta bytes like any other
    /// `alltoallv`.
    pub fn push_dirty<T: Clone + Send + 'static>(
        &self,
        comm: &mut Comm,
        owned: &[T],
        dirty: &[bool],
        ghost_vals: &mut [T],
    ) -> Vec<(usize, T, T)> {
        assert_eq!(ghost_vals.len(), self.num_ghosts);
        let nranks = comm.size();
        // Serve entries are grouped by querying rank exactly as the
        // inverse plan sends replies; walk the grouping and keep only
        // the dirty offsets, tagging each with its index *within* the
        // group so the receiver can find the ghost it answers.
        let mut outgoing: Vec<Vec<(u32, T)>> = (0..nranks).map(|_| Vec::new()).collect();
        let mut pos = 0usize;
        for (holder, &count) in self.inverse.send_counts().iter().enumerate() {
            for idx in 0..count {
                let off = self.serve[pos];
                if dirty[off] {
                    outgoing[holder].push((idx as u32, owned[off].clone()));
                }
                pos += 1;
            }
        }
        let incoming = comm.alltoallv(outgoing);
        // My queries to owner `o` occupied a contiguous group of the
        // original plan's send order; `positions` maps group entries
        // back to ghost indices.
        let query_counts = self.inverse.recv_counts();
        let mut start = 0usize;
        let mut updates = Vec::new();
        for (owner, batch) in incoming.into_iter().enumerate() {
            for (idx, val) in batch {
                let slot = self.positions[start + idx as usize];
                let old = std::mem::replace(&mut ghost_vals[slot], val.clone());
                updates.push((slot, old, val));
            }
            start += query_counts[owner];
        }
        updates
    }
}

/// A ghost-value cache with dirty-bitmap maintenance: the first
/// [`GhostHalo::sync`] pulls the full halo, every later sync pushes
/// only the owned entries marked dirty since the previous one
/// (PMondriaan-style incremental exchange; see DESIGN.md §17).
pub struct GhostHalo<T> {
    exch: GhostExchange,
    cache: Vec<T>,
    synced: bool,
    /// Dirty flags over *owned offsets* (the push side of the halo).
    dirty: Vec<bool>,
    any_dirty: bool,
}

impl<T: Clone + Send + 'static> GhostHalo<T> {
    /// Wraps `exch` with an empty cache; `owned_len` is the length of
    /// this rank's owned block (the dirty bitmap's domain).
    pub fn new(exch: GhostExchange, owned_len: usize) -> Self {
        GhostHalo {
            exch,
            cache: Vec::new(),
            synced: false,
            dirty: vec![false; owned_len],
            any_dirty: false,
        }
    }

    /// The underlying exchange.
    pub fn exchange(&self) -> &GhostExchange {
        &self.exch
    }

    /// Flags an owned offset as changed since the last sync; the next
    /// [`GhostHalo::sync`] will push it to every rank ghosting it.
    pub fn mark_dirty(&mut self, owned_offset: usize) {
        self.dirty[owned_offset] = true;
        self.any_dirty = true;
    }

    /// Brings every rank's ghost cache up to date (collective — all
    /// ranks must call even when locally clean). The first call pulls
    /// the full halo; later calls push only dirty entries.
    pub fn sync(&mut self, comm: &mut Comm, owned: &[T]) -> &[T] {
        self.sync_updates(comm, owned);
        &self.cache
    }

    /// Like [`GhostHalo::sync`], but returns the ghost entries that
    /// changed this round as `(ghost slot, old, new)` triples (empty on
    /// the initial full pull — callers treat that pull as the baseline).
    /// Collective like `sync`.
    pub fn sync_updates(&mut self, comm: &mut Comm, owned: &[T]) -> Vec<(usize, T, T)> {
        let updates = if !self.synced {
            self.cache = self.exch.pull(comm, owned);
            self.synced = true;
            Vec::new()
        } else {
            self.exch.push_dirty(comm, owned, &self.dirty, &mut self.cache)
        };
        if self.any_dirty {
            self.dirty.iter_mut().for_each(|d| *d = false);
            self.any_dirty = false;
        }
        updates
    }

    /// The ghost values as of the last sync.
    pub fn values(&self) -> &[T] {
        debug_assert!(self.synced, "GhostHalo read before first sync");
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::{metrics, HypergraphBuilder};
    use dlb_mpisim::run_spmd;

    /// A small deterministic hypergraph with cross-rank nets.
    fn sample(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n {
            b.set_vertex_weight(v, 1.0 + (v % 3) as f64);
        }
        for j in 0..(2 * n) {
            let a = (j * 7 + 1) % n;
            let c = (j * 13 + 4) % n;
            let d = (j * 5 + 2) % n;
            b.add_net(1.0 + (j % 4) as f64, [a, c, d]);
        }
        b.build()
    }

    #[test]
    fn owned_vertices_see_their_full_incidence() {
        let h = sample(23);
        for size in [1usize, 2, 4] {
            for rank in 0..size {
                let dh = DistHypergraph::from_replicated(&h, rank, size);
                for v in dh.my_range() {
                    let local: Vec<usize> = dh
                        .vertex_local_nets(v)
                        .iter()
                        .map(|&lj| dh.net_global_id(lj))
                        .collect();
                    assert_eq!(local, h.vertex_nets(v), "v={v} rank={rank}/{size}");
                }
            }
        }
    }

    #[test]
    fn pin_storage_partitions_and_nets_have_one_owner() {
        let h = sample(37);
        for size in [1usize, 2, 4] {
            let shares: Vec<DistHypergraph> =
                (0..size).map(|r| DistHypergraph::from_replicated(&h, r, size)).collect();
            let mut owner_count = vec![0usize; h.num_nets()];
            for dh in &shares {
                assert!(dh.local_pin_count() <= h.num_pins());
                let my_range = dh.my_range();
                for lj in 0..dh.num_local_nets() {
                    let j = dh.net_global_id(lj);
                    // Stubs still report the global size.
                    assert_eq!(dh.net_size(lj), h.net(j).len());
                    if dh.owns_net(lj) {
                        assert_eq!(dh.net_pins(lj), h.net(j));
                        assert_eq!(dh.net_owner(lj), dh.rank());
                        owner_count[j] += 1;
                    } else {
                        // Stub: exactly this rank's own pins, net order.
                        let expect: Vec<usize> = h
                            .net(j)
                            .iter()
                            .copied()
                            .filter(|v| my_range.contains(v))
                            .collect();
                        assert_eq!(dh.net_pins(lj), expect, "stub pins, net {j}");
                        assert!(!expect.is_empty());
                    }
                }
                // Ghosts are exactly the remote pins of owned nets.
                for &g in dh.ghosts() {
                    assert!(!my_range.contains(&g));
                }
                assert_eq!(
                    dh.halo_pin_count() + dh.owned_pin_count(),
                    dh.local_pin_count()
                );
            }
            assert_eq!(owner_count, vec![1; h.num_nets()], "size={size}");
            // Owned (canonical) pin storage partitions the global pins.
            let owned_total: usize = shares.iter().map(|dh| dh.owned_pin_count()).sum();
            assert_eq!(owned_total, h.num_pins(), "size={size}");
            if size == 1 {
                assert_eq!(shares[0].local_pin_count(), h.num_pins());
                assert_eq!(shares[0].owned_pin_count(), h.num_pins());
                assert!(shares[0].ghosts().is_empty());
            }
        }
    }

    /// Total per-rank storage (pins + ghosts + weights + metadata)
    /// must shrink as ranks are added, even on uniformly random nets —
    /// the owner/stub scheme stores each full pin list exactly once.
    #[test]
    fn resident_bytes_scale_down_with_ranks() {
        let h = sample(211);
        let mut prev = usize::MAX;
        for size in [1usize, 2, 4, 8] {
            let peak = (0..size)
                .map(|r| DistHypergraph::from_replicated(&h, r, size).resident_bytes())
                .max()
                .unwrap();
            assert!(peak < prev, "size={size}: {peak} !< {prev}");
            prev = peak;
        }
    }

    #[test]
    fn ghost_exchange_pulls_owner_values() {
        let h = sample(29);
        for size in [1usize, 2, 4] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                // Owner value of vertex v is v * 10 + 1.
                let owned: Vec<usize> = dh.my_range().map(|v| v * 10 + 1).collect();
                let ghost_vals = exch.pull(comm, &owned);
                ghost_vals
                    .iter()
                    .zip(dh.ghosts())
                    .all(|(&got, &g)| got == g * 10 + 1)
            });
            assert!(results.into_iter().all(|ok| ok), "size={size}");
        }
    }

    /// The incremental dirty-push path must leave every ghost cache
    /// exactly where a fresh full pull would, while a quiet round
    /// moves (close to) zero bytes.
    #[test]
    fn dirty_push_matches_full_pull() {
        let h = sample(41);
        for size in [1usize, 2, 3, 4] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                let mut halo = GhostHalo::new(GhostExchange::build(comm, &dh), dh.my_range().len());
                let mut owned: Vec<u64> = dh.my_range().map(|v| v as u64).collect();
                halo.sync(comm, &owned);
                let quiet_before = comm.stats().bytes_sent;
                // Quiet round: nothing dirty, nothing moves.
                halo.sync(comm, &owned);
                let quiet_bytes = comm.stats().bytes_sent - quiet_before;
                // Mutate a subset of owned values and mark them dirty.
                for (off, val) in owned.iter_mut().enumerate() {
                    if off % 3 == 0 {
                        *val += 1000;
                        halo.mark_dirty(off);
                    }
                }
                let incr = halo.sync(comm, &owned).to_vec();
                let full = exch.pull(comm, &owned);
                (incr == full, quiet_bytes)
            });
            for (rank, (matches, quiet_bytes)) in results.into_iter().enumerate() {
                assert!(matches, "size={size} rank={rank}");
                // A quiet alltoallv of empty batches carries no item bytes.
                assert_eq!(quiet_bytes, 0, "size={size} rank={rank}");
            }
        }
    }

    /// `build_for_ids` serves arbitrary remote-id halos (used for
    /// projecting contraction maps across ranks).
    #[test]
    fn ad_hoc_exchange_serves_arbitrary_ids() {
        for size in [1usize, 2, 4] {
            let n = 50usize;
            let results = run_spmd(size, |comm| {
                let dist = BlockDist::new(n, comm.size());
                let range = dist.range(comm.rank());
                // Ask for a scattered set of remote ids.
                let ids: Vec<usize> =
                    (0..n).filter(|v| v % 7 == comm.rank() % 7 && !range.contains(v)).collect();
                let exch = GhostExchange::build_for_ids(comm, &dist, &ids);
                let owned: Vec<usize> = range.map(|v| v * 3).collect();
                let vals = exch.pull(comm, &owned);
                ids.iter().zip(&vals).all(|(&g, &x)| x == g * 3)
            });
            assert!(results.into_iter().all(|ok| ok), "size={size}");
        }
    }

    #[test]
    fn distributed_metrics_match_replicated() {
        let h = sample(31);
        let k = 4;
        let part: Vec<usize> = (0..h.num_vertices()).map(|v| (v * 3 + 1) % k).collect();
        let expect_cut = metrics::cutsize_connectivity(&h, &part, k);
        let expect_weights = metrics::part_weights(&h, &part, k);
        let expect_imb = metrics::imbalance(&h, &part, k);
        for size in [1usize, 2, 3] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                let owned: Vec<usize> = part[dh.my_range()].to_vec();
                let cut = dh.cut_k1(comm, &exch, &owned, k);
                let weights = dh.part_weights(comm, &owned, k);
                let imb = dh.imbalance(comm, &owned, k);
                (cut, weights, imb)
            });
            for (cut, weights, imb) in results {
                assert!((cut - expect_cut).abs() < 1e-9, "size={size}");
                for (a, b) in weights.iter().zip(&expect_weights) {
                    assert!((a - b).abs() < 1e-9, "size={size}");
                }
                assert!((imb - expect_imb).abs() < 1e-9, "size={size}");
            }
        }
    }

    #[test]
    fn gather_replicated_rebuilds_the_input() {
        let h = sample(19);
        for size in [1usize, 2, 4] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                dh.gather_replicated(comm)
            });
            for g in results {
                assert_eq!(g.num_vertices(), h.num_vertices());
                assert_eq!(g.num_nets(), h.num_nets());
                for j in 0..h.num_nets() {
                    assert_eq!(g.net(j), h.net(j), "size={size} net={j}");
                    assert_eq!(g.net_cost(j), h.net_cost(j));
                }
                assert_eq!(g.loads().scalar(), h.loads().scalar());
            }
        }
    }

    /// Worlds with more ranks than vertices: ranks past the vertex
    /// count own nothing and must still build, exchange, measure, and
    /// gather without panicking.
    #[test]
    fn empty_ranks_survive_every_collective() {
        let h = sample(5);
        let k = 2;
        let part: Vec<usize> = (0..h.num_vertices()).map(|v| v % k).collect();
        let expect_cut = metrics::cutsize_connectivity(&h, &part, k);
        for size in [7usize, 9] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                let owned: Vec<usize> = part[dh.my_range()].to_vec();
                let mut halo = GhostHalo::new(GhostExchange::build(comm, &dh), owned.len());
                halo.sync(comm, &owned);
                // Dirty-push round on a world with empty ranks.
                halo.sync(comm, &owned);
                let cut = dh.cut_k1(comm, &exch, &owned, k);
                let g = dh.gather_replicated(comm);
                (dh.my_range().len(), cut, g.num_nets(), g.num_pins())
            });
            let mut owned_total = 0usize;
            for (owned, cut, nets, pins) in results {
                owned_total += owned;
                assert!((cut - expect_cut).abs() < 1e-9, "size={size}");
                assert_eq!(nets, h.num_nets());
                assert_eq!(pins, h.num_pins());
            }
            assert_eq!(owned_total, h.num_vertices(), "size={size}");
        }
    }
}
