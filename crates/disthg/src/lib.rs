//! Block-distributed hypergraph storage (owner/ghost decomposition).
//!
//! The paper's parallel refinement lives inside Zoltan's PHG, where the
//! hypergraph is *distributed*: each rank stores only the pins of the
//! hyperedges it can see, plus ghost (halo) copies of remote vertices,
//! so per-rank memory scales as `|pins|/p + ghosts` instead of `|pins|`.
//! This crate provides that storage layer for the simulated SPMD
//! machine in `dlb-mpisim`:
//!
//! * [`DistHypergraph`] — vertices block-distributed via
//!   [`BlockDist`], hyperedges replicated onto every rank that owns at
//!   least one of their pins (so a rank sees *all* nets of its owned
//!   vertices), with exactly one of those ranks designated the net's
//!   owner for metrics and for submitting the net during contraction.
//! * [`GhostExchange`] — a reusable [`CommPlan`]-based halo update that
//!   pulls per-vertex data (weights, fixed flags, match or partition
//!   state) from owner ranks into ghost-aligned buffers.
//! * Distributed metrics — `cut_k1`, part weights and imbalance
//!   computed from owned data plus an `allreduce`.
//!
//! The layout deliberately keeps the *pin storage* — the asymptotically
//! dominant term — distributed while O(n) per-vertex arrays may stay
//! replicated in the algorithms above (see DESIGN.md §9); that is what
//! lets the distributed V-cycle in `dlb-partitioner` stay bit-identical
//! to the replicated SPMD driver.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

use dlb_hypergraph::{Hypergraph, PartId};
use dlb_mpisim::{BlockDist, Comm, CommPlan};

/// One rank's share of a block-distributed hypergraph.
///
/// Vertices are owned by contiguous blocks ([`BlockDist`]); a net is
/// *local* to every rank owning at least one of its pins and stores its
/// **full** pin list there (remote pins become ghosts). Local nets are
/// kept sorted by global net id, and pin order within a net preserves
/// the order of the replicated hypergraph it mirrors — both invariants
/// are load-bearing for the bit-identical distributed V-cycle.
#[derive(Clone, Debug)]
pub struct DistHypergraph {
    rank: usize,
    vdist: BlockDist,
    num_nets_global: usize,
    /// Global ids of local nets, strictly ascending.
    net_ids: Vec<usize>,
    /// CSR offsets into `pins`, one slot per local net.
    xpins: Vec<usize>,
    /// Global vertex ids, full pin list per local net.
    pins: Vec<usize>,
    /// Cost per local net.
    cost: Vec<f64>,
    /// Non-owned vertices appearing in `pins`, sorted ascending.
    ghosts: Vec<usize>,
    /// Weight per owned vertex (indexed by `v - my_range().start`).
    owned_wgt: Vec<f64>,
    /// Transpose CSR: slot (owned offset, then ghost offset) → indices
    /// of local nets containing that vertex, ascending.
    xslot: Vec<usize>,
    slot_nets: Vec<usize>,
}

impl DistHypergraph {
    /// Builds rank `rank`'s share of `h` under a `size`-rank block
    /// distribution. Purely local — every rank derives its share from
    /// the replicated input without communication (the simulation
    /// analogue of reading a pre-distributed file in parallel).
    pub fn from_replicated(h: &Hypergraph, rank: usize, size: usize) -> Self {
        let vdist = BlockDist::new(h.num_vertices(), size);
        let my_range = vdist.range(rank);
        let mut net_ids = Vec::new();
        let mut xpins = vec![0usize];
        let mut pins = Vec::new();
        let mut cost = Vec::new();
        for j in 0..h.num_nets() {
            let net = h.net(j);
            if net.iter().any(|v| my_range.contains(v)) {
                net_ids.push(j);
                pins.extend_from_slice(net);
                xpins.push(pins.len());
                cost.push(h.net_cost(j));
            }
        }
        let owned_wgt = h.loads().scalar()[my_range.clone()].to_vec();
        Self::assemble(rank, vdist, h.num_nets(), net_ids, xpins, pins, cost, owned_wgt)
    }

    /// Builds a rank's share directly from its local nets — used by
    /// distributed contraction, where no rank ever materializes the
    /// replicated coarse hypergraph. `net_ids` must be strictly
    /// ascending global ids; `nets[i]` holds the full pin list of
    /// `net_ids[i]` (every net must include at least one owned pin).
    #[allow(clippy::too_many_arguments)]
    pub fn from_local_nets(
        num_vertices: usize,
        num_nets_global: usize,
        rank: usize,
        size: usize,
        net_ids: Vec<usize>,
        cost: Vec<f64>,
        nets: Vec<Vec<usize>>,
        owned_wgt: Vec<f64>,
    ) -> Self {
        let vdist = BlockDist::new(num_vertices, size);
        assert!(net_ids.windows(2).all(|w| w[0] < w[1]), "net ids must be ascending");
        assert_eq!(net_ids.len(), nets.len());
        assert_eq!(net_ids.len(), cost.len());
        let mut xpins = Vec::with_capacity(nets.len() + 1);
        xpins.push(0);
        let mut pins = Vec::new();
        for net in &nets {
            pins.extend_from_slice(net);
            xpins.push(pins.len());
        }
        Self::assemble(rank, vdist, num_nets_global, net_ids, xpins, pins, cost, owned_wgt)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        rank: usize,
        vdist: BlockDist,
        num_nets_global: usize,
        net_ids: Vec<usize>,
        xpins: Vec<usize>,
        pins: Vec<usize>,
        cost: Vec<f64>,
        owned_wgt: Vec<f64>,
    ) -> Self {
        let my_range = vdist.range(rank);
        assert_eq!(owned_wgt.len(), my_range.len());
        // Ghost list: sorted distinct non-owned pins.
        let mut ghosts: Vec<usize> =
            pins.iter().copied().filter(|v| !my_range.contains(v)).collect();
        ghosts.sort_unstable();
        ghosts.dedup();
        let mut dh = DistHypergraph {
            rank,
            vdist,
            num_nets_global,
            net_ids,
            xpins,
            pins,
            cost,
            ghosts,
            owned_wgt,
            xslot: Vec::new(),
            slot_nets: Vec::new(),
        };
        dh.build_transpose();
        dh
    }

    /// Transpose the local pin lists: slot → local nets, counting-sorted
    /// over nets in ascending order so every per-vertex net list comes
    /// out ascending (mirroring `Hypergraph::vertex_nets`).
    fn build_transpose(&mut self) {
        let nslots = self.my_range().len() + self.ghosts.len();
        let mut counts = vec![0usize; nslots];
        for &v in &self.pins {
            counts[self.slot(v).expect("pin has a slot")] += 1;
        }
        let mut xslot = Vec::with_capacity(nslots + 1);
        xslot.push(0);
        for s in 0..nslots {
            xslot.push(xslot[s] + counts[s]);
        }
        let mut cursor = xslot.clone();
        let mut slot_nets = vec![0usize; self.pins.len()];
        for lj in 0..self.net_ids.len() {
            for p in self.xpins[lj]..self.xpins[lj + 1] {
                let s = self.slot(self.pins[p]).expect("pin has a slot");
                slot_nets[cursor[s]] = lj;
                cursor[s] += 1;
            }
        }
        self.xslot = xslot;
        self.slot_nets = slot_nets;
    }

    /// Global vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vdist.len()
    }

    /// Global net count.
    #[inline]
    pub fn num_nets_global(&self) -> usize {
        self.num_nets_global
    }

    /// This rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The vertex ownership distribution.
    #[inline]
    pub fn vertex_dist(&self) -> BlockDist {
        self.vdist
    }

    /// The contiguous global vertex range owned by this rank.
    #[inline]
    pub fn my_range(&self) -> std::ops::Range<usize> {
        self.vdist.range(self.rank)
    }

    /// Number of local (visible) nets.
    #[inline]
    pub fn num_local_nets(&self) -> usize {
        self.net_ids.len()
    }

    /// Global id of local net `lj`.
    #[inline]
    pub fn net_global_id(&self, lj: usize) -> usize {
        self.net_ids[lj]
    }

    /// Full pin list (global vertex ids) of local net `lj`, in the same
    /// order as the replicated hypergraph stores it.
    #[inline]
    pub fn net_pins(&self, lj: usize) -> &[usize] {
        &self.pins[self.xpins[lj]..self.xpins[lj + 1]]
    }

    /// Cost of local net `lj`.
    #[inline]
    pub fn net_cost(&self, lj: usize) -> f64 {
        self.cost[lj]
    }

    /// Global size of local net `lj` (local nets store full pin lists).
    #[inline]
    pub fn net_size(&self, lj: usize) -> usize {
        self.xpins[lj + 1] - self.xpins[lj]
    }

    /// True if this rank is the designated owner of local net `lj`: the
    /// owner of the pin at position `global_id % size`. Exactly one rank
    /// owns each net, that rank necessarily sees it, and rotating the
    /// choice over pin positions balances net ownership even when every
    /// net's *first* pin falls in the same vertex block (the minimum of
    /// a handful of uniform pin ids almost always lands in rank 0's
    /// block, which would concentrate all ownership there).
    #[inline]
    pub fn owns_net(&self, lj: usize) -> bool {
        let pins = self.net_pins(lj);
        self.vdist.owner(pins[self.net_ids[lj] % pins.len()]) == self.rank
    }

    /// Local pin storage on this rank — the memory-scaling figure of
    /// merit (≈ |pins|/p plus ghost overlap).
    #[inline]
    pub fn local_pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Pins of the nets this rank *owns* — the canonical share of the
    /// global pin storage, with each net counted exactly once (at its
    /// owner). Sums to the hypergraph's total pin count across ranks;
    /// `local_pin_count() - owned_pin_count()` is the ghost-copy
    /// overhead, which depends on how well the vertex order localizes
    /// nets (small for banded/geometric inputs, large for random nets).
    pub fn owned_pin_count(&self) -> usize {
        (0..self.num_local_nets())
            .filter(|&lj| self.owns_net(lj))
            .map(|lj| self.net_size(lj))
            .sum()
    }

    /// Ghost vertices (sorted ascending global ids).
    #[inline]
    pub fn ghosts(&self) -> &[usize] {
        &self.ghosts
    }

    /// Weights of owned vertices, indexed by owned offset.
    #[inline]
    pub fn owned_weights(&self) -> &[f64] {
        &self.owned_wgt
    }

    /// The storage slot of global vertex `v` — owned offset for owned
    /// vertices, `owned + ghost_index` for ghosts, `None` if `v` does
    /// not appear in any local net and is not owned.
    #[inline]
    pub fn slot(&self, v: usize) -> Option<usize> {
        let my_range = self.my_range();
        if my_range.contains(&v) {
            Some(v - my_range.start)
        } else {
            self.ghosts.binary_search(&v).ok().map(|i| my_range.len() + i)
        }
    }

    /// Indices of local nets containing vertex `v`, ascending. For an
    /// owned vertex this is its complete incidence list (every net of
    /// an owned vertex is local by construction); for any other vertex
    /// it is the locally visible subset. Unknown vertices get `&[]`.
    pub fn vertex_local_nets(&self, v: usize) -> &[usize] {
        match self.slot(v) {
            Some(s) => &self.slot_nets[self.xslot[s]..self.xslot[s + 1]],
            None => &[],
        }
    }

    /// Gathers the full hypergraph onto every rank (collective):
    /// owner ranks contribute their nets, and each rank rebuilds the
    /// replicated structure with nets in global-id order. Vertex
    /// weights come from an allgather of the owned blocks.
    pub fn gather_replicated(&self, comm: &mut Comm) -> Hypergraph {
        let mine: Vec<(usize, f64, Vec<usize>)> = (0..self.num_local_nets())
            .filter(|&lj| self.owns_net(lj))
            .map(|lj| (self.net_ids[lj], self.cost[lj], self.net_pins(lj).to_vec()))
            .collect();
        let mut all: Vec<(usize, f64, Vec<usize>)> =
            comm.allgather(mine).into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(id, _, _)| id);
        let weights: Vec<f64> =
            comm.allgather(self.owned_wgt.clone()).into_iter().flatten().collect();
        let mut b = dlb_hypergraph::HypergraphBuilder::new(self.num_vertices());
        for (v, &w) in weights.iter().enumerate() {
            b.set_vertex_weight(v, w);
        }
        for (id, cost, pins) in all {
            let j = b.add_net(cost, pins);
            debug_assert_eq!(j, id, "gathered nets must arrive densely in id order");
        }
        b.build()
    }

    /// Distributed connectivity−1 cut (collective): each net is counted
    /// once, by its owner, and partial sums are combined with an
    /// `allreduce`. `owned_part` holds the parts of this rank's owned
    /// vertices; ghost parts are fetched through `exch`.
    pub fn cut_k1(
        &self,
        comm: &mut Comm,
        exch: &GhostExchange,
        owned_part: &[PartId],
        k: usize,
    ) -> f64 {
        assert_eq!(owned_part.len(), self.my_range().len());
        let ghost_part = exch.pull(comm, owned_part);
        let my_range = self.my_range();
        let owned = my_range.len();
        let mut seen = vec![false; k];
        let mut local = 0.0;
        for lj in 0..self.num_local_nets() {
            if !self.owns_net(lj) {
                continue;
            }
            let mut lambda = 0usize;
            let mut marked: Vec<PartId> = Vec::new();
            for &v in self.net_pins(lj) {
                let s = self.slot(v).expect("pin has a slot");
                let p = if s < owned { owned_part[s] } else { ghost_part[s - owned] };
                if !seen[p] {
                    seen[p] = true;
                    marked.push(p);
                    lambda += 1;
                }
            }
            for p in marked {
                seen[p] = false;
            }
            local += self.cost[lj] * (lambda.saturating_sub(1)) as f64;
        }
        comm.allreduce_sum(local)
    }

    /// Distributed part weights (collective): owned partial sums
    /// combined element-wise with an `allreduce`.
    pub fn part_weights(&self, comm: &mut Comm, owned_part: &[PartId], k: usize) -> Vec<f64> {
        assert_eq!(owned_part.len(), self.my_range().len());
        let mut local = vec![0.0f64; k];
        for (i, &p) in owned_part.iter().enumerate() {
            local[p] += self.owned_wgt[i];
        }
        comm.allreduce_vec(local, |a, b| a + b)
    }

    /// Distributed load imbalance (collective): `max_p W_p / (W / k)`.
    pub fn imbalance(&self, comm: &mut Comm, owned_part: &[PartId], k: usize) -> f64 {
        let weights = self.part_weights(comm, owned_part, k);
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let avg = total / k.max(1) as f64;
        weights.iter().fold(0.0f64, |m, &w| m.max(w)) / avg
    }
}

/// A reusable halo update: pulls per-vertex values from owner ranks
/// into buffers aligned with [`DistHypergraph::ghosts`].
///
/// Built once per distribution (collective); each [`GhostExchange::pull`]
/// is then a single plan execution carrying only the requested values.
pub struct GhostExchange {
    /// Reply plan: owners → ghost holders.
    inverse: CommPlan,
    /// For each ghost (in `send_positions` order), the owned offset the
    /// owner rank serves it from.
    serve: Vec<usize>,
    /// Scatter map: reply `j` answers ghost `positions[j]`.
    positions: Vec<usize>,
    num_ghosts: usize,
}

impl GhostExchange {
    /// Builds the exchange for `dh`'s ghost list (collective).
    pub fn build(comm: &mut Comm, dh: &DistHypergraph) -> Self {
        let dests: Vec<usize> = dh.ghosts.iter().map(|&g| dh.vdist.owner(g)).collect();
        let plan = CommPlan::build(comm, &dests);
        let queried = plan.execute(comm, &dh.ghosts);
        let serve: Vec<usize> = queried
            .iter()
            .map(|&g| {
                let owner_range = dh.vdist.range(comm.rank());
                assert!(owner_range.contains(&g), "ghost query reached the wrong owner");
                g - owner_range.start
            })
            .collect();
        GhostExchange {
            positions: plan.send_positions().to_vec(),
            inverse: plan.invert(),
            serve,
            num_ghosts: dh.ghosts.len(),
        }
    }

    /// Number of ghost values a pull produces.
    pub fn num_ghosts(&self) -> usize {
        self.num_ghosts
    }

    /// Fetches `owned[offset]` from each ghost's owner (collective).
    /// Returns values aligned with [`DistHypergraph::ghosts`].
    pub fn pull<T: Clone + Send + 'static>(&self, comm: &mut Comm, owned: &[T]) -> Vec<T> {
        let replies: Vec<T> = self.serve.iter().map(|&i| owned[i].clone()).collect();
        let back = self.inverse.execute(comm, &replies);
        let mut out: Vec<Option<T>> = vec![None; self.num_ghosts];
        for (j, &pos) in self.positions.iter().enumerate() {
            out[pos] = Some(back[j].clone());
        }
        out.into_iter().map(|v| v.expect("every ghost answered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::{metrics, HypergraphBuilder};
    use dlb_mpisim::run_spmd;

    /// A small deterministic hypergraph with cross-rank nets.
    fn sample(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n {
            b.set_vertex_weight(v, 1.0 + (v % 3) as f64);
        }
        for j in 0..(2 * n) {
            let a = (j * 7 + 1) % n;
            let c = (j * 13 + 4) % n;
            let d = (j * 5 + 2) % n;
            b.add_net(1.0 + (j % 4) as f64, [a, c, d]);
        }
        b.build()
    }

    #[test]
    fn owned_vertices_see_their_full_incidence() {
        let h = sample(23);
        for size in [1usize, 2, 4] {
            for rank in 0..size {
                let dh = DistHypergraph::from_replicated(&h, rank, size);
                for v in dh.my_range() {
                    let local: Vec<usize> = dh
                        .vertex_local_nets(v)
                        .iter()
                        .map(|&lj| dh.net_global_id(lj))
                        .collect();
                    assert_eq!(local, h.vertex_nets(v), "v={v} rank={rank}/{size}");
                }
            }
        }
    }

    #[test]
    fn pin_storage_partitions_and_nets_have_one_owner() {
        let h = sample(37);
        for size in [1usize, 2, 4] {
            let shares: Vec<DistHypergraph> =
                (0..size).map(|r| DistHypergraph::from_replicated(&h, r, size)).collect();
            let mut owner_count = vec![0usize; h.num_nets()];
            for dh in &shares {
                assert!(dh.local_pin_count() <= h.num_pins());
                for lj in 0..dh.num_local_nets() {
                    assert_eq!(dh.net_pins(lj), h.net(dh.net_global_id(lj)));
                    if dh.owns_net(lj) {
                        owner_count[dh.net_global_id(lj)] += 1;
                    }
                }
            }
            assert_eq!(owner_count, vec![1; h.num_nets()], "size={size}");
            // Owned (canonical) pin storage partitions the global pins.
            let owned_total: usize = shares.iter().map(|dh| dh.owned_pin_count()).sum();
            assert_eq!(owned_total, h.num_pins(), "size={size}");
            if size == 1 {
                assert_eq!(shares[0].local_pin_count(), h.num_pins());
                assert_eq!(shares[0].owned_pin_count(), h.num_pins());
                assert!(shares[0].ghosts().is_empty());
            }
        }
    }

    #[test]
    fn ghost_exchange_pulls_owner_values() {
        let h = sample(29);
        for size in [1usize, 2, 4] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                // Owner value of vertex v is v * 10 + 1.
                let owned: Vec<usize> = dh.my_range().map(|v| v * 10 + 1).collect();
                let ghost_vals = exch.pull(comm, &owned);
                ghost_vals
                    .iter()
                    .zip(dh.ghosts())
                    .all(|(&got, &g)| got == g * 10 + 1)
            });
            assert!(results.into_iter().all(|ok| ok), "size={size}");
        }
    }

    #[test]
    fn distributed_metrics_match_replicated() {
        let h = sample(31);
        let k = 4;
        let part: Vec<usize> = (0..h.num_vertices()).map(|v| (v * 3 + 1) % k).collect();
        let expect_cut = metrics::cutsize_connectivity(&h, &part, k);
        let expect_weights = metrics::part_weights(&h, &part, k);
        let expect_imb = metrics::imbalance(&h, &part, k);
        for size in [1usize, 2, 3] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                let exch = GhostExchange::build(comm, &dh);
                let owned: Vec<usize> = part[dh.my_range()].to_vec();
                let cut = dh.cut_k1(comm, &exch, &owned, k);
                let weights = dh.part_weights(comm, &owned, k);
                let imb = dh.imbalance(comm, &owned, k);
                (cut, weights, imb)
            });
            for (cut, weights, imb) in results {
                assert!((cut - expect_cut).abs() < 1e-9, "size={size}");
                for (a, b) in weights.iter().zip(&expect_weights) {
                    assert!((a - b).abs() < 1e-9, "size={size}");
                }
                assert!((imb - expect_imb).abs() < 1e-9, "size={size}");
            }
        }
    }

    #[test]
    fn gather_replicated_rebuilds_the_input() {
        let h = sample(19);
        for size in [1usize, 2, 4] {
            let results = run_spmd(size, |comm| {
                let dh = DistHypergraph::from_replicated(&h, comm.rank(), comm.size());
                dh.gather_replicated(comm)
            });
            for g in results {
                assert_eq!(g.num_vertices(), h.num_vertices());
                assert_eq!(g.num_nets(), h.num_nets());
                for j in 0..h.num_nets() {
                    assert_eq!(g.net(j), h.net(j), "size={size} net={j}");
                    assert_eq!(g.net_cost(j), h.net_cost(j));
                }
                assert_eq!(g.loads().scalar(), h.loads().scalar());
            }
        }
    }
}
