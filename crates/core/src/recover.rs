//! Failure recovery as forced repartitioning (DESIGN.md §12).
//!
//! A rank dying at an epoch boundary is, in the paper's model, nothing
//! exotic: the survivors must absorb the dead rank's vertices, and the
//! cheapest way to do that while respecting balance and communication is
//! *exactly* the repartitioning problem the model already solves — posed
//! onto `k − 1` parts with the orphans free. Concretely:
//!
//! * survivors keep their migration nets (tethered to their old parts,
//!   moving them costs their data size);
//! * the dead rank's vertices get **no** migration net
//!   ([`crate::model::RepartitionHypergraph::build_partial`] with
//!   `None`) — wherever they land is a restore from the failure-time
//!   checkpoint, paid once and unavoidably, so the model should not
//!   distort placement by charging it;
//! * one fixed-vertex partitioning call onto the `k − 1` surviving
//!   parts is the whole recovery.
//!
//! The *measured* recovery price is still charged in full: the epoch
//! driver executes the migration phase from the failure-time assignment
//! (full `k`-rank world, the dead rank pushing all its data out — the
//! simulation's stand-in for a checkpoint restore), so orphan placement
//! lands in the makespan's `t_mig` even though the model saw it as free.

use dlb_hypergraph::{metrics, Hypergraph, PartId};
use dlb_mpisim::Comm;
use dlb_partitioner::par::parallel_partition_fixed;
use dlb_partitioner::partition_hypergraph_fixed;

use crate::cost::CostBreakdown;
use crate::driver::RepartConfig;
use crate::model::RepartitionHypergraph;

/// The result of recovering from one rank failure.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// The recovered assignment in the shrunken label space
    /// (`0..k-1`) — what the simulation commits and runs on next.
    pub part: Vec<PartId>,
    /// The same assignment relabeled into the pre-failure `0..k` space
    /// with the dead label vacated — what the migration phase executes
    /// against the failure-time assignment.
    pub exec_part: Vec<PartId>,
    /// Vertices orphaned by the failure (old part == dead rank).
    pub orphans: usize,
    /// Cost of the recovery move, measured in the pre-failure space
    /// (includes the orphan restore in `migration`).
    pub cost: CostBreakdown,
    /// Load imbalance of the recovered assignment over `k - 1` parts.
    pub imbalance: f64,
    /// Vertices that changed parts (every orphan moves by definition).
    pub moved: usize,
}

/// Recovers from the failure of part/rank `dead` by repartitioning
/// `h` from the failure-time assignment `old_part` (labels `< k`) onto
/// the `k - 1` surviving parts. Survivor labels compact downwards
/// (`p > dead` becomes `p - 1`); the dead rank's vertices go free.
///
/// With `comm`, the fixed-vertex partitioner runs collectively (all
/// driver ranks must call this with identical inputs and agree on the
/// result); without, it runs serially. Either way the outcome is a pure
/// function of the inputs, so recoveries are exactly reproducible run
/// to run at any given world size (as everywhere in this repo, serial
/// and different rank counts may legitimately choose different — but
/// equally valid — partitions).
///
/// # Panics
/// Panics if `k < 2` (no surviving parts — unrecoverable), `dead >= k`,
/// or on assignment/length mismatches.
pub fn recover_from_failure(
    comm: Option<&mut Comm>,
    h: &Hypergraph,
    old_part: &[PartId],
    dead: PartId,
    k: usize,
    alpha: f64,
    cfg: &RepartConfig,
) -> RecoveryOutcome {
    assert!(k >= 2, "cannot recover: rank {dead} was the last surviving part");
    assert!(dead < k, "dead rank {dead} out of range for k = {k}");
    assert_eq!(old_part.len(), h.num_vertices(), "old partition length mismatch");
    let survivors = k - 1;

    // Survivors compact into 0..k-1; orphans are free.
    let partial: Vec<Option<PartId>> = old_part
        .iter()
        .map(|&p| if p == dead { None } else { Some(if p > dead { p - 1 } else { p }) })
        .collect();
    let orphans = partial.iter().filter(|p| p.is_none()).count();

    let model = RepartitionHypergraph::build_partial(h, &partial, survivors, alpha);
    let r = match comm {
        Some(comm) => {
            parallel_partition_fixed(comm, &model.augmented, survivors, &model.fixed, &cfg.hypergraph)
        }
        None => partition_hypergraph_fixed(&model.augmented, survivors, &model.fixed, &cfg.hypergraph),
    };
    let part = model.decode(&r.part);

    // Back into the pre-failure label space for execution/accounting:
    // the dead label is vacated, never reassigned.
    let exec_part: Vec<PartId> =
        part.iter().map(|&q| if q >= dead { q + 1 } else { q }).collect();
    let cost = CostBreakdown::measure(h, old_part, &exec_part, k, alpha);
    let imbalance = metrics::imbalance(h, &part, survivors);
    let moved = metrics::moved_vertex_count(old_part, &exec_part);

    RecoveryOutcome { part, exec_part, orphans, cost, imbalance, moved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::convert::column_net_model_unit;
    use dlb_hypergraph::GraphBuilder;

    fn grid(rows: usize, cols: usize, k: usize) -> (Hypergraph, Vec<PartId>) {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut b = GraphBuilder::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let h = column_net_model_unit(&g);
        let old: Vec<usize> = (0..rows * cols).map(|v| (v % cols) * k / cols).collect();
        (h, old)
    }

    #[test]
    fn recovery_absorbs_orphans_onto_survivors() {
        let (h, old) = grid(8, 8, 4);
        let out =
            recover_from_failure(None, &h, &old, 2, 4, 10.0, &RepartConfig::seeded(1));
        assert_eq!(out.orphans, old.iter().filter(|&&p| p == 2).count());
        assert!(out.orphans > 0);
        // Recovered labels live in the shrunken space...
        assert!(out.part.iter().all(|&p| p < 3));
        // ...and the exec labels in the old space never resurrect part 2.
        assert!(out.exec_part.iter().all(|&p| p < 4 && p != 2));
        // Every orphan moved; the balance over 3 parts is sane.
        assert!(out.moved >= out.orphans);
        assert!(out.imbalance < 1.5, "imbalance {}", out.imbalance);
        // The measured migration pays at least the orphan restore.
        let orphan_bytes: f64 =
            old.iter().enumerate().filter(|&(_, &p)| p == 2).map(|(v, _)| h.vertex_size(v)).sum();
        assert!(out.cost.migration >= orphan_bytes);
    }

    #[test]
    fn label_compaction_round_trips() {
        let (h, old) = grid(6, 6, 3);
        for dead in 0..3 {
            let out =
                recover_from_failure(None, &h, &old, dead, 3, 10.0, &RepartConfig::seeded(2));
            for (&q, &e) in out.part.iter().zip(&out.exec_part) {
                assert_eq!(e, if q >= dead { q + 1 } else { q });
            }
        }
    }

    #[test]
    fn collective_recovery_is_invariant_across_rank_counts() {
        use dlb_mpisim::run_spmd;
        let (h, old) = grid(8, 8, 4);
        let mut per_world: Vec<Vec<PartId>> = Vec::new();
        for ranks in [2usize, 4] {
            let results = run_spmd(ranks, |comm| {
                recover_from_failure(
                    Some(comm),
                    &h,
                    &old,
                    1,
                    4,
                    10.0,
                    &RepartConfig::seeded(3),
                )
                .part
            });
            // All ranks agree...
            for part in &results {
                assert_eq!(*part, results[0], "ranks = {ranks}");
            }
            per_world.push(results.into_iter().next().unwrap());
        }
        // ...and on this problem the 2- and 4-rank worlds also agree
        // (pinned as a regression guard; rank-count equality is not a
        // repo-wide invariant).
        assert_eq!(per_world[0], per_world[1]);
        assert!(per_world[0].iter().all(|&p| p < 3));
    }

    #[test]
    #[should_panic(expected = "last surviving part")]
    fn refuses_to_recover_past_the_last_part() {
        let (h, _) = grid(2, 2, 1);
        let old = vec![0; 4];
        let _ = recover_from_failure(None, &h, &old, 0, 1, 10.0, &RepartConfig::seeded(4));
    }
}
