//! Cost accounting for repartitioning outcomes.
//!
//! The paper's objective (Section 1–3) is `t_tot ≈ α·t_comm + t_mig`.
//! Figures 2–6 report the *normalized* total cost
//! `t_comm + t_mig / α` (total divided by α), split into its
//! communication (bottom bar) and migration (top bar) components.

use dlb_hypergraph::{metrics, Hypergraph, PartId};

/// The two cost components of a repartitioning decision, plus α.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Application communication volume per iteration: the k-1 cut of
    /// the epoch hypergraph under the new assignment (unscaled).
    pub comm: f64,
    /// Data migration volume: `Σ size(v)` over moved vertices.
    pub migration: f64,
    /// Iterations per epoch (the trade-off knob).
    pub alpha: f64,
}

impl CostBreakdown {
    /// Measures both components for a move from `old_part` to
    /// `new_part` on epoch hypergraph `h`.
    pub fn measure(
        h: &Hypergraph,
        old_part: &[PartId],
        new_part: &[PartId],
        k: usize,
        alpha: f64,
    ) -> Self {
        CostBreakdown {
            comm: metrics::cutsize_connectivity(h, new_part, k),
            migration: metrics::migration_volume(h.vertex_sizes(), old_part, new_part),
            alpha,
        }
    }

    /// Total cost `α·comm + migration`.
    pub fn total(&self) -> f64 {
        self.alpha * self.comm + self.migration
    }

    /// Normalized total cost `comm + migration/α`, the quantity plotted
    /// in Figures 2–6.
    pub fn normalized_total(&self) -> f64 {
        self.comm + self.migration / self.alpha
    }

    /// The migration component of the normalized total (`migration/α`,
    /// the top bar segment).
    pub fn normalized_migration(&self) -> f64 {
        self.migration / self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let c = CostBreakdown { comm: 4.0, migration: 6.0, alpha: 5.0 };
        assert_eq!(c.total(), 26.0);
        assert_eq!(c.normalized_total(), 4.0 + 1.2);
        assert_eq!(c.normalized_migration(), 1.2);
    }

    #[test]
    fn measure_matches_metrics() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let old = vec![0, 0, 1, 1];
        let mut new = old.clone();
        new[1] = 1;
        let c = CostBreakdown::measure(&h, &old, &new, 2, 10.0);
        // Nets {0,1} cut; {1,2}, {2,3} internal to part 1.
        assert_eq!(c.comm, 1.0);
        assert_eq!(c.migration, 1.0);
        assert_eq!(c.total(), 11.0);
    }

    #[test]
    fn zero_migration_when_static() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let part = vec![0, 1];
        let c = CostBreakdown::measure(&h, &part, &part, 2, 1.0);
        assert_eq!(c.migration, 0.0);
        assert_eq!(c.total(), c.comm);
    }
}
