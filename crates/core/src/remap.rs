//! Part-label remapping for the scratch methods.
//!
//! Partitioning from scratch produces arbitrary part labels; before
//! migrating, labels are permuted to maximize overlap with the old
//! assignment (Section 5: "for the scratch methods, we used a maximal
//! matching heuristic in Zoltan to map partition numbers to reduce
//! migration cost"). The heuristic: build the k×k overlap matrix
//! `O[new][old] = Σ size(v)` over vertices with that (new, old) label
//! pair, then greedily match the heaviest entries one-to-one.

use dlb_hypergraph::PartId;

/// Relabels `new_part` (in place semantics via return) so that migration
/// volume against `old_part` is (heuristically) minimized. `sizes` gives
/// each vertex's migration size.
///
/// Returns the relabeled assignment.
///
/// # Panics
/// Panics on length mismatches or labels `>= k`.
pub fn remap_to_minimize_migration(
    new_part: &[PartId],
    old_part: &[PartId],
    sizes: &[f64],
    k: usize,
) -> Vec<PartId> {
    let partial: Vec<Option<PartId>> = old_part.iter().map(|&p| Some(p)).collect();
    remap_to_minimize_migration_partial(new_part, &partial, sizes, k)
}

/// [`remap_to_minimize_migration`] for a *partial* old assignment:
/// vertices with `None` have no old home in the current label space
/// (failure orphans; vertices whose part just departed in an elastic
/// resize) and pay their migration wherever they land, so they
/// contribute nothing to the overlap matrix and never sway the
/// permutation.
///
/// # Panics
/// Panics on length mismatches or labels `>= k`.
pub fn remap_to_minimize_migration_partial(
    new_part: &[PartId],
    old_part: &[Option<PartId>],
    sizes: &[f64],
    k: usize,
) -> Vec<PartId> {
    assert_eq!(new_part.len(), old_part.len());
    assert_eq!(new_part.len(), sizes.len());

    // Overlap matrix over the anchored vertices only.
    let mut overlap = vec![0.0f64; k * k];
    for ((&np, &op), &s) in new_part.iter().zip(old_part).zip(sizes) {
        assert!(np < k, "part label out of range");
        let Some(op) = op else { continue };
        assert!(op < k, "part label out of range");
        overlap[np * k + op] += s;
    }

    // Greedy maximal-weight matching: heaviest entries first.
    let mut entries: Vec<(f64, usize, usize)> = Vec::with_capacity(k * k);
    for np in 0..k {
        for op in 0..k {
            let w = overlap[np * k + op];
            if w > 0.0 {
                entries.push((w, np, op));
            }
        }
    }
    entries.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));

    let mut new_to_old: Vec<Option<PartId>> = vec![None; k];
    let mut old_taken = vec![false; k];
    for (_, np, op) in entries {
        if new_to_old[np].is_none() && !old_taken[op] {
            new_to_old[np] = Some(op);
            old_taken[op] = true;
        }
    }
    // Unmatched new labels take the remaining old labels in order.
    let mut spare = (0..k).filter(|&op| !old_taken[op]);
    for slot in new_to_old.iter_mut() {
        if slot.is_none() {
            *slot = Some(spare.next().expect("label counts match"));
        }
    }

    let remapped: Vec<PartId> = new_part
        .iter()
        .map(|&np| new_to_old[np].expect("every label mapped"))
        .collect();

    // Greedy matching is a heuristic; guard against the rare case where
    // it loses to the labels as delivered. Free vertices migrate under
    // any labeling, so they cancel out of the comparison.
    let migration = |labels: &[PartId]| -> f64 {
        labels
            .iter()
            .zip(old_part)
            .zip(sizes)
            .filter(|((&a, &b), _)| b.is_some_and(|b| a != b))
            .map(|(_, &s)| s)
            .sum()
    };
    if migration(&remapped) <= migration(new_part) {
        remapped
    } else {
        new_part.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics::migration_volume;

    #[test]
    fn identity_when_labels_already_agree() {
        let old = vec![0, 0, 1, 1, 2, 2];
        let new = old.clone();
        let sizes = vec![1.0; 6];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 3);
        assert_eq!(remapped, old);
    }

    #[test]
    fn undoes_a_pure_permutation() {
        let old = vec![0, 0, 1, 1, 2, 2];
        // New labels are a rotation of old: remapping should recover old
        // exactly (zero migration).
        let new: Vec<usize> = old.iter().map(|&p| (p + 1) % 3).collect();
        let sizes = vec![1.0; 6];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 3);
        assert_eq!(migration_volume(&sizes, &old, &remapped), 0.0);
    }

    #[test]
    fn remapping_never_increases_migration() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = 60;
            let k = rng.gen_range(2..8);
            let old: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
            let new: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(1..5) as f64).collect();
            let before = migration_volume(&sizes, &old, &new);
            let remapped = remap_to_minimize_migration(&new, &old, &sizes, k);
            let after = migration_volume(&sizes, &old, &remapped);
            assert!(after <= before + 1e-9, "remap made migration worse: {before} -> {after}");
        }
    }

    #[test]
    fn remap_preserves_partition_structure() {
        // Remapping is a relabeling: vertices with equal new labels keep
        // equal labels.
        let old = vec![0, 1, 0, 1];
        let new = vec![1, 1, 0, 0];
        let sizes = vec![1.0, 2.0, 3.0, 4.0];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 2);
        assert_eq!(remapped[0], remapped[1]);
        assert_eq!(remapped[2], remapped[3]);
        assert_ne!(remapped[0], remapped[2]);
    }

    #[test]
    fn weighs_by_size_not_count() {
        // One huge vertex outweighs three small ones.
        let old = vec![0, 1, 1, 1];
        let new = vec![0, 1, 1, 0]; // label 0 holds the huge v3
        let sizes = vec![1.0, 1.0, 1.0, 100.0];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 2);
        // New label 0 should map to old 1 (overlap 100) leaving label 1 → 0?
        // overlap[0][0]=1, overlap[0][1]=100, overlap[1][1]=2.
        // Greedy: (100, new0, old1) first → new0→1, then new1→0.
        assert_eq!(remapped, vec![1, 0, 0, 1]);
        let m = migration_volume(&sizes, &old, &remapped);
        assert_eq!(m, 1.0 + 1.0 + 1.0); // everything but the huge vertex
    }

    /// Exercises the fallback guard: greedy matching can lose to the
    /// labels as delivered. Overlaps O[0][1]=10, O[0][0]=9, O[1][1]=8:
    /// greedy takes (new 0 → old 1) first, forcing (new 1 → old 0) and a
    /// migration of 9 + 8 = 17, while the delivered labels only migrate
    /// vertex 0 (size 10). The guard must return the delivered labels.
    #[test]
    fn fallback_keeps_delivered_labels_when_greedy_loses() {
        let old = vec![1, 0, 1];
        let new = vec![0, 0, 1];
        let sizes = vec![10.0, 9.0, 8.0];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 2);
        assert_eq!(remapped, new, "guard must fall back to the delivered labels");
        assert_eq!(migration_volume(&sizes, &old, &remapped), 10.0);
    }

    #[test]
    fn partial_remap_ignores_free_vertices() {
        // v3 is free (its old part left the world): however heavy, it
        // must not drag new label 1 anywhere.
        let old = vec![Some(0), Some(0), Some(1), None];
        let new = vec![0, 0, 1, 1];
        let sizes = vec![1.0, 1.0, 1.0, 1000.0];
        let remapped = remap_to_minimize_migration_partial(&new, &old, &sizes, 2);
        assert_eq!(remapped, vec![0, 0, 1, 1]);
    }

    #[test]
    fn handles_empty_parts() {
        let old = vec![0, 0];
        let new = vec![2, 2]; // parts 0,1 empty in new
        let sizes = vec![1.0, 1.0];
        let remapped = remap_to_minimize_migration(&new, &old, &sizes, 3);
        assert_eq!(remapped, vec![0, 0]);
    }
}
