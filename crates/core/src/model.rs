//! The repartitioning hypergraph (Section 3).

use dlb_hypergraph::{metrics, Hypergraph, HypergraphBuilder, PartId};
use dlb_partitioner::FixedAssignment;

/// The augmented hypergraph `H̄^j`: the epoch hypergraph `H^j` with its
/// communication nets scaled by `α`, plus `k` fixed partition vertices
/// and `|V^j|` migration nets.
#[derive(Clone, Debug)]
pub struct RepartitionHypergraph {
    /// The augmented hypergraph on `n + k` vertices. Vertices `0..n` are
    /// the epoch's computation vertices; vertices `n..n+k` are the
    /// partition vertices `u_1..u_k` (zero weight, zero size).
    pub augmented: Hypergraph,
    /// Number of computation vertices `n = |V^j|`.
    pub num_computation_vertices: usize,
    /// Number of parts `k`.
    pub k: usize,
    /// The epoch length α the communication nets were scaled by.
    pub alpha: f64,
    /// Fixed assignment: partition vertex `u_i` fixed to part `i`, all
    /// computation vertices free.
    pub fixed: FixedAssignment,
}

impl RepartitionHypergraph {
    /// Builds the repartitioning hypergraph for epoch `j` from the epoch
    /// hypergraph `h` (unscaled communication costs), the old assignment
    /// (previous part or creation part per vertex), `k`, and `α`.
    ///
    /// # Panics
    /// Panics if `old_part` has the wrong length or references a part
    /// `>= k`, or if `alpha <= 0`.
    pub fn build(h: &Hypergraph, old_part: &[PartId], k: usize, alpha: f64) -> Self {
        let anchored: Vec<Option<PartId>> = old_part.iter().map(|&p| Some(p)).collect();
        Self::build_partial(h, &anchored, k, alpha)
    }

    /// [`RepartitionHypergraph::build`] for a *partial* old assignment:
    /// vertices with `None` get **no migration net** — they are free, to
    /// be placed wherever communication and balance dictate at zero
    /// model-migration charge. This is how failure recovery poses its
    /// problem (DESIGN.md §12): the dead rank's orphans are free, the
    /// survivors stay tethered to their parts by ordinary migration
    /// nets, and one fixed-vertex partitioning call onto the surviving
    /// `k` parts is the whole recovery.
    ///
    /// # Panics
    /// Panics if `old_part` has the wrong length or references a part
    /// `>= k`, or if `alpha <= 0`.
    pub fn build_partial(
        h: &Hypergraph,
        old_part: &[Option<PartId>],
        k: usize,
        alpha: f64,
    ) -> Self {
        let n = h.num_vertices();
        assert_eq!(old_part.len(), n, "old partition length mismatch");
        assert!(
            old_part.iter().flatten().all(|&p| p < k),
            "old partition references part >= k"
        );
        assert!(alpha > 0.0, "alpha must be positive");

        let mut b = HypergraphBuilder::new(n + k);
        // Computation vertices keep their weights and sizes.
        for v in 0..n {
            b.set_vertex_weight(v, h.vertex_weight(v));
            b.set_vertex_size(v, h.vertex_size(v));
        }
        // Partition vertices carry no load and no data.
        for i in 0..k {
            b.set_vertex_weight(n + i, 0.0);
            b.set_vertex_size(n + i, 0.0);
        }
        // Multi-constraint epochs: the computation vertices keep their
        // full load vectors; partition vertices are zero on every
        // constraint. Never reached at arity 1 (the scalar weights set
        // above already are the loads).
        let arity = h.load_arity();
        if arity > 1 {
            let columns: Vec<Vec<f64>> = (0..arity)
                .map(|c| {
                    let mut col = Vec::with_capacity(n + k);
                    col.extend((0..n).map(|v| h.vertex_load(v, c)));
                    col.resize(n + k, 0.0);
                    col
                })
                .collect();
            b.set_loads(dlb_hypergraph::VertexLoads::from_columns(columns));
        }
        // Communication nets, scaled by α.
        for j in 0..h.num_nets() {
            b.add_net(h.net_cost(j) * alpha, h.net(j).iter().copied());
        }
        // Migration nets: {v, u_old(v)} with cost = size of v's data.
        // Free vertices (no old home) get none.
        for v in 0..n {
            if let Some(p) = old_part[v] {
                b.add_net(h.vertex_size(v), [v, n + p]);
            }
        }

        let mut fixed = FixedAssignment::free(n + k);
        for i in 0..k {
            fixed.fix(n + i, i);
        }

        RepartitionHypergraph {
            augmented: b.build(),
            num_computation_vertices: n,
            k,
            alpha,
            fixed,
        }
    }

    /// Extends an assignment of the computation vertices to the full
    /// augmented vertex set (partition vertices pinned to their parts).
    pub fn extend_assignment(&self, computation_part: &[PartId]) -> Vec<PartId> {
        assert_eq!(computation_part.len(), self.num_computation_vertices);
        let mut full = Vec::with_capacity(self.num_computation_vertices + self.k);
        full.extend_from_slice(computation_part);
        full.extend(0..self.k);
        full
    }

    /// Decodes a partition of the augmented hypergraph into the new
    /// assignment of the computation vertices.
    ///
    /// # Panics
    /// Panics if a partition vertex was moved off its fixed part (the
    /// partitioner must never do this).
    pub fn decode(&self, augmented_part: &[PartId]) -> Vec<PartId> {
        assert_eq!(augmented_part.len(), self.augmented.num_vertices());
        for i in 0..self.k {
            assert_eq!(
                augmented_part[self.num_computation_vertices + i],
                i,
                "partition vertex u_{i} escaped its fixed part"
            );
        }
        augmented_part[..self.num_computation_vertices].to_vec()
    }

    /// The k-1 cut of the augmented hypergraph under an assignment of
    /// the computation vertices. By the model's construction this equals
    /// `α·comm_volume + migration_volume` — the identity the whole paper
    /// rests on, verified by `cut_identity` tests.
    pub fn objective(&self, computation_part: &[PartId]) -> f64 {
        let full = self.extend_assignment(computation_part);
        metrics::cutsize_connectivity(&self.augmented, &full, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics::{cutsize_connectivity, migration_volume};

    /// The paper's worked example (Figure 1, right; Section 3):
    /// α = 5, every vertex size 3; vertices "3" and "6" move; migration
    /// cost 6, communication volume 20 (scaled), total 26.
    #[test]
    fn paper_worked_example_costs_26() {
        // Epoch j hypergraph: vertices 1..7 and a, b  (0-indexed:
        // 1→0, 2→1, 3→2, 4→3, 5→4, 6→5, 7→6, a→7, b→8).
        // Communication nets (from Figure 1 right):
        //   {2,3,a}, {4,6,a}, {5,6,7}  — plus uncut ones; only cut ones
        // matter for the total, but include a couple of internal nets to
        // make the example honest.
        let nets = vec![
            vec![1, 2, 7], // {2,3,a}: cut, connectivity 2
            vec![3, 5, 7], // {4,6,a}: cut, connectivity 3
            vec![4, 5, 6], // {5,6,7}: cut, connectivity 2
            vec![0, 1],    // internal to V1
        ];
        let mut h = Hypergraph::from_nets_unit(9, &nets);
        for v in 0..9 {
            h.set_vertex_size(v, 3.0);
        }
        // Old parts: V1 = {1,2,3,a} → 0, V2 = {4,5} → 1, V3 = {6,7,b} → 2.
        let old = vec![0, 0, 0, 1, 1, 2, 2, 0, 2];
        let model = RepartitionHypergraph::build(&h, &old, 3, 5.0);
        model.augmented.validate().unwrap();
        assert_eq!(model.augmented.num_vertices(), 12);
        assert_eq!(model.augmented.num_nets(), 4 + 9);

        // New assignment: vertex "3" (idx 2) moves to V2, vertex "6"
        // (idx 5) moves to V3... in the paper 6 moves to V3; here old(6)=2
        // already, so emulate the paper exactly: old(6)=1, moves to 2.
        let old = vec![0, 0, 0, 1, 1, 1, 2, 0, 2];
        let model = RepartitionHypergraph::build(&h, &old, 3, 5.0);
        let mut new = old.clone();
        new[2] = 1; // vertex 3 → V2
        new[5] = 2; // vertex 6 → V3

        // Communication volume of the epoch hypergraph under `new`:
        //   {2,3,a}: parts {0,1} → λ=2 → 1; {4,6,a}: parts {1,2,0} → λ=3
        //   → 2; {5,6,7}: parts {1,2} → λ=2 → 1; internal → 0.
        assert_eq!(cutsize_connectivity(&h, &new, 3), 4.0);
        // Scaled by α=5: 20. Migration: two moved vertices × size 3 = 6.
        assert_eq!(migration_volume(h.vertex_sizes(), &old, &new), 6.0);
        // The model's objective is exactly the sum: 26.
        assert_eq!(model.objective(&new), 26.0);
    }

    #[test]
    fn cut_identity_holds_for_random_assignments() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // Random hypergraph with random sizes and costs.
        let mut b = HypergraphBuilder::new(30);
        for _ in 0..50 {
            let s = rng.gen_range(2..6);
            let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..30)).collect();
            b.add_net(rng.gen_range(1..5) as f64, pins);
        }
        for v in 0..30 {
            b.set_vertex_size(v, rng.gen_range(1..4) as f64);
        }
        let h = b.build();
        for trial in 0..10 {
            let k = rng.gen_range(2..6);
            let alpha = [1.0, 10.0, 100.0][trial % 3];
            let old: Vec<usize> = (0..30).map(|_| rng.gen_range(0..k)).collect();
            let new: Vec<usize> = (0..30).map(|_| rng.gen_range(0..k)).collect();
            let model = RepartitionHypergraph::build(&h, &old, k, alpha);
            let expected = alpha * cutsize_connectivity(&h, &new, k)
                + migration_volume(h.vertex_sizes(), &old, &new);
            let got = model.objective(&new);
            assert!(
                (got - expected).abs() < 1e-9,
                "trial {trial}: model {got} vs direct {expected}"
            );
        }
    }

    #[test]
    fn staying_home_costs_only_communication() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![2, 3], vec![1, 2]]);
        let old = vec![0, 0, 1, 1];
        let model = RepartitionHypergraph::build(&h, &old, 2, 10.0);
        // No migration: objective = 10 * cut({1,2} net) = 10.
        assert_eq!(model.objective(&old), 10.0);
    }

    #[test]
    fn partition_vertices_have_no_weight() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1, 2]]);
        let model = RepartitionHypergraph::build(&h, &[0, 1, 1], 2, 1.0);
        assert_eq!(model.augmented.vertex_weight(3), 0.0);
        assert_eq!(model.augmented.vertex_weight(4), 0.0);
        assert_eq!(model.augmented.total_vertex_weight(), 3.0);
    }

    #[test]
    fn fixed_assignment_pins_partition_vertices_only() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1, 2]]);
        let model = RepartitionHypergraph::build(&h, &[0, 1, 0], 2, 1.0);
        assert_eq!(model.fixed.num_fixed(), 2);
        assert_eq!(model.fixed.get(3), Some(0));
        assert_eq!(model.fixed.get(4), Some(1));
        assert_eq!(model.fixed.get(0), None);
    }

    #[test]
    fn decode_strips_partition_vertices() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let model = RepartitionHypergraph::build(&h, &[0, 1], 2, 1.0);
        let decoded = model.decode(&[1, 1, 0, 1]);
        assert_eq!(decoded, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "escaped its fixed part")]
    fn decode_rejects_moved_partition_vertex() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let model = RepartitionHypergraph::build(&h, &[0, 1], 2, 1.0);
        let _ = model.decode(&[0, 1, 1, 0]);
    }

    #[test]
    fn build_partial_omits_migration_nets_for_free_vertices() {
        let mut h = Hypergraph::from_nets_unit(3, &[vec![0, 1, 2]]);
        h.set_vertex_size(1, 7.0);
        let model = RepartitionHypergraph::build_partial(&h, &[Some(0), None, Some(1)], 2, 2.0);
        // 1 comm net + migration nets for v0 and v2 only; v1 is free.
        assert_eq!(model.augmented.num_nets(), 3);
        // Placing the free vertex on either part charges no migration:
        // the objective difference is purely the (here unchanged) cut.
        assert_eq!(model.objective(&[0, 0, 1]), model.objective(&[0, 1, 1]));
        // The anchored model charges v1's size (7) for the same move.
        let anchored = RepartitionHypergraph::build(&h, &[0, 0, 1], 2, 2.0);
        assert_eq!(anchored.objective(&[0, 1, 1]) - anchored.objective(&[0, 0, 1]), 7.0);
    }

    #[test]
    fn migration_net_costs_equal_vertex_sizes() {
        let mut h = Hypergraph::from_nets_unit(3, &[vec![0, 1, 2]]);
        h.set_vertex_size(1, 7.0);
        let model = RepartitionHypergraph::build(&h, &[0, 0, 1], 2, 2.0);
        // Nets 0 = comm (cost 2·1); nets 1..4 = migration for v0, v1, v2.
        assert_eq!(model.augmented.net_cost(0), 2.0);
        assert_eq!(model.augmented.net_cost(2), 7.0);
    }
}
