//! Data migration: actually *moving* the data after a repartitioning
//! decision.
//!
//! The paper's host system, Zoltan, is a data-management service: after
//! the partitioner decides where every vertex should live, the
//! application's per-vertex payloads must travel to their new owners.
//! This module performs that exchange over the simulated SPMD machine —
//! a personalized all-to-all of the payloads whose owner changed — and
//! reports the realized migration volume, which equals what the
//! repartitioning hypergraph's migration nets charged (tested below:
//! model cost accounting and physical data movement agree).
//!
//! Parts are mapped to ranks round-robin when there are more parts than
//! ranks (`part % nranks`), matching how the experiment harness runs
//! k-way decompositions on fewer simulated ranks than parts.

use dlb_hypergraph::PartId;
use dlb_mpisim::Comm;

/// One migratable item: a global vertex id and its payload.
pub type Item<T> = (usize, T);

/// Maps a part to the rank that hosts it.
#[inline]
pub fn rank_of_part(part: PartId, nranks: usize) -> usize {
    part % nranks
}

/// Statistics of one migration exchange (per rank).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MigrationStats {
    /// Items this rank sent away.
    pub items_sent: usize,
    /// Items this rank received.
    pub items_received: usize,
    /// Total payload volume sent (as reported by the `size_of` closure).
    pub volume_sent: f64,
    /// Total payload volume received.
    pub volume_received: f64,
}

impl MigrationStats {
    /// Component-wise maximum over per-rank statistics — the bottleneck
    /// rank's view of the exchange, which is what bounds the migration
    /// phase's wall-clock in a synchronous application.
    ///
    /// Returns the default (all-zero) statistics for an empty slice.
    pub fn max_over_ranks(stats: &[MigrationStats]) -> MigrationStats {
        let mut max = MigrationStats::default();
        for s in stats {
            max.items_sent = max.items_sent.max(s.items_sent);
            max.items_received = max.items_received.max(s.items_received);
            max.volume_sent = max.volume_sent.max(s.volume_sent);
            max.volume_received = max.volume_received.max(s.volume_received);
        }
        max
    }
}

/// Moves payloads to their new owners.
///
/// * `items` — the payloads this rank currently hosts, keyed by global
///   vertex id (ownership must agree with `old_part` + `rank_of_part`).
/// * `old_part` / `new_part` — the full assignments (replicated, as
///   everywhere in this workspace).
/// * `size_of` — payload volume accounting (bytes, element counts, …).
///
/// Returns the items this rank hosts afterwards (its kept items plus
/// arrivals, sorted by vertex id for determinism) and the exchange
/// statistics.
///
/// # Panics
/// Panics if an item's current owner disagrees with `old_part`, or the
/// assignments disagree in length.
pub fn migrate_items<T: Send + 'static>(
    comm: &mut Comm,
    items: Vec<Item<T>>,
    old_part: &[PartId],
    new_part: &[PartId],
    size_of: impl Fn(&T) -> f64,
) -> (Vec<Item<T>>, MigrationStats) {
    assert_eq!(old_part.len(), new_part.len(), "assignment length mismatch");
    let nranks = comm.size();
    let me = comm.rank();

    let mut stats = MigrationStats::default();
    let mut keep: Vec<Item<T>> = Vec::new();
    let mut outgoing: Vec<Vec<Item<T>>> = (0..nranks).map(|_| Vec::new()).collect();
    for (v, payload) in items {
        assert!(v < old_part.len(), "item {v} out of range");
        assert_eq!(
            rank_of_part(old_part[v], nranks),
            me,
            "item {v} hosted on the wrong rank"
        );
        let dest = rank_of_part(new_part[v], nranks);
        if dest == me {
            keep.push((v, payload));
        } else {
            stats.items_sent += 1;
            stats.volume_sent += size_of(&payload);
            outgoing[dest].push((v, payload));
        }
    }

    let incoming = comm.alltoall(outgoing);
    for batch in incoming {
        stats.items_received += batch.len();
        for (_, payload) in &batch {
            stats.volume_received += size_of(payload);
        }
        keep.extend(batch);
    }
    keep.sort_by_key(|(v, _)| *v);
    (keep, stats)
}

/// Builds the initial distribution of payloads for a replicated
/// assignment: rank `r` hosts the items of every part mapped to it.
pub fn scatter_initial<T: Clone>(
    rank: usize,
    nranks: usize,
    part: &[PartId],
    payload_of: impl Fn(usize) -> T,
) -> Vec<Item<T>> {
    part.iter()
        .enumerate()
        .filter(|(_, &p)| rank_of_part(p, nranks) == rank)
        .map(|(v, _)| (v, payload_of(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_mpisim::run_spmd;

    fn exchange(
        nranks: usize,
        old: Vec<usize>,
        new: Vec<usize>,
    ) -> Vec<(Vec<Item<u64>>, MigrationStats)> {
        run_spmd(nranks, |comm| {
            let items = scatter_initial(comm.rank(), comm.size(), &old, |v| v as u64 * 10);
            migrate_items(comm, items, &old, &new, |_| 1.0)
        })
    }

    #[test]
    fn items_land_on_their_new_owners() {
        let old = vec![0, 0, 1, 1, 2, 2];
        let new = vec![1, 0, 1, 2, 0, 2];
        let results = exchange(3, old, new.clone());
        for (rank, (items, _)) in results.iter().enumerate() {
            for &(v, payload) in items {
                assert_eq!(rank_of_part(new[v], 3), rank, "vertex {v} on wrong rank");
                assert_eq!(payload, v as u64 * 10, "payload corrupted");
            }
        }
    }

    #[test]
    fn nothing_is_lost_or_duplicated() {
        let old = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let new = vec![3, 2, 1, 0, 0, 1, 2, 3];
        let results = exchange(4, old.clone(), new);
        let mut all: Vec<usize> = results
            .iter()
            .flat_map(|(items, _)| items.iter().map(|(v, _)| *v))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_match_assignment_delta() {
        let old = vec![0, 0, 1, 1];
        let new = vec![1, 0, 0, 1]; // vertices 0 and 2 move
        let results = exchange(2, old, new);
        let sent: usize = results.iter().map(|(_, s)| s.items_sent).sum();
        let received: usize = results.iter().map(|(_, s)| s.items_received).sum();
        assert_eq!(sent, 2);
        assert_eq!(received, 2);
        let volume: f64 = results.iter().map(|(_, s)| s.volume_sent).sum();
        assert_eq!(volume, 2.0);
    }

    #[test]
    fn unchanged_assignment_moves_nothing() {
        let part = vec![0, 1, 0, 1, 0];
        let results = exchange(2, part.clone(), part);
        for (_, stats) in &results {
            assert_eq!(stats.items_sent, 0);
            assert_eq!(stats.items_received, 0);
        }
    }

    #[test]
    fn more_parts_than_ranks_round_robin() {
        // k=4 parts on 2 ranks: parts 0,2 on rank 0; parts 1,3 on rank 1.
        let old = vec![0, 1, 2, 3];
        let new = vec![2, 3, 0, 1]; // each vertex moves part but not rank
        let results = exchange(2, old, new);
        for (_, stats) in &results {
            assert_eq!(stats.items_sent, 0, "part changes within a rank move no data");
        }
    }

    /// What one rank sends another receives: summed over all ranks, the
    /// send- and receive-side accounting must agree exactly, item count
    /// and volume alike.
    #[test]
    fn global_send_receive_symmetry() {
        let old = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        let new = vec![1, 2, 0, 2, 0, 1, 0, 1, 2];
        let sizes: Vec<f64> = (0..9).map(|v| 3.0 + v as f64).collect();
        for nranks in [2usize, 3] {
            let results = run_spmd(nranks, |comm| {
                let items =
                    scatter_initial(comm.rank(), comm.size(), &old, |v| sizes[v]);
                migrate_items(comm, items, &old, &new, |s| *s).1
            });
            let sent: usize = results.iter().map(|s| s.items_sent).sum();
            let received: usize = results.iter().map(|s| s.items_received).sum();
            assert_eq!(sent, received, "item symmetry at {nranks} ranks");
            let vol_sent: f64 = results.iter().map(|s| s.volume_sent).sum();
            let vol_received: f64 = results.iter().map(|s| s.volume_received).sum();
            assert_eq!(vol_sent, vol_received, "volume symmetry at {nranks} ranks");
            assert!(sent > 0, "scenario must move something at {nranks} ranks");
        }
    }

    #[test]
    fn max_over_ranks_takes_componentwise_maxima() {
        let a = MigrationStats {
            items_sent: 5,
            items_received: 1,
            volume_sent: 10.0,
            volume_received: 2.0,
        };
        let b = MigrationStats {
            items_sent: 2,
            items_received: 4,
            volume_sent: 3.0,
            volume_received: 9.0,
        };
        let m = MigrationStats::max_over_ranks(&[a, b]);
        assert_eq!(m.items_sent, 5);
        assert_eq!(m.items_received, 4);
        assert_eq!(m.volume_sent, 10.0);
        assert_eq!(m.volume_received, 9.0);
        assert_eq!(MigrationStats::max_over_ranks(&[]), MigrationStats::default());
    }

    /// Physical migration volume equals the model's migration accounting.
    #[test]
    fn physical_volume_matches_model_accounting() {
        use dlb_hypergraph::metrics::migration_volume;
        let old = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let new = vec![0, 1, 1, 2, 2, 3, 3, 0];
        let sizes: Vec<f64> = (0..8).map(|v| 1.0 + v as f64).collect();
        // Run on k ranks so every part lives on its own rank — then rank
        // moves coincide with part moves exactly.
        let results = run_spmd(4, |comm| {
            let items = scatter_initial(comm.rank(), comm.size(), &old, |v| sizes[v]);
            migrate_items(comm, items, &old, &new, |s| *s)
        });
        let physical: f64 = results.iter().map(|(_, s)| s.volume_sent).sum();
        let model = migration_volume(&sizes, &old, &new);
        assert!((physical - model).abs() < 1e-9, "physical {physical} vs model {model}");
    }
}
