//! Elastic worlds: planned grow/shrink of the rank set (DESIGN.md §15).
//!
//! Failure recovery (DESIGN.md §12) taught the epoch driver to shrink
//! the world when a rank *dies*. This module makes resizing a
//! first-class, *planned* scenario: a [`WorldPlan`] schedules rank
//! arrivals (spares joining, rolling restarts returning) and departures
//! (shrink under low load) per epoch, and the driver consumes it at
//! epoch boundaries exactly where it consumes the fault plan.
//!
//! A resize is posed as the repartitioning problem the model already
//! solves, on three label spaces at once:
//!
//! * the **before** space `0..k_before` — the compacted labels of the
//!   pre-resize world, where `old_part` lives;
//! * the **post** space `0..k_after` — survivors compacted in label
//!   order, then joiners appended — where the committed partition
//!   lives;
//! * the **union** space `0..k_before + #joins` — every rank that is
//!   alive at any point during the resize. Migration physically
//!   executes here: leavers ship their vertices out, joiners receive
//!   theirs, and the measured exchange prices both flows.
//!
//! Two candidate partitions compete for every resize:
//!
//! * **repartition** — [`RepartitionHypergraph::build_partial`] with
//!   the leavers' vertices free (their migration is unavoidable and
//!   destination-independent, the same argument as recovery orphans)
//!   and survivors tethered, solved with fixed vertices onto `k_after`;
//! * **scratch** — a free partition onto `k_after` parts, relabeled by
//!   the maximal-matching heuristic against the surviving old labels
//!   ([`crate::remap::remap_to_minimize_migration_partial`]).
//!
//! The *measured* cost model arbitrates: both candidates execute their
//! migration on the union world ([`crate::exec::measure_epoch_with_faults`])
//! and the lower measured `α·comm + mig` volume wins (model costs decide
//! for unmeasured sessions — the two agree by the cut identity). The
//! choice is recorded per resize ([`ResizeRecord`]) and in the
//! `resize_chose_*` trace counters.

use std::sync::{Arc, Mutex};

use dlb_hypergraph::{metrics, Hypergraph, PartId};
use dlb_mpisim::{spec, Comm, FaultPlan, WorldMembership};
use dlb_partitioner::par::parallel_partition_fixed;
use dlb_partitioner::{partition_hypergraph_fixed, FixedAssignment};
use dlb_workloads::{EpochSnapshot, EpochSource, EpochUpdate};

use crate::cost::CostBreakdown;
use crate::driver::RepartConfig;
use crate::exec::{measure_epoch_with_faults, EpochExecution, NetworkModel};
use crate::model::RepartitionHypergraph;
use crate::remap::remap_to_minimize_migration_partial;

/// One scheduled world change: rank `rank` joins or leaves at the
/// boundary of `epoch` (1-based, like [`dlb_mpisim::RankFailure`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldEvent {
    /// The original rank id (stable name; may exceed the launch `k`
    /// for spares, and a departed or failed rank may rejoin later).
    pub rank: usize,
    /// The 1-based epoch at whose boundary the change applies.
    pub epoch: usize,
    /// Join or leave.
    pub change: WorldChange,
}

/// The direction of a [`WorldEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldChange {
    /// The rank arrives (a spare joins the world).
    Join,
    /// The rank departs (planned shrink; its vertices migrate out).
    Leave,
}

/// A seeded, declarative schedule of rank arrivals and departures.
///
/// Build one programmatically with the builder methods or parse the CLI
/// spec grammar with [`WorldPlan::parse`] — the same `SEED:SPEC` shape
/// as [`FaultPlan`], via the shared [`dlb_mpisim::spec`] grammar:
///
/// ```text
/// SEED:directive(,directive)*
///   join<R>@<E>    rank R joins at epoch E       e.g. join4@3
///   leave<R>@<E>   rank R leaves at epoch E      e.g. leave0@5
/// ```
///
/// The seed is kept for grammar symmetry with the fault plan (and for
/// future randomized schedules); the plan itself is fully declarative.
///
/// ```
/// use dlb_core::elastic::WorldPlan;
/// let plan = WorldPlan::parse("42:join4@3,leave0@5").unwrap();
/// assert_eq!(plan.seed(), 42);
/// assert_eq!(plan.resize_at(3), (vec![4], vec![]));
/// assert_eq!(plan.resize_at(5), (vec![], vec![0]));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorldPlan {
    seed: u64,
    events: Vec<WorldEvent>,
}

impl WorldPlan {
    /// An empty plan (no resizes) with the given seed.
    pub fn new(seed: u64) -> Self {
        WorldPlan { seed, events: Vec::new() }
    }

    /// Schedules rank `rank` to join at the boundary of `epoch`
    /// (1-based).
    pub fn join(mut self, rank: usize, epoch: usize) -> Self {
        assert!(epoch >= 1, "epochs are 1-based");
        self.events.push(WorldEvent { rank, epoch, change: WorldChange::Join });
        self
    }

    /// Schedules rank `rank` to leave at the boundary of `epoch`
    /// (1-based).
    pub fn leave(mut self, rank: usize, epoch: usize) -> Self {
        assert!(epoch >= 1, "epochs are 1-based");
        self.events.push(WorldEvent { rank, epoch, change: WorldChange::Leave });
        self
    }

    /// Parses the `SEED:spec` grammar (see the type docs). Error
    /// messages are uniform with [`FaultPlan::parse`] — both speak the
    /// shared [`dlb_mpisim::spec`] grammar.
    pub fn parse(s: &str) -> Result<WorldPlan, String> {
        let (seed, directives) = spec::split_seed_spec(s, "world", "42:join4@3,leave0@5")?;
        let mut plan = WorldPlan::new(seed);
        for directive in directives {
            if let Some(rest) = directive.strip_prefix("join") {
                let (rank, epoch) = spec::parse_rank_at_epoch(directive, rest)?;
                plan.events.push(WorldEvent { rank, epoch, change: WorldChange::Join });
            } else if let Some(rest) = directive.strip_prefix("leave") {
                let (rank, epoch) = spec::parse_rank_at_epoch(directive, rest)?;
                plan.events.push(WorldEvent { rank, epoch, change: WorldChange::Leave });
            } else {
                return Err(spec::unknown_directive(directive, "join<R>@<E> or leave<R>@<E>"));
            }
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[WorldEvent] {
        &self.events
    }

    /// Whether the plan schedules no changes at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every rank id the plan ever joins (deduplicated, sorted) — the
    /// ids beyond the launch world that a composed fault plan may
    /// legitimately target.
    pub fn join_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.change == WorldChange::Join)
            .map(|e| e.rank)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// The *net* resize at the boundary of `epoch`: `(joins, leaves)`,
    /// each sorted and deduplicated, with a rank scheduled to both join
    /// and leave at the same epoch cancelled out entirely. That folding
    /// is what makes a grow-then-immediately-shrink plan a literal
    /// no-op — bitwise equal to running with no plan at all.
    pub fn resize_at(&self, epoch: usize) -> (Vec<usize>, Vec<usize>) {
        let mut joins = Vec::new();
        let mut leaves = Vec::new();
        for e in self.events.iter().filter(|e| e.epoch == epoch) {
            match e.change {
                WorldChange::Join => joins.push(e.rank),
                WorldChange::Leave => leaves.push(e.rank),
            }
        }
        joins.sort_unstable();
        joins.dedup();
        leaves.sort_unstable();
        leaves.dedup();
        let cancelled: Vec<usize> =
            joins.iter().copied().filter(|r| leaves.contains(r)).collect();
        joins.retain(|r| !cancelled.contains(r));
        leaves.retain(|r| !cancelled.contains(r));
        (joins, leaves)
    }

    /// Fails fast if the composed schedule (this plan's resizes plus
    /// `faults`' rank failures) would ever empty the world within
    /// `num_epochs` epochs of a `k0`-part launch. Joins of live ranks
    /// and leaves of dead ranks are filtered exactly as the epoch
    /// driver filters them, so this simulation is the driver's.
    pub fn validate(
        &self,
        k0: usize,
        num_epochs: usize,
        faults: Option<&FaultPlan>,
    ) -> Result<(), String> {
        let mut world = WorldMembership::launch(k0);
        for epoch in 1..=num_epochs {
            if let Some(plan) = faults {
                for r in plan.ranks_failing_at(epoch) {
                    if world.is_live(r) {
                        if world.k() == 1 {
                            return Err(format!(
                                "rank {r} failing at epoch {epoch} would empty the world"
                            ));
                        }
                        world.remove(r);
                    }
                }
            }
            let (mut joins, mut leaves) = self.resize_at(epoch);
            joins.retain(|r| !world.is_live(*r));
            leaves.retain(|r| world.is_live(*r));
            if joins.is_empty() && leaves.is_empty() {
                continue;
            }
            if world.k() + joins.len() == leaves.len() {
                return Err(format!("world plan empties the world at epoch {epoch}"));
            }
            world.resize(&leaves, &joins);
        }
        Ok(())
    }
}

/// Which candidate the per-resize arbitration picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeChoice {
    /// The fixed-vertex repartition (leavers free, survivors tethered).
    Repart,
    /// The scratch partition + maximal-matching remap.
    Scratch,
}

impl ResizeChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ResizeChoice::Repart => "repart",
            ResizeChoice::Scratch => "scratch",
        }
    }
}

/// One planned world resize performed at an epoch boundary.
#[derive(Clone, Debug)]
pub struct ResizeRecord {
    /// Epoch at whose boundary the resize applied (1-based).
    pub epoch: usize,
    /// Original ids of the ranks that joined, ascending.
    pub joined: Vec<usize>,
    /// Original ids of the ranks that departed, ascending.
    pub departed: Vec<usize>,
    /// Live parts before the resize.
    pub k_before: usize,
    /// Live parts after.
    pub k_after: usize,
    /// The candidate the cost model picked.
    pub choice: ResizeChoice,
    /// Decision cost of the repartition candidate (measured
    /// `α·comm + mig` volume when the session is measured, the model
    /// total otherwise).
    pub repart_cost: f64,
    /// Decision cost of the scratch candidate, same units.
    pub scratch_cost: f64,
    /// Model migration volume of the chosen move (union space,
    /// including the departing ranks' evacuation).
    pub migration: f64,
    /// Measured migration-phase makespan of the resize exchange in
    /// seconds (`0.0` when the trial runs without a network model).
    pub t_mig: f64,
}

/// The chosen outcome of one resize (driver-internal).
#[derive(Clone, Debug)]
pub(crate) struct ResizeOutcome {
    /// The new assignment in the post space (`0..k_after`).
    pub part: Vec<PartId>,
    /// The same assignment in the union space — what the migration
    /// phase executes against the pre-resize assignment. (The driver
    /// consumes the measured execution; the union labels themselves are
    /// exercised by the unit tests.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub exec_part: Vec<PartId>,
    /// Ranks alive at any point during the resize.
    #[cfg_attr(not(test), allow(dead_code))]
    pub k_union: usize,
    /// Cost of the resize move, measured in the union space.
    pub cost: CostBreakdown,
    /// Load imbalance of the new assignment over `k_after` parts.
    pub imbalance: f64,
    /// Vertices that changed parts (every leaver vertex moves).
    pub moved: usize,
    /// Measured execution of the chosen candidate on the union world
    /// (`None` without a network model).
    pub execution: Option<EpochExecution>,
    /// Which candidate won.
    pub choice: ResizeChoice,
    /// Decision cost of the repartition candidate.
    pub repart_cost: f64,
    /// Decision cost of the scratch candidate.
    pub scratch_cost: f64,
}

/// Performs one planned resize: the `leaving_labels` (pre-resize
/// compacted labels, sorted ascending) depart and `num_joining` fresh
/// parts arrive. Solves both candidate partitions onto
/// `k_after = k_before - #leaves + #joins` parts, arbitrates by the
/// measured cost model (model costs when `network` is `None`), and
/// returns the winner. With `comm` the candidate partitioners run
/// collectively, exactly like [`crate::recover::recover_from_failure`].
///
/// # Panics
/// Panics if the resize leaves no parts, a leaving label is out of
/// range, or on length mismatches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn perform_resize(
    mut comm: Option<&mut Comm>,
    h: &Hypergraph,
    old_part: &[PartId],
    leaving_labels: &[usize],
    num_joining: usize,
    k_before: usize,
    alpha: f64,
    cfg: &RepartConfig,
    network: Option<&NetworkModel>,
    faults: Option<&FaultPlan>,
) -> ResizeOutcome {
    assert_eq!(old_part.len(), h.num_vertices(), "old partition length mismatch");
    assert!(leaving_labels.iter().all(|&p| p < k_before), "leaving label out of range");
    assert!(leaving_labels.windows(2).all(|w| w[0] < w[1]), "leaving labels must be sorted");
    let survivors = k_before - leaving_labels.len();
    let k_after = survivors + num_joining;
    let k_union = k_before + num_joining;
    assert!(k_after >= 1, "resize leaves no parts");

    // before → post: survivors compact in label order; leavers vanish.
    let mut old_to_post: Vec<Option<PartId>> = vec![None; k_before];
    let mut next = 0usize;
    let mut li = 0usize;
    for p in 0..k_before {
        if li < leaving_labels.len() && leaving_labels[li] == p {
            li += 1;
        } else {
            old_to_post[p] = Some(next);
            next += 1;
        }
    }
    // post → union: survivors keep their before-labels; joiners take the
    // fresh labels `k_before..k_union`.
    let mut post_to_union: Vec<PartId> = vec![0; k_after];
    for p in 0..k_before {
        if let Some(q) = old_to_post[p] {
            post_to_union[q] = p;
        }
    }
    for j in 0..num_joining {
        post_to_union[survivors + j] = k_before + j;
    }

    // Old homes in the post space: leavers' vertices are free — their
    // evacuation is unavoidable and costs the same wherever they land,
    // so the model must not distort placement by charging it.
    let partial: Vec<Option<PartId>> = old_part.iter().map(|&p| old_to_post[p]).collect();

    // Candidate 1: fixed-vertex repartition of the partial model.
    let model = RepartitionHypergraph::build_partial(h, &partial, k_after, alpha);
    let repart = match comm.as_deref_mut() {
        Some(comm) => {
            parallel_partition_fixed(comm, &model.augmented, k_after, &model.fixed, &cfg.hypergraph)
        }
        None => partition_hypergraph_fixed(&model.augmented, k_after, &model.fixed, &cfg.hypergraph),
    };
    let part_repart = model.decode(&repart.part);

    // Candidate 2: scratch partition + maximal-matching remap against
    // the surviving old labels.
    let free = FixedAssignment::free(h.num_vertices());
    let scratch = match comm {
        Some(comm) => parallel_partition_fixed(comm, h, k_after, &free, &cfg.hypergraph),
        None => partition_hypergraph_fixed(h, k_after, &free, &cfg.hypergraph),
    };
    let part_scratch =
        remap_to_minimize_migration_partial(&scratch.part, &partial, h.vertex_sizes(), k_after);

    let to_union =
        |post: &[PartId]| -> Vec<PartId> { post.iter().map(|&q| post_to_union[q]).collect() };
    let exec_repart = to_union(&part_repart);
    let exec_scratch = to_union(&part_scratch);
    let cost_repart = CostBreakdown::measure(h, old_part, &exec_repart, k_union, alpha);
    let cost_scratch = CostBreakdown::measure(h, old_part, &exec_scratch, k_union, alpha);

    // Arbitration: measured cost volumes on the union world when a
    // network model is installed (the migration physically executes —
    // leavers evacuate, joiners fill); model totals otherwise. The two
    // agree by the cut identity, so the decisions coincide on the
    // integer-valued workloads. Ties go to the repartitioner.
    let (meas_repart, meas_scratch) = match network {
        Some(net) => (
            Some(measure_epoch_with_faults(h, old_part, &exec_repart, k_union, alpha, net, faults)),
            Some(measure_epoch_with_faults(h, old_part, &exec_scratch, k_union, alpha, net, faults)),
        ),
        None => (None, None),
    };
    let (repart_cost, scratch_cost) = match (&meas_repart, &meas_scratch) {
        (Some(a), Some(b)) => (a.cost_volume(), b.cost_volume()),
        _ => (cost_repart.total(), cost_scratch.total()),
    };
    let choice =
        if repart_cost <= scratch_cost { ResizeChoice::Repart } else { ResizeChoice::Scratch };
    let (part, exec_part, cost, execution) = match choice {
        ResizeChoice::Repart => (part_repart, exec_repart, cost_repart, meas_repart),
        ResizeChoice::Scratch => (part_scratch, exec_scratch, cost_scratch, meas_scratch),
    };
    let imbalance = metrics::imbalance(h, &part, k_after);
    let moved = metrics::moved_vertex_count(old_part, &exec_part);

    ResizeOutcome {
        part,
        exec_part,
        k_union,
        cost,
        imbalance,
        moved,
        execution,
        choice,
        repart_cost,
        scratch_cost,
    }
}

/// A deterministic digest of the *science* content of one epoch — the
/// mesh structure, weights, sizes, net costs, and persistent base ids,
/// explicitly **excluding** the partition. For partition-independent
/// workloads (the AMR quadtree: refinement follows the features, never
/// the decomposition) this sequence is the delivered answer, and the
/// chaos soak asserts it stays bit-identical under any churn.
pub fn science_fingerprint(snapshot: &EpochSnapshot) -> u64 {
    // FNV-1a over the canonical encoding; f64s hash by bit pattern so
    // equality is bitwise, not approximate.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        hash ^= x;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    let h = &snapshot.hypergraph;
    let n = h.num_vertices();
    eat(n as u64);
    for v in 0..n {
        eat(h.vertex_weight(v).to_bits());
        eat(h.vertex_size(v).to_bits());
    }
    eat(h.num_nets() as u64);
    for j in 0..h.num_nets() {
        eat(h.net_cost(j).to_bits());
        let pins = h.net(j);
        eat(pins.len() as u64);
        for &v in pins {
            eat(v as u64);
        }
    }
    for &b in &snapshot.to_base {
        eat(b as u64);
    }
    hash
}

/// A shared, append-only log of per-epoch [`science_fingerprint`]s —
/// the "delivered answers" of one run, exfiltrated through the
/// [`AuditedSource`] wrapper so multi-rank factory sessions can hand a
/// ledger out of the SPMD world.
pub type AuditLedger = Arc<Mutex<Vec<u64>>>;

/// Wraps any [`EpochSource`], recording the science fingerprint of
/// every emitted snapshot into an [`AuditLedger`]. The chaos-soak
/// harness runs a churn-free baseline and a churned run over identical
/// sources and asserts their ledgers match bit for bit.
///
/// Auditing is snapshot-based: [`EpochSource::next_delta`] updates are
/// forwarded but only `Full` snapshots are fingerprinted, so audited
/// runs should stay non-incremental.
pub struct AuditedSource<S> {
    inner: S,
    ledger: AuditLedger,
}

impl<S: EpochSource> AuditedSource<S> {
    /// Wraps `inner` with a fresh ledger.
    pub fn new(inner: S) -> Self {
        AuditedSource { inner, ledger: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Wraps `inner`, appending to an existing ledger (per-rank ledgers
    /// of a factory session).
    pub fn with_ledger(inner: S, ledger: AuditLedger) -> Self {
        AuditedSource { inner, ledger }
    }

    /// The ledger this source appends to.
    pub fn ledger(&self) -> AuditLedger {
        Arc::clone(&self.ledger)
    }
}

impl<S: EpochSource> EpochSource for AuditedSource<S> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn epochs_emitted(&self) -> usize {
        self.inner.epochs_emitted()
    }

    fn next_epoch(&mut self) -> EpochSnapshot {
        let snapshot = self.inner.next_epoch();
        self.ledger.lock().unwrap().push(science_fingerprint(&snapshot));
        snapshot
    }

    fn next_delta(&mut self) -> EpochUpdate {
        let update = self.inner.next_delta();
        if let EpochUpdate::Full(snapshot) = &update {
            self.ledger.lock().unwrap().push(science_fingerprint(snapshot));
        }
        update
    }

    fn commit_assignment(&mut self, snapshot: &EpochSnapshot, part: &[PartId]) {
        self.inner.commit_assignment(snapshot, part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::convert::column_net_model_unit;
    use dlb_hypergraph::GraphBuilder;

    #[test]
    fn parse_full_grammar() {
        let plan = WorldPlan::parse("7:join4@2,leave1@2,leave0@5").unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.resize_at(2), (vec![4], vec![1]));
        assert_eq!(plan.resize_at(5), (vec![], vec![0]));
        assert_eq!(plan.resize_at(1), (vec![], vec![]));
        assert_eq!(plan.join_ranks(), vec![4]);
    }

    #[test]
    fn parse_empty_spec_is_no_changes() {
        let plan = WorldPlan::parse("3:").unwrap();
        assert_eq!(plan.seed(), 3);
        assert!(plan.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nocolon",
            "x:join1@2",
            "1:join@2",
            "1:join1@zero",
            "1:join1@0",
            "1:leave1",
            "1:rank1@2",
            "1:explode",
        ] {
            assert!(WorldPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn error_wording_matches_the_fault_plan() {
        // The satellite contract: one grammar module, uniform messages.
        let w = WorldPlan::parse("1:join1@0").unwrap_err();
        let f = FaultPlan::parse("1:rank1@0").unwrap_err();
        assert_eq!(w, "'join1@0': epochs are 1-based");
        assert_eq!(f, "'rank1@0': epochs are 1-based");
    }

    #[test]
    fn same_epoch_join_and_leave_cancel() {
        let plan = WorldPlan::new(1).join(5, 3).leave(5, 3).leave(1, 3);
        assert_eq!(plan.resize_at(3), (vec![], vec![1]));
        // A pure no-op epoch nets to nothing at all.
        let noop = WorldPlan::new(1).join(9, 2).leave(9, 2);
        assert_eq!(noop.resize_at(2), (vec![], vec![]));
    }

    #[test]
    fn validate_catches_world_exhaustion() {
        let plan = WorldPlan::new(0).leave(0, 1).leave(1, 2);
        assert!(plan.validate(2, 1, None).is_ok(), "one leave of two is fine");
        let err = plan.validate(2, 2, None).unwrap_err();
        assert!(err.contains("epoch 2"), "{err}");
        // A join rescues the same schedule.
        let rescued = plan.clone().join(7, 2);
        assert!(rescued.validate(2, 2, None).is_ok());
        // Composition with faults is simulated too.
        let faults = FaultPlan::new(0).fail_rank(0, 1).fail_rank(1, 1);
        let err = WorldPlan::new(0).validate(2, 2, Some(&faults)).unwrap_err();
        assert!(err.contains("empty the world"), "{err}");
    }

    fn grid(rows: usize, cols: usize, k: usize) -> (Hypergraph, Vec<PartId>) {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut b = GraphBuilder::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let h = column_net_model_unit(&g);
        let old: Vec<usize> = (0..rows * cols).map(|v| (v % cols) * k / cols).collect();
        (h, old)
    }

    #[test]
    fn shrink_evacuates_the_leaver() {
        let (h, old) = grid(8, 8, 4);
        let cfg = RepartConfig::seeded(1);
        let out = perform_resize(None, &h, &old, &[2], 0, 4, 10.0, &cfg, None, None);
        assert_eq!(out.k_union, 4);
        assert!(out.part.iter().all(|&p| p < 3));
        // In the union space the departed label is never reassigned.
        assert!(out.exec_part.iter().all(|&p| p < 4 && p != 2));
        let evacuated = old.iter().filter(|&&p| p == 2).count();
        assert!(out.moved >= evacuated, "every leaver vertex moves");
        assert!(out.imbalance < 1.5, "imbalance {}", out.imbalance);
    }

    #[test]
    fn grow_populates_the_joiners() {
        let (h, old) = grid(8, 8, 2);
        let cfg = RepartConfig::seeded(2);
        let out = perform_resize(None, &h, &old, &[], 2, 2, 10.0, &cfg, None, None);
        assert_eq!(out.k_union, 4);
        assert!(out.part.iter().all(|&p| p < 4));
        // Growth onto spares must actually use them: balance over 4
        // parts forces every part non-empty on a uniform grid.
        for p in 0..4 {
            assert!(out.part.iter().any(|&q| q == p), "part {p} left empty");
        }
        assert!(out.imbalance < 1.5, "imbalance {}", out.imbalance);
        // Post labels 2,3 map to union labels 2,3 (fresh ranks).
        for (&q, &u) in out.part.iter().zip(&out.exec_part) {
            assert_eq!(q, u, "with no leavers the post and union spaces coincide");
        }
    }

    #[test]
    fn simultaneous_shrink_and_grow_relabels_consistently() {
        let (h, old) = grid(8, 8, 3);
        let cfg = RepartConfig::seeded(3);
        let out = perform_resize(None, &h, &old, &[0], 2, 3, 10.0, &cfg, None, None);
        // post: {old1→0, old2→1, new→2, new→3}; union: {0..3 old, 3,4 new}.
        assert_eq!(out.k_union, 5);
        assert!(out.part.iter().all(|&p| p < 4));
        for (&q, &u) in out.part.iter().zip(&out.exec_part) {
            let expect = match q {
                0 => 1,
                1 => 2,
                2 => 3,
                3 => 4,
                _ => unreachable!(),
            };
            assert_eq!(u, expect);
        }
        assert_eq!(
            out.cost.migration,
            metrics::migration_volume(h.vertex_sizes(), &old, &out.exec_part)
        );
    }

    #[test]
    fn arbitration_reports_both_candidate_costs() {
        let (h, old) = grid(8, 8, 4);
        let cfg = RepartConfig::seeded(4);
        let out = perform_resize(None, &h, &old, &[1], 0, 4, 10.0, &cfg, None, None);
        assert!(out.repart_cost > 0.0);
        assert!(out.scratch_cost > 0.0);
        let winner = match out.choice {
            ResizeChoice::Repart => out.repart_cost,
            ResizeChoice::Scratch => out.scratch_cost,
        };
        assert!(winner <= out.repart_cost.max(out.scratch_cost));
        // Unmeasured arbitration decides on the model total of the win.
        assert_eq!(winner, out.cost.total());
    }

    #[test]
    fn measured_arbitration_agrees_with_the_model() {
        let (h, old) = grid(6, 6, 3);
        let cfg = RepartConfig::seeded(5);
        let net = NetworkModel::default();
        let measured =
            perform_resize(None, &h, &old, &[0], 1, 3, 10.0, &cfg, Some(&net), None);
        let modeled = perform_resize(None, &h, &old, &[0], 1, 3, 10.0, &cfg, None, None);
        // Same candidates, and on integer-valued inputs the measured
        // volumes equal the model costs bitwise — so the same winner.
        assert_eq!(measured.choice, modeled.choice);
        assert_eq!(measured.part, modeled.part);
        let e = measured.execution.expect("measured resize");
        assert_eq!(e.cost_volume(), modeled.cost.total());
        assert!(e.t_mig > 0.0, "the leaver's evacuation is physical");
    }

    #[test]
    fn fingerprint_ignores_the_partition() {
        use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};
        let d = Dataset::generate(DatasetKind::Auto, 0.0005, 11);
        let n = d.graph.num_vertices();
        let make = |shift: usize| {
            let init: Vec<usize> = (0..n).map(|v| (v + shift) % 2).collect();
            EpochStream::new(d.graph.clone(), Perturbation::weights(), 2, init, 11)
        };
        let (mut a, mut b) = (make(0), make(1));
        let (sa, sb) = (a.next_epoch(), b.next_epoch());
        assert_ne!(sa.old_part, sb.old_part);
        assert_eq!(science_fingerprint(&sa), science_fingerprint(&sb));
        // ...but any science change is visible.
        let sa2 = a.next_epoch();
        assert_ne!(science_fingerprint(&sa), science_fingerprint(&sa2));
    }

    #[test]
    fn audited_source_records_one_digest_per_epoch() {
        use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};
        let d = Dataset::generate(DatasetKind::Auto, 0.0005, 13);
        let n = d.graph.num_vertices();
        let init: Vec<usize> = (0..n).map(|v| v % 2).collect();
        let stream = EpochStream::new(d.graph.clone(), Perturbation::weights(), 2, init, 13);
        let mut audited = AuditedSource::new(stream);
        let ledger = audited.ledger();
        let s1 = audited.next_epoch();
        let part = s1.old_part.clone();
        audited.commit_assignment(&s1, &part);
        let _ = audited.next_epoch();
        assert_eq!(ledger.lock().unwrap().len(), 2);
    }
}
