//! The execution model: turning a partition into a *measured* makespan.
//!
//! Everywhere else in this workspace `α·t_comm + t_mig` is a **model**
//! cost — the k-1 cut of the repartitioning hypergraph. This module
//! makes it an **observable**: it executes one epoch of the balanced
//! application on the simulated SPMD machine and clocks it under an
//! α/β (latency–bandwidth) network model:
//!
//! * **Compute** — each rank advances its owned cells; its work is the
//!   sum of owned vertex weights, and the compute phase lasts as long as
//!   the heaviest rank (`t_comp = max_p work_p · sec_per_work`).
//! * **Communication** — each cut net is a ghost exchange: the net's
//!   source vertex (its first pin, in the column-net model) sends the
//!   net's cost in bytes to every *other* part the net touches. Summed
//!   over nets this is exactly the connectivity-1 cut, so the measured
//!   per-iteration traffic equals the model's `t_comm` term by
//!   construction; the *makespan* charges each rank its own messages
//!   and bytes and takes the bottleneck rank.
//! * **Migration** — the epoch's payloads are **actually moved** by
//!   [`crate::migrate::migrate_items`] on a `k`-rank SPMD world (one
//!   part per rank, so part moves and rank moves coincide); the measured
//!   volume is what the repartitioning hypergraph's migration nets
//!   charged, and the phase lasts as long as the busiest rank's
//!   send+receive traffic.
//!
//! All AMR weights, sizes, and net costs are integer-valued `f64`s
//! (see `dlb_amr::lower`), so the measured sums are exact in any order
//! and the model-vs-measured equalities hold **bitwise**, not merely
//! within tolerance — `tests/amr_end_to_end.rs` asserts them with `==`.

use dlb_hypergraph::{Hypergraph, PartId};
use dlb_mpisim::{run_spmd_with_faults, FaultPlan};

use crate::migrate::{migrate_items, scatter_initial, MigrationStats};

/// Latency–bandwidth machine parameters for the measured makespan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Seconds per unit of vertex weight (one cell sub-timestep).
    pub sec_per_work: f64,
    /// Seconds per message (the α term of the α/β model).
    pub latency: f64,
    /// Seconds per payload byte (the β term, 1/bandwidth).
    pub sec_per_byte: f64,
}

impl Default for NetworkModel {
    /// A commodity-cluster regime: 1 µs per work unit, 10 µs message
    /// latency, 1 GB/s effective bandwidth. Chosen so that at the AMR
    /// workload's scale none of the three phases is negligible.
    fn default() -> Self {
        NetworkModel { sec_per_work: 1e-6, latency: 1e-5, sec_per_byte: 1e-9 }
    }
}

/// One epoch's measured execution under a partition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochExecution {
    /// Compute-phase makespan per iteration (bottleneck rank), seconds.
    pub t_comp: f64,
    /// Communication-phase makespan per iteration (bottleneck rank),
    /// seconds.
    pub t_comm: f64,
    /// Migration-phase makespan (bottleneck rank), seconds.
    pub t_mig: f64,
    /// Ghost-exchange bytes per iteration, summed over ranks. Equals the
    /// connectivity-1 cut of the epoch hypergraph.
    pub comm_volume: f64,
    /// Migration bytes actually moved, summed over ranks. Equals the
    /// repartitioning hypergraph's migration-net charge.
    pub mig_volume: f64,
    /// Bottleneck-rank migration statistics
    /// ([`MigrationStats::max_over_ranks`] of the per-rank exchanges).
    pub mig_bottleneck: MigrationStats,
    /// Iterations in the epoch.
    pub alpha: f64,
}

impl EpochExecution {
    /// The epoch's measured makespan `α·(t_comp + t_comm) + t_mig`, in
    /// seconds — the observable counterpart of the paper's objective.
    pub fn makespan(&self) -> f64 {
        self.alpha * (self.t_comp + self.t_comm) + self.t_mig
    }

    /// The measured analogue of the model's total cost `α·comm + mig`,
    /// in bytes (compute excluded): what the repartitioner's objective
    /// actually governs.
    pub fn cost_volume(&self) -> f64 {
        self.alpha * self.comm_volume + self.mig_volume
    }
}

/// Online competitive-ratio tracker for incremental repartitioning:
/// cumulative measured cost volume (`α·comm + mig` bytes, see
/// [`EpochExecution::cost_volume`]) of a policy run against a
/// from-scratch baseline run, accumulated epoch by epoch in the online
/// style of competitive analysis.
///
/// A ratio ≤ 1 means the incremental policy's summed objective is no
/// worse than rebuilding and repartitioning from scratch every epoch —
/// the acceptance bar for the delta subsystem (BENCH §incremental).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompetitiveRatio {
    /// Summed policy cost volume over the epochs recorded so far.
    pub policy_cost: f64,
    /// Summed baseline cost volume over the same epochs.
    pub baseline_cost: f64,
    /// Epochs recorded.
    pub epochs: usize,
}

impl CompetitiveRatio {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one epoch's policy and baseline cost volumes.
    pub fn record(&mut self, policy_cost_volume: f64, baseline_cost_volume: f64) {
        self.policy_cost += policy_cost_volume;
        self.baseline_cost += baseline_cost_volume;
        self.epochs += 1;
    }

    /// Cumulative `policy / baseline` cost ratio, or `None` while the
    /// baseline has accumulated no cost (nothing to compete against).
    pub fn ratio(&self) -> Option<f64> {
        if self.baseline_cost > 0.0 {
            Some(self.policy_cost / self.baseline_cost)
        } else {
            None
        }
    }

    /// Builds the tracker from two *measured* simulation summaries over
    /// the same workload, pairing epochs in order. `None` unless both
    /// runs are measured and cover the same number of epochs.
    pub fn from_summaries(
        policy: &crate::epoch::SimulationSummary,
        baseline: &crate::epoch::SimulationSummary,
    ) -> Option<Self> {
        if policy.reports.len() != baseline.reports.len() || policy.reports.is_empty() {
            return None;
        }
        let mut cr = Self::new();
        for (p, b) in policy.reports.iter().zip(&baseline.reports) {
            cr.record(p.execution?.cost_volume(), b.execution?.cost_volume());
        }
        Some(cr)
    }
}

/// Measures one epoch: executes the migration exchange on a `k`-rank
/// SPMD world and clocks all three phases under `net`.
///
/// `h` is the epoch hypergraph (communication costs **unscaled**),
/// `old_part`/`new_part` the assignments before and after
/// repartitioning.
///
/// # Panics
/// Panics on length mismatches or out-of-range parts.
pub fn measure_epoch(
    h: &Hypergraph,
    old_part: &[PartId],
    new_part: &[PartId],
    k: usize,
    alpha: f64,
    net: &NetworkModel,
) -> EpochExecution {
    measure_epoch_with_faults(h, old_part, new_part, k, alpha, net, None)
}

/// [`measure_epoch`] with an optional [`FaultPlan`] installed on the
/// migration world, so injected message drops/delays exercise the comm
/// layer's retransmit path during the physical exchange.
///
/// With `faults == None` this *is* `measure_epoch` — no extra
/// collectives, no RNG draws, bit-identical results. Injected drops are
/// retransmitted by the comm layer, so [`MigrationStats`] (and therefore
/// every measured time and volume here) stay deterministic under any
/// plan; only the world's `CommStats` and the `FaultsInjected` counter
/// reflect the injected faults.
///
/// # Panics
/// Panics on length mismatches, out-of-range parts, or if an injected
/// drop exhausts the retransmit budget.
pub fn measure_epoch_with_faults(
    h: &Hypergraph,
    old_part: &[PartId],
    new_part: &[PartId],
    k: usize,
    alpha: f64,
    net: &NetworkModel,
    faults: Option<&FaultPlan>,
) -> EpochExecution {
    let n = h.num_vertices();
    assert_eq!(old_part.len(), n, "old_part length mismatch");
    assert_eq!(new_part.len(), n, "new_part length mismatch");
    assert!(k > 0, "k must be positive");
    assert!(new_part.iter().chain(old_part).all(|&p| p < k), "part out of range");

    let span = dlb_trace::span!("exec.measure", vertices = n, k = k, alpha = alpha);

    // --- Compute: owned work per part, bottleneck rank. ---
    let mut work = vec![0.0f64; k];
    for v in 0..n {
        work[new_part[v]] += h.vertex_weight(v);
    }
    let t_comp = net.sec_per_work * work.iter().fold(0.0f64, |a, &w| a.max(w));

    // --- Communication: per-part message/byte ledger over cut nets. ---
    // The net's source part (first pin) sends cost bytes to every other
    // connected part. Scanning nets in order and parts per net in
    // ascending order keeps every sum deterministic.
    let mut msgs_sent = vec![0u64; k];
    let mut msgs_recv = vec![0u64; k];
    let mut bytes_sent = vec![0.0f64; k];
    let mut bytes_recv = vec![0.0f64; k];
    let mut comm_volume = 0.0f64;
    let mut touched = vec![false; k];
    let mut connected: Vec<PartId> = Vec::with_capacity(k);
    for j in 0..h.num_nets() {
        let pins = h.net(j);
        let Some(&first) = pins.first() else { continue };
        let source = new_part[first];
        connected.clear();
        for &v in pins {
            let p = new_part[v];
            if !touched[p] {
                touched[p] = true;
                connected.push(p);
            }
        }
        let cost = h.net_cost(j);
        connected.sort_unstable();
        for &p in &connected {
            touched[p] = false;
            if p == source {
                continue;
            }
            msgs_sent[source] += 1;
            bytes_sent[source] += cost;
            msgs_recv[p] += 1;
            bytes_recv[p] += cost;
            comm_volume += cost;
        }
    }
    let mut t_comm = 0.0f64;
    for p in 0..k {
        let t = net.latency * (msgs_sent[p] + msgs_recv[p]) as f64
            + net.sec_per_byte * (bytes_sent[p] + bytes_recv[p]);
        t_comm = t_comm.max(t);
    }

    // --- Migration: actually move the payloads, one part per rank. ---
    let sizes = h.vertex_sizes();
    let per_rank: Vec<MigrationStats> = run_spmd_with_faults(k, faults, |comm| {
        let items = scatter_initial(comm.rank(), comm.size(), old_part, |v| sizes[v]);
        migrate_items(comm, items, old_part, new_part, |s| *s).1
    });
    let mig_volume: f64 = per_rank.iter().map(|s| s.volume_sent).sum();
    let mut t_mig = 0.0f64;
    for s in &per_rank {
        let t = net.latency * (s.items_sent + s.items_received) as f64
            + net.sec_per_byte * (s.volume_sent + s.volume_received);
        t_mig = t_mig.max(t);
    }
    let mig_bottleneck = MigrationStats::max_over_ranks(&per_rank);

    // Items moved is an outcome of the partition pair, so the counter is
    // identical no matter how many ranks drive the epoch loop.
    let items_moved: u64 = per_rank.iter().map(|s| s.items_sent as u64).sum();
    dlb_trace::count(dlb_trace::Counter::MigrationItemsMoved, items_moved);
    span.attr("t_comp", t_comp);
    span.attr("t_comm", t_comm);
    span.attr("t_mig", t_mig);
    span.attr("comm_volume", comm_volume);
    span.attr("mig_volume", mig_volume);
    span.attr("items_moved", items_moved);
    drop(span);

    EpochExecution {
        t_comp,
        t_comm,
        t_mig,
        comm_volume,
        mig_volume,
        mig_bottleneck,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;

    /// A 2×4 grid's column-net hypergraph with integer sizes.
    fn sample() -> (Hypergraph, Vec<PartId>, Vec<PartId>) {
        // Vertices 0..8 in two rows; net v = {v} ∪ neighbors.
        let idx = |r: usize, c: usize| r * 4 + c;
        let mut nets: Vec<Vec<usize>> = Vec::new();
        for r in 0..2 {
            for c in 0..4 {
                let mut pins = vec![idx(r, c)];
                if c > 0 {
                    pins.push(idx(r, c - 1));
                }
                if c + 1 < 4 {
                    pins.push(idx(r, c + 1));
                }
                if r > 0 {
                    pins.push(idx(r - 1, c));
                }
                if r + 1 < 2 {
                    pins.push(idx(r + 1, c));
                }
                nets.push(pins);
            }
        }
        let mut h = Hypergraph::from_nets(8, &nets, vec![4.0; 8]);
        h.set_vertex_sizes(vec![4.0; 8]);
        h.set_loads(dlb_hypergraph::VertexLoads::from_scalar(vec![2.0; 8]));
        let old = vec![0, 0, 1, 1, 0, 0, 1, 1]; // left/right halves
        let new = vec![0, 0, 0, 1, 0, 0, 1, 1]; // vertex 2 moves home
        (h, old, new)
    }

    #[test]
    fn comm_volume_equals_connectivity_cut() {
        let (h, old, new) = sample();
        for part in [&old, &new] {
            let e = measure_epoch(&h, &old, part, 2, 10.0, &NetworkModel::default());
            let model = metrics::cutsize_connectivity(&h, part, 2);
            assert_eq!(e.comm_volume, model, "measured traffic vs k-1 cut");
        }
    }

    #[test]
    fn mig_volume_equals_migration_charge() {
        let (h, old, new) = sample();
        let e = measure_epoch(&h, &old, &new, 2, 10.0, &NetworkModel::default());
        let model = metrics::migration_volume(h.vertex_sizes(), &old, &new);
        assert_eq!(e.mig_volume, model);
        assert_eq!(e.mig_volume, 4.0, "exactly vertex 2's payload");
        assert_eq!(e.mig_bottleneck.items_sent, 1);
        assert_eq!(e.mig_bottleneck.volume_received, 4.0);
    }

    #[test]
    fn static_assignment_migrates_nothing() {
        let (h, old, _) = sample();
        let e = measure_epoch(&h, &old, &old, 2, 5.0, &NetworkModel::default());
        assert_eq!(e.mig_volume, 0.0);
        assert_eq!(e.t_mig, 0.0);
        assert!(e.t_comp > 0.0);
        assert!(e.t_comm > 0.0, "the grid always has cut");
    }

    #[test]
    fn makespan_composes_the_phases() {
        let (h, old, new) = sample();
        let net = NetworkModel::default();
        let e = measure_epoch(&h, &old, &new, 2, 10.0, &net);
        assert_eq!(e.makespan(), 10.0 * (e.t_comp + e.t_comm) + e.t_mig);
        assert_eq!(e.cost_volume(), 10.0 * e.comm_volume + e.mig_volume);
        // More iterations, longer epoch.
        let e2 = measure_epoch(&h, &old, &new, 2, 100.0, &net);
        assert!(e2.makespan() > e.makespan());
        assert_eq!(e2.t_mig, e.t_mig, "migration is per-epoch, not per-iteration");
    }

    #[test]
    fn compute_phase_tracks_the_heaviest_rank() {
        let (mut h, old, _) = sample();
        // Overload part 1.
        h.set_vertex_weight(3, 100.0);
        let e = measure_epoch(&h, &old, &old, 2, 1.0, &NetworkModel::default());
        // Part 1 owns vertices 2,3,6,7 with weights 2+100+2+2.
        assert_eq!(e.t_comp, 1e-6 * 106.0);
    }

    #[test]
    fn competitive_ratio_accumulates_online() {
        let mut cr = CompetitiveRatio::new();
        assert_eq!(cr.ratio(), None, "no baseline yet");
        cr.record(10.0, 20.0);
        assert_eq!(cr.ratio(), Some(0.5));
        cr.record(30.0, 20.0);
        assert_eq!(cr.epochs, 2);
        assert_eq!(cr.ratio(), Some(1.0));
        assert_eq!(cr.policy_cost, 40.0);
        assert_eq!(cr.baseline_cost, 40.0);
    }

    #[test]
    fn more_parts_never_reduce_comm_volume() {
        let (h, _, _) = sample();
        let two = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let four = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let net = NetworkModel::default();
        let e2 = measure_epoch(&h, &two, &two, 2, 1.0, &net);
        let e4 = measure_epoch(&h, &four, &four, 4, 1.0, &net);
        assert!(e4.comm_volume > e2.comm_volume, "finer cut, more traffic");
    }
}
