//! In-place patching of the repartitioning model from epoch deltas.
//!
//! The non-incremental pipeline rebuilds everything from scratch each
//! epoch: the source re-lowers its mesh to an [`EpochSnapshot`] and the
//! driver lowers that to a fresh [`RepartitionHypergraph`]. When an
//! adaptive mesh touches only a small fraction of its cells per epoch
//! that is almost all redundant work. This module keeps a mutable
//! base-id-indexed mirror of the epoch topology and splices each
//! [`EpochDelta`] into it, then rematerializes the CSR structures in a
//! single pass over the patched state.
//!
//! # The patch invariant
//!
//! A patched epoch is **bit-identical** to a fresh lowering of the same
//! mesh: the rebuilt [`dlb_hypergraph::CsrGraph`],
//! [`dlb_hypergraph::Hypergraph`], `old_part`, and the
//! [`RepartitionHypergraph`] compare equal (`==`) to what the
//! full-snapshot path would have produced. This holds because every CSR
//! builder in this repo is a pure function of its content — edges are
//! canonicalized and sorted, pins are emitted as `[owner,
//! neighbors-ascending]` — so equal adjacency in, bitwise-equal arrays
//! out. The invariant is what lets the drift policy in [`crate::epoch`]
//! switch freely between patch-and-refine and full rebuilds without
//! ever changing *results*, only wall time. It is enforced by the
//! randomized property suite in `tests/delta_patching.rs`.
//!
//! # Source contract
//!
//! [`ModelPatcher::apply`] assumes the delta-capable source follows the
//! repo's column-net lowering convention: unit edge weights and net
//! cost equal to the owner's vertex size. Sources that cannot promise
//! this (weighted-edge datasets) must keep the default full-snapshot
//! fallback of [`dlb_workloads::EpochSource::next_delta`] — the patcher
//! then only ever sees [`ModelPatcher::prime`], which copies costs
//! verbatim and makes no such assumption.

use dlb_hypergraph::{GraphBuilder, HypergraphBuilder, PartId};
use dlb_trace::Counter;
use dlb_workloads::{EpochDelta, EpochSnapshot};

use crate::model::RepartitionHypergraph;

/// The output of one [`ModelPatcher::apply`]: a snapshot
/// indistinguishable from a fresh lowering, the repartitioning model
/// lowered from it, and how much of the epoch the delta touched.
#[derive(Clone, Debug)]
pub struct PatchedEpoch {
    /// The patched epoch, bit-identical to a fresh lowering.
    pub snapshot: EpochSnapshot,
    /// The repartitioning model for this epoch, bit-identical to
    /// [`RepartitionHypergraph::build`] on `snapshot`.
    pub model: RepartitionHypergraph,
    /// Number of cells the delta touched: removed + added + reweighted
    /// + surviving cells whose net was spliced.
    pub touched: usize,
    /// `touched` over the patched epoch's vertex count — the drift
    /// measure the epoch driver compares against its threshold.
    pub touched_fraction: f64,
}

/// Mutable mirror of an epoch's topology, indexed by **base id**, that
/// [`EpochDelta`]s are spliced into.
///
/// Lifecycle: [`prime`](Self::prime) on every full snapshot (the first
/// epoch, or whenever a source falls back), [`apply`](Self::apply) per
/// delta, and [`commit`](Self::commit) after each epoch's assignment is
/// decided so the next epoch's migration nets anchor correctly.
#[derive(Clone, Debug, Default)]
pub struct ModelPatcher {
    /// Vertex weight per base id (valid while `alive`).
    weight: Vec<f64>,
    /// Vertex size per base id.
    size: Vec<f64>,
    /// Communication-net cost per base id. Primed verbatim from the
    /// snapshot; set to the vertex size on add/reweight (the
    /// delta-capable source contract).
    net_cost: Vec<f64>,
    /// Adjacency per base id, as base ids. Unordered; canonicalized
    /// when the CSR structures are rematerialized.
    neighbors: Vec<Vec<usize>>,
    /// Last committed (or creation) part per base id.
    part: Vec<PartId>,
    /// Whether the base id names a live cell of the current epoch.
    alive: Vec<bool>,
    /// Number of live cells, kept so `apply` can cheaply check that the
    /// delta's vertex list accounts for every live cell.
    num_alive: usize,
    primed: bool,
}

impl ModelPatcher {
    /// An empty patcher; must be [`prime`](Self::prime)d before
    /// [`apply`](Self::apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a full snapshot has been loaded.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    fn ensure(&mut self, base: usize) {
        if base >= self.alive.len() {
            let len = base + 1;
            self.weight.resize(len, 0.0);
            self.size.resize(len, 0.0);
            self.net_cost.resize(len, 0.0);
            self.neighbors.resize(len, Vec::new());
            self.part.resize(len, 0);
            self.alive.resize(len, false);
        }
    }

    /// Loads a full snapshot, replacing all previous state. Requires
    /// the snapshot's hypergraph to be in column-net form (one net per
    /// vertex, owner first) — the form every source in this repo emits.
    pub fn prime(&mut self, snapshot: &EpochSnapshot) {
        self.weight.clear();
        self.size.clear();
        self.net_cost.clear();
        self.neighbors.clear();
        self.part.clear();
        self.alive.clear();

        let h = &snapshot.hypergraph;
        let n = snapshot.to_base.len();
        assert_eq!(h.num_vertices(), n, "snapshot hypergraph/to_base length mismatch");
        assert_eq!(
            h.num_nets(),
            n,
            "delta patching requires a column-net hypergraph (one net per vertex)"
        );
        for v in 0..n {
            let pins = h.net(v);
            assert_eq!(pins[0], v, "column-net {v} does not lead with its owner");
            let base = snapshot.to_base[v];
            self.ensure(base);
            assert!(!self.alive[base], "duplicate base id {base} in snapshot");
            self.alive[base] = true;
            self.weight[base] = h.vertex_weight(v);
            self.size[base] = h.vertex_size(v);
            self.net_cost[base] = h.net_cost(v);
            self.neighbors[base] =
                pins[1..].iter().map(|&u| snapshot.to_base[u]).collect();
            self.part[base] = snapshot.old_part[v];
        }
        self.num_alive = n;
        self.primed = true;
    }

    /// Splices a delta into the mirrored topology and rematerializes
    /// the epoch: graph, column-net hypergraph, `old_part`, and the
    /// augmented repartitioning model, all bit-identical to a fresh
    /// lowering of the same mesh (see the module docs for why).
    ///
    /// # Panics
    ///
    /// Panics if the patcher is unprimed or the delta is inconsistent
    /// with the mirrored state (removing a dead cell, adding a live
    /// one, listing a vertex the splice left dead, or not accounting
    /// for every live cell).
    pub fn apply(&mut self, delta: &EpochDelta, k: usize, alpha: f64) -> PatchedEpoch {
        assert!(self.primed, "ModelPatcher::apply called before prime");
        let span = dlb_trace::span!(
            "delta.patch",
            removed = delta.removed.len(),
            added = delta.added.len(),
            nets = delta.nets.len(),
        );

        for &b in &delta.removed {
            assert!(b < self.alive.len() && self.alive[b], "delta removes dead base id {b}");
            self.alive[b] = false;
            self.num_alive -= 1;
        }
        for a in &delta.added {
            self.ensure(a.base);
            assert!(!self.alive[a.base], "delta adds live base id {}", a.base);
            assert!(a.old_part < k, "added base id {} has old part >= k", a.base);
            self.alive[a.base] = true;
            self.num_alive += 1;
            self.weight[a.base] = a.weight;
            self.size[a.base] = a.size;
            self.net_cost[a.base] = a.size;
            self.part[a.base] = a.old_part;
        }
        for r in &delta.reweighted {
            assert!(
                r.base < self.alive.len() && self.alive[r.base],
                "delta reweights dead base id {}",
                r.base
            );
            self.weight[r.base] = r.weight;
            self.size[r.base] = r.size;
            self.net_cost[r.base] = r.size;
        }
        let mut spliced_survivors = 0usize;
        for net in &delta.nets {
            assert!(
                net.base < self.alive.len() && self.alive[net.base],
                "delta splices net of dead base id {}",
                net.base
            );
            if !delta.added.iter().any(|a| a.base == net.base) {
                spliced_survivors += 1;
            }
            self.neighbors[net.base].clear();
            self.neighbors[net.base].extend_from_slice(&net.neighbors);
        }
        let touched =
            delta.removed.len() + delta.added.len() + delta.reweighted.len() + spliced_survivors;
        dlb_trace::count(Counter::CellsPatched, touched as u64);

        // Rematerialize the CSR structures along the delta's canonical
        // vertex order. Base → epoch-vertex index first.
        let n = delta.to_base.len();
        assert_eq!(n, self.num_alive, "delta vertex list does not cover every live cell");
        let mut index = vec![usize::MAX; self.alive.len()];
        for (v, &b) in delta.to_base.iter().enumerate() {
            assert!(b < self.alive.len() && self.alive[b], "delta lists dead base id {b}");
            assert_eq!(index[b], usize::MAX, "duplicate base id {b} in delta vertex list");
            index[b] = v;
        }

        let mut gb = GraphBuilder::new(n);
        let mut sorted_neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        for v in 0..n {
            let b = delta.to_base[v];
            gb.set_vertex_weight(v, self.weight[b]);
            gb.set_vertex_size(v, self.size[b]);
            let mut ns: Vec<usize> = self.neighbors[b]
                .iter()
                .map(|&nb| {
                    assert!(
                        nb < index.len() && index[nb] != usize::MAX,
                        "base id {b} keeps a stale neighbor {nb}"
                    );
                    index[nb]
                })
                .collect();
            ns.sort_unstable();
            debug_assert!(
                ns.windows(2).all(|w| w[0] != w[1]),
                "duplicate neighbor in net of base id {b}"
            );
            for &u in &ns {
                // Each undirected face once, exactly as the fresh
                // lowering scans it; unit weight per the contract.
                if u > v {
                    gb.add_edge(v, u, 1.0);
                }
            }
            sorted_neighbors.push(ns);
        }
        #[cfg(debug_assertions)]
        for v in 0..n {
            for &u in &sorted_neighbors[v] {
                debug_assert!(
                    sorted_neighbors[u].binary_search(&v).is_ok(),
                    "asymmetric adjacency between epoch vertices {v} and {u}"
                );
            }
        }
        let graph = gb.build();

        let mut hb = HypergraphBuilder::new(n);
        for v in 0..n {
            let b = delta.to_base[v];
            hb.set_vertex_weight(v, self.weight[b]);
            hb.set_vertex_size(v, self.size[b]);
            hb.add_net(
                self.net_cost[b],
                std::iter::once(v).chain(sorted_neighbors[v].iter().copied()),
            );
        }
        let hypergraph = hb.build();

        let old_part: Vec<PartId> = delta.to_base.iter().map(|&b| self.part[b]).collect();
        let model = RepartitionHypergraph::build(&hypergraph, &old_part, k, alpha);
        let snapshot = EpochSnapshot {
            graph,
            hypergraph,
            to_base: delta.to_base.clone(),
            old_part,
        };
        drop(span);
        PatchedEpoch {
            snapshot,
            model,
            touched,
            touched_fraction: touched as f64 / n.max(1) as f64,
        }
    }

    /// Records the epoch's decided assignment so the next delta's
    /// migration nets anchor to it — the patcher-side mirror of
    /// [`dlb_workloads::EpochSource::commit_assignment`].
    pub fn commit(&mut self, to_base: &[usize], part: &[PartId]) {
        assert_eq!(to_base.len(), part.len(), "commit length mismatch");
        for (&b, &p) in to_base.iter().zip(part) {
            assert!(b < self.alive.len() && self.alive[b], "commit names dead base id {b}");
            self.part[b] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::convert::column_net_model;
    use dlb_hypergraph::CsrGraph;
    use dlb_workloads::{AmrSource, DeltaNet, DeltaReweight, DeltaVertex, EpochSource, EpochUpdate};

    fn snapshot_from_graph(g: &CsrGraph, old_part: Vec<PartId>) -> EpochSnapshot {
        let h = column_net_model(g, |v| g.vertex_size(v));
        EpochSnapshot {
            graph: g.clone(),
            hypergraph: h,
            to_base: (0..g.num_vertices()).collect(),
            old_part,
        }
    }

    /// A 4-path 0-1-2-3 with unit weights/sizes.
    fn path4() -> CsrGraph {
        let mut gb = GraphBuilder::new(4);
        gb.add_edge(0, 1, 1.0);
        gb.add_edge(1, 2, 1.0);
        gb.add_edge(2, 3, 1.0);
        gb.build()
    }

    #[test]
    fn identity_delta_reproduces_the_primed_snapshot() {
        let g = path4();
        let snap = snapshot_from_graph(&g, vec![0, 0, 1, 1]);
        let mut p = ModelPatcher::new();
        p.prime(&snap);
        let delta = EpochDelta {
            to_base: snap.to_base.clone(),
            removed: vec![],
            added: vec![],
            reweighted: vec![],
            nets: vec![],
        };
        let out = p.apply(&delta, 2, 8.0);
        assert_eq!(out.snapshot.graph, snap.graph);
        assert_eq!(out.snapshot.hypergraph, snap.hypergraph);
        assert_eq!(out.snapshot.old_part, snap.old_part);
        assert_eq!(out.touched, 0);
        assert_eq!(out.touched_fraction, 0.0);
        let fresh = RepartitionHypergraph::build(&snap.hypergraph, &snap.old_part, 2, 8.0);
        assert_eq!(out.model.augmented, fresh.augmented);
    }

    #[test]
    fn add_remove_reweight_matches_fresh_lowering() {
        let g = path4();
        let snap = snapshot_from_graph(&g, vec![0, 0, 1, 1]);
        let mut p = ModelPatcher::new();
        p.prime(&snap);

        // Remove base 3, add base 4 attached to 0 and 2, reweight 1.
        let delta = EpochDelta {
            to_base: vec![0, 1, 2, 4],
            removed: vec![3],
            added: vec![DeltaVertex { base: 4, weight: 2.0, size: 3.0, old_part: 1 }],
            reweighted: vec![DeltaReweight { base: 1, weight: 5.0, size: 7.0 }],
            nets: vec![
                DeltaNet { base: 4, neighbors: vec![0, 2] },
                DeltaNet { base: 0, neighbors: vec![1, 4] },
                DeltaNet { base: 2, neighbors: vec![1, 4] },
            ],
        };
        let out = p.apply(&delta, 2, 8.0);
        // touched = 1 removed + 1 added + 1 reweighted + 2 spliced survivors.
        assert_eq!(out.touched, 5);

        let mut gb = GraphBuilder::new(4);
        gb.set_vertex_weight(1, 5.0);
        gb.set_vertex_size(1, 7.0);
        gb.set_vertex_weight(3, 2.0);
        gb.set_vertex_size(3, 3.0);
        gb.add_edge(0, 1, 1.0);
        gb.add_edge(1, 2, 1.0);
        gb.add_edge(0, 3, 1.0);
        gb.add_edge(2, 3, 1.0);
        let fresh_g = gb.build();
        assert_eq!(out.snapshot.graph, fresh_g);
        let fresh_h = column_net_model(&fresh_g, |v| fresh_g.vertex_size(v));
        assert_eq!(out.snapshot.hypergraph, fresh_h);
        assert_eq!(out.snapshot.old_part, vec![0, 0, 1, 1]);
        let fresh_m = RepartitionHypergraph::build(&fresh_h, &out.snapshot.old_part, 2, 8.0);
        assert_eq!(out.model.augmented, fresh_m.augmented);
    }

    #[test]
    fn commit_moves_the_migration_anchor() {
        let g = path4();
        let snap = snapshot_from_graph(&g, vec![0, 0, 1, 1]);
        let mut p = ModelPatcher::new();
        p.prime(&snap);
        p.commit(&snap.to_base, &[1, 1, 0, 0]);
        let delta = EpochDelta {
            to_base: snap.to_base.clone(),
            removed: vec![],
            added: vec![],
            reweighted: vec![],
            nets: vec![],
        };
        let out = p.apply(&delta, 2, 8.0);
        assert_eq!(out.snapshot.old_part, vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "before prime")]
    fn apply_before_prime_panics() {
        let delta = EpochDelta {
            to_base: vec![],
            removed: vec![],
            added: vec![],
            reweighted: vec![],
            nets: vec![],
        };
        ModelPatcher::new().apply(&delta, 2, 8.0);
    }

    #[test]
    fn amr_deltas_patch_bitwise_for_a_few_epochs() {
        // Twin AMR sources: one drives the patcher via deltas, the
        // other re-lowers from scratch. Every artifact must agree
        // bitwise, including with a non-trivial committed assignment.
        let k = 4;
        let cfg = dlb_amr::AmrConfig::small();
        let stream_a = dlb_amr::AmrStream::new(cfg, k, 97);
        let stream_b = dlb_amr::AmrStream::new(cfg, k, 97);
        let init_low = stream_a.initial_lowering();
        let init: Vec<PartId> =
            (0..init_low.graph.num_vertices()).map(|v| v % k).collect();
        let mut a = AmrSource::new(stream_a, &init);
        let mut b = AmrSource::new(stream_b, &init);

        let mut patcher = ModelPatcher::new();
        for epoch in 0..5 {
            let fresh = b.next_epoch();
            let patched = match a.next_delta() {
                EpochUpdate::Full(snap) => {
                    assert_eq!(epoch, 0, "AMR source should fall back only on epoch 0");
                    patcher.prime(&snap);
                    snap
                }
                EpochUpdate::Delta(d) => {
                    assert!(epoch > 0);
                    patcher.apply(&d, k, 10.0).snapshot
                }
            };
            assert_eq!(patched.graph, fresh.graph, "epoch {epoch} graph mismatch");
            assert_eq!(patched.hypergraph, fresh.hypergraph, "epoch {epoch} hypergraph mismatch");
            assert_eq!(patched.to_base, fresh.to_base, "epoch {epoch} to_base mismatch");
            assert_eq!(patched.old_part, fresh.old_part, "epoch {epoch} old_part mismatch");

            let part: Vec<PartId> =
                patched.old_part.iter().enumerate().map(|(v, &p)| (p + v) % k).collect();
            a.commit_assignment(&patched, &part);
            b.commit_assignment(&fresh, &part);
            patcher.commit(&patched.to_base, &part);
        }
    }
}
