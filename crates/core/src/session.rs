//! The unified entry point for multi-epoch simulations.
//!
//! Historically the epoch loop was reachable through four near-identical
//! free functions (`simulate_epochs` and its measured/parallel variants)
//! whose argument lists grew with every feature; they are gone, and
//! [`Session`] is the only way in:
//!
//! ```
//! use dlb_core::{Algorithm, RepartConfig, Session};
//! use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};
//! use dlb_graphpart::{partition_kway, GraphConfig};
//!
//! let d = Dataset::generate(DatasetKind::Auto, 0.0005, 7);
//! let init = partition_kway(&d.graph, 2, &GraphConfig::seeded(7)).part;
//! let mut stream = EpochStream::new(d.graph, Perturbation::structure(), 2, init, 7);
//! let summary = Session::new(RepartConfig::seeded(7))
//!     .algorithm(Algorithm::ZoltanRepart)
//!     .alpha(10.0)
//!     .epochs(2)
//!     .workload(&mut stream)
//!     .run()
//!     .unwrap();
//! assert_eq!(summary.reports.len(), 2);
//! ```
//!
//! A session is **serial** by default. `.ranks(n)` (or a config with
//! `dist.distributed` set) runs the repartitioner collectively on a
//! simulated SPMD world; because each rank must then drive its own
//! identically seeded source, multi-rank sessions take a
//! [`workload_factory`](Session::workload_factory) instead of a borrowed
//! source. `.measured(true)` (or [`network`](Session::network)) turns on
//! the measured execution model, [`incremental`](Session::incremental)
//! switches to delta-driven model patching with warm-started V-cycles
//! (serial-only; see [`crate::delta`]), and
//! [`trace_to`](Session::trace_to) / [`run_traced`](Session::run_traced)
//! wrap the run in a [`dlb_trace`] session.

use std::fmt;
use std::path::PathBuf;

use dlb_mpisim::{run_spmd, Comm, FaultPlan};
use dlb_partitioner::Determinism;
use dlb_workloads::EpochSource;

use crate::driver::{Algorithm, RepartConfig};
use crate::elastic::WorldPlan;
use crate::epoch::{run_epochs, IncrementalPolicy, SimulationSummary};
use crate::exec::NetworkModel;

/// Default drift threshold for [`Session::incremental`] runs: epochs
/// whose delta touches less than this fraction of the mesh warm-start;
/// heavier drift triggers a full V-cycle on the patched model. The
/// touched fraction counts the *dirty closure* — changed cells plus
/// every survivor whose neighborhood was rewired — which on the AMR
/// workload lands mostly in 0.3–0.7, so the default sits inside that
/// band: moderate epochs warm-start, heavy ones rebuild.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.6;

/// Why a [`Session`] refused to run (or failed to finish).
#[derive(Debug)]
pub enum SessionError {
    /// Neither [`Session::workload`] nor [`Session::workload_factory`]
    /// was called.
    NoWorkload,
    /// A multi-rank session was configured with a borrowed workload;
    /// every rank needs its own source, so use
    /// [`Session::workload_factory`].
    RanksNeedFactory {
        /// The configured rank count.
        ranks: usize,
    },
    /// `ranks == 0` — an SPMD world needs at least one rank.
    ZeroRanks,
    /// [`Session::incremental`] was combined with a multi-rank or
    /// distributed configuration; the delta patcher keeps serial state,
    /// so incremental sessions must run on one rank.
    IncrementalNeedsSerial,
    /// [`Session::incremental`] was combined with
    /// [`Session::world_plan`]; a resize changes `k` under the patched
    /// model's embedded partition vertices, so elastic sessions must
    /// re-lower per epoch.
    IncrementalElastic,
    /// Tracing was requested on [`Session::run_on`]; a per-rank trace
    /// session would deadlock the collective, so open the trace around
    /// the whole SPMD world instead (e.g. via [`Session::ranks`]).
    TraceInsideSpmd,
    /// The trace file could not be written.
    TraceIo {
        /// Destination path.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoWorkload => {
                write!(f, "session has no workload (call .workload() or .workload_factory())")
            }
            SessionError::RanksNeedFactory { ranks } => write!(
                f,
                "a {ranks}-rank session needs a per-rank source: use .workload_factory()"
            ),
            SessionError::ZeroRanks => write!(f, "ranks must be at least 1"),
            SessionError::IncrementalNeedsSerial => write!(
                f,
                "incremental repartitioning is serial-only: drop .ranks()/.run_on() or .incremental()"
            ),
            SessionError::IncrementalElastic => write!(
                f,
                "world plans are incompatible with incremental repartitioning: drop .world_plan() or .incremental()"
            ),
            SessionError::TraceInsideSpmd => write!(
                f,
                "cannot open a trace session per rank; trace the world opener instead"
            ),
            SessionError::TraceIo { path, error } => {
                write!(f, "cannot write trace to {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Per-rank workload constructor for multi-rank sessions: `rank ->
/// source`. Every rank must build an identically seeded source so the
/// collective repartitioner sees one consistent problem.
type SourceFactory<'a> = Box<dyn Fn(usize) -> Box<dyn EpochSource + 'a> + Sync + 'a>;

/// Builder for one multi-epoch simulation run. See the [module
/// docs](self) for the full picture.
pub struct Session<'a> {
    cfg: RepartConfig,
    algorithm: Algorithm,
    alpha: f64,
    epochs: usize,
    ranks: usize,
    network: Option<NetworkModel>,
    faults: Option<FaultPlan>,
    world: Option<WorldPlan>,
    incremental: bool,
    drift_threshold: f64,
    source: Option<&'a mut dyn EpochSource>,
    factory: Option<SourceFactory<'a>>,
    trace_path: Option<PathBuf>,
}

impl<'a> Session<'a> {
    /// A serial, unmeasured, untraced session over `cfg`, defaulting to
    /// [`Algorithm::ZoltanRepart`], `alpha = 100`, one epoch, one rank.
    pub fn new(cfg: RepartConfig) -> Self {
        Session {
            cfg,
            algorithm: Algorithm::ZoltanRepart,
            alpha: 100.0,
            epochs: 1,
            ranks: 1,
            network: None,
            faults: None,
            world: None,
            incremental: false,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            source: None,
            factory: None,
            trace_path: None,
        }
    }

    /// Selects the repartitioning algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets α, the iterations per epoch (the comm/migration trade-off).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the number of epochs to simulate.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Runs the repartitioner collectively on `ranks` simulated SPMD
    /// ranks (1 = serial). Multi-rank sessions require
    /// [`workload_factory`](Session::workload_factory).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Selects the shared-memory determinism contract for the epoch
    /// partitioner: [`Determinism::Strict`] (the default) keeps results
    /// bit-identical at every thread count, [`Determinism::Fast`] drops
    /// the matching-order barrier for throughput. Multi-rank sessions
    /// always run Strict regardless of this setting (the SPMD
    /// collectives require rank-identical state).
    pub fn determinism(mut self, determinism: Determinism) -> Self {
        self.cfg.hypergraph.determinism = determinism;
        self
    }

    /// Turns the measured execution model on (with
    /// [`NetworkModel::default`]) or off.
    pub fn measured(mut self, on: bool) -> Self {
        self.network = if on {
            Some(self.network.unwrap_or_default())
        } else {
            None
        };
        self
    }

    /// Measures every epoch under a specific machine model (implies
    /// `measured(true)`).
    pub fn network(mut self, net: NetworkModel) -> Self {
        self.network = Some(net);
        self
    }

    /// Switches to incremental repartitioning: the epoch loop pulls
    /// structural deltas ([`dlb_workloads::EpochSource::next_delta`]),
    /// patches the repartitioning model in place ([`crate::delta`]),
    /// and warm-starts the partitioner when the epoch's drift is below
    /// the [`drift_threshold`](Session::drift_threshold). Sources
    /// without native delta support transparently fall back to full
    /// snapshots. Serial-only.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Sets the drift threshold for [`incremental`](Session::incremental)
    /// sessions (default [`DEFAULT_DRIFT_THRESHOLD`]). An epoch
    /// warm-starts when its touched fraction is strictly below this, so
    /// `0.0` reproduces the full-rebuild pipeline's outputs exactly.
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Installs a deterministic [`FaultPlan`]: scheduled rank failures
    /// are recovered at epoch boundaries by repartitioning onto the
    /// survivors, and message drop/delay probabilities are injected
    /// into the measured migration exchanges (DESIGN.md §12). Plan rank
    /// ids refer to the workload's `k` logical parts, so results are
    /// identical at any [`ranks`](Session::ranks) setting.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a [`WorldPlan`]: scheduled rank arrivals and departures
    /// are applied as elastic resizes at epoch boundaries — growing
    /// onto the joining spares or shrinking onto the survivors via a
    /// fixed-vertex repartition, with the cost model arbitrating
    /// repartition-vs-scratch per resize (DESIGN.md §15). Like fault
    /// plans, the schedule speaks logical part ids, so results are
    /// identical at any [`ranks`](Session::ranks) setting. Incompatible
    /// with [`incremental`](Session::incremental).
    pub fn world_plan(mut self, plan: WorldPlan) -> Self {
        self.world = Some(plan);
        self
    }

    /// Drives the session from a borrowed source (serial sessions only;
    /// the source is mutated as assignments are committed).
    pub fn workload<S: EpochSource>(mut self, source: &'a mut S) -> Self {
        self.source = Some(source);
        self
    }

    /// Like [`workload`](Session::workload), but for callers that only
    /// hold the source behind a trait object.
    pub fn workload_dyn(mut self, source: &'a mut dyn EpochSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Supplies a per-rank source constructor (`rank -> source`) for
    /// multi-rank sessions. Every rank must construct an identically
    /// seeded source. Also usable for serial sessions (rank 0 only).
    pub fn workload_factory<F, S>(mut self, f: F) -> Self
    where
        F: Fn(usize) -> S + Sync + 'a,
        S: EpochSource + 'a,
    {
        self.factory = Some(Box::new(move |rank| Box::new(f(rank))));
        self
    }

    /// Wraps the run in a [`dlb_trace`] session and writes the report in
    /// chrome://tracing format to `path` when the run finishes.
    pub fn trace_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Runs the session.
    pub fn run(self) -> Result<SimulationSummary, SessionError> {
        if self.trace_path.is_some() {
            return Ok(self.run_traced()?.0);
        }
        self.validate()?.execute()
    }

    /// Runs the session inside a fresh [`dlb_trace`] session and returns
    /// the report alongside the summary (writing it to the
    /// [`trace_to`](Session::trace_to) path, if one was set).
    pub fn run_traced(self) -> Result<(SimulationSummary, dlb_trace::TraceReport), SessionError> {
        let mut session = self.validate()?;
        let trace_path = session.trace_path.take();
        let trace = dlb_trace::session();
        let outcome = session.execute();
        let report = trace.finish();
        let summary = outcome?;
        if let Some(path) = trace_path {
            std::fs::write(&path, report.to_chrome_json())
                .map_err(|error| SessionError::TraceIo { path, error })?;
        }
        Ok((summary, report))
    }

    /// Runs the session collectively on an existing communicator (for
    /// callers already inside an SPMD world). Requires a borrowed
    /// [`workload`](Session::workload); `ranks` is taken from `comm`.
    pub fn run_on(mut self, comm: &mut Comm) -> Result<SimulationSummary, SessionError> {
        if self.trace_path.is_some() {
            return Err(SessionError::TraceInsideSpmd);
        }
        if self.incremental {
            return Err(SessionError::IncrementalNeedsSerial);
        }
        let source = self.source.take().ok_or(SessionError::NoWorkload)?;
        Ok(run_epochs(
            Some(comm),
            source,
            self.epochs,
            self.algorithm,
            self.alpha,
            &self.cfg,
            self.network.as_ref(),
            self.faults.as_ref(),
            self.world.as_ref(),
            None,
        ))
    }

    fn validate(self) -> Result<Self, SessionError> {
        if self.ranks == 0 {
            return Err(SessionError::ZeroRanks);
        }
        if self.source.is_none() && self.factory.is_none() {
            return Err(SessionError::NoWorkload);
        }
        if self.ranks > 1 && self.factory.is_none() {
            return Err(SessionError::RanksNeedFactory { ranks: self.ranks });
        }
        if self.incremental && (self.ranks > 1 || self.cfg.hypergraph.dist.distributed) {
            return Err(SessionError::IncrementalNeedsSerial);
        }
        if self.incremental && self.world.is_some() {
            return Err(SessionError::IncrementalElastic);
        }
        Ok(self)
    }

    fn policy(&self) -> Option<IncrementalPolicy> {
        self.incremental.then_some(IncrementalPolicy { drift_threshold: self.drift_threshold })
    }

    fn execute(mut self) -> Result<SimulationSummary, SessionError> {
        // The SPMD drivers (including the distributed one, which is
        // collective even at one rank) move sources across threads, so
        // they require a factory; a borrowed source runs the serial
        // driver.
        if let Some(factory) = self.factory.take() {
            let spmd = self.ranks > 1 || self.cfg.hypergraph.dist.distributed;
            if spmd {
                let summaries = run_spmd(self.ranks, |comm| {
                    let mut source = factory(comm.rank());
                    run_epochs(
                        Some(comm),
                        &mut *source,
                        self.epochs,
                        self.algorithm,
                        self.alpha,
                        &self.cfg,
                        self.network.as_ref(),
                        self.faults.as_ref(),
                        self.world.as_ref(),
                        None,
                    )
                });
                return Ok(summaries.into_iter().next().expect("at least one rank"));
            }
            let mut source = factory(0);
            return Ok(run_epochs(
                None,
                &mut *source,
                self.epochs,
                self.algorithm,
                self.alpha,
                &self.cfg,
                self.network.as_ref(),
                self.faults.as_ref(),
                self.world.as_ref(),
                self.policy(),
            ));
        }
        let policy = self.policy();
        let source = self.source.take().ok_or(SessionError::NoWorkload)?;
        Ok(run_epochs(
            None,
            source,
            self.epochs,
            self.algorithm,
            self.alpha,
            &self.cfg,
            self.network.as_ref(),
            self.faults.as_ref(),
            self.world.as_ref(),
            policy,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graphpart::{partition_kway, GraphConfig};
    use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

    fn make_stream(k: usize, seed: u64) -> EpochStream {
        let d = Dataset::generate(DatasetKind::Auto, 0.0005, seed);
        let init = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
        EpochStream::new(d.graph, Perturbation::structure(), k, init, seed)
    }

    #[test]
    fn serial_session_runs() {
        let mut stream = make_stream(2, 3);
        let s = Session::new(RepartConfig::seeded(3))
            .alpha(10.0)
            .epochs(2)
            .workload(&mut stream)
            .run()
            .unwrap();
        assert_eq!(s.reports.len(), 2);
        assert!(s.reports.iter().all(|r| r.execution.is_none()));
    }

    #[test]
    fn measured_session_populates_executions() {
        let mut stream = make_stream(2, 4);
        let s = Session::new(RepartConfig::seeded(4))
            .alpha(10.0)
            .epochs(2)
            .measured(true)
            .workload(&mut stream)
            .run()
            .unwrap();
        assert!(s.reports.iter().all(|r| r.execution.is_some()));
        assert!(s.mean_makespan().unwrap() > 0.0);
    }

    #[test]
    fn multirank_session_matches_serial() {
        let serial = Session::new(RepartConfig::seeded(5))
            .alpha(10.0)
            .epochs(2)
            .workload_factory(|_| make_stream(2, 5))
            .run()
            .unwrap();
        let parallel = Session::new(RepartConfig::seeded(5))
            .alpha(10.0)
            .epochs(2)
            .ranks(2)
            .workload_factory(|_| make_stream(2, 5))
            .run()
            .unwrap();
        // Both drive the same source; the collective partitioner may
        // differ from the serial one, but costs must be well-formed and
        // the epoch counts identical.
        assert_eq!(serial.reports.len(), parallel.reports.len());
        assert!(parallel.mean_normalized_total() > 0.0);
    }

    #[test]
    fn session_validation_errors() {
        let err = Session::new(RepartConfig::default()).run().unwrap_err();
        assert!(matches!(err, SessionError::NoWorkload), "{err}");

        let mut stream = make_stream(2, 6);
        let err = Session::new(RepartConfig::default())
            .ranks(2)
            .workload(&mut stream)
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::RanksNeedFactory { ranks: 2 }), "{err}");

        let err = Session::new(RepartConfig::default())
            .ranks(0)
            .workload_factory(|_| make_stream(2, 6))
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::ZeroRanks), "{err}");
    }

    #[test]
    fn incremental_needs_serial() {
        let err = Session::new(RepartConfig::default())
            .incremental(true)
            .ranks(2)
            .workload_factory(|_| make_stream(2, 6))
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::IncrementalNeedsSerial), "{err}");

        let mut cfg = RepartConfig::default();
        cfg.hypergraph.dist.distributed = true;
        let err = Session::new(cfg)
            .incremental(true)
            .workload_factory(|_| make_stream(2, 6))
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::IncrementalNeedsSerial), "{err}");
    }

    #[test]
    fn incremental_session_runs_on_fallback_sources() {
        // EpochStream has no native deltas; the default full-snapshot
        // fallback must keep incremental sessions working unchanged.
        let mut stream = make_stream(2, 12);
        let inc = Session::new(RepartConfig::seeded(12))
            .alpha(10.0)
            .epochs(2)
            .incremental(true)
            .workload(&mut stream)
            .run()
            .unwrap();
        let mut stream = make_stream(2, 12);
        let full = Session::new(RepartConfig::seeded(12))
            .alpha(10.0)
            .epochs(2)
            .workload(&mut stream)
            .run()
            .unwrap();
        for (a, b) in inc.reports.iter().zip(&full.reports) {
            assert_eq!(a.cost.comm, b.cost.comm);
            assert_eq!(a.cost.migration, b.cost.migration);
            assert_eq!(a.moved, b.moved);
        }
    }

    #[test]
    fn incremental_amr_session_counts_delta_epochs() {
        let k = 4;
        let amr = dlb_amr::AmrConfig::small();
        let stream = dlb_amr::AmrStream::new(amr, k, 41);
        let low = stream.initial_lowering();
        let init: Vec<_> = (0..low.graph.num_vertices()).map(|v| v % k).collect();
        let mut source = dlb_workloads::AmrSource::new(stream, &init);
        let trace = dlb_trace::session();
        let s = Session::new(RepartConfig::seeded(41))
            .alpha(10.0)
            .epochs(4)
            .incremental(true)
            .drift_threshold(1.0)
            .workload(&mut source)
            .run()
            .unwrap();
        let report = trace.finish();
        assert_eq!(s.reports.len(), 4);
        if dlb_trace::COMPILED_IN {
            // Epoch 1 primes from the full snapshot; with the threshold
            // at 1.0 every later epoch warm-starts from its delta.
            assert_eq!(report.counter(dlb_trace::Counter::DeltaEpochs), 3);
            assert_eq!(report.counter(dlb_trace::Counter::FullRebuilds), 1);
            assert!(report.counter(dlb_trace::Counter::CellsPatched) > 0);
            assert!(report.find("delta.patch").is_some());
            assert!(report.find("partition.warm").is_some());
        }
    }

    #[test]
    fn traced_session_returns_report() {
        let (s, report) = Session::new(RepartConfig::seeded(8))
            .alpha(10.0)
            .epochs(1)
            .workload_factory(|_| make_stream(2, 8))
            .run_traced()
            .unwrap();
        assert_eq!(s.reports.len(), 1);
        if dlb_trace::COMPILED_IN {
            assert_eq!(report.counter(dlb_trace::Counter::Epochs), 1);
            assert!(report.find("repartition").is_some());
        } else {
            assert!(report.spans.is_empty());
        }
    }

    #[test]
    fn single_rank_distributed_session_runs_via_factory() {
        let mut cfg = RepartConfig::seeded(9);
        cfg.hypergraph.dist.distributed = true;
        let s = Session::new(cfg)
            .alpha(10.0)
            .epochs(1)
            .workload_factory(|_| make_stream(2, 9))
            .run()
            .unwrap();
        assert_eq!(s.reports.len(), 1);
    }
}
