//! Multi-epoch simulation: the experiment loop behind Figures 2–8.
//!
//! Each trial starts from a static partition, streams epochs from any
//! [`EpochSource`] — the paper's synthetic perturbations
//! ([`dlb_workloads::EpochStream`]) or the real quadtree AMR workload
//! ([`dlb_workloads::AmrSource`]) — invokes one of the four algorithms
//! per epoch, commits the new assignment back to the source (so the
//! next epoch's dynamics and old-parts see it), and accumulates
//! per-epoch cost and timing. Measured sessions additionally run the
//! [`crate::exec`] execution model each epoch, so the summary carries
//! observed makespans next to the model costs; incremental sessions
//! pull [`EpochUpdate`] deltas and patch the repartitioning model in
//! place ([`crate::delta`]) under the [`IncrementalPolicy`] drift rule.

use std::time::{Duration, Instant};

use dlb_mpisim::{Comm, FaultPlan, WorldMembership};
use dlb_workloads::{EpochSource, EpochUpdate};

use crate::cost::CostBreakdown;
use crate::delta::ModelPatcher;
use crate::driver::{
    repartition, repartition_parallel, repartition_patched, Algorithm, RepartConfig,
    RepartProblem,
};
use crate::elastic::{perform_resize, ResizeChoice, ResizeRecord, WorldPlan};
use crate::exec::{measure_epoch_with_faults, CompetitiveRatio, EpochExecution, NetworkModel};
use crate::recover::recover_from_failure;

/// The per-epoch drift policy of an incremental run: epochs whose delta
/// touched less than `drift_threshold` of the mesh are patched and
/// warm-start refined; epochs at or above it get a full V-cycle (on the
/// patched model — the patch invariant makes that bit-identical to a
/// scratch rebuild). `drift_threshold = 0.0` therefore reproduces the
/// non-incremental pipeline's outputs exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct IncrementalPolicy {
    /// Warm-start when `touched_fraction < drift_threshold` (strict).
    pub drift_threshold: f64,
}

/// One rank-failure recovery performed at an epoch boundary
/// (DESIGN.md §12).
#[derive(Clone, Debug)]
pub struct RecoveryRecord {
    /// The failed rank's id in the *launch-time* `0..k` world (fault
    /// plans always speak original ids, however many ranks have already
    /// died).
    pub failed_rank: usize,
    /// Epoch at whose boundary the failure was detected (1-based).
    pub epoch: usize,
    /// Surviving parts before this recovery.
    pub k_before: usize,
    /// Surviving parts after (always `k_before - 1`).
    pub k_after: usize,
    /// Vertices orphaned by the failure.
    pub orphans: usize,
    /// Model migration volume of the recovery move, including the
    /// orphan restore.
    pub migration: f64,
    /// Measured migration-phase makespan of the recovery exchange in
    /// seconds (`0.0` when the trial runs without a network model).
    pub t_mig: f64,
}

/// Per-epoch measurements.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (1-based; epoch 0 is the static partition).
    pub epoch: usize,
    /// Cost components under the chosen assignment.
    pub cost: CostBreakdown,
    /// Load imbalance after repartitioning.
    pub imbalance: f64,
    /// Vertices that changed parts.
    pub moved: usize,
    /// Epoch problem size.
    pub num_vertices: usize,
    /// Wall-clock repartitioning time.
    pub elapsed: Duration,
    /// Measured execution of the epoch (only under the `_measured`
    /// simulation variants).
    pub execution: Option<EpochExecution>,
    /// Rank-failure recoveries performed at this epoch's boundary
    /// (empty on fault-free epochs). When non-empty, the epoch's
    /// repartition *was* the recovery chain: `cost.migration` and the
    /// execution's `t_mig`/`mig_volume` fold in every step.
    pub recoveries: Vec<RecoveryRecord>,
    /// Planned world resizes performed at this epoch's boundary (at
    /// most one — all net joins and leaves of the epoch apply in a
    /// single repartition). Folds into the epoch's report exactly like
    /// a recovery step.
    pub resizes: Vec<ResizeRecord>,
    /// Parts alive after this epoch's boundary events (failures and
    /// planned resizes applied).
    pub world_k: usize,
}

/// Aggregate over a trial's epochs.
#[derive(Clone, Debug)]
pub struct SimulationSummary {
    /// The algorithm simulated.
    pub algorithm: Algorithm,
    /// α used.
    pub alpha: f64,
    /// Number of parts at launch. Rank failures and planned resizes
    /// move the live world away from this; see
    /// [`SimulationSummary::world_timeline`] and the per-epoch
    /// [`EpochReport::recoveries`] / [`EpochReport::resizes`].
    pub k: usize,
    /// Per-epoch reports, in order.
    pub reports: Vec<EpochReport>,
}

impl SimulationSummary {
    /// Mean communication volume per epoch.
    pub fn mean_comm(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.comm))
    }

    /// Mean migration volume per epoch.
    pub fn mean_migration(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.migration))
    }

    /// Mean normalized total cost (`comm + mig/α`) per epoch — the
    /// quantity the paper's bar charts plot.
    pub fn mean_normalized_total(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.normalized_total()))
    }

    /// Mean normalized migration component (`mig/α`, the top bar).
    pub fn mean_normalized_migration(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.normalized_migration()))
    }

    /// Total repartitioning wall-clock across epochs.
    pub fn total_elapsed(&self) -> Duration {
        self.reports.iter().map(|r| r.elapsed).sum()
    }

    /// Mean repartitioning wall-clock per epoch.
    pub fn mean_elapsed(&self) -> Duration {
        let total = self.total_elapsed();
        if self.reports.is_empty() {
            Duration::ZERO
        } else {
            total / self.reports.len() as u32
        }
    }

    /// Worst imbalance over the trial.
    pub fn max_imbalance(&self) -> f64 {
        self.reports.iter().map(|r| r.imbalance).fold(1.0, f64::max)
    }

    /// Rank-failure recoveries performed over the trial.
    pub fn total_recoveries(&self) -> usize {
        self.reports.iter().map(|r| r.recoveries.len()).sum()
    }

    /// Planned world resizes performed over the trial.
    pub fn total_resizes(&self) -> usize {
        self.reports.iter().map(|r| r.resizes.len()).sum()
    }

    /// The per-epoch world-size timeline `(epoch, parts alive after its
    /// boundary events)` — covering planned grow and shrink as well as
    /// failures. [`SimulationSummary::surviving_k`] is its final entry.
    pub fn world_timeline(&self) -> Vec<(usize, usize)> {
        self.reports.iter().map(|r| (r.epoch, r.world_k)).collect()
    }

    /// Number of parts still alive after the trial's last epoch — the
    /// final entry of [`SimulationSummary::world_timeline`] (the launch
    /// `k` for an empty trial).
    pub fn surviving_k(&self) -> usize {
        self.reports.last().map_or(self.k, |r| r.world_k)
    }

    /// Mean measured epoch makespan in seconds, if the trial was run
    /// with a [`NetworkModel`] (`None` otherwise).
    pub fn mean_makespan(&self) -> Option<f64> {
        self.mean_execution(|e| e.makespan())
    }

    /// Mean measured compute / communication / migration phase times in
    /// seconds (per epoch; compute and communication are per-iteration
    /// makespans, migration per-epoch).
    pub fn mean_phase_times(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.mean_execution(|e| e.t_comp)?,
            self.mean_execution(|e| e.t_comm)?,
            self.mean_execution(|e| e.t_mig)?,
        ))
    }

    fn mean_execution(&self, f: impl Fn(&EpochExecution) -> f64) -> Option<f64> {
        if self.reports.is_empty() || self.reports.iter().any(|r| r.execution.is_none()) {
            return None;
        }
        Some(mean(self.reports.iter().map(|r| f(r.execution.as_ref().unwrap()))))
    }

    /// Summed measured cost volume `α·comm + mig` (bytes) over the
    /// trial — the objective the competitive ratio compares. `None`
    /// unless every epoch was measured.
    pub fn total_cost_volume(&self) -> Option<f64> {
        if self.reports.is_empty() || self.reports.iter().any(|r| r.execution.is_none()) {
            return None;
        }
        Some(self.reports.iter().map(|r| r.execution.as_ref().unwrap().cost_volume()).sum())
    }

    /// The online [`CompetitiveRatio`] of this (policy) run against a
    /// `baseline` run of the same measured workload. `None` unless both
    /// runs are measured over the same number of epochs.
    pub fn competitive_ratio_vs(&self, baseline: &SimulationSummary) -> Option<CompetitiveRatio> {
        CompetitiveRatio::from_summaries(self, baseline)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// The shared epoch loop: `comm` selects serial vs collective
/// repartitioning; `network` turns on the measured execution model;
/// `faults` installs a [`FaultPlan`] (rank failures recovered at epoch
/// boundaries, message drop/delay injected into the measured migration
/// world); `world` installs a [`WorldPlan`] (planned rank arrivals and
/// departures applied as elastic resizes at epoch boundaries, after any
/// failures). Public API: [`crate::session::Session`].
///
/// Failure detection is plan-driven: every driver rank consults the
/// shared plan at the epoch boundary (a perfect failure detector), so
/// no extra collectives run and fault-free trials stay bit-identical
/// to a build without this feature. World plans are consumed the same
/// way, so plan-free (and net-no-op) epochs are bitwise unaffected.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_epochs<S: EpochSource + ?Sized>(
    mut comm: Option<&mut Comm>,
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
    network: Option<&NetworkModel>,
    faults: Option<&FaultPlan>,
    world: Option<&WorldPlan>,
    incremental: Option<IncrementalPolicy>,
) -> SimulationSummary {
    assert!(
        incremental.is_none() || comm.is_none(),
        "incremental repartitioning is serial-only (Session validates this)"
    );
    assert!(
        incremental.is_none() || world.is_none(),
        "world plans are incompatible with incremental repartitioning (Session validates this)"
    );
    let mut patcher = incremental.map(|_| ModelPatcher::new());
    let k0 = source.k();
    if let Some(plan) = faults {
        let joinable = world.map(|w| w.join_ranks()).unwrap_or_default();
        for f in plan.failures() {
            assert!(
                f.rank < k0 || joinable.contains(&f.rank),
                "fault plan rank {} out of range for k = {k0}",
                f.rank
            );
        }
    }
    if let Some(plan) = world {
        if let Err(e) = plan.validate(k0, num_epochs, faults) {
            panic!("invalid world plan: {e}");
        }
    }
    // The membership of the live world: original rank ids (what the
    // plans speak) in current-label order (where the partitions live).
    let mut membership = WorldMembership::launch(k0);
    let mut reports = Vec::with_capacity(num_epochs);
    for epoch in 1..=num_epochs {
        let cur_k = membership.k();
        let span = dlb_trace::span!("epoch", epoch = epoch, k = cur_k);
        dlb_trace::count(dlb_trace::Counter::Epochs, 1);
        // Incremental runs pull a structural delta and patch the
        // previous epoch's model in place; everything else (and any
        // source falling back to a full snapshot) re-lowers from
        // scratch. `patched` carries the spliced model plus the drift
        // measure the policy decides on.
        let (snapshot, patched) = match patcher.as_mut() {
            Some(patcher) => match source.next_delta() {
                EpochUpdate::Full(snap) => {
                    patcher.prime(&snap);
                    (snap, None)
                }
                EpochUpdate::Delta(d) => {
                    let p = patcher.apply(&d, cur_k, alpha);
                    (p.snapshot, Some((p.model, p.touched_fraction)))
                }
            },
            None => (source.next_epoch(), None),
        };
        span.attr("vertices", snapshot.graph.num_vertices());
        let dying: Vec<usize> = match faults {
            Some(plan) => plan
                .ranks_failing_at(epoch)
                .into_iter()
                .filter(|&r| membership.is_live(r))
                .collect(),
            None => Vec::new(),
        };
        // The epoch's *net* planned resize, filtered exactly as
        // `WorldPlan::validate` simulates it: joins of ranks that will
        // still be live after this epoch's failures are dropped, as are
        // leaves of ranks that are dead (or dying right now — the fault
        // already removes them).
        let planned: Option<(Vec<usize>, Vec<usize>)> = world
            .map(|p| {
                let (mut joins, mut leaves) = p.resize_at(epoch);
                joins.retain(|r| !membership.is_live(*r) || dying.contains(r));
                leaves.retain(|r| membership.is_live(*r) && !dying.contains(r));
                (joins, leaves)
            })
            .filter(|(j, l)| !(j.is_empty() && l.is_empty()));
        let report = if dying.is_empty() && planned.is_none() {
            let problem = RepartProblem {
                hypergraph: &snapshot.hypergraph,
                graph: &snapshot.graph,
                old_part: &snapshot.old_part,
                k: cur_k,
                alpha,
            };
            let result = match comm.as_deref_mut() {
                Some(comm) => repartition_parallel(comm, &problem, algorithm, cfg),
                None => match &patched {
                    // Drift policy: a lightly-touched epoch reuses the
                    // patched model and warm-starts refinement from the
                    // old assignment; a heavily-drifted one runs the
                    // full V-cycle pipeline on the (bit-identical)
                    // patched model.
                    Some((model, frac)) if algorithm == Algorithm::ZoltanRepart => {
                        let policy = incremental.expect("patched implies incremental");
                        let warm = *frac < policy.drift_threshold;
                        if warm {
                            dlb_trace::count(dlb_trace::Counter::DeltaEpochs, 1);
                        } else {
                            dlb_trace::count(dlb_trace::Counter::FullRebuilds, 1);
                        }
                        span.attr("touched_fraction", *frac);
                        span.attr("warm_start", warm as usize);
                        repartition_patched(&problem, model, warm, cfg)
                    }
                    _ => {
                        if patcher.is_some() {
                            dlb_trace::count(dlb_trace::Counter::FullRebuilds, 1);
                        }
                        repartition(&problem, algorithm, cfg)
                    }
                },
            };
            let execution = network.map(|net| {
                measure_epoch_with_faults(
                    &snapshot.hypergraph,
                    &snapshot.old_part,
                    &result.new_part,
                    cur_k,
                    alpha,
                    net,
                    faults,
                )
            });
            source.commit_assignment(&snapshot, &result.new_part);
            if let Some(patcher) = patcher.as_mut() {
                patcher.commit(&snapshot.to_base, &result.new_part);
            }
            span.attr("moved", result.moved);
            EpochReport {
                epoch,
                cost: result.cost,
                imbalance: result.imbalance,
                moved: result.moved,
                num_vertices: snapshot.graph.num_vertices(),
                elapsed: result.elapsed,
                execution,
                recoveries: Vec::new(),
                resizes: Vec::new(),
                world_k: membership.k(),
            }
        } else {
            // Boundary events replace the epoch's repartition. First
            // the failure-recovery chain: each dead rank shrinks the
            // world by one and repartitions from the failure-time
            // assignment (its vertices free, survivors tethered —
            // DESIGN.md §12). Then at most one planned elastic resize
            // applies the epoch's net joins and leaves in a single
            // repartition (DESIGN.md §15). Incremental runs discard
            // any patched model here — these are full rebuilds by
            // definition.
            if patcher.is_some() {
                dlb_trace::count(dlb_trace::Counter::FullRebuilds, 1);
            }
            let start = Instant::now();
            let mut old = snapshot.old_part.clone();
            let mut recoveries = Vec::with_capacity(dying.len());
            let mut resizes = Vec::new();
            let mut steps: Vec<(CostBreakdown, f64, Option<EpochExecution>)> = Vec::new();
            let mut moved = 0usize;
            for &orig in &dying {
                let k_before = membership.k();
                let c = membership.label_of(orig).expect("filtered to live ranks");
                let rspan = dlb_trace::span!(
                    "recover.epoch",
                    epoch = epoch,
                    rank = orig,
                    k_before = k_before
                );
                dlb_trace::count(dlb_trace::Counter::FaultsInjected, 1);
                dlb_trace::count(dlb_trace::Counter::RecoveriesRun, 1);
                let out = recover_from_failure(
                    comm.as_deref_mut(),
                    &snapshot.hypergraph,
                    &old,
                    c,
                    k_before,
                    alpha,
                    cfg,
                );
                // The recovery exchange physically runs on the full
                // pre-failure world: the dead rank ships all its data
                // out, the simulation's stand-in for a checkpoint
                // restore, so the recovery volume lands in t_mig.
                let execution = network.map(|net| {
                    measure_epoch_with_faults(
                        &snapshot.hypergraph,
                        &old,
                        &out.exec_part,
                        k_before,
                        alpha,
                        net,
                        faults,
                    )
                });
                rspan.attr("orphans", out.orphans);
                rspan.attr("migration", out.cost.migration);
                if let Some(e) = &execution {
                    rspan.attr("t_mig", e.t_mig);
                }
                recoveries.push(RecoveryRecord {
                    failed_rank: orig,
                    epoch,
                    k_before,
                    k_after: k_before - 1,
                    orphans: out.orphans,
                    migration: out.cost.migration,
                    t_mig: execution.as_ref().map_or(0.0, |e| e.t_mig),
                });
                membership.remove(orig);
                moved += out.moved;
                old = out.part;
                steps.push((out.cost, out.imbalance, execution));
            }
            if let Some((joins, leaves)) = planned {
                let k_before = membership.k();
                let leave_labels = membership.resize(&leaves, &joins);
                let k_after = membership.k();
                let rspan = dlb_trace::span!(
                    "resize.epoch",
                    epoch = epoch,
                    k_before = k_before,
                    k_after = k_after
                );
                dlb_trace::count(dlb_trace::Counter::ResizesRun, 1);
                dlb_trace::count(dlb_trace::Counter::RanksJoined, joins.len() as u64);
                dlb_trace::count(dlb_trace::Counter::RanksDeparted, leaves.len() as u64);
                let out = perform_resize(
                    comm.as_deref_mut(),
                    &snapshot.hypergraph,
                    &old,
                    &leave_labels,
                    joins.len(),
                    k_before,
                    alpha,
                    cfg,
                    network,
                    faults,
                );
                match out.choice {
                    ResizeChoice::Repart => {
                        dlb_trace::count(dlb_trace::Counter::ResizeChoseRepart, 1)
                    }
                    ResizeChoice::Scratch => {
                        dlb_trace::count(dlb_trace::Counter::ResizeChoseScratch, 1)
                    }
                }
                rspan.attr("migration", out.cost.migration);
                rspan.attr("chose_scratch", (out.choice == ResizeChoice::Scratch) as usize);
                resizes.push(ResizeRecord {
                    epoch,
                    joined: joins,
                    departed: leaves,
                    k_before,
                    k_after,
                    choice: out.choice,
                    repart_cost: out.repart_cost,
                    scratch_cost: out.scratch_cost,
                    migration: out.cost.migration,
                    t_mig: out.execution.as_ref().map_or(0.0, |e| e.t_mig),
                });
                moved += out.moved;
                old = out.part;
                steps.push((out.cost, out.imbalance, out.execution));
            }
            // The epoch's report is the final step's, with the earlier
            // steps' migration charges folded in.
            let (mut cost, imbalance, mut execution) =
                steps.pop().expect("at least one boundary event");
            for (step_cost, _, exec) in &steps {
                cost.migration += step_cost.migration;
                if let (Some(e), Some(se)) = (execution.as_mut(), exec.as_ref()) {
                    e.t_mig += se.t_mig;
                    e.mig_volume += se.mig_volume;
                }
            }
            source.commit_assignment(&snapshot, &old);
            if let Some(patcher) = patcher.as_mut() {
                patcher.commit(&snapshot.to_base, &old);
            }
            span.attr("moved", moved);
            span.attr("recoveries", recoveries.len());
            span.attr("resizes", resizes.len());
            EpochReport {
                epoch,
                cost,
                imbalance,
                moved,
                num_vertices: snapshot.graph.num_vertices(),
                elapsed: start.elapsed(),
                execution,
                recoveries,
                resizes,
                world_k: membership.k(),
            }
        };
        reports.push(report);
    }
    SimulationSummary { algorithm, alpha, k: k0, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dlb_graphpart::{partition_kway, GraphConfig};
    use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

    fn make_stream(kind: DatasetKind, k: usize, perturbation: Perturbation, seed: u64) -> EpochStream {
        let d = Dataset::generate(kind, 0.0005, seed);
        let init = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
        EpochStream::new(d.graph, perturbation, k, init, seed)
    }

    fn run(
        stream: &mut EpochStream,
        epochs: usize,
        alg: Algorithm,
        alpha: f64,
        cfg: &RepartConfig,
    ) -> SimulationSummary {
        Session::new(cfg.clone())
            .algorithm(alg)
            .alpha(alpha)
            .epochs(epochs)
            .workload(stream)
            .run()
            .unwrap()
    }

    #[test]
    fn simulation_runs_all_algorithms() {
        for alg in Algorithm::ALL {
            let mut stream = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), 3);
            let summary = run(&mut stream, 3, alg, 10.0, &RepartConfig::seeded(3));
            assert_eq!(summary.reports.len(), 3, "{}", alg.name());
            assert!(summary.mean_normalized_total() > 0.0);
            assert!(summary.max_imbalance() < 1.5, "{}", alg.name());
        }
    }

    #[test]
    fn weight_perturbation_simulation() {
        let mut stream = make_stream(DatasetKind::Cage14, 4, Perturbation::weights(), 5);
        let summary =
            run(&mut stream, 3, Algorithm::ZoltanRepart, 100.0, &RepartConfig::seeded(5));
        assert_eq!(summary.reports.len(), 3);
        // Weight growth must be rebalanced.
        assert!(summary.max_imbalance() <= 1.3, "imbalance {}", summary.max_imbalance());
    }

    #[test]
    fn repart_beats_scratch_on_total_cost_at_alpha_one() {
        // The paper's headline observation at small alpha. A single seed
        // can land within noise of a tie, so assert on the mean over a
        // few independent streams.
        let mut repart_total = 0.0;
        let mut scratch_total = 0.0;
        for seed in 11..16 {
            let mut s1 = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), seed);
            let repart =
                run(&mut s1, 3, Algorithm::ZoltanRepart, 1.0, &RepartConfig::seeded(seed));
            let mut s2 = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), seed);
            let scratch =
                run(&mut s2, 3, Algorithm::ZoltanScratch, 1.0, &RepartConfig::seeded(seed));
            repart_total += repart.mean_normalized_total();
            scratch_total += scratch.mean_normalized_total();
        }
        assert!(
            repart_total < scratch_total,
            "repart {repart_total} should beat scratch {scratch_total} at alpha=1 (5-seed mean)"
        );
    }

    #[test]
    fn parallel_simulation_matches_rank_consensus() {
        use dlb_mpisim::run_spmd;
        let results = run_spmd(2, |comm| {
            let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 13);
            let s = Session::new(RepartConfig::seeded(13))
                .algorithm(Algorithm::ZoltanRepart)
                .alpha(10.0)
                .epochs(2)
                .workload(&mut stream)
                .run_on(comm)
                .unwrap();
            (s.mean_comm(), s.mean_migration())
        });
        assert_eq!(results[0], results[1], "ranks must agree on costs");
    }

    #[test]
    fn measured_simulation_populates_executions() {
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::weights(), 9);
        let s = Session::new(RepartConfig::seeded(9))
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(3)
            .measured(true)
            .workload(&mut stream)
            .run()
            .unwrap();
        assert!(s.reports.iter().all(|r| r.execution.is_some()));
        let makespan = s.mean_makespan().expect("measured run");
        let (comp, comm, mig) = s.mean_phase_times().expect("measured run");
        assert!(makespan > 0.0);
        assert!((makespan - (10.0 * (comp + comm) + mig)).abs() < 1e-12);
        // The unmeasured path reports no execution.
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::weights(), 9);
        let s = run(&mut stream, 2, Algorithm::ZoltanRepart, 10.0, &RepartConfig::seeded(9));
        assert!(s.reports.iter().all(|r| r.execution.is_none()));
        assert_eq!(s.mean_makespan(), None);
        assert_eq!(s.mean_phase_times(), None);
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 7);
        let s = run(&mut stream, 4, Algorithm::ParmetisRepart, 10.0, &RepartConfig::seeded(7));
        let manual: f64 =
            s.reports.iter().map(|r| r.cost.normalized_total()).sum::<f64>() / 4.0;
        assert!((s.mean_normalized_total() - manual).abs() < 1e-12);
        assert!(s.total_elapsed() >= s.mean_elapsed());
    }

    #[test]
    fn incremental_with_zero_threshold_matches_full_rebuilds() {
        // drift_threshold = 0 never warm-starts, and the patch
        // invariant makes the patched model bit-identical to a fresh
        // lowering — so the whole report sequence must match the
        // non-incremental run exactly.
        let k = 4;
        let amr = dlb_amr::AmrConfig::small();
        let make = || {
            let stream = dlb_amr::AmrStream::new(amr, k, 17);
            let low = stream.initial_lowering();
            let init: Vec<_> = (0..low.graph.num_vertices()).map(|v| v % k).collect();
            dlb_workloads::AmrSource::new(stream, &init)
        };
        let cfg = RepartConfig::seeded(17);
        let mut a = make();
        let inc = Session::new(cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(4)
            .measured(true)
            .incremental(true)
            .drift_threshold(0.0)
            .workload(&mut a)
            .run()
            .unwrap();
        let mut b = make();
        let full = Session::new(cfg)
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(4)
            .measured(true)
            .workload(&mut b)
            .run()
            .unwrap();
        assert_eq!(inc.reports.len(), full.reports.len());
        for (i, f) in inc.reports.iter().zip(&full.reports) {
            assert_eq!(i.cost.comm, f.cost.comm);
            assert_eq!(i.cost.migration, f.cost.migration);
            assert_eq!(i.moved, f.moved);
            assert_eq!(i.num_vertices, f.num_vertices);
            assert_eq!(i.execution.unwrap().cost_volume(), f.execution.unwrap().cost_volume());
        }
        let cr = inc.competitive_ratio_vs(&full).expect("both measured");
        assert_eq!(cr.ratio(), Some(1.0), "identical runs have ratio exactly 1");
        assert_eq!(inc.total_cost_volume(), full.total_cost_volume());
    }
}
