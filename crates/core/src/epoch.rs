//! Multi-epoch simulation: the experiment loop behind Figures 2–8.
//!
//! Each trial starts from a static partition, streams epochs from any
//! [`EpochSource`] — the paper's synthetic perturbations
//! ([`dlb_workloads::EpochStream`]) or the real quadtree AMR workload
//! ([`dlb_workloads::AmrSource`]) — invokes one of the four algorithms
//! per epoch, commits the new assignment back to the source (so the
//! next epoch's dynamics and old-parts see it), and accumulates
//! per-epoch cost and timing. The `_measured` variants additionally run
//! the [`crate::exec`] execution model each epoch, so the summary
//! carries observed makespans next to the model costs.

use std::time::{Duration, Instant};

use dlb_mpisim::{Comm, FaultPlan};
use dlb_workloads::EpochSource;

use crate::cost::CostBreakdown;
use crate::driver::{repartition, repartition_parallel, Algorithm, RepartConfig, RepartProblem};
use crate::exec::{measure_epoch_with_faults, EpochExecution, NetworkModel};
use crate::recover::recover_from_failure;

/// One rank-failure recovery performed at an epoch boundary
/// (DESIGN.md §12).
#[derive(Clone, Debug)]
pub struct RecoveryRecord {
    /// The failed rank's id in the *launch-time* `0..k` world (fault
    /// plans always speak original ids, however many ranks have already
    /// died).
    pub failed_rank: usize,
    /// Epoch at whose boundary the failure was detected (1-based).
    pub epoch: usize,
    /// Surviving parts before this recovery.
    pub k_before: usize,
    /// Surviving parts after (always `k_before - 1`).
    pub k_after: usize,
    /// Vertices orphaned by the failure.
    pub orphans: usize,
    /// Model migration volume of the recovery move, including the
    /// orphan restore.
    pub migration: f64,
    /// Measured migration-phase makespan of the recovery exchange in
    /// seconds (`0.0` when the trial runs without a network model).
    pub t_mig: f64,
}

/// Per-epoch measurements.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (1-based; epoch 0 is the static partition).
    pub epoch: usize,
    /// Cost components under the chosen assignment.
    pub cost: CostBreakdown,
    /// Load imbalance after repartitioning.
    pub imbalance: f64,
    /// Vertices that changed parts.
    pub moved: usize,
    /// Epoch problem size.
    pub num_vertices: usize,
    /// Wall-clock repartitioning time.
    pub elapsed: Duration,
    /// Measured execution of the epoch (only under the `_measured`
    /// simulation variants).
    pub execution: Option<EpochExecution>,
    /// Rank-failure recoveries performed at this epoch's boundary
    /// (empty on fault-free epochs). When non-empty, the epoch's
    /// repartition *was* the recovery chain: `cost.migration` and the
    /// execution's `t_mig`/`mig_volume` fold in every step.
    pub recoveries: Vec<RecoveryRecord>,
}

/// Aggregate over a trial's epochs.
#[derive(Clone, Debug)]
pub struct SimulationSummary {
    /// The algorithm simulated.
    pub algorithm: Algorithm,
    /// α used.
    pub alpha: f64,
    /// Number of parts at launch. Rank failures shrink the live world
    /// below this; see [`SimulationSummary::total_recoveries`] and the
    /// per-epoch [`EpochReport::recoveries`].
    pub k: usize,
    /// Per-epoch reports, in order.
    pub reports: Vec<EpochReport>,
}

impl SimulationSummary {
    /// Mean communication volume per epoch.
    pub fn mean_comm(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.comm))
    }

    /// Mean migration volume per epoch.
    pub fn mean_migration(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.migration))
    }

    /// Mean normalized total cost (`comm + mig/α`) per epoch — the
    /// quantity the paper's bar charts plot.
    pub fn mean_normalized_total(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.normalized_total()))
    }

    /// Mean normalized migration component (`mig/α`, the top bar).
    pub fn mean_normalized_migration(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.cost.normalized_migration()))
    }

    /// Total repartitioning wall-clock across epochs.
    pub fn total_elapsed(&self) -> Duration {
        self.reports.iter().map(|r| r.elapsed).sum()
    }

    /// Mean repartitioning wall-clock per epoch.
    pub fn mean_elapsed(&self) -> Duration {
        let total = self.total_elapsed();
        if self.reports.is_empty() {
            Duration::ZERO
        } else {
            total / self.reports.len() as u32
        }
    }

    /// Worst imbalance over the trial.
    pub fn max_imbalance(&self) -> f64 {
        self.reports.iter().map(|r| r.imbalance).fold(1.0, f64::max)
    }

    /// Rank-failure recoveries performed over the trial.
    pub fn total_recoveries(&self) -> usize {
        self.reports.iter().map(|r| r.recoveries.len()).sum()
    }

    /// Number of parts still alive after the trial's last epoch.
    pub fn surviving_k(&self) -> usize {
        self.k - self.total_recoveries()
    }

    /// Mean measured epoch makespan in seconds, if the trial was run
    /// with a [`NetworkModel`] (`None` otherwise).
    pub fn mean_makespan(&self) -> Option<f64> {
        self.mean_execution(|e| e.makespan())
    }

    /// Mean measured compute / communication / migration phase times in
    /// seconds (per epoch; compute and communication are per-iteration
    /// makespans, migration per-epoch).
    pub fn mean_phase_times(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.mean_execution(|e| e.t_comp)?,
            self.mean_execution(|e| e.t_comm)?,
            self.mean_execution(|e| e.t_mig)?,
        ))
    }

    fn mean_execution(&self, f: impl Fn(&EpochExecution) -> f64) -> Option<f64> {
        if self.reports.is_empty() || self.reports.iter().any(|r| r.execution.is_none()) {
            return None;
        }
        Some(mean(self.reports.iter().map(|r| f(r.execution.as_ref().unwrap()))))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// The shared epoch loop: `comm` selects serial vs collective
/// repartitioning; `network` turns on the measured execution model;
/// `faults` installs a [`FaultPlan`] (rank failures recovered at epoch
/// boundaries, message drop/delay injected into the measured migration
/// world). Public API: [`crate::session::Session`].
///
/// Failure detection is plan-driven: every driver rank consults the
/// shared plan at the epoch boundary (a perfect failure detector), so
/// no extra collectives run and fault-free trials stay bit-identical
/// to a build without this feature.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_epochs<S: EpochSource + ?Sized>(
    mut comm: Option<&mut Comm>,
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
    network: Option<&NetworkModel>,
    faults: Option<&FaultPlan>,
) -> SimulationSummary {
    let k0 = source.k();
    if let Some(plan) = faults {
        for f in plan.failures() {
            assert!(f.rank < k0, "fault plan rank {} out of range for k = {k0}", f.rank);
        }
    }
    // Live original ranks → current (compacted) part labels. Fault
    // plans speak original ids; the partitions live in the compacted
    // space of the survivors.
    let mut orig_to_cur: Vec<Option<usize>> = (0..k0).map(Some).collect();
    let mut cur_k = k0;
    let mut reports = Vec::with_capacity(num_epochs);
    for epoch in 1..=num_epochs {
        let span = dlb_trace::span!("epoch", epoch = epoch, k = cur_k);
        dlb_trace::count(dlb_trace::Counter::Epochs, 1);
        let snapshot = source.next_epoch();
        span.attr("vertices", snapshot.graph.num_vertices());
        let dying: Vec<usize> = match faults {
            Some(plan) => plan
                .ranks_failing_at(epoch)
                .into_iter()
                .filter(|&r| orig_to_cur[r].is_some())
                .collect(),
            None => Vec::new(),
        };
        let report = if dying.is_empty() {
            let problem = RepartProblem {
                hypergraph: &snapshot.hypergraph,
                graph: &snapshot.graph,
                old_part: &snapshot.old_part,
                k: cur_k,
                alpha,
            };
            let result = match comm.as_deref_mut() {
                Some(comm) => repartition_parallel(comm, &problem, algorithm, cfg),
                None => repartition(&problem, algorithm, cfg),
            };
            let execution = network.map(|net| {
                measure_epoch_with_faults(
                    &snapshot.hypergraph,
                    &snapshot.old_part,
                    &result.new_part,
                    cur_k,
                    alpha,
                    net,
                    faults,
                )
            });
            source.commit_assignment(&snapshot, &result.new_part);
            span.attr("moved", result.moved);
            EpochReport {
                epoch,
                cost: result.cost,
                imbalance: result.imbalance,
                moved: result.moved,
                num_vertices: snapshot.graph.num_vertices(),
                elapsed: result.elapsed,
                execution,
                recoveries: Vec::new(),
            }
        } else {
            // Failed ranks replace the epoch's repartition with a
            // recovery chain: each dead rank shrinks the world by one
            // and repartitions from the failure-time assignment (its
            // vertices free, survivors tethered — DESIGN.md §12).
            let start = Instant::now();
            let mut old = snapshot.old_part.clone();
            let mut recoveries = Vec::with_capacity(dying.len());
            let mut steps = Vec::with_capacity(dying.len());
            let mut moved = 0usize;
            for &orig in &dying {
                let c = orig_to_cur[orig].expect("filtered to live ranks");
                let rspan = dlb_trace::span!(
                    "recover.epoch",
                    epoch = epoch,
                    rank = orig,
                    k_before = cur_k
                );
                dlb_trace::count(dlb_trace::Counter::FaultsInjected, 1);
                dlb_trace::count(dlb_trace::Counter::RecoveriesRun, 1);
                let out = recover_from_failure(
                    comm.as_deref_mut(),
                    &snapshot.hypergraph,
                    &old,
                    c,
                    cur_k,
                    alpha,
                    cfg,
                );
                // The recovery exchange physically runs on the full
                // pre-failure world: the dead rank ships all its data
                // out, the simulation's stand-in for a checkpoint
                // restore, so the recovery volume lands in t_mig.
                let execution = network.map(|net| {
                    measure_epoch_with_faults(
                        &snapshot.hypergraph,
                        &old,
                        &out.exec_part,
                        cur_k,
                        alpha,
                        net,
                        faults,
                    )
                });
                rspan.attr("orphans", out.orphans);
                rspan.attr("migration", out.cost.migration);
                if let Some(e) = &execution {
                    rspan.attr("t_mig", e.t_mig);
                }
                recoveries.push(RecoveryRecord {
                    failed_rank: orig,
                    epoch,
                    k_before: cur_k,
                    k_after: cur_k - 1,
                    orphans: out.orphans,
                    migration: out.cost.migration,
                    t_mig: execution.as_ref().map_or(0.0, |e| e.t_mig),
                });
                for slot in orig_to_cur.iter_mut().flatten() {
                    if *slot > c {
                        *slot -= 1;
                    }
                }
                orig_to_cur[orig] = None;
                cur_k -= 1;
                moved += out.moved;
                old = out.part.clone();
                steps.push((out, execution));
            }
            // The epoch's report is the final step's, with the earlier
            // steps' migration charges folded in.
            let (last, last_exec) = steps.pop().expect("at least one dying rank");
            let mut cost = last.cost;
            let mut execution = last_exec;
            for (step, exec) in &steps {
                cost.migration += step.cost.migration;
                if let (Some(e), Some(se)) = (execution.as_mut(), exec.as_ref()) {
                    e.t_mig += se.t_mig;
                    e.mig_volume += se.mig_volume;
                }
            }
            source.commit_assignment(&snapshot, &old);
            span.attr("moved", moved);
            span.attr("recoveries", recoveries.len());
            EpochReport {
                epoch,
                cost,
                imbalance: last.imbalance,
                moved,
                num_vertices: snapshot.graph.num_vertices(),
                elapsed: start.elapsed(),
                execution,
                recoveries,
            }
        };
        reports.push(report);
    }
    SimulationSummary { algorithm, alpha, k: k0, reports }
}

/// Runs `num_epochs` epochs of `algorithm` over `source`.
///
/// The source must be freshly constructed with the trial's initial
/// static partition; the simulation mutates it (commits assignments).
#[deprecated(since = "0.2.0", note = "use dlb_core::Session")]
pub fn simulate_epochs<S: EpochSource + ?Sized>(
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
) -> SimulationSummary {
    let mut adapter = crate::session::DynSource(source);
    crate::session::Session::new(cfg.clone())
        .algorithm(algorithm)
        .alpha(alpha)
        .epochs(num_epochs)
        .workload(&mut adapter)
        .run()
        .expect("serial session with a workload cannot fail")
}

/// [`simulate_epochs`] plus the measured execution model: every epoch's
/// partition is executed under `network` (ghost exchanges clocked,
/// migration payloads physically moved on a `k`-rank SPMD world), so
/// each report carries an [`EpochExecution`].
#[deprecated(since = "0.2.0", note = "use dlb_core::Session with .network()")]
pub fn simulate_epochs_measured<S: EpochSource + ?Sized>(
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
    network: &NetworkModel,
) -> SimulationSummary {
    let mut adapter = crate::session::DynSource(source);
    crate::session::Session::new(cfg.clone())
        .algorithm(algorithm)
        .alpha(alpha)
        .epochs(num_epochs)
        .network(*network)
        .workload(&mut adapter)
        .run()
        .expect("serial session with a workload cannot fail")
}

/// Parallel variant of [`simulate_epochs`]: the repartitioner runs
/// collectively on `comm` (the hypergraph methods genuinely SPMD, the
/// graph baselines replicated — see [`repartition_parallel`]). Every rank
/// must drive an identically seeded source; all ranks return identical
/// summaries.
#[deprecated(since = "0.2.0", note = "use dlb_core::Session with .ranks() or .run_on()")]
pub fn simulate_epochs_parallel<S: EpochSource + ?Sized>(
    comm: &mut Comm,
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
) -> SimulationSummary {
    let mut adapter = crate::session::DynSource(source);
    crate::session::Session::new(cfg.clone())
        .algorithm(algorithm)
        .alpha(alpha)
        .epochs(num_epochs)
        .workload(&mut adapter)
        .run_on(comm)
        .expect("collective session with a workload cannot fail")
}

/// [`simulate_epochs_parallel`] plus the measured execution model. Every
/// rank measures the (identical) partition against its own nested
/// `k`-rank migration world, so all ranks still return identical
/// summaries — `tests/amr_determinism.rs` relies on this.
#[deprecated(since = "0.2.0", note = "use dlb_core::Session with .ranks()/.run_on() and .network()")]
pub fn simulate_epochs_measured_parallel<S: EpochSource + ?Sized>(
    comm: &mut Comm,
    source: &mut S,
    num_epochs: usize,
    algorithm: Algorithm,
    alpha: f64,
    cfg: &RepartConfig,
    network: &NetworkModel,
) -> SimulationSummary {
    let mut adapter = crate::session::DynSource(source);
    crate::session::Session::new(cfg.clone())
        .algorithm(algorithm)
        .alpha(alpha)
        .epochs(num_epochs)
        .network(*network)
        .workload(&mut adapter)
        .run_on(comm)
        .expect("collective session with a workload cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dlb_graphpart::{partition_kway, GraphConfig};
    use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

    fn make_stream(kind: DatasetKind, k: usize, perturbation: Perturbation, seed: u64) -> EpochStream {
        let d = Dataset::generate(kind, 0.0005, seed);
        let init = partition_kway(&d.graph, k, &GraphConfig::seeded(seed)).part;
        EpochStream::new(d.graph, perturbation, k, init, seed)
    }

    fn run(
        stream: &mut EpochStream,
        epochs: usize,
        alg: Algorithm,
        alpha: f64,
        cfg: &RepartConfig,
    ) -> SimulationSummary {
        Session::new(cfg.clone())
            .algorithm(alg)
            .alpha(alpha)
            .epochs(epochs)
            .workload(stream)
            .run()
            .unwrap()
    }

    #[test]
    fn simulation_runs_all_algorithms() {
        for alg in Algorithm::ALL {
            let mut stream = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), 3);
            let summary = run(&mut stream, 3, alg, 10.0, &RepartConfig::seeded(3));
            assert_eq!(summary.reports.len(), 3, "{}", alg.name());
            assert!(summary.mean_normalized_total() > 0.0);
            assert!(summary.max_imbalance() < 1.5, "{}", alg.name());
        }
    }

    #[test]
    fn weight_perturbation_simulation() {
        let mut stream = make_stream(DatasetKind::Cage14, 4, Perturbation::weights(), 5);
        let summary =
            run(&mut stream, 3, Algorithm::ZoltanRepart, 100.0, &RepartConfig::seeded(5));
        assert_eq!(summary.reports.len(), 3);
        // Weight growth must be rebalanced.
        assert!(summary.max_imbalance() <= 1.3, "imbalance {}", summary.max_imbalance());
    }

    #[test]
    fn repart_beats_scratch_on_total_cost_at_alpha_one() {
        // The paper's headline observation at small alpha. A single seed
        // can land within noise of a tie, so assert on the mean over a
        // few independent streams.
        let mut repart_total = 0.0;
        let mut scratch_total = 0.0;
        for seed in 11..16 {
            let mut s1 = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), seed);
            let repart =
                run(&mut s1, 3, Algorithm::ZoltanRepart, 1.0, &RepartConfig::seeded(seed));
            let mut s2 = make_stream(DatasetKind::Auto, 4, Perturbation::structure(), seed);
            let scratch =
                run(&mut s2, 3, Algorithm::ZoltanScratch, 1.0, &RepartConfig::seeded(seed));
            repart_total += repart.mean_normalized_total();
            scratch_total += scratch.mean_normalized_total();
        }
        assert!(
            repart_total < scratch_total,
            "repart {repart_total} should beat scratch {scratch_total} at alpha=1 (5-seed mean)"
        );
    }

    #[test]
    fn parallel_simulation_matches_rank_consensus() {
        use dlb_mpisim::run_spmd;
        let results = run_spmd(2, |comm| {
            let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 13);
            let s = Session::new(RepartConfig::seeded(13))
                .algorithm(Algorithm::ZoltanRepart)
                .alpha(10.0)
                .epochs(2)
                .workload(&mut stream)
                .run_on(comm)
                .unwrap();
            (s.mean_comm(), s.mean_migration())
        });
        assert_eq!(results[0], results[1], "ranks must agree on costs");
    }

    #[test]
    fn measured_simulation_populates_executions() {
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::weights(), 9);
        let s = Session::new(RepartConfig::seeded(9))
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(10.0)
            .epochs(3)
            .measured(true)
            .workload(&mut stream)
            .run()
            .unwrap();
        assert!(s.reports.iter().all(|r| r.execution.is_some()));
        let makespan = s.mean_makespan().expect("measured run");
        let (comp, comm, mig) = s.mean_phase_times().expect("measured run");
        assert!(makespan > 0.0);
        assert!((makespan - (10.0 * (comp + comm) + mig)).abs() < 1e-12);
        // The unmeasured path reports no execution.
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::weights(), 9);
        let s = run(&mut stream, 2, Algorithm::ZoltanRepart, 10.0, &RepartConfig::seeded(9));
        assert!(s.reports.iter().all(|r| r.execution.is_none()));
        assert_eq!(s.mean_makespan(), None);
        assert_eq!(s.mean_phase_times(), None);
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 7);
        let s = run(&mut stream, 4, Algorithm::ParmetisRepart, 10.0, &RepartConfig::seeded(7));
        let manual: f64 =
            s.reports.iter().map(|r| r.cost.normalized_total()).sum::<f64>() / 4.0;
        assert!((s.mean_normalized_total() - manual).abs() < 1e-12);
        assert!(s.total_elapsed() >= s.mean_elapsed());
    }

    #[test]
    fn deprecated_wrappers_still_work() {
        // The old entry points must keep compiling and returning the same
        // results as the Session they now delegate to (one release of
        // grace for external callers).
        #[allow(deprecated)]
        let old = {
            let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 21);
            simulate_epochs(&mut stream, 2, Algorithm::ZoltanRepart, 10.0, &RepartConfig::seeded(21))
        };
        let mut stream = make_stream(DatasetKind::Auto, 2, Perturbation::structure(), 21);
        let new = run(&mut stream, 2, Algorithm::ZoltanRepart, 10.0, &RepartConfig::seeded(21));
        assert_eq!(old.mean_comm(), new.mean_comm());
        assert_eq!(old.mean_migration(), new.mean_migration());
    }
}
