//! The repartitioning hypergraph model for dynamic load balancing — the
//! primary contribution of the paper (Section 3), plus the four-algorithm
//! comparison harness of Section 5.
//!
//! # The model
//!
//! An adaptive application alternates *epochs* of computation with
//! load-balance operations. Minimizing total execution time
//! `t_tot = α(t_comp + t_comm) + t_mig + t_repart` reduces (with balanced
//! computation and a fast repartitioner) to minimizing
//! `α·t_comm + t_mig`. The paper's insight: encode **both** terms in one
//! hypergraph and minimize them *directly* with hypergraph partitioning:
//!
//! * take the epoch hypergraph `H^j` and scale every communication net's
//!   cost by `α`;
//! * add one zero-weight **partition vertex** `u_i` per part, *fixed* to
//!   part `i`;
//! * add one **migration net** `{v, u_p}` per vertex `v`, where `p` is
//!   `v`'s part at the end of epoch `j−1` (or where `v` was created),
//!   with cost equal to `v`'s data size.
//!
//! Under the connectivity-1 metric, a vertex that stays home leaves its
//! migration net uncut (cost 0); a vertex that moves cuts it with
//! connectivity 2 (cost = its data size). So the k-1 cut of the
//! augmented hypergraph is **exactly** `α·(communication volume) +
//! (migration volume)` — see [`model::RepartitionHypergraph`] and the
//! identity test that reproduces the paper's worked example (cost 26).
//!
//! # The harness
//!
//! [`driver`] runs the four algorithms compared in Section 5
//! (Zoltan-repart, Zoltan-scratch, ParMETIS-repart, ParMETIS-scratch —
//! the latter two via the reimplemented graph partitioner in
//! [`dlb_graphpart`]), [`remap`] provides the maximal-matching part
//! relabeling used by the scratch methods, [`cost`] the cost accounting,
//! and [`epoch`] the multi-epoch simulation loop over
//! [`dlb_workloads`] streams.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod cost;
pub mod delta;
pub mod driver;
pub mod elastic;
pub mod epoch;
pub mod exec;
pub mod migrate;
pub mod model;
pub mod recover;
pub mod remap;
pub mod session;

pub use cost::CostBreakdown;
pub use delta::{ModelPatcher, PatchedEpoch};
pub use driver::{repartition, Algorithm, RepartConfig, RepartProblem, RepartResult};
pub use driver::repartition_parallel;
pub use elastic::{
    science_fingerprint, AuditLedger, AuditedSource, ResizeChoice, ResizeRecord, WorldChange,
    WorldEvent, WorldPlan,
};
pub use epoch::{EpochReport, RecoveryRecord, SimulationSummary};
pub use exec::{
    measure_epoch, measure_epoch_with_faults, CompetitiveRatio, EpochExecution, NetworkModel,
};
pub use session::{Session, SessionError, DEFAULT_DRIFT_THRESHOLD};
pub use migrate::{migrate_items, scatter_initial, MigrationStats};
pub use model::RepartitionHypergraph;
pub use recover::{recover_from_failure, RecoveryOutcome};
pub use remap::{remap_to_minimize_migration, remap_to_minimize_migration_partial};
// Re-exported so `Session::fault_plan` callers need not depend on
// `dlb_mpisim` directly.
pub use dlb_mpisim::FaultPlan;
pub use dlb_partitioner::Determinism;
