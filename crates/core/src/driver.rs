//! The four repartitioning algorithms compared in Section 5.

use std::time::{Duration, Instant};

use dlb_graphpart::{adaptive_repart, partition_kway, AdaptiveConfig, GraphConfig};
use dlb_hypergraph::{metrics, CsrGraph, Hypergraph, PartId};
use dlb_mpisim::Comm;
use dlb_partitioner::par::parallel_partition_fixed;
use dlb_partitioner::{partition_hypergraph_fixed, Config as HgConfig, FixedAssignment};

use crate::cost::CostBreakdown;
use crate::model::RepartitionHypergraph;
use crate::remap::remap_to_minimize_migration;

/// The four algorithms of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's new method: repartitioning hypergraph + partitioning
    /// with fixed vertices.
    ZoltanRepart,
    /// Hypergraph partitioning from scratch + maximal-matching remap.
    ZoltanScratch,
    /// Graph adaptive repartitioning (`AdaptiveRepart` analog, ITR = α).
    ParmetisRepart,
    /// Graph partitioning from scratch (`Partkway` analog) + remap.
    ParmetisScratch,
}

impl Algorithm {
    /// The four algorithms in the paper's bar order (left to right).
    pub const ALL: [Algorithm; 4] = [
        Algorithm::ZoltanRepart,
        Algorithm::ParmetisRepart,
        Algorithm::ZoltanScratch,
        Algorithm::ParmetisScratch,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::ZoltanRepart => "Zoltan-repart",
            Algorithm::ZoltanScratch => "Zoltan-scratch",
            Algorithm::ParmetisRepart => "ParMETIS-repart",
            Algorithm::ParmetisScratch => "ParMETIS-scratch",
        }
    }

    /// True for the hypergraph-based methods.
    pub fn is_hypergraph(self) -> bool {
        matches!(self, Algorithm::ZoltanRepart | Algorithm::ZoltanScratch)
    }

    /// True for the repartitioning (migration-aware) methods.
    pub fn is_repartitioner(self) -> bool {
        matches!(self, Algorithm::ZoltanRepart | Algorithm::ParmetisRepart)
    }
}

/// One epoch's repartitioning problem.
#[derive(Clone, Copy, Debug)]
pub struct RepartProblem<'a> {
    /// Epoch hypergraph `H^j` (communication costs unscaled).
    pub hypergraph: &'a Hypergraph,
    /// The same structure as a graph, for the graph-based baselines.
    pub graph: &'a CsrGraph,
    /// Previous/creation part per vertex.
    pub old_part: &'a [PartId],
    /// Number of parts.
    pub k: usize,
    /// Iterations in the upcoming epoch (the trade-off knob).
    pub alpha: f64,
}

/// Knobs shared by all four algorithms.
#[derive(Clone, Debug)]
pub struct RepartConfig {
    /// Allowed imbalance ε (applied to both engines).
    pub epsilon: f64,
    /// RNG seed (applied to both engines).
    pub seed: u64,
    /// Hypergraph-partitioner knobs.
    pub hypergraph: HgConfig,
    /// Graph-partitioner knobs.
    pub graph: GraphConfig,
}

impl Default for RepartConfig {
    fn default() -> Self {
        RepartConfig::seeded(0)
    }
}

impl RepartConfig {
    /// Default knobs with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        let epsilon = 0.05;
        let mut hypergraph = HgConfig::seeded(seed);
        hypergraph.epsilon = epsilon;
        // Direct k-way consistently beats recursive bisection on the
        // augmented repartitioning hypergraph (the migration tethers and
        // the k fixed seeds are all visible to one global V-cycle);
        // Zoltan's RB remains available via `cfg.hypergraph.scheme` and
        // the `ablations` bench compares the two.
        hypergraph.scheme = dlb_partitioner::Scheme::DirectKway;
        // A second, part-restricted V-cycle recovers most of the quality
        // gap to unconstrained partitioning at large α (see the
        // `ablations` bench) for ~40% more partitioning time.
        hypergraph.num_vcycles = 2;
        let mut graph = GraphConfig::seeded(seed);
        graph.epsilon = epsilon;
        RepartConfig { epsilon, seed, hypergraph, graph }
    }

    /// Sets ε on all engines.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self.hypergraph.epsilon = epsilon;
        self.graph.epsilon = epsilon;
        self
    }

    /// Per-constraint tolerances for multi-constraint epochs:
    /// `epsilons[0]` is the primary ε (applied to every engine like
    /// [`RepartConfig::with_epsilon`]); the rest become the hypergraph
    /// engine's auxiliary tolerances
    /// ([`dlb_partitioner::Config::aux_epsilons`]). The graph baselines
    /// stay scalar — they only ever see constraint 0.
    pub fn with_epsilons(mut self, epsilons: &[f64]) -> Self {
        if let Some((&first, rest)) = epsilons.split_first() {
            self = self.with_epsilon(first);
            self.hypergraph.aux_epsilons = rest.to_vec();
        }
        self
    }
}

/// The outcome of one repartitioning call.
#[derive(Clone, Debug)]
pub struct RepartResult {
    /// The new assignment.
    pub new_part: Vec<PartId>,
    /// Communication + migration accounting.
    pub cost: CostBreakdown,
    /// Load imbalance of the new assignment (by vertex weight).
    pub imbalance: f64,
    /// Number of vertices that changed parts.
    pub moved: usize,
    /// Wall-clock repartitioning time.
    pub elapsed: Duration,
}

fn finish(problem: &RepartProblem, new_part: Vec<PartId>, start: Instant) -> RepartResult {
    let elapsed = start.elapsed();
    let cost = CostBreakdown::measure(
        problem.hypergraph,
        problem.old_part,
        &new_part,
        problem.k,
        problem.alpha,
    );
    let imbalance = metrics::imbalance(problem.hypergraph, &new_part, problem.k);
    let moved = metrics::moved_vertex_count(problem.old_part, &new_part);
    RepartResult { new_part, cost, imbalance, moved, elapsed }
}

/// Runs one of the four algorithms on `problem` (serial).
pub fn repartition(
    problem: &RepartProblem,
    algorithm: Algorithm,
    cfg: &RepartConfig,
) -> RepartResult {
    validate(problem);
    let _span = dlb_trace::span!(
        "repartition",
        algorithm = algorithm.name(),
        k = problem.k,
        alpha = problem.alpha,
    );
    let start = Instant::now();
    let new_part = match algorithm {
        Algorithm::ZoltanRepart => {
            let model = RepartitionHypergraph::build(
                problem.hypergraph,
                problem.old_part,
                problem.k,
                problem.alpha,
            );
            let r = partition_hypergraph_fixed(
                &model.augmented,
                problem.k,
                &model.fixed,
                &cfg.hypergraph,
            );
            model.decode(&r.part)
        }
        Algorithm::ZoltanScratch => {
            let free = FixedAssignment::free(problem.hypergraph.num_vertices());
            let r = partition_hypergraph_fixed(problem.hypergraph, problem.k, &free, &cfg.hypergraph);
            remap_to_minimize_migration(
                &r.part,
                problem.old_part,
                problem.hypergraph.vertex_sizes(),
                problem.k,
            )
        }
        Algorithm::ParmetisRepart => {
            let acfg = AdaptiveConfig { base: cfg.graph.clone(), alpha: problem.alpha };
            adaptive_repart(problem.graph, problem.k, problem.old_part, &acfg).part
        }
        Algorithm::ParmetisScratch => {
            let r = partition_kway(problem.graph, problem.k, &cfg.graph);
            remap_to_minimize_migration(
                &r.part,
                problem.old_part,
                problem.graph.vertex_sizes(),
                problem.k,
            )
        }
    };
    finish(problem, new_part, start)
}

/// [`Algorithm::ZoltanRepart`] on a **pre-built** repartitioning model
/// — the incremental path ([`crate::delta`]). The model must be the
/// lowering of `problem` (the patch invariant guarantees bitwise
/// equality with [`RepartitionHypergraph::build`] on it, so the cold
/// path here returns exactly what [`repartition`] would).
///
/// `warm` seeds the partitioner from the previous assignment via
/// [`dlb_partitioner::refine_partition_fixed`] — rebalance + refine +
/// part-restricted V-cycles, no from-scratch coarsening; otherwise the
/// full pipeline runs on the patched model.
pub(crate) fn repartition_patched(
    problem: &RepartProblem,
    model: &RepartitionHypergraph,
    warm: bool,
    cfg: &RepartConfig,
) -> RepartResult {
    validate(problem);
    assert_eq!(model.num_computation_vertices, problem.hypergraph.num_vertices());
    assert_eq!(model.k, problem.k);
    let _span = dlb_trace::span!(
        "repartition",
        algorithm = "Zoltan-repart",
        k = problem.k,
        alpha = problem.alpha,
        warm = warm as usize,
    );
    let start = Instant::now();
    let r = if warm {
        let mut hcfg = cfg.hypergraph.clone();
        hcfg.warm_start = true;
        // At least one part-restricted keep-if-better V-cycle after the
        // flat polish — that cycle is the warm seed's only chance to
        // escape the previous epoch's basin.
        hcfg.num_vcycles = hcfg.num_vcycles.max(2);
        let seed = model.extend_assignment(problem.old_part);
        dlb_partitioner::refine_partition_fixed(
            &model.augmented,
            problem.k,
            &model.fixed,
            &seed,
            &hcfg,
        )
    } else {
        partition_hypergraph_fixed(&model.augmented, problem.k, &model.fixed, &cfg.hypergraph)
    };
    let new_part = model.decode(&r.part);
    finish(problem, new_part, start)
}

/// Runs one of the four algorithms collectively on an SPMD communicator.
///
/// The hypergraph methods run the genuinely parallel partitioner of
/// [`dlb_partitioner::par`]; the graph baselines execute their
/// deterministic serial algorithm redundantly on every rank (they are
/// communication-free by construction here — see DESIGN.md §4), so all
/// ranks return identical results either way.
pub fn repartition_parallel(
    comm: &mut Comm,
    problem: &RepartProblem,
    algorithm: Algorithm,
    cfg: &RepartConfig,
) -> RepartResult {
    validate(problem);
    let _span = dlb_trace::span!(
        "repartition",
        algorithm = algorithm.name(),
        k = problem.k,
        alpha = problem.alpha,
        ranks = comm.size(),
    );
    let start = Instant::now();
    let new_part = match algorithm {
        Algorithm::ZoltanRepart => {
            let model = RepartitionHypergraph::build(
                problem.hypergraph,
                problem.old_part,
                problem.k,
                problem.alpha,
            );
            let r = parallel_partition_fixed(
                comm,
                &model.augmented,
                problem.k,
                &model.fixed,
                &cfg.hypergraph,
            );
            model.decode(&r.part)
        }
        Algorithm::ZoltanScratch => {
            let free = FixedAssignment::free(problem.hypergraph.num_vertices());
            let r =
                parallel_partition_fixed(comm, problem.hypergraph, problem.k, &free, &cfg.hypergraph);
            remap_to_minimize_migration(
                &r.part,
                problem.old_part,
                problem.hypergraph.vertex_sizes(),
                problem.k,
            )
        }
        Algorithm::ParmetisRepart | Algorithm::ParmetisScratch => {
            return {
                let mut r = repartition(problem, algorithm, cfg);
                // Keep ranks in lockstep for fair timing comparisons.
                comm.barrier();
                r.elapsed = start.elapsed();
                r
            };
        }
    };
    finish(problem, new_part, start)
}

fn validate(problem: &RepartProblem) {
    assert!(problem.k > 0, "k must be positive");
    assert!(problem.alpha > 0.0, "alpha must be positive");
    assert_eq!(problem.hypergraph.num_vertices(), problem.graph.num_vertices());
    assert_eq!(problem.old_part.len(), problem.hypergraph.num_vertices());
    assert!(problem.old_part.iter().all(|&p| p < problem.k));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::convert::column_net_model_unit;
    use dlb_hypergraph::GraphBuilder;

    fn grid_problem(rows: usize, cols: usize, k: usize) -> (CsrGraph, Hypergraph, Vec<PartId>) {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut b = GraphBuilder::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let h = column_net_model_unit(&g);
        // Old partition: column stripes of width cols/k (deliberately OK
        // but not optimal).
        let old: Vec<usize> = (0..rows * cols).map(|v| (v % cols) * k / cols).collect();
        (g, h, old)
    }

    #[test]
    fn all_four_algorithms_produce_valid_results() {
        let (g, h, old) = grid_problem(10, 10, 4);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 10.0 };
        let cfg = RepartConfig::seeded(1);
        for alg in Algorithm::ALL {
            let r = repartition(&problem, alg, &cfg);
            assert_eq!(r.new_part.len(), 100, "{}", alg.name());
            assert!(r.new_part.iter().all(|&p| p < 4));
            assert!(r.imbalance <= 1.2, "{}: imbalance {}", alg.name(), r.imbalance);
            assert!(r.cost.comm > 0.0, "{}: a grid always has cut", alg.name());
        }
    }

    #[test]
    fn repart_methods_migrate_less_at_small_alpha() {
        let (g, h, old) = grid_problem(12, 12, 4);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 1.0 };
        let cfg = RepartConfig::seeded(2);
        let zr = repartition(&problem, Algorithm::ZoltanRepart, &cfg);
        let zs = repartition(&problem, Algorithm::ZoltanScratch, &cfg);
        assert!(
            zr.cost.migration <= zs.cost.migration,
            "repart migration {} should not exceed scratch {}",
            zr.cost.migration,
            zs.cost.migration
        );
    }

    #[test]
    fn zoltan_repart_total_cost_beats_naive_scratch_at_alpha_one() {
        let (g, h, old) = grid_problem(12, 12, 4);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 1.0 };
        let cfg = RepartConfig::seeded(3);
        let zr = repartition(&problem, Algorithm::ZoltanRepart, &cfg);
        let zs = repartition(&problem, Algorithm::ZoltanScratch, &cfg);
        assert!(
            zr.cost.total() <= zs.cost.total() * 1.1,
            "repart {} vs scratch {}",
            zr.cost.total(),
            zs.cost.total()
        );
    }

    #[test]
    fn large_alpha_approaches_pure_communication_optimization() {
        let (g, h, old) = grid_problem(12, 12, 4);
        let cfg = RepartConfig::seeded(4);
        let lo = repartition(
            &RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 1.0 },
            Algorithm::ZoltanRepart,
            &cfg,
        );
        let hi = repartition(
            &RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 1000.0 },
            Algorithm::ZoltanRepart,
            &cfg,
        );
        assert!(
            hi.cost.comm <= lo.cost.comm,
            "alpha=1000 comm {} should be <= alpha=1 comm {}",
            hi.cost.comm,
            lo.cost.comm
        );
    }

    #[test]
    fn moved_counts_are_consistent() {
        let (g, h, old) = grid_problem(8, 8, 2);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 2, alpha: 5.0 };
        let r = repartition(&problem, Algorithm::ZoltanRepart, &RepartConfig::seeded(5));
        let recount = old.iter().zip(&r.new_part).filter(|(a, b)| a != b).count();
        assert_eq!(r.moved, recount);
    }

    #[test]
    fn patched_cold_path_matches_repartition() {
        let (g, h, old) = grid_problem(10, 10, 4);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 4, alpha: 10.0 };
        let cfg = RepartConfig::seeded(7);
        let model = RepartitionHypergraph::build(&h, &old, 4, 10.0);
        let a = repartition(&problem, Algorithm::ZoltanRepart, &cfg);
        let b = repartition_patched(&problem, &model, false, &cfg);
        assert_eq!(a.new_part, b.new_part, "cold patched path must equal the standard driver");
        // The warm path optimizes the same objective under the same
        // constraints, just from a warm seed.
        let w = repartition_patched(&problem, &model, true, &cfg);
        assert!(w.new_part.iter().all(|&p| p < 4));
        assert!(w.imbalance <= 1.0 + cfg.epsilon + 1e-9, "imbalance {}", w.imbalance);
    }

    #[test]
    fn parallel_driver_agrees_across_ranks() {
        use dlb_mpisim::run_spmd;
        let (g, h, old) = grid_problem(8, 8, 2);
        let cfg = RepartConfig::seeded(6);
        let results = run_spmd(3, |comm| {
            let problem =
                RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 2, alpha: 10.0 };
            let r = repartition_parallel(comm, &problem, Algorithm::ZoltanRepart, &cfg);
            r.new_part
        });
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_nonpositive_alpha() {
        let (g, h, old) = grid_problem(4, 4, 2);
        let problem = RepartProblem { hypergraph: &h, graph: &g, old_part: &old, k: 2, alpha: 0.0 };
        let _ = repartition(&problem, Algorithm::ZoltanRepart, &RepartConfig::default());
    }
}
