//! Criterion benches for the cost figures (Figures 2–6): one benchmark
//! per dataset, measuring a single Zoltan-repart epoch (the operation
//! whose output the figures aggregate). Full figure regeneration (all
//! algorithms × k × α, with averaging) is done by the `figures` binary;
//! these benches track the per-epoch cost of the headline algorithm on
//! each dataset regime so regressions show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::{repartition, Algorithm, RepartConfig, RepartProblem};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn bench_dataset(c: &mut Criterion, kind: DatasetKind, scale: f64) {
    let seed = 42;
    let dataset = Dataset::generate(kind, scale, seed);
    let k = 8;
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream = EpochStream::new(
        dataset.graph,
        Perturbation::structure(),
        k,
        initial,
        seed,
    );
    let snapshot = stream.next_epoch();
    let cfg = RepartConfig::seeded(seed);

    let mut group = c.benchmark_group(format!("fig_cost/{}", kind.name()));
    group.sample_size(10);
    for alpha in [1.0, 100.0] {
        group.bench_with_input(BenchmarkId::new("zoltan_repart", alpha), &alpha, |b, &alpha| {
            b.iter(|| {
                let problem = RepartProblem {
                    hypergraph: &snapshot.hypergraph,
                    graph: &snapshot.graph,
                    old_part: &snapshot.old_part,
                    k,
                    alpha,
                };
                repartition(&problem, Algorithm::ZoltanRepart, &cfg)
            })
        });
    }
    group.finish();
}

fn fig2_xyce(c: &mut Criterion) {
    bench_dataset(c, DatasetKind::Xyce680s, 0.002);
}
fn fig3_lipid(c: &mut Criterion) {
    bench_dataset(c, DatasetKind::Lipid2D, 0.1);
}
fn fig4_auto(c: &mut Criterion) {
    bench_dataset(c, DatasetKind::Auto, 0.002);
}
fn fig5_apoa(c: &mut Criterion) {
    bench_dataset(c, DatasetKind::Apoa1_10, 0.005);
}
fn fig6_cage(c: &mut Criterion) {
    bench_dataset(c, DatasetKind::Cage14, 0.0006);
}

criterion_group!(benches, fig2_xyce, fig3_lipid, fig4_auto, fig5_apoa, fig6_cage);
criterion_main!(benches);
