//! Criterion benches for the runtime figures (Figures 7–8): the
//! hypergraph-based methods against the graph-based methods on the three
//! datasets the paper uses for timing (xyce680s sparse, 2DLipid dense,
//! auto medium-dense). The paper's observations to look for:
//!
//! * sparse (xyce680s-like): hypergraph ≈ graph runtime;
//! * medium-dense (auto-like): graph ~an order of magnitude faster;
//! * dense (2DLipid-like): the gap narrows again.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::{repartition, Algorithm, RepartConfig, RepartProblem};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn bench_runtimes(c: &mut Criterion, kind: DatasetKind, scale: f64) {
    let seed = 7;
    let dataset = Dataset::generate(kind, scale, seed);
    let k = 8;
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream = EpochStream::new(
        dataset.graph,
        Perturbation::structure(),
        k,
        initial,
        seed,
    );
    let snapshot = stream.next_epoch();
    let cfg = RepartConfig::seeded(seed);

    let mut group = c.benchmark_group(format!("fig_runtime/{}", kind.name()));
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::new(alg.name(), k), &alg, |b, &alg| {
            b.iter(|| {
                let problem = RepartProblem {
                    hypergraph: &snapshot.hypergraph,
                    graph: &snapshot.graph,
                    old_part: &snapshot.old_part,
                    k,
                    alpha: 100.0,
                };
                repartition(&problem, alg, &cfg)
            })
        });
    }
    group.finish();
}

fn fig7_xyce(c: &mut Criterion) {
    bench_runtimes(c, DatasetKind::Xyce680s, 0.002);
}
fn fig8a_lipid(c: &mut Criterion) {
    bench_runtimes(c, DatasetKind::Lipid2D, 0.1);
}
fn fig8b_auto(c: &mut Criterion) {
    bench_runtimes(c, DatasetKind::Auto, 0.002);
}

criterion_group!(benches, fig7_xyce, fig8a_lipid, fig8b_auto);
criterion_main!(benches);
