//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **RB vs direct k-way** on the augmented repartitioning hypergraph
//!   (Section 4.4 vs the direct scheme; Zoltan ships RB, we default the
//!   repartitioning driver to k-way — this bench justifies that choice).
//! * **Scaled vs unscaled IPM** (PaToH's 1/(|n|−1) net scaling in the
//!   coarsening inner products).
//! * **Best-of-N coarse attempts** (1 vs 8).
//!
//! Criterion reports throughput; quality deltas print to stderr once per
//! bench so both dimensions are visible in `cargo bench` output.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_core::RepartitionHypergraph;
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_partitioner::{partition_hypergraph_fixed, Config, Scheme};
use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

struct Instance {
    model: RepartitionHypergraph,
    k: usize,
}

fn instance() -> Instance {
    let seed = 11;
    let dataset = Dataset::generate(DatasetKind::Auto, 0.002, seed);
    let k = 8;
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream = EpochStream::new(
        dataset.graph,
        Perturbation::structure(),
        k,
        initial,
        seed,
    );
    let snapshot = stream.next_epoch();
    let model = RepartitionHypergraph::build(&snapshot.hypergraph, &snapshot.old_part, k, 10.0);
    Instance { model, k }
}

fn report_quality(label: &str, inst: &Instance, cfg: &Config) {
    let r = partition_hypergraph_fixed(&inst.model.augmented, inst.k, &inst.model.fixed, cfg);
    let obj = inst.model.objective(&inst.model.decode(&r.part));
    eprintln!("[ablation quality] {label}: objective {obj:.1}, imbalance {:.3}", r.imbalance);
}

fn ablation_rb_vs_kway(c: &mut Criterion) {
    let inst = instance();
    let mut group = c.benchmark_group("ablation/scheme");
    group.sample_size(10);
    for (label, scheme) in [
        ("recursive_bisection", Scheme::RecursiveBisection),
        ("direct_kway", Scheme::DirectKway),
    ] {
        let mut cfg = Config::seeded(1);
        cfg.scheme = scheme;
        report_quality(label, &inst, &cfg);
        group.bench_function(label, |b| {
            b.iter(|| {
                partition_hypergraph_fixed(&inst.model.augmented, inst.k, &inst.model.fixed, &cfg)
            })
        });
    }
    group.finish();
}

fn ablation_ipm_scaling(c: &mut Criterion) {
    let inst = instance();
    let mut group = c.benchmark_group("ablation/ipm_scaling");
    group.sample_size(10);
    for (label, scaled) in [("scaled", true), ("unscaled", false)] {
        let mut cfg = Config::seeded(1);
        cfg.coarsening.scaled_ipm = scaled;
        report_quality(label, &inst, &cfg);
        group.bench_function(label, |b| {
            b.iter(|| {
                partition_hypergraph_fixed(&inst.model.augmented, inst.k, &inst.model.fixed, &cfg)
            })
        });
    }
    group.finish();
}

fn ablation_initial_attempts(c: &mut Criterion) {
    let inst = instance();
    let mut group = c.benchmark_group("ablation/initial_attempts");
    group.sample_size(10);
    for attempts in [1usize, 8] {
        let mut cfg = Config::seeded(1);
        cfg.initial.num_attempts = attempts;
        let label = format!("attempts_{attempts}");
        report_quality(&label, &inst, &cfg);
        group.bench_function(&*label, |b| {
            b.iter(|| {
                partition_hypergraph_fixed(&inst.model.augmented, inst.k, &inst.model.fixed, &cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_rb_vs_kway,
    ablation_ipm_scaling,
    ablation_initial_attempts
);
criterion_main!(benches);
