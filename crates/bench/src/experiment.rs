//! The parameter sweep behind Figures 2–8, plus the AMR
//! measured-makespan sweep (`BENCH_amr.json`).

use dlb_amr::{AmrConfig, AmrStream};
use dlb_core::{Algorithm, NetworkModel, RepartConfig, Session, SimulationSummary};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_hypergraph::parallel;
use dlb_mpisim::{run_spmd, CommStats};
use dlb_workloads::{
    AmrSource, Dataset, DatasetKind, EpochSource, EpochStream, PerturbKind, Perturbation,
};

/// Whether repartitioners run serially or SPMD (for the runtime figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingMode {
    /// Serial execution; timings reflect single-thread algorithmic work.
    Serial,
    /// SPMD over simulated ranks (`min(k, max_ranks)` — the host has far
    /// fewer cores than the paper's 64-node cluster, so timings measure
    /// algorithmic + communication-protocol work, not strong scaling).
    Parallel {
        /// Cap on simulated ranks.
        max_ranks: usize,
    },
}

/// What application the sweep balances.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// A synthetic dataset regime under one of the paper's two
    /// perturbations (Section 5).
    Perturbed {
        /// Dataset regime.
        dataset: DatasetKind,
        /// Dynamic (structure or weights).
        perturb: PerturbKind,
    },
    /// The quadtree AMR simulator of `dlb_amr` — a real adaptive mesh
    /// whose structure, weights, *and* payloads all change every epoch.
    Amr(AmrConfig),
}

impl Workload {
    /// The `dataset` column value for this workload's rows.
    pub fn dataset_name(&self) -> &'static str {
        match self {
            Workload::Perturbed { dataset, .. } => dataset.name(),
            Workload::Amr(_) => "amr",
        }
    }

    /// The `perturb` column value for this workload's rows.
    pub fn perturb_name(&self) -> &'static str {
        match self {
            Workload::Perturbed { perturb, .. } => perturb_name(*perturb),
            Workload::Amr(_) => "adaptive",
        }
    }
}

/// One sweep: a workload across k × α × algorithms.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The application being balanced.
    pub workload: Workload,
    /// Part counts (the paper: 16, 32, 64).
    pub ks: Vec<usize>,
    /// Epoch lengths α (the paper: 1, 10, 100, 1000).
    pub alphas: Vec<f64>,
    /// Trials averaged per configuration (the paper: 20).
    pub trials: usize,
    /// Epochs simulated per trial.
    pub epochs: usize,
    /// Dataset scale in `(0, 1]` ([`Workload::Perturbed`] only — the AMR
    /// workload sizes itself through its [`AmrConfig`]).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Serial or SPMD execution.
    pub timing: TimingMode,
    /// Worker threads for running independent sweep cells concurrently
    /// (`0` = auto via `DLB_THREADS` / available parallelism). Every cell
    /// derives its RNG stream from the cell's own trial seeds, so results
    /// are identical at any thread count. Use `1` when per-row wall-clock
    /// timings matter — concurrent cells share cores and inflate
    /// `time_ms`.
    pub threads: usize,
    /// When set, every epoch's partition is *executed* under this
    /// machine model ([`dlb_core::exec`]) and rows carry measured
    /// makespans; `None` keeps the model-cost-only sweep.
    pub network: Option<NetworkModel>,
}

impl SweepConfig {
    /// The paper's grid at a laptop-friendly scale: k ∈ {16,32,64},
    /// α ∈ {1,10,100,1000}, few trials/epochs.
    pub fn paper_grid(dataset: DatasetKind, perturb: PerturbKind, scale: f64) -> Self {
        SweepConfig {
            workload: Workload::Perturbed { dataset, perturb },
            ks: vec![16, 32, 64],
            alphas: vec![1.0, 10.0, 100.0, 1000.0],
            trials: 3,
            epochs: 3,
            scale,
            seed: 42,
            timing: TimingMode::Serial,
            threads: 1,
            network: None,
        }
    }

    /// A minutes-scale smoke grid for CI and Criterion.
    pub fn quick(dataset: DatasetKind, perturb: PerturbKind, scale: f64) -> Self {
        SweepConfig {
            ks: vec![8],
            alphas: vec![1.0, 100.0],
            trials: 1,
            epochs: 2,
            ..SweepConfig::paper_grid(dataset, perturb, scale)
        }
    }

    /// The AMR measured-makespan sweep: the quadtree mesh at `amr`'s
    /// scale, k ∈ {4, 8}, the paper's α grid, every epoch executed under
    /// the default [`NetworkModel`].
    pub fn amr(amr: AmrConfig) -> Self {
        SweepConfig {
            workload: Workload::Amr(amr),
            ks: vec![4, 8],
            alphas: vec![1.0, 10.0, 100.0, 1000.0],
            trials: 2,
            epochs: 4,
            scale: 1.0,
            seed: 42,
            timing: TimingMode::Serial,
            threads: 1,
            network: Some(NetworkModel::default()),
        }
    }
}

/// One averaged measurement: a single bar of a figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// `"structure"` or `"weights"`.
    pub perturb: &'static str,
    /// Parts.
    pub k: usize,
    /// Epoch length.
    pub alpha: f64,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Mean communication volume per epoch (bottom bar segment).
    pub comm: f64,
    /// Mean normalized migration `mig/α` per epoch (top bar segment).
    pub mig_norm: f64,
    /// Mean normalized total (`comm + mig/α`).
    pub total_norm: f64,
    /// Mean repartitioning wall-clock per epoch, in milliseconds.
    pub time_ms: f64,
    /// Worst imbalance observed.
    pub max_imbalance: f64,
    /// Mean simulator messages per epoch, summed over ranks
    /// (`0` under [`TimingMode::Serial`]).
    pub msgs_per_epoch: f64,
    /// Mean simulator payload bytes per epoch, summed over ranks
    /// (`0` under [`TimingMode::Serial`]).
    pub bytes_per_epoch: f64,
    /// Mean measured epoch makespan `α·(t_comp + t_comm) + t_mig`, in
    /// milliseconds (`0` when the sweep runs without a network model).
    pub makespan_ms: f64,
    /// Mean measured compute phase per iteration, milliseconds.
    pub comp_ms: f64,
    /// Mean measured communication phase per iteration, milliseconds.
    pub comm_ms: f64,
    /// Mean measured migration phase per epoch, milliseconds.
    pub mig_ms: f64,
}

fn perturbation(kind: PerturbKind) -> Perturbation {
    match kind {
        PerturbKind::Structure => Perturbation::structure(),
        PerturbKind::Weights => Perturbation::weights(),
    }
}

fn perturb_name(kind: PerturbKind) -> &'static str {
    match kind {
        PerturbKind::Structure => "structure",
        PerturbKind::Weights => "weights",
    }
}

/// Builds a fresh epoch source for one trial: the workload's base
/// problem plus the static initial partition of epoch 1 (same start for
/// every algorithm). Deterministic in `(cfg, k, trial_seed)`, so each
/// SPMD rank can construct its own identical copy.
fn make_source(cfg: &SweepConfig, k: usize, trial_seed: u64) -> Box<dyn EpochSource> {
    match cfg.workload {
        Workload::Perturbed { dataset, perturb } => {
            let dataset = Dataset::generate(dataset, cfg.scale, trial_seed);
            let initial =
                partition_kway(&dataset.graph, k, &GraphConfig::seeded(trial_seed)).part;
            Box::new(EpochStream::new(
                dataset.graph,
                perturbation(perturb),
                k,
                initial,
                trial_seed,
            ))
        }
        Workload::Amr(amr) => {
            let stream = AmrStream::new(amr, k, trial_seed);
            let low = stream.initial_lowering();
            let initial = partition_kway(&low.graph, k, &GraphConfig::seeded(trial_seed)).part;
            Box::new(AmrSource::new(stream, &initial))
        }
    }
}

/// Runs one trial: fresh source, then `epochs` repartitions. Returns the
/// simulation summary plus the communication traffic (messages/bytes
/// sent, summed over all ranks; zero in serial mode, which performs no
/// simulated communication).
fn run_trial(
    cfg: &SweepConfig,
    k: usize,
    alpha: f64,
    algorithm: Algorithm,
    trial: usize,
) -> (SimulationSummary, CommStats) {
    let trial_seed = cfg.seed ^ (trial as u64).wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xFEED;
    let repart_cfg = RepartConfig::seeded(trial_seed);
    match cfg.timing {
        TimingMode::Serial => {
            let mut source = make_source(cfg, k, trial_seed);
            let mut session = Session::new(repart_cfg)
                .algorithm(algorithm)
                .alpha(alpha)
                .epochs(cfg.epochs)
                .workload(&mut source);
            if let Some(net) = &cfg.network {
                session = session.network(*net);
            }
            (session.run().expect("valid sweep session"), CommStats::default())
        }
        TimingMode::Parallel { max_ranks } => {
            let ranks = k.min(max_ranks).max(1);
            let results = run_spmd(ranks, |comm| {
                let mut source = make_source(cfg, k, trial_seed);
                let mut session = Session::new(repart_cfg.clone())
                    .algorithm(algorithm)
                    .alpha(alpha)
                    .epochs(cfg.epochs)
                    .workload(&mut source);
                if let Some(net) = &cfg.network {
                    session = session.network(*net);
                }
                let summary = session.run_on(comm).expect("valid sweep session");
                (summary, comm.stats())
            });
            let mut traffic = CommStats::default();
            let mut summary = None;
            for (s, stats) in results {
                traffic.messages_sent += stats.messages_sent;
                traffic.messages_received += stats.messages_received;
                traffic.bytes_sent += stats.bytes_sent;
                traffic.bytes_received += stats.bytes_received;
                summary = Some(s);
            }
            (summary.expect("at least one rank"), traffic)
        }
    }
}

/// Runs one sweep cell (a k × α × algorithm bar): all its trials,
/// averaged.
fn run_cell(cfg: &SweepConfig, k: usize, alpha: f64, algorithm: Algorithm) -> Row {
    let mut comm = 0.0;
    let mut mig_norm = 0.0;
    let mut total = 0.0;
    let mut time_ms = 0.0;
    let mut max_imb: f64 = 1.0;
    let mut msgs = 0.0;
    let mut bytes = 0.0;
    let mut makespan_ms = 0.0;
    let mut comp_ms = 0.0;
    let mut comm_ms = 0.0;
    let mut mig_ms = 0.0;
    let epochs = cfg.epochs.max(1) as f64;
    for trial in 0..cfg.trials.max(1) {
        let (summary, traffic) = run_trial(cfg, k, alpha, algorithm, trial);
        comm += summary.mean_comm();
        mig_norm += summary.mean_normalized_migration();
        total += summary.mean_normalized_total();
        time_ms += summary.mean_elapsed().as_secs_f64() * 1e3;
        max_imb = max_imb.max(summary.max_imbalance());
        msgs += traffic.messages_sent as f64 / epochs;
        bytes += traffic.bytes_sent as f64 / epochs;
        makespan_ms += summary.mean_makespan().unwrap_or(0.0) * 1e3;
        if let Some((tc, tm, tg)) = summary.mean_phase_times() {
            comp_ms += tc * 1e3;
            comm_ms += tm * 1e3;
            mig_ms += tg * 1e3;
        }
    }
    let t = cfg.trials.max(1) as f64;
    Row {
        dataset: cfg.workload.dataset_name(),
        perturb: cfg.workload.perturb_name(),
        k,
        alpha,
        algorithm,
        comm: comm / t,
        mig_norm: mig_norm / t,
        total_norm: total / t,
        time_ms: time_ms / t,
        max_imbalance: max_imb,
        msgs_per_epoch: msgs / t,
        bytes_per_epoch: bytes / t,
        makespan_ms: makespan_ms / t,
        comp_ms: comp_ms / t,
        comm_ms: comm_ms / t,
        mig_ms: mig_ms / t,
    }
}

/// Runs the full sweep, invoking `progress` once per completed bar.
///
/// Cells (k × α × algorithm bars) are independent — each trial seeds its
/// own RNG stream — so with `cfg.threads > 1` they run concurrently, one
/// cell per chunk. Rows are collected and reported in the grid's
/// deterministic order regardless of the thread count (`progress` fires
/// after a cell and all its predecessors have completed).
pub fn run_sweep(cfg: &SweepConfig, mut progress: impl FnMut(&Row)) -> Vec<Row> {
    let mut cells: Vec<(usize, f64, Algorithm)> = Vec::new();
    for &k in &cfg.ks {
        for &alpha in &cfg.alphas {
            for algorithm in Algorithm::ALL {
                cells.push((k, alpha, algorithm));
            }
        }
    }
    let threads = parallel::resolve_threads(cfg.threads);
    let rows: Vec<Row> = parallel::map_chunks(threads, cells.len(), 1, |i, _| {
        let (k, alpha, algorithm) = cells[i];
        run_cell(cfg, k, alpha, algorithm)
    });
    for row in &rows {
        progress(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_full_grid() {
        let mut cfg = SweepConfig::quick(DatasetKind::Auto, PerturbKind::Structure, 0.0005);
        cfg.ks = vec![4];
        cfg.alphas = vec![1.0];
        let rows = run_sweep(&cfg, |_| {});
        assert_eq!(rows.len(), 4, "one row per algorithm");
        for row in &rows {
            assert!(row.total_norm > 0.0);
            assert!((row.total_norm - (row.comm + row.mig_norm)).abs() < 1e-9);
            assert!(row.time_ms >= 0.0);
            assert_eq!(row.msgs_per_epoch, 0.0, "serial mode performs no comm");
            assert_eq!(row.bytes_per_epoch, 0.0);
        }
    }

    #[test]
    fn parallel_timing_mode_runs() {
        let mut cfg = SweepConfig::quick(DatasetKind::Xyce680s, PerturbKind::Structure, 0.0005);
        cfg.ks = vec![4];
        cfg.alphas = vec![10.0];
        cfg.timing = TimingMode::Parallel { max_ranks: 2 };
        let rows = run_sweep(&cfg, |_| {});
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.total_norm > 0.0, "{:?}", row.algorithm);
            assert!(row.time_ms > 0.0);
            // Every algorithm at least synchronizes per epoch; the SPMD
            // hypergraph methods also move real payload bytes (the graph
            // baselines run replicated, exchanging only zero-sized
            // barrier tokens).
            assert!(row.msgs_per_epoch > 0.0, "SPMD epochs exchange messages");
            let is_spmd = matches!(
                row.algorithm,
                Algorithm::ZoltanRepart | Algorithm::ZoltanScratch
            );
            if is_spmd {
                assert!(row.bytes_per_epoch > 0.0, "SPMD epochs move payload bytes");
            }
        }
    }

    #[test]
    fn amr_sweep_measures_makespans() {
        let mut cfg = SweepConfig::amr(AmrConfig::small());
        cfg.ks = vec![4];
        cfg.alphas = vec![10.0];
        cfg.trials = 1;
        cfg.epochs = 2;
        let rows = run_sweep(&cfg, |_| {});
        assert_eq!(rows.len(), 4, "one row per algorithm");
        for row in &rows {
            assert_eq!(row.dataset, "amr");
            assert_eq!(row.perturb, "adaptive");
            assert!(row.total_norm > 0.0, "{:?}", row.algorithm);
            assert!(row.makespan_ms > 0.0, "measured sweep must clock epochs");
            assert!(row.comp_ms > 0.0);
            let recomposed = 10.0 * (row.comp_ms + row.comm_ms) + row.mig_ms;
            assert!(
                (row.makespan_ms - recomposed).abs() < 1e-9,
                "makespan must decompose into phases"
            );
        }
        // Unmeasured sweeps report zero makespans.
        cfg.network = None;
        let rows = run_sweep(&cfg, |_| {});
        assert!(rows.iter().all(|r| r.makespan_ms == 0.0 && r.comp_ms == 0.0));
    }

    #[test]
    fn amr_sweep_is_deterministic_across_threads() {
        let mut cfg = SweepConfig::amr(AmrConfig::small());
        cfg.ks = vec![4];
        cfg.alphas = vec![1.0, 100.0];
        cfg.trials = 1;
        cfg.epochs = 2;
        let one = run_sweep(&cfg, |_| {});
        cfg.threads = 4;
        let four = run_sweep(&cfg, |_| {});
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.total_norm, b.total_norm);
            assert_eq!(a.makespan_ms, b.makespan_ms);
        }
    }

    #[test]
    fn scratch_methods_pay_migration_at_alpha_one() {
        let mut cfg = SweepConfig::quick(DatasetKind::Auto, PerturbKind::Structure, 0.001);
        cfg.ks = vec![4];
        cfg.alphas = vec![1.0];
        cfg.trials = 2;
        let rows = run_sweep(&cfg, |_| {});
        let get = |alg: Algorithm| rows.iter().find(|r| r.algorithm == alg).unwrap();
        let zr = get(Algorithm::ZoltanRepart);
        let zs = get(Algorithm::ZoltanScratch);
        assert!(
            zr.mig_norm <= zs.mig_norm + 1e-9,
            "repart migration {} should not exceed scratch {}",
            zr.mig_norm,
            zs.mig_norm
        );
    }
}
