//! The parameter sweep behind Figures 2–8.

use dlb_core::{
    simulate_epochs, simulate_epochs_parallel, Algorithm, RepartConfig, SimulationSummary,
};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_hypergraph::parallel;
use dlb_mpisim::{run_spmd, CommStats};
use dlb_workloads::{Dataset, DatasetKind, EpochStream, PerturbKind, Perturbation};

/// Whether repartitioners run serially or SPMD (for the runtime figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingMode {
    /// Serial execution; timings reflect single-thread algorithmic work.
    Serial,
    /// SPMD over simulated ranks (`min(k, max_ranks)` — the host has far
    /// fewer cores than the paper's 64-node cluster, so timings measure
    /// algorithmic + communication-protocol work, not strong scaling).
    Parallel {
        /// Cap on simulated ranks.
        max_ranks: usize,
    },
}

/// One sweep: a dataset under one dynamic, across k × α × algorithms.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Dataset regime.
    pub dataset: DatasetKind,
    /// Dynamic (structure or weights).
    pub perturb: PerturbKind,
    /// Part counts (the paper: 16, 32, 64).
    pub ks: Vec<usize>,
    /// Epoch lengths α (the paper: 1, 10, 100, 1000).
    pub alphas: Vec<f64>,
    /// Trials averaged per configuration (the paper: 20).
    pub trials: usize,
    /// Epochs simulated per trial.
    pub epochs: usize,
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Serial or SPMD execution.
    pub timing: TimingMode,
    /// Worker threads for running independent sweep cells concurrently
    /// (`0` = auto via `DLB_THREADS` / available parallelism). Every cell
    /// derives its RNG stream from the cell's own trial seeds, so results
    /// are identical at any thread count. Use `1` when per-row wall-clock
    /// timings matter — concurrent cells share cores and inflate
    /// `time_ms`.
    pub threads: usize,
}

impl SweepConfig {
    /// The paper's grid at a laptop-friendly scale: k ∈ {16,32,64},
    /// α ∈ {1,10,100,1000}, few trials/epochs.
    pub fn paper_grid(dataset: DatasetKind, perturb: PerturbKind, scale: f64) -> Self {
        SweepConfig {
            dataset,
            perturb,
            ks: vec![16, 32, 64],
            alphas: vec![1.0, 10.0, 100.0, 1000.0],
            trials: 3,
            epochs: 3,
            scale,
            seed: 42,
            timing: TimingMode::Serial,
            threads: 1,
        }
    }

    /// A minutes-scale smoke grid for CI and Criterion.
    pub fn quick(dataset: DatasetKind, perturb: PerturbKind, scale: f64) -> Self {
        SweepConfig {
            ks: vec![8],
            alphas: vec![1.0, 100.0],
            trials: 1,
            epochs: 2,
            ..SweepConfig::paper_grid(dataset, perturb, scale)
        }
    }
}

/// One averaged measurement: a single bar of a figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// `"structure"` or `"weights"`.
    pub perturb: &'static str,
    /// Parts.
    pub k: usize,
    /// Epoch length.
    pub alpha: f64,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Mean communication volume per epoch (bottom bar segment).
    pub comm: f64,
    /// Mean normalized migration `mig/α` per epoch (top bar segment).
    pub mig_norm: f64,
    /// Mean normalized total (`comm + mig/α`).
    pub total_norm: f64,
    /// Mean repartitioning wall-clock per epoch, in milliseconds.
    pub time_ms: f64,
    /// Worst imbalance observed.
    pub max_imbalance: f64,
    /// Mean simulator messages per epoch, summed over ranks
    /// (`0` under [`TimingMode::Serial`]).
    pub msgs_per_epoch: f64,
    /// Mean simulator payload bytes per epoch, summed over ranks
    /// (`0` under [`TimingMode::Serial`]).
    pub bytes_per_epoch: f64,
}

fn perturbation(kind: PerturbKind) -> Perturbation {
    match kind {
        PerturbKind::Structure => Perturbation::structure(),
        PerturbKind::Weights => Perturbation::weights(),
    }
}

fn perturb_name(kind: PerturbKind) -> &'static str {
    match kind {
        PerturbKind::Structure => "structure",
        PerturbKind::Weights => "weights",
    }
}

/// Runs one trial: fresh dataset + static initial partition + stream,
/// then `epochs` repartitions. Returns the simulation summary plus the
/// communication traffic (messages/bytes sent, summed over all ranks;
/// zero in serial mode, which performs no simulated communication).
fn run_trial(
    cfg: &SweepConfig,
    k: usize,
    alpha: f64,
    algorithm: Algorithm,
    trial: usize,
) -> (SimulationSummary, CommStats) {
    let trial_seed = cfg.seed ^ (trial as u64).wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xFEED;
    let dataset = Dataset::generate(cfg.dataset, cfg.scale, trial_seed);
    // Static partition of epoch 1 (same start for every algorithm).
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(trial_seed)).part;
    let repart_cfg = RepartConfig::seeded(trial_seed);
    match cfg.timing {
        TimingMode::Serial => {
            let mut stream = EpochStream::new(
                dataset.graph,
                perturbation(cfg.perturb),
                k,
                initial,
                trial_seed,
            );
            let summary = simulate_epochs(&mut stream, cfg.epochs, algorithm, alpha, &repart_cfg);
            (summary, CommStats::default())
        }
        TimingMode::Parallel { max_ranks } => {
            let ranks = k.min(max_ranks).max(1);
            let graph = dataset.graph;
            let results = run_spmd(ranks, |comm| {
                let mut stream = EpochStream::new(
                    graph.clone(),
                    perturbation(cfg.perturb),
                    k,
                    initial.clone(),
                    trial_seed,
                );
                let summary = simulate_epochs_parallel(
                    comm,
                    &mut stream,
                    cfg.epochs,
                    algorithm,
                    alpha,
                    &repart_cfg,
                );
                (summary, comm.stats())
            });
            let mut traffic = CommStats::default();
            let mut summary = None;
            for (s, stats) in results {
                traffic.messages_sent += stats.messages_sent;
                traffic.messages_received += stats.messages_received;
                traffic.bytes_sent += stats.bytes_sent;
                traffic.bytes_received += stats.bytes_received;
                summary = Some(s);
            }
            (summary.expect("at least one rank"), traffic)
        }
    }
}

/// Runs one sweep cell (a k × α × algorithm bar): all its trials,
/// averaged.
fn run_cell(cfg: &SweepConfig, k: usize, alpha: f64, algorithm: Algorithm) -> Row {
    let mut comm = 0.0;
    let mut mig_norm = 0.0;
    let mut total = 0.0;
    let mut time_ms = 0.0;
    let mut max_imb: f64 = 1.0;
    let mut msgs = 0.0;
    let mut bytes = 0.0;
    let epochs = cfg.epochs.max(1) as f64;
    for trial in 0..cfg.trials.max(1) {
        let (summary, traffic) = run_trial(cfg, k, alpha, algorithm, trial);
        comm += summary.mean_comm();
        mig_norm += summary.mean_normalized_migration();
        total += summary.mean_normalized_total();
        time_ms += summary.mean_elapsed().as_secs_f64() * 1e3;
        max_imb = max_imb.max(summary.max_imbalance());
        msgs += traffic.messages_sent as f64 / epochs;
        bytes += traffic.bytes_sent as f64 / epochs;
    }
    let t = cfg.trials.max(1) as f64;
    Row {
        dataset: cfg.dataset.name(),
        perturb: perturb_name(cfg.perturb),
        k,
        alpha,
        algorithm,
        comm: comm / t,
        mig_norm: mig_norm / t,
        total_norm: total / t,
        time_ms: time_ms / t,
        max_imbalance: max_imb,
        msgs_per_epoch: msgs / t,
        bytes_per_epoch: bytes / t,
    }
}

/// Runs the full sweep, invoking `progress` once per completed bar.
///
/// Cells (k × α × algorithm bars) are independent — each trial seeds its
/// own RNG stream — so with `cfg.threads > 1` they run concurrently, one
/// cell per chunk. Rows are collected and reported in the grid's
/// deterministic order regardless of the thread count (`progress` fires
/// after a cell and all its predecessors have completed).
pub fn run_sweep(cfg: &SweepConfig, mut progress: impl FnMut(&Row)) -> Vec<Row> {
    let mut cells: Vec<(usize, f64, Algorithm)> = Vec::new();
    for &k in &cfg.ks {
        for &alpha in &cfg.alphas {
            for algorithm in Algorithm::ALL {
                cells.push((k, alpha, algorithm));
            }
        }
    }
    let threads = parallel::resolve_threads(cfg.threads);
    let rows: Vec<Row> = parallel::map_chunks(threads, cells.len(), 1, |i, _| {
        let (k, alpha, algorithm) = cells[i];
        run_cell(cfg, k, alpha, algorithm)
    });
    for row in &rows {
        progress(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_full_grid() {
        let mut cfg = SweepConfig::quick(DatasetKind::Auto, PerturbKind::Structure, 0.0005);
        cfg.ks = vec![4];
        cfg.alphas = vec![1.0];
        let rows = run_sweep(&cfg, |_| {});
        assert_eq!(rows.len(), 4, "one row per algorithm");
        for row in &rows {
            assert!(row.total_norm > 0.0);
            assert!((row.total_norm - (row.comm + row.mig_norm)).abs() < 1e-9);
            assert!(row.time_ms >= 0.0);
            assert_eq!(row.msgs_per_epoch, 0.0, "serial mode performs no comm");
            assert_eq!(row.bytes_per_epoch, 0.0);
        }
    }

    #[test]
    fn parallel_timing_mode_runs() {
        let mut cfg = SweepConfig::quick(DatasetKind::Xyce680s, PerturbKind::Structure, 0.0005);
        cfg.ks = vec![4];
        cfg.alphas = vec![10.0];
        cfg.timing = TimingMode::Parallel { max_ranks: 2 };
        let rows = run_sweep(&cfg, |_| {});
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.total_norm > 0.0, "{:?}", row.algorithm);
            assert!(row.time_ms > 0.0);
            // Every algorithm at least synchronizes per epoch; the SPMD
            // hypergraph methods also move real payload bytes (the graph
            // baselines run replicated, exchanging only zero-sized
            // barrier tokens).
            assert!(row.msgs_per_epoch > 0.0, "SPMD epochs exchange messages");
            let is_spmd = matches!(
                row.algorithm,
                Algorithm::ZoltanRepart | Algorithm::ZoltanScratch
            );
            if is_spmd {
                assert!(row.bytes_per_epoch > 0.0, "SPMD epochs move payload bytes");
            }
        }
    }

    #[test]
    fn scratch_methods_pay_migration_at_alpha_one() {
        let mut cfg = SweepConfig::quick(DatasetKind::Auto, PerturbKind::Structure, 0.001);
        cfg.ks = vec![4];
        cfg.alphas = vec![1.0];
        cfg.trials = 2;
        let rows = run_sweep(&cfg, |_| {});
        let get = |alg: Algorithm| rows.iter().find(|r| r.algorithm == alg).unwrap();
        let zr = get(Algorithm::ZoltanRepart);
        let zs = get(Algorithm::ZoltanScratch);
        assert!(
            zr.mig_norm <= zs.mig_norm + 1e-9,
            "repart migration {} should not exceed scratch {}",
            zr.mig_norm,
            zs.mig_norm
        );
    }
}
