//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 5).
//!
//! * [`experiment`] — the parameter-sweep runner behind Figures 2–8:
//!   datasets × perturbations × k × α × the four algorithms, averaged
//!   over trials.
//! * [`chart`] — text renderers: the paper's grouped stacked bars
//!   (communication bottom, migration top) as horizontal ASCII bars, and
//!   CSV output for downstream plotting.
//! * Binaries: `table1` prints Table 1 (paper values vs generated
//!   datasets); `figures` regenerates any of Figures 2–8; `amr` runs the
//!   measured-makespan AMR sweep and writes `BENCH_amr.json`.
//!
//! Absolute numbers differ from the paper (synthetic datasets, simulated
//! ranks on one host) — the *shapes* are the reproduction target; see
//! EXPERIMENTS.md for the side-by-side reading.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiment;
pub mod rmat;

pub use experiment::{run_sweep, Row, SweepConfig, TimingMode, Workload};
pub use rmat::rmat_hypergraph;
