//! Text renderers for the figures: grouped stacked bars (the paper's
//! format — communication on the bottom, migration/α on top, four bars
//! per configuration) and CSV export.

use std::fmt::Write as _;

use crate::experiment::Row;

const BAR_WIDTH: usize = 44;

/// Renders a cost figure (Figures 2–6 style): one stacked horizontal bar
/// per (k, α, algorithm), grouped by (k, α), scaled to the largest total.
pub fn render_cost_chart(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "   (normalized total cost = comm + mig/alpha; '#' comm, '%' migration)"
    );
    let max_total = rows.iter().map(|r| r.total_norm).fold(0.0, f64::max);
    if max_total <= 0.0 {
        let _ = writeln!(out, "   (no data)");
        return out;
    }
    let mut last_group = None;
    for row in rows {
        let group = (row.k, row.alpha.to_bits());
        if last_group != Some(group) {
            let _ = writeln!(out, "-- k={:<3} alpha={} --", row.k, row.alpha);
            last_group = Some(group);
        }
        let comm_cells = ((row.comm / max_total) * BAR_WIDTH as f64).round() as usize;
        let mig_cells = ((row.mig_norm / max_total) * BAR_WIDTH as f64).round() as usize;
        let bar: String = "#".repeat(comm_cells) + &"%".repeat(mig_cells);
        let _ = writeln!(
            out,
            "  {:<17} |{:<w$}| {:>10.1} (comm {:>9.1} + mig/a {:>8.1})",
            row.algorithm.name(),
            bar,
            row.total_norm,
            row.comm,
            row.mig_norm,
            w = BAR_WIDTH
        );
    }
    out
}

/// Renders a runtime figure (Figures 7–8 style): one bar per
/// (k, α, algorithm) scaled to the slowest.
pub fn render_runtime_chart(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "   (mean repartitioning wall-clock per epoch)");
    let max_time = rows.iter().map(|r| r.time_ms).fold(0.0, f64::max);
    if max_time <= 0.0 {
        let _ = writeln!(out, "   (no data)");
        return out;
    }
    let mut last_group = None;
    for row in rows {
        let group = (row.k, row.alpha.to_bits());
        if last_group != Some(group) {
            let _ = writeln!(out, "-- k={:<3} alpha={} --", row.k, row.alpha);
            last_group = Some(group);
        }
        let cells = ((row.time_ms / max_time) * BAR_WIDTH as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {:<17} |{:<w$}| {:>9.2} ms",
            row.algorithm.name(),
            "#".repeat(cells),
            row.time_ms,
            w = BAR_WIDTH
        );
    }
    out
}

/// Renders a measured-makespan figure: one stacked bar per
/// (k, α, algorithm) — iteration phases (`α·(comp+comm)`) on the bottom,
/// migration on top — scaled to the slowest epoch.
pub fn render_makespan_chart(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "   (measured epoch makespan = alpha*(comp+comm) + mig; '#' iteration, '%' migration)"
    );
    let max_span = rows.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
    if max_span <= 0.0 {
        let _ = writeln!(out, "   (no measured data)");
        return out;
    }
    let mut last_group = None;
    for row in rows {
        let group = (row.k, row.alpha.to_bits());
        if last_group != Some(group) {
            let _ = writeln!(out, "-- k={:<3} alpha={} --", row.k, row.alpha);
            last_group = Some(group);
        }
        let iter_ms = row.alpha * (row.comp_ms + row.comm_ms);
        let iter_cells = ((iter_ms / max_span) * BAR_WIDTH as f64).round() as usize;
        let mig_cells = ((row.mig_ms / max_span) * BAR_WIDTH as f64).round() as usize;
        let bar: String = "#".repeat(iter_cells) + &"%".repeat(mig_cells);
        let _ = writeln!(
            out,
            "  {:<17} |{:<w$}| {:>10.3} ms (iter {:>9.3} + mig {:>8.3})",
            row.algorithm.name(),
            bar,
            row.makespan_ms,
            iter_ms,
            row.mig_ms,
            w = BAR_WIDTH
        );
    }
    out
}

/// CSV header matching [`to_csv_line`].
pub fn csv_header() -> &'static str {
    "dataset,perturb,k,alpha,algorithm,comm,mig_norm,total_norm,time_ms,max_imbalance,\
     msgs_per_epoch,bytes_per_epoch,makespan_ms,comp_ms,comm_ms,mig_ms"
}

/// One CSV line per row.
pub fn to_csv_line(row: &Row) -> String {
    format!(
        "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.1},{:.1},{:.6},{:.6},{:.6},{:.6}",
        row.dataset,
        row.perturb,
        row.k,
        row.alpha,
        row.algorithm.name(),
        row.comm,
        row.mig_norm,
        row.total_norm,
        row.time_ms,
        row.max_imbalance,
        row.msgs_per_epoch,
        row.bytes_per_epoch,
        row.makespan_ms,
        row.comp_ms,
        row.comm_ms,
        row.mig_ms
    )
}

/// Renders all rows to a CSV document.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from(csv_header());
    out.push('\n');
    for row in rows {
        out.push_str(&to_csv_line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::Algorithm;

    fn sample_rows() -> Vec<Row> {
        vec![
            Row {
                dataset: "auto",
                perturb: "structure",
                k: 16,
                alpha: 1.0,
                algorithm: Algorithm::ZoltanRepart,
                comm: 100.0,
                mig_norm: 20.0,
                total_norm: 120.0,
                time_ms: 5.0,
                max_imbalance: 1.04,
                msgs_per_epoch: 64.0,
                bytes_per_epoch: 2048.0,
                makespan_ms: 1.25,
                comp_ms: 0.1,
                comm_ms: 0.02,
                mig_ms: 0.05,
            },
            Row {
                dataset: "auto",
                perturb: "structure",
                k: 16,
                alpha: 1.0,
                algorithm: Algorithm::ZoltanScratch,
                comm: 80.0,
                mig_norm: 300.0,
                total_norm: 380.0,
                time_ms: 4.0,
                max_imbalance: 1.02,
                msgs_per_epoch: 48.0,
                bytes_per_epoch: 1536.0,
                makespan_ms: 1.5,
                comp_ms: 0.1,
                comm_ms: 0.01,
                mig_ms: 0.4,
            },
        ]
    }

    #[test]
    fn cost_chart_contains_all_bars() {
        let s = render_cost_chart("Fig test", &sample_rows());
        assert!(s.contains("Zoltan-repart"));
        assert!(s.contains("Zoltan-scratch"));
        assert!(s.contains("k=16"));
        assert!(s.contains('#') && s.contains('%'));
    }

    #[test]
    fn runtime_chart_renders() {
        let s = render_runtime_chart("Fig time", &sample_rows());
        assert!(s.contains("ms"));
        assert!(s.contains("Zoltan-repart"));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let rows = sample_rows();
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], csv_header());
        assert!(lines[1].starts_with("auto,structure,16,1,Zoltan-repart,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn makespan_chart_stacks_phases() {
        let s = render_makespan_chart("Fig makespan", &sample_rows());
        assert!(s.contains("Zoltan-repart"));
        assert!(s.contains("ms"));
        assert!(s.contains('%'), "migration segment rendered");
    }

    #[test]
    fn empty_rows_are_handled() {
        let s = render_cost_chart("empty", &[]);
        assert!(s.contains("no data"));
        let s = render_makespan_chart("empty", &[]);
        assert!(s.contains("no measured data"));
    }
}
