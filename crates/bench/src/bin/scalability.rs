//! Scalability sweep: the paper's closing claim ("the experiments showed
//! that our implementation is scalable") probed on the simulated SPMD
//! machine.
//!
//! Runs the parallel Zoltan-repart pipeline on a fixed problem with an
//! increasing number of simulated ranks and reports, per world size:
//! wall-clock, per-rank point-to-point message counts, and the result's
//! quality (identical across world sizes ⇒ the parallel protocol is
//! deterministic and rank-count-independent in *quality*; message counts
//! grow sub-quadratically ⇒ the candidate/all-reduce protocol scales).
//!
//! On this single-core host wall-clock measures protocol overhead, not
//! speedup — see DESIGN.md §4.
//!
//! Usage: `scalability [--scale S] [--k K] [--ranks 1,2,4,8] [--local-ipm]`

use std::time::Instant;

use dlb_core::{repartition_parallel, Algorithm, RepartConfig, RepartProblem};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_mpisim::run_spmd;
use dlb_workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1)).cloned()
    };
    let scale: f64 = get("--scale").and_then(|v| v.parse().ok()).unwrap_or(0.005);
    let k: usize = get("--k").and_then(|v| v.parse().ok()).unwrap_or(8);
    let ranks_list: Vec<usize> = get("--ranks")
        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let local_ipm = argv.iter().any(|a| a == "--local-ipm");
    let seed = 42;

    let dataset = Dataset::generate(DatasetKind::Auto, scale, seed);
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream =
        EpochStream::new(dataset.graph, Perturbation::structure(), k, initial, seed);
    let snapshot = stream.next_epoch();
    println!(
        "scalability: auto-like, {} vertices, k={k}, local_ipm={local_ipm}",
        snapshot.graph.num_vertices()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "ranks", "time", "msgs/rank", "max msgs", "comm", "migration"
    );

    let mut reference: Option<Vec<usize>> = None;
    for &ranks in &ranks_list {
        let mut cfg = RepartConfig::seeded(seed);
        cfg.hypergraph.coarsening.local_ipm = local_ipm;
        let start = Instant::now();
        let results = run_spmd(ranks, |comm| {
            let problem = RepartProblem {
                hypergraph: &snapshot.hypergraph,
                graph: &snapshot.graph,
                old_part: &snapshot.old_part,
                k,
                alpha: 100.0,
            };
            let r = repartition_parallel(comm, &problem, Algorithm::ZoltanRepart, &cfg);
            (r, comm.stats())
        });
        let elapsed = start.elapsed();
        let msgs: Vec<u64> = results.iter().map(|(_, s)| s.messages_sent).collect();
        let avg_msgs = msgs.iter().sum::<u64>() as f64 / ranks as f64;
        let max_msgs = msgs.iter().copied().max().unwrap_or(0);
        let r = &results[0].0;
        println!(
            "{:>6} {:>10.2}ms {:>14.0} {:>14} {:>12.1} {:>12.1}",
            ranks,
            elapsed.as_secs_f64() * 1e3,
            avg_msgs,
            max_msgs,
            r.cost.comm,
            r.cost.migration
        );
        // Quality must not depend on the world size's *validity*: every
        // rank count must produce a legal, balanced partition.
        assert!(r.imbalance <= 1.2, "ranks={ranks}: imbalance {}", r.imbalance);
        if reference.is_none() {
            reference = Some(r.new_part.clone());
        }
    }
    println!("\nnote: single-host simulation — wall-clock shows protocol overhead,");
    println!("message counts show the communication scaling of the algorithm.");
}
