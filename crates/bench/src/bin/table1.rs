//! Regenerates Table 1: properties of the test datasets.
//!
//! Prints the paper's full-scale values next to the generated dataset's
//! measured values at the chosen scale, demonstrating that each
//! generator reproduces its dataset's regime (|V|, |E|, degree
//! distribution shape).
//!
//! Usage: `table1 [--scale S] [--seed N]` (default scale 0.01).

use dlb_workloads::{Dataset, DatasetKind};

fn parse_flag(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_flag(&args, "--scale").unwrap_or(0.01);
    let seed = parse_flag(&args, "--seed").unwrap_or(42.0) as u64;

    println!("Table 1. Properties of the test datasets (generated at scale {scale})");
    println!(
        "{:<10} | {:>9} {:>10} {:>6} {:>6} {:>8} | {:>9} {:>10} {:>6} {:>6} {:>8} | Application",
        "Name", "|V|", "|E|", "min", "max", "avg", "|V|@1.0", "|E|@1.0", "min*", "max*", "avg*"
    );
    println!(
        "{:<10} | {:>44} | {:>44} | ",
        "", "-- generated ----------------------------", "-- paper (Table 1) ----------------------"
    );
    // Paper's min/max degrees at full scale, for the reference columns.
    let paper_min_max = [(1, 209), (396, 1984), (4, 37), (54, 503), (3, 41)];
    for (kind, (pmin, pmax)) in DatasetKind::ALL.into_iter().zip(paper_min_max) {
        let d = Dataset::generate(kind, scale, seed);
        let s = d.graph.degree_stats();
        println!(
            "{:<10} | {:>9} {:>10} {:>6} {:>6} {:>8.1} | {:>9} {:>10} {:>6} {:>6} {:>8.1} | {}",
            kind.name(),
            d.graph.num_vertices(),
            d.graph.num_edges(),
            s.min,
            s.max,
            s.avg,
            kind.full_vertices(),
            kind.full_edges(),
            pmin,
            pmax,
            kind.full_avg_degree(),
            kind.application(),
        );
    }
    println!();
    println!("Sparse datasets hold avg degree constant under scaling; the dense");
    println!("2DLipid holds its density (avg degree / |V|) constant instead.");
}
