//! The AMR measured-makespan experiment.
//!
//! Runs the quadtree AMR workload (`dlb_amr`) through all four
//! algorithms at k ∈ {4, 8} across the paper's α grid, executing every
//! epoch under the default latency–bandwidth machine so each cell
//! carries a *measured* makespan next to its model cost, then runs the
//! paper's two synthetic dynamics (structure, weights) on the same grid
//! as baselines. Renders the makespan chart, writes `BENCH_amr.csv`
//! (full rows) and `BENCH_amr.json` (summary + assertions) to the
//! current directory.
//!
//! Exits non-zero if, for any k, Zoltan-repart's summed measured total
//! cost `α·t_comm + t_mig` over the α ≥ 10 cells exceeds
//! Zoltan-scratch's — the workload-level counterpart of the paper's
//! claim that minimizing `α·comm + mig` directly pays off once epochs
//! are long enough to amortize the repartitioner. (Full makespans,
//! compute phase included, are reported alongside; compute is governed
//! by the balance constraint, not the objective, so it is excluded from
//! the comparison.)
//!
//! Usage: `amr [--scale S] [--seed N] [--epochs E] [--trials T] [--quick]`
//! (defaults: scale 0 = the default 16×16 base mesh, seed 42, epochs 4,
//! trials 2; `--quick` shrinks the mesh for CI smoke runs).

use std::fmt::Write as _;

use dlb_amr::AmrConfig;
use dlb_bench::chart::{render_makespan_chart, to_csv};
use dlb_bench::{run_sweep, Row, SweepConfig};
use dlb_core::Algorithm;
use dlb_workloads::{DatasetKind, PerturbKind};

fn parse_flag(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Sum of `f` over the rows of one algorithm at one k, α ≥ `min_alpha`.
fn sum_over(
    rows: &[Row],
    k: usize,
    alg: Algorithm,
    min_alpha: f64,
    f: impl Fn(&Row) -> f64,
) -> f64 {
    rows.iter()
        .filter(|r| r.k == k && r.algorithm == alg && r.alpha >= min_alpha)
        .map(f)
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_flag(&args, "--scale").unwrap_or(0.0) as u8;
    let seed = parse_flag(&args, "--seed").unwrap_or(42.0) as u64;
    let epochs = parse_flag(&args, "--epochs").unwrap_or(4.0) as usize;
    let trials = parse_flag(&args, "--trials").unwrap_or(2.0) as usize;
    let quick = args.iter().any(|a| a == "--quick");

    let amr_cfg = if quick { AmrConfig::small() } else { AmrConfig::for_scale(scale) };
    let mut cfg = SweepConfig::amr(amr_cfg);
    cfg.seed = seed;
    cfg.epochs = epochs;
    cfg.trials = trials;
    let ks = cfg.ks.clone();
    let alphas = cfg.alphas.clone();

    eprintln!(
        "AMR sweep: base {}..{} mesh, k {:?}, alpha {:?}, {} trial(s) x {} epoch(s)",
        amr_cfg.base_level, amr_cfg.max_level, ks, alphas, trials, epochs
    );
    let amr_rows = run_sweep(&cfg, |row| {
        eprintln!(
            "  k={:<2} alpha={:<6} {:<17} total={:>10.1} makespan={:>9.3} ms",
            row.k,
            row.alpha,
            row.algorithm.name(),
            row.total_norm,
            row.makespan_ms
        );
    });

    // The paper's synthetic dynamics on the same (k, α) grid, as the
    // model-cost baseline the AMR numbers are read against.
    let mut baseline_rows: Vec<Row> = Vec::new();
    for perturb in [PerturbKind::Structure, PerturbKind::Weights] {
        let mut bcfg = SweepConfig::quick(DatasetKind::Auto, perturb, 0.0005);
        bcfg.ks = ks.clone();
        bcfg.alphas = alphas.clone();
        bcfg.seed = seed;
        eprintln!("baseline sweep: {:?} ...", perturb);
        baseline_rows.extend(run_sweep(&bcfg, |_| {}));
    }

    print!("{}", render_makespan_chart("AMR measured makespan", &amr_rows));

    let mut all_rows = amr_rows.clone();
    all_rows.extend(baseline_rows.iter().cloned());
    std::fs::write("BENCH_amr.csv", to_csv(&all_rows)).expect("write BENCH_amr.csv");

    // --- Aggregate the acceptance comparison: per k, the summed
    // measured total cost `α·t_comm + t_mig` (and the full makespan,
    // for context) of repartitioning vs scratch over the long-epoch
    // (α ≥ 10) cells. ---
    let min_alpha = 10.0;
    let cost_ms = |r: &Row| r.alpha * r.comm_ms + r.mig_ms;
    let mut comparisons = Vec::new();
    let mut repart_wins = true;
    for &k in &ks {
        let repart = sum_over(&amr_rows, k, Algorithm::ZoltanRepart, min_alpha, cost_ms);
        let scratch = sum_over(&amr_rows, k, Algorithm::ZoltanScratch, min_alpha, cost_ms);
        let repart_span =
            sum_over(&amr_rows, k, Algorithm::ZoltanRepart, min_alpha, |r| r.makespan_ms);
        let scratch_span =
            sum_over(&amr_rows, k, Algorithm::ZoltanScratch, min_alpha, |r| r.makespan_ms);
        eprintln!(
            "k={k}: Zoltan-repart cost {repart:.3} ms vs Zoltan-scratch {scratch:.3} ms \
             (makespan {repart_span:.1} vs {scratch_span:.1})"
        );
        repart_wins &= repart <= scratch;
        comparisons.push((k, repart, scratch, repart_span, scratch_span));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"amr\",");
    let _ = writeln!(json, "  \"base_level\": {},", amr_cfg.base_level);
    let _ = writeln!(json, "  \"max_level\": {},", amr_cfg.max_level);
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"epochs\": {epochs},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in all_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}/{}\", \"k\": {}, \"alpha\": {}, \"algorithm\": \"{}\", \
             \"comm\": {:.4}, \"mig_norm\": {:.4}, \"total_norm\": {:.4}, \
             \"makespan_ms\": {:.6}, \"comp_ms\": {:.6}, \"comm_ms\": {:.6}, \
             \"mig_ms\": {:.6}}}{}",
            r.dataset,
            r.perturb,
            r.k,
            r.alpha,
            r.algorithm.name(),
            r.comm,
            r.mig_norm,
            r.total_norm,
            r.makespan_ms,
            r.comp_ms,
            r.comm_ms,
            r.mig_ms,
            if i + 1 < all_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"min_alpha\": {min_alpha},");
    let _ = writeln!(json, "  \"zoltan_repart_vs_scratch\": [");
    for (i, (k, repart, scratch, repart_span, scratch_span)) in comparisons.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"k\": {k}, \"repart_cost_ms\": {repart:.6}, \
             \"scratch_cost_ms\": {scratch:.6}, \"repart_makespan_ms\": {repart_span:.6}, \
             \"scratch_makespan_ms\": {scratch_span:.6}}}{}",
            if i + 1 < comparisons.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"repart_no_worse_at_long_epochs\": {repart_wins}");
    json.push_str("}\n");

    std::fs::write("BENCH_amr.json", &json).expect("write BENCH_amr.json");
    print!("{json}");

    assert!(
        amr_rows.iter().all(|r| r.makespan_ms > 0.0),
        "every AMR cell must carry a measured makespan"
    );
    assert!(
        repart_wins,
        "Zoltan-repart must not exceed Zoltan-scratch in summed measured cost \
         (alpha*t_comm + t_mig) at alpha >= {min_alpha}: {comparisons:?}"
    );
}
