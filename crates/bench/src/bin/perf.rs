//! Shared-memory and distributed-memory scaling harness for the
//! multilevel pipeline.
//!
//! Times the thread-parallel kernels — IPM matching, full coarsening,
//! partition-state build + cut evaluation, and the end-to-end
//! partitioner — at several thread counts on the largest bundled
//! workload (cage14), verifies that every thread count produces the
//! bit-identical partition, then runs the distributed V-cycle at
//! several simulated rank counts, verifying bit-identity against the
//! replicated driver and recording per-rank pin storage and **total
//! resident bytes** (owner-computes nets + per-vertex arrays + halos;
//! both must strictly shrink as ranks grow, on any input) plus
//! communication volumes. A memory-budget section partitions an
//! instance sized above a configured single-rank replicated budget at
//! 16/64 simulated ranks, each rank staying below the budget.
//! A final section times the AMR workload pipeline — quadtree
//! adaptation + lowering per epoch, and the measured-makespan execution
//! model on top of repartitioning — and the incremental repartitioning
//! path (delta patch + warm-started refinement vs. full V-cycles every
//! epoch), asserting a competitive ratio ≤ 1.0 at α = 10. Results are
//! written as `BENCH_partitioner.json` in the current directory.
//!
//! An RMAT section compares [`Determinism::Strict`] against
//! [`Determinism::Fast`] on a large power-law hypergraph
//! (`--rmat-scale` log2 vertices): Strict at 1 thread is the quality
//! reference, Fast is timed at 1/2/4/8 threads with its cut asserted
//! within `fast_cut_factor` of Strict and its imbalance within ε. When
//! the host has only one core the multi-thread speedup assertion is
//! skipped (recorded in the JSON) and the pool's overhead is bounded
//! instead: Fast at 2–8 threads must stay within 10% of Fast at 1.
//!
//! Usage: `perf [--scale S] [--seed N] [--k K] [--repeats R]
//! [--rmat-scale S] [--rmat-only] [--dist-memory]
//! [--dist-memory-scale S] [--gate BASELINE.json]`
//! (defaults: scale 0.02, rmat-scale 20, dist-memory-scale 0.003,
//! seed 42, k 8, repeats 3; wall-clock per phase is the minimum over
//! repeats). `--rmat-only` runs just the RMAT section and writes
//! `BENCH_rmat.json`; `--dist-memory` runs just the memory-budget
//! section and writes `BENCH_dist_memory.json`; `--gate` compares the
//! Fast full-partition wall against a checked-in baseline (normalized
//! by a scalar calibration loop to absorb host-speed differences) and
//! exits nonzero on a >15% regression.

use std::fmt::Write as _;
use std::time::Instant;

use dlb_amr::{AmrConfig, AmrStream};
use dlb_core::{Algorithm, RepartConfig, ResizeChoice, Session, WorldPlan};
use dlb_graphpart::{partition_kway, GraphConfig};
use dlb_hypergraph::convert::column_net_model_unit;
use dlb_workloads::AmrSource;
use dlb_hypergraph::{metrics, Hypergraph, VertexLoads};
use dlb_mpisim::run_spmd;
use dlb_partitioner::coarsen::coarsen_to_threads;
use dlb_partitioner::config::PartTargets;
use dlb_partitioner::matching::ipm_matching_threads;
use dlb_partitioner::par::dist::dist_multilevel_stats;
use dlb_partitioner::par::driver::par_multilevel;
use dlb_partitioner::refine::PartitionState;
use dlb_partitioner::{
    partition_hypergraph, refine_partition_fixed, targets_for, Config, Determinism,
    FixedAssignment,
};
use dlb_workloads::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RANK_COUNTS: [usize; 3] = [1, 2, 4];

fn parse_flag(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Minimum wall-clock milliseconds over `repeats` runs of `f`.
fn time_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One timed phase: wall-clock per thread count, in THREAD_COUNTS order.
struct Phase {
    name: &'static str,
    wall_ms: Vec<f64>,
}

fn json_map(counts: &[usize], values: &[f64]) -> String {
    let mut s = String::from("{");
    for (i, (&t, &v)) in counts.iter().zip(values).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{t}\": {v:.4}");
    }
    s.push('}');
    s
}

fn speedups(wall_ms: &[f64]) -> Vec<f64> {
    let base = wall_ms[0];
    wall_ms.iter().map(|&w| if w > 0.0 { base / w } else { 0.0 }).collect()
}

/// Strict-vs-Fast measurements on the RMAT input, plus everything the
/// regression gate and the JSON section need.
struct RmatOut {
    json: String,
    /// Min over thread counts of the Fast full-partition wall — the
    /// gated quantity.
    fast_ms: f64,
    /// Wall of the scalar calibration loop on this host, used to
    /// normalize the gate across machines.
    calib_ms: f64,
}

/// Fixed scalar workload (xorshift stream) timing the host's single-core
/// speed. The gate compares `fast_ms / calib_ms` ratios, so a faster or
/// slower CI machine does not read as a code regression.
fn calibration_ms() -> f64 {
    let t0 = Instant::now();
    let mut acc = 0u64;
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..100_000_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e3
}

/// Extracts the number following `"key":` in a flat JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Times Strict (reference, 1 thread) vs Fast (1/2/4/8 threads) on a
/// seeded RMAT hypergraph and asserts the Fast quality contract.
fn run_rmat_section(rmat_scale: u32, seed: u64, k: usize, repeats: usize) -> RmatOut {
    const EDGE_FACTOR: usize = 8;
    eprintln!("generating RMAT scale {rmat_scale} (edge factor {EDGE_FACTOR}) ...");
    let h = dlb_bench::rmat_hypergraph(rmat_scale, EDGE_FACTOR, seed);
    let n = h.num_vertices();
    eprintln!("rmat hypergraph: {} vertices, {} nets, {} pins", n, h.num_nets(), h.num_pins());

    let calib_ms = calibration_ms();
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Throughput profile: direct k-way (one multilevel instead of k-1
    // bisections), fewer GHG attempts and FM pass-pairs. The section
    // measures Strict-vs-Fast *relative* behavior on a million-vertex
    // input; the quality-tuned defaults would multiply every wall by
    // ~25x without changing the comparison.
    let mut strict_cfg = Config::seeded(seed);
    strict_cfg.scheme = dlb_partitioner::Scheme::DirectKway;
    strict_cfg.initial.num_attempts = 2;
    strict_cfg.refinement.max_passes = 2;
    strict_cfg.threads = 1;
    strict_cfg.determinism = Determinism::Strict;
    let mut strict_result = None;
    let strict_ms = time_ms(repeats, || {
        strict_result = Some(partition_hypergraph(&h, k, &strict_cfg));
    });
    let strict = strict_result.unwrap();
    let strict_imb = metrics::imbalance(&h, &strict.part, k);
    eprintln!(
        "  strict @1: {strict_ms:.1} ms, cut {:.1}, imbalance {strict_imb:.4}",
        strict.cut
    );

    let mut fast_walls: Vec<f64> = Vec::new();
    let mut fast_rows = String::new();
    for (i, &t) in THREAD_COUNTS.iter().enumerate() {
        let mut cfg = strict_cfg.clone();
        cfg.threads = t;
        cfg.determinism = Determinism::Fast;
        let mut result = None;
        let wall = time_ms(repeats, || {
            result = Some(partition_hypergraph(&h, k, &cfg));
        });
        let r = result.unwrap();
        let imb = metrics::imbalance(&h, &r.part, k);
        let cut_ratio = if strict.cut > 0.0 { r.cut / strict.cut } else { 1.0 };
        eprintln!(
            "  fast @{t}: {wall:.1} ms, cut {:.1} ({cut_ratio:.4}x strict), imbalance {imb:.4}",
            r.cut
        );
        if t == 1 {
            assert!(
                r.part == strict.part,
                "Fast at 1 thread must be bit-identical to Strict"
            );
        }
        assert!(
            cut_ratio <= cfg.fast_cut_factor + 1e-9,
            "Fast cut at {t} threads is {cut_ratio:.4}x Strict (allowed {:.2}x)",
            cfg.fast_cut_factor
        );
        assert!(
            imb <= 1.0 + cfg.epsilon + 1e-9,
            "Fast imbalance {imb:.4} exceeds 1 + epsilon at {t} threads"
        );
        let _ = writeln!(
            fast_rows,
            "      {{\"threads\": {t}, \"wall_ms\": {wall:.4}, \"cut\": {:.4}, \
             \"cut_ratio_vs_strict\": {cut_ratio:.6}, \"imbalance\": {imb:.6}}}{}",
            r.cut,
            if i + 1 < THREAD_COUNTS.len() { "," } else { "" }
        );
        fast_walls.push(wall);
    }

    // On a single-core host, parallel walls cannot beat serial; what we
    // can bound is the pool's overhead — oversubscribed Fast runs must
    // stay within 10% of the 1-thread wall. Multi-core hosts assert an
    // actual win instead.
    let max_ratio = fast_walls[1..]
        .iter()
        .map(|&w| w / fast_walls[0])
        .fold(0.0f64, f64::max);
    let speedup_check = if host_threads == 1 {
        assert!(
            max_ratio <= 1.10,
            "Fast at 2-8 threads is {max_ratio:.3}x the 1-thread wall (allowed 1.10x)"
        );
        "skipped_host_threads_1"
    } else {
        let best = fast_walls[1..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best <= fast_walls[0] * 1.05,
            "Fast multi-thread best {best:.1} ms never beats 1-thread {:.1} ms",
            fast_walls[0]
        );
        "ran"
    };
    let fast_ms = fast_walls.iter().cloned().fold(f64::INFINITY, f64::min);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "    \"scale\": {rmat_scale},");
    let _ = writeln!(json, "    \"edge_factor\": {EDGE_FACTOR},");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"k\": {k},");
    let _ = writeln!(json, "    \"repeats\": {},", repeats.max(1));
    let _ = writeln!(json, "    \"vertices\": {n},");
    let _ = writeln!(json, "    \"nets\": {},", h.num_nets());
    let _ = writeln!(json, "    \"pins\": {},", h.num_pins());
    let _ = writeln!(json, "    \"host_threads\": {host_threads},");
    let _ = writeln!(json, "    \"calibration_ms\": {calib_ms:.4},");
    let _ = writeln!(
        json,
        "    \"strict\": {{\"threads\": 1, \"wall_ms\": {strict_ms:.4}, \
         \"cut\": {:.4}, \"imbalance\": {strict_imb:.6}}},",
        strict.cut
    );
    let _ = writeln!(json, "    \"fast\": [");
    json.push_str(&fast_rows);
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"fast_full_partition_ms\": {fast_ms:.4},");
    let _ = writeln!(json, "    \"fast_at_1_bit_identical_to_strict\": true,");
    let _ = writeln!(json, "    \"max_fast_wall_ratio_vs_1thread\": {max_ratio:.4},");
    let _ = writeln!(json, "    \"speedup_check\": \"{speedup_check}\"");
    json.push_str("  }");
    RmatOut { json, fast_ms, calib_ms }
}

/// Compares the Fast full-partition wall against a checked-in baseline,
/// normalized by the calibration loop, and exits nonzero on a >15%
/// regression.
fn run_gate(path: &str, rmat: &RmatOut) {
    let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("gate: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let base_fast = json_number(&baseline, "fast_full_partition_ms").unwrap_or_else(|| {
        eprintln!("gate: baseline {path} has no fast_full_partition_ms");
        std::process::exit(1);
    });
    let base_calib = json_number(&baseline, "calibration_ms").filter(|&c| c > 0.0);
    let (current, base) = match base_calib {
        Some(bc) => (rmat.fast_ms / rmat.calib_ms, base_fast / bc),
        None => (rmat.fast_ms, base_fast),
    };
    let ratio = current / base;
    eprintln!(
        "gate: fast {0:.1} ms (calib {1:.1} ms) vs baseline {base_fast:.1} ms -> \
         normalized ratio {ratio:.3}",
        rmat.fast_ms, rmat.calib_ms
    );
    if ratio > 1.15 {
        eprintln!("gate: FAIL — Fast full_partition regressed {:.1}% (>15%)", (ratio - 1.0) * 1e2);
        std::process::exit(1);
    }
    eprintln!("gate: ok");
}

/// Single-rank replicated memory budget for the `dist_memory` section:
/// the generated instance's residency under replication must exceed
/// this, and every rank of the 16- and 64-rank distributed runs must
/// stay below it.
const DIST_MEMORY_BUDGET_BYTES: usize = 8 << 20;
/// Rank counts exercised by the `dist_memory` section.
const DIST_MEMORY_RANKS: [usize; 2] = [16, 64];

struct DistMemorySection {
    json: String,
    ok: bool,
}

/// Partitions a random-net cage-style instance sized *above* the
/// single-rank replicated budget at 16 and 64 simulated ranks, and
/// checks every rank's total residency (pins + metadata + per-vertex
/// arrays) stays *below* it — the capability the replicated driver
/// cannot offer at any rank count, since it keeps the whole instance
/// everywhere.
fn run_dist_memory_section(scale: f64, seed: u64, k: usize) -> DistMemorySection {
    let kind = DatasetKind::Cage14;
    eprintln!("dist-memory: generating {} at scale {scale} ...", kind.name());
    let dataset = Dataset::generate(kind, scale, seed);
    let h: Hypergraph = column_net_model_unit(&dataset.graph);
    eprintln!(
        "dist-memory: {} vertices, {} nets, {} pins",
        h.num_vertices(),
        h.num_nets(),
        h.num_pins()
    );
    let fixed = FixedAssignment::free(h.num_vertices());
    let targets = PartTargets::uniform(h.total_vertex_weight(), k, 0.05);
    let mut cfg = Config::seeded(seed);
    cfg.threads = 1;
    cfg.dist.distributed = true;
    // A small gather point keeps the redundant per-rank coarse solve
    // cheap — at 64 simulated ranks on an oversubscribed host those
    // solves serialize, and they are the section's wall-clock floor.
    cfg.dist.gather_threshold = 256;

    let run_at = |ranks: usize| -> (usize, bool) {
        let results = run_spmd(ranks, |comm| {
            // The serialized coarse solves also mean a rank can sit in
            // the winner allreduce for minutes while peers compute;
            // widen the deadlock guard so it cannot misfire here.
            comm.set_recv_timeout(std::time::Duration::from_secs(600));
            let mut rng = StdRng::seed_from_u64(seed);
            dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
        });
        let agree = results.iter().all(|(p, _)| *p == results[0].0);
        let distributed = results.iter().all(|(_, s)| s.dist_levels > 0);
        let max_bytes = results.iter().map(|(_, s)| s.total_resident_bytes).max().unwrap();
        (max_bytes, agree && distributed)
    };

    // At one rank, owner-computes storage *is* the whole instance: its
    // residency is what every rank of a replicated run would hold.
    let (replicated_bytes, _) = run_at(1);
    let over_budget = replicated_bytes > DIST_MEMORY_BUDGET_BYTES;
    eprintln!(
        "dist-memory: replicated residency {replicated_bytes} B, budget \
         {DIST_MEMORY_BUDGET_BYTES} B (instance over budget: {over_budget})"
    );
    let mut ok = over_budget;
    let mut per_rank: Vec<(usize, usize)> = Vec::new();
    for &ranks in &DIST_MEMORY_RANKS {
        eprintln!("dist-memory: distributed V-cycle on {ranks} simulated rank(s) ...");
        let (max_bytes, healthy) = run_at(ranks);
        let fits = max_bytes <= DIST_MEMORY_BUDGET_BYTES;
        eprintln!("  max per-rank resident {max_bytes} B (fits budget: {fits})");
        ok &= healthy && fits;
        per_rank.push((ranks, max_bytes));
    }
    // More ranks, strictly less per-rank residency.
    ok &= per_rank.windows(2).all(|w| w[1].1 < w[0].1);

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"budget_bytes\": {DIST_MEMORY_BUDGET_BYTES}, \
         \"replicated_bytes\": {replicated_bytes}, \
         \"replicated_over_budget\": {over_budget}, \"runs\": ["
    );
    for (i, (ranks, bytes)) in per_rank.iter().enumerate() {
        let _ = write!(
            json,
            "{{\"ranks\": {ranks}, \"max_rank_resident_bytes\": {bytes}}}{}",
            if i + 1 < per_rank.len() { ", " } else { "" }
        );
    }
    let _ = write!(json, "], \"ok\": {ok}}}");
    DistMemorySection { json, ok }
}

/// One distributed V-cycle measurement at a fixed simulated rank count.
struct DistRun {
    ranks: usize,
    /// Max over ranks of the per-rank pin storage for the cycle,
    /// including stub copies of this rank's own pins under remote nets.
    max_rank_pins: usize,
    /// Max over ranks of the canonical (owned-net) pin storage — the
    /// share that scales as `|pins|/p` regardless of net locality.
    max_rank_owned_pins: usize,
    /// Max over ranks of the largest per-level ghost count.
    max_rank_ghosts: usize,
    /// Max over ranks of the rank's **total** residency for the cycle:
    /// pins, per-net metadata, and every per-vertex array (weights,
    /// sizes, fixed flags, partition slice, projection maps, ghost
    /// caches). The end-to-end memory figure the harness gates on.
    max_rank_resident_bytes: usize,
    /// Messages sent, summed over all ranks.
    messages_sent: u64,
    /// Payload bytes sent, summed over all ranks.
    bytes_sent: u64,
    /// Whether every rank matched the replicated driver bit-for-bit.
    identical: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_flag(&args, "--scale").unwrap_or(0.02);
    let seed = parse_flag(&args, "--seed").unwrap_or(42.0) as u64;
    let k = parse_flag(&args, "--k").unwrap_or(8.0) as usize;
    let repeats = parse_flag(&args, "--repeats").unwrap_or(3.0) as usize;
    let rmat_scale = parse_flag(&args, "--rmat-scale").unwrap_or(20.0) as u32;
    let rmat_only = args.iter().any(|a| a == "--rmat-only");
    let dist_memory_only = args.iter().any(|a| a == "--dist-memory");
    let dist_memory_scale = parse_flag(&args, "--dist-memory-scale").unwrap_or(0.003);
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if dist_memory_only {
        let section = run_dist_memory_section(dist_memory_scale, seed, k);
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"partitioner_dist_memory\",");
        let _ = writeln!(json, "  \"dist_memory\": {}", section.json);
        json.push_str("}\n");
        std::fs::write("BENCH_dist_memory.json", &json).expect("write BENCH_dist_memory.json");
        print!("{json}");
        assert!(section.ok, "dist-memory budget section failed (see stderr)");
        return;
    }

    let rmat = run_rmat_section(rmat_scale, seed, k, repeats);
    if let Some(path) = &gate_path {
        run_gate(path, &rmat);
    }
    if rmat_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"partitioner_rmat\",");
        let _ = writeln!(json, "  \"rmat\": {}", rmat.json);
        json.push_str("}\n");
        std::fs::write("BENCH_rmat.json", &json).expect("write BENCH_rmat.json");
        print!("{json}");
        return;
    }

    let kind = DatasetKind::Cage14;
    eprintln!("generating {} at scale {scale} ...", kind.name());
    let dataset = Dataset::generate(kind, scale, seed);
    let h: Hypergraph = column_net_model_unit(&dataset.graph);
    let n = h.num_vertices();
    eprintln!("hypergraph: {} vertices, {} nets, {} pins", n, h.num_nets(), h.num_pins());

    let fixed = FixedAssignment::free(n);
    let coarsen_cfg = dlb_partitioner::CoarseningConfig::default();
    let coarse_target = (coarsen_cfg.coarse_to_factor * k).max(coarsen_cfg.min_coarse_vertices);

    let mut phases: Vec<Phase> = vec![
        Phase { name: "matching", wall_ms: Vec::new() },
        Phase { name: "coarsening", wall_ms: Vec::new() },
        Phase { name: "state_build_cut", wall_ms: Vec::new() },
        Phase { name: "full_partition", wall_ms: Vec::new() },
    ];
    let mut cuts: Vec<f64> = Vec::new();
    let mut parts: Vec<Vec<usize>> = Vec::new();

    // A fixed block partition exercises the state build + cut phase.
    let block_part: Vec<usize> = (0..n).map(|v| v * k / n.max(1)).collect();

    for &t in &THREAD_COUNTS {
        eprintln!("timing {t} thread(s) ...");
        phases[0].wall_ms.push(time_ms(repeats, || {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ipm_matching_threads(&h, &fixed, None, &coarsen_cfg, &mut rng, t);
            assert!(m.num_pairs * 2 <= n);
        }));
        phases[1].wall_ms.push(time_ms(repeats, || {
            let mut rng = StdRng::seed_from_u64(seed);
            let hierarchy = coarsen_to_threads(&h, &fixed, coarse_target, &coarsen_cfg, &mut rng, t);
            assert!(!hierarchy.levels.is_empty());
        }));
        phases[2].wall_ms.push(time_ms(repeats, || {
            let state = PartitionState::new_threads(&h, k, block_part.clone(), t);
            let cut = state.cut();
            assert!(cut >= 0.0);
        }));

        let mut cfg = Config::seeded(seed);
        cfg.threads = t;
        let mut result = None;
        phases[3].wall_ms.push(time_ms(repeats, || {
            result = Some(partition_hypergraph(&h, k, &cfg));
        }));
        let r = result.unwrap();
        cuts.push(r.cut);
        parts.push(r.part);
    }

    let identical = parts.iter().all(|p| *p == parts[0]);
    let cut = cuts[0];
    let imbalance = metrics::imbalance(&h, &parts[0], k);

    // --- Distributed-memory V-cycle: per-rank pin storage and comm
    // volume at each rank count, checked bit-identical against the
    // replicated driver at the same rank count. ---
    let targets = PartTargets::uniform(h.total_vertex_weight(), k, 0.05);
    let mut dist_cfg = Config::seeded(seed);
    dist_cfg.threads = 1;
    dist_cfg.dist.distributed = true;
    let mut dist_runs: Vec<DistRun> = Vec::new();
    for &ranks in &RANK_COUNTS {
        eprintln!("distributed V-cycle on {ranks} simulated rank(s) ...");
        let repl_parts = run_spmd(ranks, |comm| {
            let mut rng = StdRng::seed_from_u64(seed);
            par_multilevel(comm, &h, &targets, &fixed, &dist_cfg, &mut rng)
        });
        let dist_results = run_spmd(ranks, |comm| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (part, stats) =
                dist_multilevel_stats(comm, &h, &targets, &fixed, &dist_cfg, &mut rng);
            (part, stats, comm.stats())
        });
        let mut run = DistRun {
            ranks,
            max_rank_pins: 0,
            max_rank_owned_pins: 0,
            max_rank_ghosts: 0,
            max_rank_resident_bytes: 0,
            messages_sent: 0,
            bytes_sent: 0,
            identical: true,
        };
        for ((part, stats, comm_stats), repl) in dist_results.iter().zip(&repl_parts) {
            run.identical &= part == repl;
            run.max_rank_pins = run.max_rank_pins.max(stats.total_local_pins);
            run.max_rank_owned_pins = run.max_rank_owned_pins.max(stats.total_owned_pins);
            run.max_rank_ghosts = run.max_rank_ghosts.max(stats.peak_ghosts);
            run.max_rank_resident_bytes =
                run.max_rank_resident_bytes.max(stats.total_resident_bytes);
            run.messages_sent += comm_stats.messages_sent;
            run.bytes_sent += comm_stats.bytes_sent;
        }
        eprintln!(
            "  max per-rank pins {} (owned {}), ghosts {}, resident {} B, msgs {}, bytes {}, \
             identical {}",
            run.max_rank_pins,
            run.max_rank_owned_pins,
            run.max_rank_ghosts,
            run.max_rank_resident_bytes,
            run.messages_sent,
            run.bytes_sent,
            run.identical
        );
        dist_runs.push(run);
    }
    let dist_identical = dist_runs.iter().all(|r| r.identical);
    // Under owner-computes storage every per-rank figure shrinks with
    // the rank count on *any* input, localized or not: a net's full pin
    // list lives only at its owner and a stub holds only this rank's own
    // pins, so cage14's uniformly random net membership no longer
    // inflates a replicated ghost layer. The harness gates on both the
    // canonical (owned) pin share and the end-to-end resident bytes.
    let pins_shrink = dist_runs
        .windows(2)
        .all(|w| w[1].max_rank_owned_pins < w[0].max_rank_owned_pins);
    let bytes_shrink = dist_runs
        .windows(2)
        .all(|w| w[1].max_rank_resident_bytes < w[0].max_rank_resident_bytes);

    // --- Memory budget: ranks 16/64 partition an instance whose
    // replicated residency exceeds the configured single-rank budget,
    // each rank staying below it. ---
    let dist_memory = run_dist_memory_section(dist_memory_scale, seed, k);

    // --- AMR workload pipeline: epoch generation (adapt + lower) and
    // the measured-makespan overhead on top of plain repartitioning. ---
    let amr_cfg = AmrConfig::default();
    let amr_epochs = 4usize;
    eprintln!("AMR pipeline ({amr_epochs} epochs) ...");
    let amr_gen_ms = time_ms(repeats, || {
        let mut stream = AmrStream::new(amr_cfg, k, seed);
        let low = stream.initial_lowering();
        let init: Vec<usize> = (0..low.cells.len()).map(|v| v * k / low.cells.len()).collect();
        stream.set_initial_partition(&init);
        for _ in 0..amr_epochs {
            let e = stream.next_epoch();
            let part = e.old_part.clone();
            stream.commit_assignment(&e.cells, &part);
        }
    });
    let make_amr_source = || {
        let stream = AmrStream::new(amr_cfg, k, seed);
        let low = stream.initial_lowering();
        let init = partition_kway(&low.graph, k, &GraphConfig::seeded(seed)).part;
        AmrSource::new(stream, &init)
    };
    let repart_cfg = RepartConfig::seeded(seed);
    let amr_sim_ms = time_ms(repeats, || {
        let mut source = make_amr_source();
        let s = Session::new(repart_cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(100.0)
            .epochs(amr_epochs)
            .workload(&mut source)
            .run()
            .expect("valid session");
        assert_eq!(s.reports.len(), amr_epochs);
    });
    let mut amr_mean_makespan = 0.0;
    let amr_measured_ms = time_ms(repeats, || {
        let mut source = make_amr_source();
        let s = Session::new(repart_cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(100.0)
            .epochs(amr_epochs)
            .measured(true)
            .workload(&mut source)
            .run()
            .expect("valid session");
        amr_mean_makespan = s.mean_makespan().expect("measured run");
    });
    eprintln!(
        "  epoch gen {amr_gen_ms:.2} ms, simulate {amr_sim_ms:.2} ms, \
         measured {amr_measured_ms:.2} ms, mean makespan {amr_mean_makespan:.4} s"
    );

    // --- Incremental repartitioning: delta patch + warm-started
    // refinement vs. a full lowering + V-cycle every epoch, on the same
    // AMR stream. The online competitive ratio (cumulative measured
    // α·comm + migration volume vs. the scratch baseline) must stay at
    // or below 1.0 at α = 10 — warm starts may trade nothing away.
    // Drift threshold 1.0 is the maximal exercise of the warm path:
    // every delta epoch warm-starts, no full-V-cycle fallback ever
    // masks a quality gap. ---
    let incr_alpha = 10.0;
    let incr_threshold = 1.0;
    let incr_epochs = 6usize;
    eprintln!("incremental repartitioning ({incr_epochs} epochs, alpha {incr_alpha}) ...");
    let mut scratch_summary = None;
    let incr_scratch_ms = time_ms(repeats, || {
        let mut source = make_amr_source();
        let s = Session::new(repart_cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(incr_alpha)
            .epochs(incr_epochs)
            .measured(true)
            .workload(&mut source)
            .run()
            .expect("valid session");
        scratch_summary = Some(s);
    });
    let mut incr_summary = None;
    let incr_warm_ms = time_ms(repeats, || {
        let mut source = make_amr_source();
        let s = Session::new(repart_cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(incr_alpha)
            .epochs(incr_epochs)
            .measured(true)
            .incremental(true)
            .drift_threshold(incr_threshold)
            .workload(&mut source)
            .run()
            .expect("valid session");
        incr_summary = Some(s);
    });
    let scratch_summary = scratch_summary.unwrap();
    let incr_summary = incr_summary.unwrap();
    let cr = incr_summary
        .competitive_ratio_vs(&scratch_summary)
        .expect("both runs measured the same epoch count");
    let incr_ratio = cr.ratio().expect("nonzero baseline cost");
    eprintln!(
        "  patch+refine {incr_warm_ms:.2} ms vs full V-cycles {incr_scratch_ms:.2} ms; \
         cost volume {:.1} vs {:.1} -> competitive ratio {incr_ratio:.4}",
        cr.policy_cost, cr.baseline_cost
    );
    assert!(
        incr_ratio <= 1.0 + 1e-9,
        "incremental competitive ratio {incr_ratio:.4} exceeds 1.0 at alpha {incr_alpha}"
    );

    // --- Elastic worlds: planned grow/shrink resizes on the same AMR
    // stream at α = 10, with the measured cost model arbitrating
    // repartition-vs-scratch per resize. Reported: the per-resize
    // candidate costs and the choice split. At low α the candidates
    // run close — a resize forces a large reshuffle either way, which
    // is exactly why the driver arbitrates per resize instead of
    // hard-coding either method. ---
    let ela_alpha = 10.0;
    let ela_epochs = 8usize;
    eprintln!("elastic resizes ({ela_epochs} epochs, alpha {ela_alpha}) ...");
    let ela_plan = WorldPlan::new(seed).join(k, 2).leave(1, 4).join(1, 6).leave(k, 8);
    let mut ela_summary = None;
    let ela_ms = time_ms(repeats, || {
        let mut source = make_amr_source();
        let s = Session::new(repart_cfg.clone())
            .algorithm(Algorithm::ZoltanRepart)
            .alpha(ela_alpha)
            .epochs(ela_epochs)
            .measured(true)
            .world_plan(ela_plan.clone())
            .workload(&mut source)
            .run()
            .expect("valid session");
        ela_summary = Some(s);
    });
    let ela_summary = ela_summary.unwrap();
    let ela_records: Vec<_> =
        ela_summary.reports.iter().flat_map(|r| r.resizes.iter()).collect();
    assert_eq!(ela_records.len(), 4, "the plan schedules four resizes");
    let ela_repart_wins =
        ela_records.iter().filter(|r| r.choice == ResizeChoice::Repart).count();
    let ela_repart_cost =
        ela_records.iter().map(|r| r.repart_cost).sum::<f64>() / ela_records.len() as f64;
    let ela_scratch_cost =
        ela_records.iter().map(|r| r.scratch_cost).sum::<f64>() / ela_records.len() as f64;
    for r in &ela_records {
        eprintln!(
            "  epoch {:>2}: {} -> {} parts via {:<7} repart {:>12.1} vs scratch {:>12.1}",
            r.epoch,
            r.k_before,
            r.k_after,
            r.choice.name(),
            r.repart_cost,
            r.scratch_cost
        );
    }
    eprintln!(
        "  {ela_repart_wins}/{} chose repart; mean candidate cost {ela_repart_cost:.1} \
         (repart) vs {ela_scratch_cost:.1} (scratch); wall {ela_ms:.2} ms",
        ela_records.len()
    );

    // --- Multi-constraint loads (DESIGN.md §16): arity-1 must be free
    // (bit-identical partition, wall within noise of the default scalar
    // path), and a 2-constraint run must reach feasibility on every
    // constraint. Cage gets a synthetic degree-proportional second
    // constraint; the AMR lowering supplies the real flops-vs-bytes
    // divergence, where an aux-skewed warm start provably forces the
    // greedy repair pass to engage. ---
    eprintln!("multi-constraint loads ...");
    let mc_cfg = {
        let mut c = Config::seeded(seed);
        c.threads = 1;
        c
    };
    let arity1_default_ms = time_ms(repeats, || {
        let r = partition_hypergraph(&h, k, &mc_cfg);
        assert!(r.cut >= 0.0);
    });
    let h_arity1 = {
        let mut h1 = h.clone();
        h1.set_loads(VertexLoads::from_scalar(h.loads().scalar().to_vec()));
        h1
    };
    let mut arity1_part = Vec::new();
    let arity1_typed_ms = time_ms(repeats, || {
        arity1_part = partition_hypergraph(&h_arity1, k, &mc_cfg).part;
    });
    assert_eq!(arity1_part, parts[0], "typed arity-1 loads changed the partition");

    let h_cage2 = {
        let mut h2 = h.clone();
        let flops = h.loads().scalar().to_vec();
        let bytes: Vec<f64> = (0..n).map(|v| 1.0 + h.vertex_degree(v) as f64).collect();
        h2.set_loads(VertexLoads::from_columns(vec![flops, bytes]));
        h2
    };
    let cage2_cfg = {
        let mut c = Config::builder().seed(seed).epsilons(&[0.05, 0.10]).build().unwrap();
        c.threads = 1;
        c
    };
    let mut cage2_part = Vec::new();
    let mut cage2_cut = 0.0;
    let cage_arity2_ms = time_ms(repeats, || {
        let r = partition_hypergraph(&h_cage2, k, &cage2_cfg);
        cage2_cut = r.cut;
        cage2_part = r.part;
    });
    let cage2_imb = metrics::imbalance_per_constraint(&h_cage2, &cage2_part, k);

    let amr_mc_cfg = AmrConfig { multi_constraint: true, ..AmrConfig::default() };
    let amr_h = AmrStream::new(amr_mc_cfg, k, seed).initial_lowering().hypergraph;
    assert_eq!(amr_h.load_arity(), 2, "multi-constraint lowering must carry 2 columns");
    let amr_n = amr_h.num_vertices();
    let amr2_cfg = {
        let mut c = Config::builder().seed(seed).epsilons(&[0.05, 0.10]).build().unwrap();
        c.threads = 1;
        c
    };
    let mut amr2_part = Vec::new();
    let mut amr2_cut = 0.0;
    let amr_arity2_ms = time_ms(repeats, || {
        let r = partition_hypergraph(&amr_h, k, &amr2_cfg);
        amr2_cut = r.cut;
        amr2_part = r.part;
    });
    let amr2_imb = metrics::imbalance_per_constraint(&amr_h, &amr2_part, k);
    let amr_targets = targets_for(&amr_h, k, &amr2_cfg);
    let amr_feasible = amr_targets.feasible(
        &metrics::part_weights(&amr_h, &amr2_part, k),
        &metrics::aux_part_loads(&amr_h, &amr2_part, k),
    );
    let amr_scalar_cut = {
        let mut h1 = amr_h.clone();
        h1.set_loads(VertexLoads::from_scalar(amr_h.loads().constraint(0).to_vec()));
        partition_hypergraph(&h1, k, &mc_cfg).cut
    };
    // Warm-start from a seed that piles half the cells onto part 0:
    // the byte constraint (uniform per cell) is violated at entry, so
    // the refiner must invoke the repair pass to recover feasibility.
    let mc_session = dlb_trace::session();
    let warm = {
        let mut c = amr2_cfg.clone();
        c.warm_start = true;
        let seed_part: Vec<usize> =
            (0..amr_n).map(|v| if v < amr_n / 2 { 0 } else { v * k / amr_n }).collect();
        refine_partition_fixed(&amr_h, k, &FixedAssignment::free(amr_n), &seed_part, &c)
    };
    let mc_report = mc_session.finish();
    let repair_invocations = mc_report.counter(dlb_trace::Counter::RepairInvocations);
    let repair_moves = mc_report.counter(dlb_trace::Counter::RepairMovesApplied);
    let warm_feasible = amr_targets.feasible(
        &metrics::part_weights(&amr_h, &warm.part, k),
        &metrics::aux_part_loads(&amr_h, &warm.part, k),
    );
    eprintln!(
        "  cage arity-1 {arity1_default_ms:.2} ms (typed {arity1_typed_ms:.2} ms, identical), \
         arity-2 {cage_arity2_ms:.2} ms, cut {cut:.0} -> {cage2_cut:.0}, \
         imbalance [{:.4}, {:.4}]",
        cage2_imb[0], cage2_imb[1]
    );
    eprintln!(
        "  amr ({amr_n} cells) arity-2 {amr_arity2_ms:.2} ms, cut {amr_scalar_cut:.0} -> \
         {amr2_cut:.0}, imbalance [{:.4}, {:.4}], feasible {amr_feasible}; \
         warm repair: {repair_invocations} invocation(s), {repair_moves} move(s), \
         feasible {warm_feasible}",
        amr2_imb[0], amr2_imb[1]
    );

    // --- Phase attribution: one traced full partition, leaf coverage
    // of the span tree, and the cost of tracing itself (session active
    // vs. the no-session fast path, which must stay within noise). ---
    eprintln!("phase attribution (traced full partition) ...");
    let trace_cfg = {
        let mut c = Config::seeded(seed);
        c.threads = 1;
        c
    };
    let untraced_ms = time_ms(repeats, || {
        let r = partition_hypergraph(&h, k, &trace_cfg);
        assert!(r.cut >= 0.0);
    });
    let session = dlb_trace::session();
    let traced_ms = time_ms(repeats, || {
        let r = partition_hypergraph(&h, k, &trace_cfg);
        assert!(r.cut >= 0.0);
    });
    let trace_report = session.finish();
    let leaf_coverage = trace_report.leaf_coverage("partition").unwrap_or(0.0);
    let trace_overhead = if untraced_ms > 0.0 { traced_ms / untraced_ms - 1.0 } else { 0.0 };
    eprintln!(
        "  untraced {untraced_ms:.2} ms, traced {traced_ms:.2} ms \
         (overhead {:.2}%), leaf coverage {:.1}%, {} spans",
        trace_overhead * 1e2,
        leaf_coverage * 1e2,
        trace_report.spans.len()
    );
    let mut phase_rows: Vec<(String, u64, f64)> = trace_report
        .phase_totals()
        .into_iter()
        .map(|(name, (calls, dur_ns))| (name.to_string(), calls, dur_ns as f64 / 1e6))
        .collect();
    phase_rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (name, calls, total_ms) in &phase_rows {
        eprintln!("    {name:<24} {calls:>5} calls {total_ms:>10.3} ms");
    }
    if dlb_trace::COMPILED_IN {
        assert!(
            leaf_coverage >= 0.95,
            "leaf spans cover only {:.1}% of full_partition wall time",
            leaf_coverage * 1e2
        );
    }

    let counts: Vec<usize> = THREAD_COUNTS.to_vec();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"partitioner\",");
    let _ = writeln!(json, "  \"dataset\": \"{}\",", kind.name());
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"vertices\": {n},");
    let _ = writeln!(json, "  \"nets\": {},", h.num_nets());
    let _ = writeln!(json, "  \"pins\": {},", h.num_pins());
    let _ = writeln!(
        json,
        "  \"host_threads\": {},",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    let _ = writeln!(
        json,
        "  \"thread_counts\": [{}],",
        counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"phases\": [");
    for (i, phase) in phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_ms\": {}, \"speedup\": {}}}{}",
            phase.name,
            json_map(&counts, &phase.wall_ms),
            json_map(&counts, &speedups(&phase.wall_ms)),
            if i + 1 < phases.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"distributed\": [");
    for (i, run) in dist_runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"ranks\": {}, \"max_rank_pins\": {}, \"max_rank_owned_pins\": {}, \
             \"max_rank_ghosts\": {}, \"max_rank_resident_bytes\": {}, \
             \"messages_sent\": {}, \"bytes_sent\": {}, \
             \"bit_identical_to_replicated\": {}}}{}",
            run.ranks,
            run.max_rank_pins,
            run.max_rank_owned_pins,
            run.max_rank_ghosts,
            run.max_rank_resident_bytes,
            run.messages_sent,
            run.bytes_sent,
            run.identical,
            if i + 1 < dist_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"dist_rank_owned_pins_strictly_decreasing\": {pins_shrink},");
    let _ = writeln!(json, "  \"dist_rank_resident_bytes_strictly_decreasing\": {bytes_shrink},");
    let _ = writeln!(json, "  \"dist_memory\": {},", dist_memory.json.trim_end());
    let _ = writeln!(
        json,
        "  \"amr\": {{\"epochs\": {amr_epochs}, \"gen_ms\": {amr_gen_ms:.4}, \
         \"simulate_ms\": {amr_sim_ms:.4}, \"measured_ms\": {amr_measured_ms:.4}, \
         \"mean_makespan_s\": {amr_mean_makespan:.6}}},"
    );
    let _ = writeln!(
        json,
        "  \"incremental\": {{\"epochs\": {incr_epochs}, \"alpha\": {incr_alpha}, \
         \"drift_threshold\": {incr_threshold}, \
         \"patch_refine_ms\": {incr_warm_ms:.4}, \"full_vcycle_ms\": {incr_scratch_ms:.4}, \
         \"policy_cost_volume\": {:.4}, \"scratch_cost_volume\": {:.4}, \
         \"competitive_ratio\": {incr_ratio:.6}}},",
        cr.policy_cost, cr.baseline_cost
    );
    let _ = writeln!(
        json,
        "  \"elastic\": {{\"epochs\": {ela_epochs}, \"alpha\": {ela_alpha}, \
         \"resizes\": {}, \"chose_repart\": {ela_repart_wins}, \
         \"mean_repart_cost\": {ela_repart_cost:.4}, \
         \"mean_scratch_cost\": {ela_scratch_cost:.4}, \"wall_ms\": {ela_ms:.4}}},",
        ela_records.len()
    );
    let _ = writeln!(
        json,
        "  \"multiconstraint\": {{\
         \"cage\": {{\"arity1_default_ms\": {arity1_default_ms:.4}, \
         \"arity1_typed_ms\": {arity1_typed_ms:.4}, \"arity1_identical\": true, \
         \"arity2_ms\": {cage_arity2_ms:.4}, \"cut_arity1\": {cut:.4}, \
         \"cut_arity2\": {cage2_cut:.4}, \
         \"imbalance_per_constraint\": [{:.6}, {:.6}]}}, \
         \"amr\": {{\"vertices\": {amr_n}, \"arity2_ms\": {amr_arity2_ms:.4}, \
         \"cut_scalar\": {amr_scalar_cut:.4}, \"cut_arity2\": {amr2_cut:.4}, \
         \"imbalance_per_constraint\": [{:.6}, {:.6}], \"feasible\": {amr_feasible}, \
         \"warm_repair_invocations\": {repair_invocations}, \
         \"warm_repair_moves_applied\": {repair_moves}, \
         \"warm_feasible\": {warm_feasible}}}}},",
        cage2_imb[0], cage2_imb[1], amr2_imb[0], amr2_imb[1]
    );
    let _ = writeln!(
        json,
        "  \"trace\": {{\"compiled_in\": {}, \"untraced_ms\": {untraced_ms:.4}, \
         \"traced_ms\": {traced_ms:.4}, \"overhead\": {trace_overhead:.4}, \
         \"leaf_coverage\": {leaf_coverage:.4}, \"spans\": {}}},",
        dlb_trace::COMPILED_IN,
        trace_report.spans.len()
    );
    let _ = writeln!(json, "  \"rmat\": {},", rmat.json);
    let _ = writeln!(json, "  \"cut\": {cut:.4},");
    let _ = writeln!(json, "  \"imbalance\": {imbalance:.6},");
    let _ = writeln!(json, "  \"bit_identical_across_threads\": {identical}");
    json.push_str("}\n");

    std::fs::write("BENCH_partitioner.json", &json).expect("write BENCH_partitioner.json");
    print!("{json}");
    assert!(identical, "partitions differ across thread counts");
    assert!(dist_identical, "distributed driver diverged from the replicated driver");
    assert!(
        pins_shrink,
        "per-rank owned pin storage should strictly decrease with rank count: {:?}",
        dist_runs.iter().map(|r| (r.ranks, r.max_rank_owned_pins)).collect::<Vec<_>>()
    );
    assert!(
        bytes_shrink,
        "per-rank total resident bytes should strictly decrease with rank count: {:?}",
        dist_runs.iter().map(|r| (r.ranks, r.max_rank_resident_bytes)).collect::<Vec<_>>()
    );
    assert!(dist_memory.ok, "dist-memory budget section failed (see stderr)");
    assert!(amr_feasible, "2-constraint AMR partition violates a constraint: {amr2_imb:?}");
    assert!(
        arity1_typed_ms <= arity1_default_ms * 1.5 + 5.0,
        "typed arity-1 loads cost more than noise over the scalar path: \
         {arity1_typed_ms:.2} ms vs {arity1_default_ms:.2} ms"
    );
    assert!(
        warm_feasible,
        "warm-started 2-constraint refinement left a constraint violated"
    );
    if dlb_trace::COMPILED_IN {
        assert!(
            repair_invocations >= 1,
            "aux-skewed warm start never engaged the repair pass"
        );
    }
}
