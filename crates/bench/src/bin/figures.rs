//! Regenerates Figures 2–8 of the paper.
//!
//! | Figure | Content |
//! |--------|---------|
//! | 2      | xyce680s normalized total cost, (a) structure (b) weights |
//! | 3      | 2DLipid, same |
//! | 4      | auto, same |
//! | 5      | apoa1-10, same |
//! | 6      | cage14, same |
//! | 7      | run time, xyce680s, perturbed structure |
//! | 8      | run time, (a) 2DLipid (b) auto, perturbed structure |
//!
//! Usage:
//! ```text
//! figures --fig N [--scale S] [--trials T] [--epochs E] [--quick]
//!         [--ks 16,32,64] [--alphas 1,10,100,1000] [--out DIR] [--ranks R]
//! ```
//!
//! Default scales are sized for a single host; `--quick` shrinks the
//! grid for smoke runs. Results print as ASCII charts and are written as
//! CSV under `--out` (default `results/`).

use std::fs;
use std::path::PathBuf;

use dlb_bench::chart::{render_cost_chart, render_runtime_chart, to_csv};
use dlb_bench::{run_sweep, Row, SweepConfig, TimingMode};
use dlb_workloads::{DatasetKind, PerturbKind};

struct Args {
    fig: u8,
    scale: Option<f64>,
    trials: Option<usize>,
    epochs: Option<usize>,
    ks: Option<Vec<usize>>,
    alphas: Option<Vec<f64>>,
    quick: bool,
    out: PathBuf,
    ranks: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let fig = get("--fig")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("usage: figures --fig <2..8> [--scale S] [--trials T] [--epochs E] [--quick] [--ks ...] [--alphas ...] [--out DIR] [--ranks R] [--seed N]");
            std::process::exit(2);
        });
    Args {
        fig,
        scale: get("--scale").and_then(|v| v.parse().ok()),
        trials: get("--trials").and_then(|v| v.parse().ok()),
        epochs: get("--epochs").and_then(|v| v.parse().ok()),
        ks: get("--ks").map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect()),
        alphas: get("--alphas").map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect()),
        quick: argv.iter().any(|a| a == "--quick"),
        out: get("--out").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("results")),
        ranks: get("--ranks").and_then(|v| v.parse().ok()).unwrap_or(4),
        seed: get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
    }
}

/// Default dataset scales chosen so a full figure runs in minutes on one
/// host while preserving each dataset's regime.
fn default_scale(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Xyce680s => 0.01,  // ~6.8k vertices, sparse
        DatasetKind::Lipid2D => 0.15,   // ~0.7k vertices, dense (29% density)
        DatasetKind::Auto => 0.01,      // ~4.5k vertices, mesh
        DatasetKind::Apoa1_10 => 0.01,  // ~0.9k vertices, high valence
        DatasetKind::Cage14 => 0.003,   // ~4.5k vertices
    }
}

fn figure_dataset(fig: u8) -> Vec<(DatasetKind, Vec<PerturbKind>)> {
    match fig {
        2 => vec![(DatasetKind::Xyce680s, vec![PerturbKind::Structure, PerturbKind::Weights])],
        3 => vec![(DatasetKind::Lipid2D, vec![PerturbKind::Structure, PerturbKind::Weights])],
        4 => vec![(DatasetKind::Auto, vec![PerturbKind::Structure, PerturbKind::Weights])],
        5 => vec![(DatasetKind::Apoa1_10, vec![PerturbKind::Structure, PerturbKind::Weights])],
        6 => vec![(DatasetKind::Cage14, vec![PerturbKind::Structure, PerturbKind::Weights])],
        7 => vec![(DatasetKind::Xyce680s, vec![PerturbKind::Structure])],
        8 => vec![
            (DatasetKind::Lipid2D, vec![PerturbKind::Structure]),
            (DatasetKind::Auto, vec![PerturbKind::Structure]),
        ],
        other => {
            eprintln!("unknown figure {other}; expected 2..8");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let runtime_figure = args.fig >= 7;
    fs::create_dir_all(&args.out).expect("create output directory");

    let mut all_rows: Vec<Row> = Vec::new();
    let mut panel = 0usize; // panel letters run across datasets AND dynamics
    for (dataset, perturbs) in figure_dataset(args.fig) {
        for perturb in perturbs.iter() {
            let scale = args.scale.unwrap_or_else(|| default_scale(dataset));
            let mut cfg = if args.quick {
                SweepConfig::quick(dataset, *perturb, scale)
            } else {
                SweepConfig::paper_grid(dataset, *perturb, scale)
            };
            cfg.seed = args.seed;
            if let Some(t) = args.trials {
                cfg.trials = t;
            }
            if let Some(e) = args.epochs {
                cfg.epochs = e;
            }
            if let Some(ks) = &args.ks {
                cfg.ks = ks.clone();
            }
            if let Some(alphas) = &args.alphas {
                cfg.alphas = alphas.clone();
            }
            if runtime_figure {
                cfg.timing = TimingMode::Parallel { max_ranks: args.ranks };
                // Runtime figures fix alpha (cost is not the point).
                if args.alphas.is_none() {
                    cfg.alphas = vec![100.0];
                }
            }

            eprintln!(
                "figure {} panel ({}): {} / {} at scale {} (k={:?}, alpha={:?}, trials={}, epochs={})",
                args.fig,
                (b'a' + panel as u8) as char,
                dataset.name(),
                match perturb {
                    PerturbKind::Structure => "perturbed structure",
                    PerturbKind::Weights => "perturbed weights",
                },
                scale,
                cfg.ks,
                cfg.alphas,
                cfg.trials,
                cfg.epochs
            );

            let rows = run_sweep(&cfg, |row| {
                eprintln!(
                    "  k={:<3} alpha={:<6} {:<17} total={:>10.1} time={:>8.2}ms",
                    row.k,
                    row.alpha,
                    row.algorithm.name(),
                    row.total_norm,
                    row.time_ms
                );
            });

            let multi_panel = perturbs.len() > 1 || args.fig == 8;
            let title = format!(
                "Figure {}{}: {} ({})",
                args.fig,
                if multi_panel {
                    format!("({})", (b'a' + panel as u8) as char)
                } else {
                    String::new()
                },
                dataset.name(),
                match perturb {
                    PerturbKind::Structure => "perturbed structure",
                    PerturbKind::Weights => "perturbed weights",
                }
            );
            let chart = if runtime_figure {
                render_runtime_chart(&title, &rows)
            } else {
                render_cost_chart(&title, &rows)
            };
            println!("{chart}");
            all_rows.extend(rows);
            panel += 1;
        }
    }

    let csv_path = args.out.join(format!("figure{}.csv", args.fig));
    fs::write(&csv_path, to_csv(&all_rows)).expect("write CSV");
    eprintln!("wrote {}", csv_path.display());
}
