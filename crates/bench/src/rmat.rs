//! Seeded RMAT hypergraph generator for large-scale benchmarks.
//!
//! Produces the column-net hypergraph of a directed RMAT graph
//! (Chakrabarti et al.): `2^scale` vertices, `edge_factor * 2^scale`
//! edges drawn by recursive quadrant descent with the Graph500
//! probabilities `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`. The skewed
//! quadrant weights yield a power-law degree distribution — a few
//! vertices accumulate very large nets while most stay small, which is
//! exactly the workload shape that stresses chunked parallel kernels
//! (uneven per-chunk cost) far more than the bundled mesh-like
//! datasets do.
//!
//! Each vertex `u` with at least one out-edge becomes one net
//! `{u} ∪ out(u)` of unit cost (the column-net model of the paper's
//! Section 2.1 applied to the transpose); out-degree-0 vertices emit no
//! net, and duplicate targets are deduplicated by the builder. The
//! generator is a pure function of `(scale, edge_factor, seed)` — same
//! arguments, bit-identical hypergraph — so benchmark inputs never need
//! to be checked in.

use dlb_hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Graph500 RMAT quadrant probabilities (a, b, c); d is the remainder.
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

/// Generates the column-net hypergraph of a seeded RMAT graph with
/// `2^scale` vertices and `edge_factor * 2^scale` directed edges.
///
/// Deterministic: the result is a pure function of the arguments.
/// Self-loops are kept (they collapse into the source pin), duplicate
/// edges are deduplicated per net, and vertices without out-edges emit
/// no net, so `num_nets() <= num_vertices()`.
pub fn rmat_hypergraph(scale: u32, edge_factor: usize, seed: u64) -> Hypergraph {
    assert!((1..usize::BITS).contains(&scale), "scale {scale} out of range");
    let n: usize = 1 << scale;
    let num_edges = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);

    // Draw every edge by quadrant recursion, counting out-degrees as we
    // go so the adjacency can be laid out CSR-style in one pass.
    let mut sources = vec![0u32; num_edges];
    let mut targets = vec![0u32; num_edges];
    let mut out_degree = vec![0u32; n];
    for e in 0..num_edges {
        let (u, v) = rmat_edge(scale, &mut rng);
        sources[e] = u as u32;
        targets[e] = v as u32;
        out_degree[u] += 1;
    }

    // Prefix-sum into per-source slots, then scatter the targets.
    let mut offsets = vec![0usize; n + 1];
    for u in 0..n {
        offsets[u + 1] = offsets[u] + out_degree[u] as usize;
    }
    let mut cursor = offsets.clone();
    let mut adjacency = vec![0u32; num_edges];
    for e in 0..num_edges {
        let u = sources[e] as usize;
        adjacency[cursor[u]] = targets[e];
        cursor[u] += 1;
    }

    // One unit-cost net per source vertex: {u} ∪ out(u). The builder
    // deduplicates repeated pins (multi-edges, self-loops).
    let mut builder = HypergraphBuilder::new(n);
    let mut pins: Vec<usize> = Vec::new();
    for u in 0..n {
        let out = &adjacency[offsets[u]..offsets[u + 1]];
        if out.is_empty() {
            continue;
        }
        pins.clear();
        pins.push(u);
        pins.extend(out.iter().map(|&v| v as usize));
        builder.add_net(1.0, pins.iter().copied());
    }
    builder.build()
}

/// One RMAT edge: descend `scale` quadrant levels, narrowing the
/// adjacency matrix by half per level.
fn rmat_edge(scale: u32, rng: &mut StdRng) -> (usize, usize) {
    let mut u = 0usize;
    let mut v = 0usize;
    for _ in 0..scale {
        let r: f64 = rng.gen();
        let (ubit, vbit) = if r < RMAT_A {
            (0, 0)
        } else if r < RMAT_A + RMAT_B {
            (0, 1)
        } else if r < RMAT_A + RMAT_B + RMAT_C {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | ubit;
        v = (v << 1) | vbit;
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let a = rmat_hypergraph(10, 8, 42);
        let b = rmat_hypergraph(10, 8, 42);
        assert!(a == b, "same (scale, edge_factor, seed) must reproduce the hypergraph");
        a.validate().expect("valid hypergraph");
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat_hypergraph(10, 8, 42);
        let b = rmat_hypergraph(10, 8, 43);
        assert!(a != b, "different seeds should not collide");
    }

    #[test]
    fn degree_distribution_is_power_law_shaped() {
        let scale = 12u32;
        let h = rmat_hypergraph(scale, 8, 7);
        let n = 1usize << scale;
        assert_eq!(h.num_vertices(), n);
        // Not every vertex has out-edges under skewed quadrants, but
        // most of the graph must participate.
        assert!(h.num_nets() > n / 4, "only {} nets for {} vertices", h.num_nets(), n);
        assert!(h.num_nets() <= n);

        // Heavy tail: the largest net must dwarf the mean net size, and
        // the mean itself stays near edge_factor (dedup loses a bit).
        let sizes: Vec<usize> = (0..h.num_nets()).map(|j| h.net(j).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean > 2.0 && mean < 16.0, "mean net size {mean}");
        assert!(
            (max as f64) > 8.0 * mean,
            "expected a heavy tail: max net {max} vs mean {mean:.2}"
        );
        h.validate().expect("valid hypergraph");
    }
}
