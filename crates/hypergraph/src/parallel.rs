//! Chunked scoped-thread executor with deterministic reduction.
//!
//! The multilevel pipeline's hot kernels (IPM candidate scoring, coarse
//! pin remapping, sigma/cut evaluation) are data-parallel over index
//! ranges. This module runs them over a fixed chunking of the index
//! space and hands the per-chunk results back **in chunk order**, which
//! gives the one property the partitioner needs from parallelism:
//!
//! > **Chunked-reduction rule.** Chunk boundaries depend only on the
//! > problem size, never on the thread count, and per-chunk results are
//! > combined in ascending chunk order. Any reduction built this way —
//! > including floating-point sums, which are not associative — produces
//! > bit-identical results at every thread count, including one.
//!
//! Threads claim chunks dynamically from an atomic counter (cheap work
//! stealing), so an uneven chunk does not serialize the level; the
//! claim order affects only *when* a chunk runs, never how results are
//! combined. Workers are plain `std::thread::scope` threads with no
//! pool to manage; a panic in any chunk propagates to the caller.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size (in items) for the pipeline kernels: small enough
/// to balance uneven nets, large enough to amortize the claim.
pub const DEFAULT_CHUNK: usize = 4096;

/// Resolves an effective worker count: `requested` if positive, else the
/// `DLB_THREADS` environment variable if set to a positive integer, else
/// [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var("DLB_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of chunks covering `len` items at `chunk` items each.
#[inline]
pub fn num_chunks(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// The half-open item range of chunk `i`.
#[inline]
pub fn chunk_range(len: usize, chunk: usize, i: usize) -> Range<usize> {
    let chunk = chunk.max(1);
    let start = i * chunk;
    start..((start + chunk).min(len))
}

/// Maps `f` over the fixed chunking of `0..len` and returns the chunk
/// results **in chunk order**, carrying a per-worker scratch state.
///
/// `init` builds one scratch value per worker (per claim loop, not per
/// chunk), so expensive per-thread buffers — an IPM score accumulator,
/// a dedup map — are paid `threads` times, not `num_chunks` times.
/// `f(state, i, range)` processes chunk `i` covering `range`.
///
/// With `threads <= 1` the chunks run inline on the caller's thread, in
/// chunk order, through the identical chunking — so a single-threaded
/// run is the reference ordering, not a special case.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn map_chunks_with<S, T, I, F>(
    threads: usize,
    len: usize,
    chunk: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    let n_chunks = num_chunks(len, chunk);
    if n_chunks == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n_chunks);
    if workers == 1 {
        let mut state = init();
        return (0..n_chunks)
            .map(|i| f(&mut state, i, chunk_range(len, chunk, i)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        produced.push((i, f(&mut state, i, chunk_range(len, chunk, i))));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, value) in produced {
                        slots[i] = Some(value);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots.into_iter().map(Option::unwrap).collect()
}

/// [`map_chunks_with`] without per-worker state.
pub fn map_chunks<T, F>(threads: usize, len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_chunks_with(threads, len, chunk, || (), |(), i, range| f(i, range))
}

/// Deterministic parallel `f64` sum: per-chunk partial sums folded in
/// chunk order (the chunked-reduction rule), so the result is
/// bit-identical at every thread count.
pub fn sum_chunks<F>(threads: usize, len: usize, chunk: usize, partial: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(threads, len, chunk, |_, range| partial(range))
        .into_iter()
        .fold(0.0, |acc, x| acc + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_exhaustive_and_disjoint() {
        for len in [0usize, 1, 5, 4096, 4097, 10_000] {
            for chunk in [1usize, 7, 4096] {
                let mut covered = vec![false; len];
                for i in 0..num_chunks(len, chunk) {
                    for v in chunk_range(len, chunk, i) {
                        assert!(!covered[v], "item {v} covered twice");
                        covered[v] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Values chosen so the sum is association-sensitive.
        let values: Vec<f64> = (0..50_000)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 3 == 0 { 1e10 } else { 1e-10 })
            .collect();
        let sum_at = |threads: usize| {
            sum_chunks(threads, values.len(), 1024, |range| {
                values[range].iter().fold(0.0, |a, &x| a + x)
            })
        };
        let reference = sum_at(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(sum_at(threads).to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_returns_chunk_order() {
        let out = map_chunks(4, 1000, 16, |i, range| (i, range.start));
        for (i, &(idx, start)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(start, i * 16);
        }
    }

    #[test]
    fn worker_state_is_reused_not_rebuilt() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let threads = 3;
        let _ = map_chunks_with(
            threads,
            10_000,
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |state, i, _| {
                state.push(i);
                state.len()
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= threads);
    }

    #[test]
    #[should_panic(expected = "chunk 3 exploded")]
    fn panics_propagate() {
        let _ = map_chunks(2, 100, 10, |i, _| {
            if i == 3 {
                panic!("chunk 3 exploded");
            }
            i
        });
    }

    #[test]
    fn resolve_threads_prefers_request_then_env() {
        assert_eq!(resolve_threads(5), 5);
        // Env fallback: set, observe, restore. This is the only test in
        // the crate that touches DLB_THREADS.
        std::env::set_var("DLB_THREADS", "3");
        assert_eq!(resolve_threads(0), 3);
        std::env::set_var("DLB_THREADS", "not-a-number");
        assert!(resolve_threads(0) >= 1);
        std::env::remove_var("DLB_THREADS");
        assert!(resolve_threads(0) >= 1);
    }
}
