//! Persistent work-stealing pool with deterministic chunked reduction.
//!
//! The multilevel pipeline's hot kernels (IPM candidate scoring, coarse
//! pin remapping, sigma/cut evaluation) are data-parallel over index
//! ranges. This module runs them over a fixed chunking of the index
//! space and hands the per-chunk results back **in chunk order**, which
//! gives the one property the partitioner needs from parallelism:
//!
//! > **Chunked-reduction rule.** Chunk boundaries depend only on the
//! > problem size, never on the thread count, and per-chunk results are
//! > combined in ascending chunk order. Any reduction built this way —
//! > including floating-point sums, which are not associative — produces
//! > bit-identical results at every thread count, including one.
//!
//! # Execution model
//!
//! Kernels run on a process-wide **persistent pool**: worker threads are
//! spawned lazily on first use and then parked between calls, so a
//! kernel invocation costs a mutex/condvar wake instead of `threads`
//! fresh `clone(2)` calls (the previous `std::thread::scope` executor
//! paid thread spawn + join on *every* call, which made every kernel
//! slower than serial on small inputs). The calling thread always
//! participates as worker 0, so a kernel completes even if every pool
//! worker is busy with other jobs — multiple jobs may be in flight at
//! once (the SPMD drivers run each simulated rank on its own thread and
//! all of them call kernels concurrently).
//!
//! Within a job, each participant owns a deque holding a contiguous
//! block of chunks: it pops from the front of its own deque and, when
//! empty, **steals from the back** of the fullest other deque. The claim
//! order affects only *when* a chunk runs, never how results are
//! combined, so work stealing is invisible to the reduction.
//!
//! Panics in a chunk body are caught per participant, poison the queue
//! (so other participants stop claiming), and the first payload is
//! re-raised on the calling thread.
//!
//! # Per-worker scratch
//!
//! Pool workers are persistent threads, so buffers cached in
//! thread-local storage survive across kernel calls. [`scratch_vec`]
//! hands out reusable `Vec<T>` buffers from a per-thread arena; a kernel
//! that routes its big per-worker accumulators through it allocates them
//! once per worker per process instead of once per call.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut, Range};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default chunk size (in items) for the pipeline kernels: small enough
/// to balance uneven nets, large enough to amortize the claim.
pub const DEFAULT_CHUNK: usize = 4096;

/// Parses a `DLB_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The `DLB_THREADS` environment variable, read **once** per process and
/// cached: `resolve_threads` sits on hot paths (per level, per epoch),
/// and `std::env::var` takes a process-global lock on some platforms.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| std::env::var("DLB_THREADS").ok().as_deref().and_then(parse_threads))
}

/// Resolves an effective worker count: `requested` if positive, else the
/// `DLB_THREADS` environment variable if set to a positive integer, else
/// [`std::thread::available_parallelism`]. The environment variable and
/// the hardware parallelism are each read once per process and cached.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    host_parallelism()
}

/// Cached [`std::thread::available_parallelism`]: the number of threads
/// the OS will actually run at once.
fn host_parallelism() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Effective participant count for one job: chunk boundaries and combine
/// order never depend on it (only on the problem size), so running a
/// `threads`-thread request on fewer physical participants is invisible
/// to results — while *oversubscribing* the host only adds wake/handoff
/// latency per kernel call (severe on small hosts: every extra
/// participant is a context switch the caller may have to wait out).
/// Cap at what the hardware can actually run.
#[inline]
fn effective_workers(threads: usize, n_chunks: usize) -> usize {
    effective_concurrency(threads).min(n_chunks)
}

/// The number of workers a `threads`-thread request can actually run at
/// once on this host: the request capped at the cached hardware
/// parallelism. Callers choosing between algorithms by concurrency —
/// e.g. a concurrent matcher whose relaxed ordering only pays off under
/// real parallelism — should key on this, not on the raw request.
#[inline]
pub fn effective_concurrency(threads: usize) -> usize {
    threads.max(1).min(host_parallelism())
}

/// Number of chunks covering `len` items at `chunk` items each.
#[inline]
pub fn num_chunks(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// The half-open item range of chunk `i`.
#[inline]
pub fn chunk_range(len: usize, chunk: usize, i: usize) -> Range<usize> {
    let chunk = chunk.max(1);
    let start = i * chunk;
    start..((start + chunk).min(len))
}

// ---------------------------------------------------------------------------
// Chunk deques
// ---------------------------------------------------------------------------

/// Per-participant chunk deques for one job.
///
/// Participant `p` starts owning the contiguous block
/// `[n·p/P, n·(p+1)/P)` of chunk indices, stored as a packed
/// `(head << 32) | tail` word: the owner pops from the front, thieves
/// steal from the back, both via CAS on the single word. Contiguous
/// blocks keep each participant streaming through adjacent chunks
/// (cache- and NUMA-friendlier than a shared counter) while steals
/// still level uneven chunks.
pub struct ChunkQueue {
    deques: Vec<AtomicU64>,
    poisoned: AtomicBool,
}

impl ChunkQueue {
    fn new(n_chunks: usize, participants: usize) -> Self {
        assert!(n_chunks <= u32::MAX as usize, "chunk count exceeds u32");
        let deques = (0..participants)
            .map(|p| {
                let head = (n_chunks * p / participants) as u64;
                let tail = (n_chunks * (p + 1) / participants) as u64;
                AtomicU64::new(head << 32 | tail)
            })
            .collect();
        ChunkQueue { deques, poisoned: AtomicBool::new(false) }
    }

    fn pop_front(&self, p: usize) -> Option<usize> {
        let d = &self.deques[p];
        let mut cur = d.load(Ordering::Acquire);
        loop {
            let (head, tail) = (cur >> 32, cur & 0xFFFF_FFFF);
            if head >= tail {
                return None;
            }
            match d.compare_exchange_weak(
                cur,
                (head + 1) << 32 | tail,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    fn steal_back(&self, victim: usize) -> Option<usize> {
        let d = &self.deques[victim];
        let mut cur = d.load(Ordering::Acquire);
        loop {
            let (head, tail) = (cur >> 32, cur & 0xFFFF_FFFF);
            if head >= tail {
                return None;
            }
            match d.compare_exchange_weak(
                cur,
                head << 32 | (tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((tail - 1) as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Claims the next chunk for participant `p`: its own deque first,
    /// then — steal-on-empty — the back of the victim with the most
    /// remaining chunks. Returns `None` when no work is left anywhere
    /// (or the job is poisoned by a panic).
    pub fn claim(&self, p: usize) -> Option<usize> {
        if self.poisoned.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(i) = self.pop_front(p) {
            return Some(i);
        }
        loop {
            if self.poisoned.load(Ordering::Relaxed) {
                return None;
            }
            let mut best: Option<(usize, u64)> = None;
            for (q, d) in self.deques.iter().enumerate() {
                if q == p {
                    continue;
                }
                let cur = d.load(Ordering::Acquire);
                let remaining = (cur & 0xFFFF_FFFF).saturating_sub(cur >> 32);
                if remaining > 0 && best.is_none_or(|(_, r)| remaining > r) {
                    best = Some((q, remaining));
                }
            }
            match best {
                None => return None,
                // A steal can race to empty; rescan for another victim.
                Some((victim, _)) => {
                    if let Some(i) = self.steal_back(victim) {
                        return Some(i);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// A job body: `(participant_slot, queue)`. Trait-object type behind the
/// lifetime-erased pointer in [`JobCore`].
type JobBody = dyn Fn(usize, &ChunkQueue) + Sync;

/// One in-flight job. Shared between the caller and any pool workers
/// that joined it.
struct JobCore {
    queue: ChunkQueue,
    /// Lifetime-erased pointer to the caller's stack-held closure.
    ///
    /// Validity protocol: the caller keeps the closure alive until every
    /// helper that registered on this job has deregistered (it delists
    /// the job under the pool lock, then waits for `active == 0`), and
    /// helpers only register *while the job is listed*, under the same
    /// lock — so no helper can observe the pointer after it dies.
    body: *const JobBody,
    /// Next participant slot to hand to a joining helper; slot 0 is the
    /// caller. Once `>= participants` no further helper joins.
    next_slot: AtomicUsize,
    participants: usize,
    /// Helpers currently inside the body (registered under the pool
    /// lock, deregistered when done).
    active: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by any participant.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: the raw body pointer is only dereferenced under the validity
// protocol documented on `body`.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

struct PoolInner {
    /// Jobs that may still accept helpers.
    jobs: Vec<Arc<JobCore>>,
    spawned: usize,
    idle: usize,
}

struct Pool {
    inner: Mutex<PoolInner>,
    work: Condvar,
}

/// Hard cap on pool threads; far above any sane `threads` setting, it
/// only bounds pathological configs (the pool never shrinks).
const MAX_WORKERS: usize = 96;

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        inner: Mutex::new(PoolInner { jobs: Vec::new(), spawned: 0, idle: 0 }),
        work: Condvar::new(),
    })
}

/// Runs the body for one participant slot, catching panics into the job.
fn run_participant(job: &JobCore, slot: usize) {
    // SAFETY: see the validity protocol on `JobCore::body`.
    let body = unsafe { &*job.body };
    if let Err(payload) =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(slot, &job.queue)))
    {
        job.queue.poisoned.store(true, Ordering::Relaxed);
        let mut first = job.panic.lock().unwrap();
        if first.is_none() {
            *first = Some(payload);
        }
    }
}

fn worker_loop() {
    let pool = pool();
    let mut inner = pool.inner.lock().unwrap();
    loop {
        let job = inner
            .jobs
            .iter()
            .find(|j| j.next_slot.load(Ordering::Relaxed) < j.participants)
            .cloned();
        match job {
            Some(job) => {
                let slot = job.next_slot.fetch_add(1, Ordering::Relaxed);
                if slot >= job.participants {
                    // Raced with another worker for the last slot; the
                    // inflated counter just keeps further helpers away.
                    continue;
                }
                // Register while holding the pool lock: the caller can
                // only delist the job under this lock, and it waits for
                // `active == 0` after delisting, so the body stays alive
                // for the whole participation.
                *job.active.lock().unwrap() += 1;
                drop(inner);
                run_participant(&job, slot);
                {
                    let mut active = job.active.lock().unwrap();
                    *active -= 1;
                    if *active == 0 {
                        job.done.notify_all();
                    }
                }
                inner = pool.inner.lock().unwrap();
            }
            None => {
                inner.idle += 1;
                inner = pool.work.wait(inner).unwrap();
                inner.idle -= 1;
            }
        }
    }
}

/// Runs `body` across up to `participants` threads (the caller plus
/// pool workers) against a fresh [`ChunkQueue`] over `n_chunks` chunks.
/// Returns once every chunk is done and every helper has left the body;
/// re-raises the first panic any participant hit.
fn run_job(participants: usize, n_chunks: usize, body: &(dyn Fn(usize, &ChunkQueue) + Sync)) {
    debug_assert!(participants >= 2);
    let job = Arc::new(JobCore {
        queue: ChunkQueue::new(n_chunks, participants),
        // SAFETY: erase the borrow lifetime; validity is upheld by the
        // delist-then-quiesce protocol below (see `JobCore::body`).
        body: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize, &ChunkQueue) + Sync), *const JobBody>(
                body as *const (dyn Fn(usize, &ChunkQueue) + Sync),
            )
        },
        next_slot: AtomicUsize::new(1),
        participants,
        active: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    {
        let pool = pool();
        let mut inner = pool.inner.lock().unwrap();
        // Lazily grow the pool toward the helpers this job wants.
        let deficit = (participants - 1).saturating_sub(inner.idle);
        let spawnable = deficit.min(MAX_WORKERS.saturating_sub(inner.spawned));
        for _ in 0..spawnable {
            let name = format!("dlb-pool-{}", inner.spawned);
            // A failed spawn just means fewer helpers; the caller still
            // makes progress on its own.
            if std::thread::Builder::new().name(name).spawn(worker_loop).is_ok() {
                inner.spawned += 1;
            } else {
                break;
            }
        }
        inner.jobs.push(job.clone());
        drop(inner);
        pool.work.notify_all();
    }

    // The caller is participant 0; its panic (if any) is captured like a
    // helper's so the quiesce step below always runs.
    run_participant(&job, 0);

    // Retire: delist so no new helper can join, then wait out the ones
    // that did. Only after this may `body` (a stack borrow) die.
    {
        let mut inner = pool().inner.lock().unwrap();
        inner.jobs.retain(|j| !Arc::ptr_eq(j, &job));
    }
    {
        let mut active = job.active.lock().unwrap();
        while *active > 0 {
            active = job.done.wait(active).unwrap();
        }
    }

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Chunked mapping APIs
// ---------------------------------------------------------------------------

/// Send/Sync-asserting wrapper for a raw output pointer shared across
/// participants; every write target is disjoint per chunk.
struct SharedOut<T>(*mut T);
unsafe impl<T: Send> Send for SharedOut<T> {}
unsafe impl<T: Send> Sync for SharedOut<T> {}

/// Maps `f` over the fixed chunking of `0..len` and returns the chunk
/// results **in chunk order**, carrying a per-worker scratch state.
///
/// `init` builds one scratch value per participant (per claim loop, not
/// per chunk), so expensive per-thread buffers — an IPM score
/// accumulator, a dedup map — are paid `threads` times, not
/// `num_chunks` times. `f(state, i, range)` processes chunk `i` covering
/// `range`.
///
/// With `threads <= 1` the chunks run inline on the caller's thread, in
/// chunk order, through the identical chunking — so a single-threaded
/// run is the reference ordering, not a special case.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn map_chunks_with<S, T, I, F>(threads: usize, len: usize, chunk: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    let n_chunks = num_chunks(len, chunk);
    if n_chunks == 0 {
        return Vec::new();
    }
    let workers = effective_workers(threads, n_chunks);
    if workers == 1 {
        let mut state = init();
        return (0..n_chunks)
            .map(|i| f(&mut state, i, chunk_range(len, chunk, i)))
            .collect();
    }

    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    {
        let out = SharedOut(slots.as_mut_ptr());
        // Capture the Sync wrapper, not its raw-pointer field (2021
        // closures capture disjoint fields by default).
        let out = &out;
        let body = |slot: usize, queue: &ChunkQueue| {
            let mut state = init();
            while let Some(i) = queue.claim(slot) {
                let value = f(&mut state, i, chunk_range(len, chunk, i));
                // SAFETY: the queue hands each chunk index to exactly one
                // participant, and `slots` outlives the job (run_job does
                // not return before all participants quiesce). Writing
                // over the pre-placed `None` drops nothing.
                unsafe { out.0.add(i).write(Some(value)) };
            }
        };
        run_job(workers, n_chunks, &body);
    }
    // An unwinding participant leaves its unclaimed slots `None`, but
    // run_job re-raises the panic before we get here.
    slots.into_iter().map(Option::unwrap).collect()
}

/// [`map_chunks_with`] without per-worker state.
pub fn map_chunks<T, F>(threads: usize, len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_chunks_with(threads, len, chunk, || (), |(), i, range| f(i, range))
}

/// Deterministic parallel `f64` sum: per-chunk partial sums folded in
/// chunk order (the chunked-reduction rule), so the result is
/// bit-identical at every thread count.
pub fn sum_chunks<F>(threads: usize, len: usize, chunk: usize, partial: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(threads, len, chunk, |_, range| partial(range))
        .into_iter()
        .fold(0.0, |acc, x| acc + x)
}

/// Fills a caller-owned buffer in parallel: chunk `i` covering items
/// `range` gets the exclusive window `out[range.start*stride ..
/// range.end*stride]` — `stride` output elements per item. The windows
/// tile `out` disjointly, so no per-chunk result vectors exist at all;
/// kernels that used to build a `Vec` per chunk and concatenate write
/// straight into their destination instead.
///
/// Chunk boundaries depend only on `len`/`chunk`, and each window is
/// written by whichever participant claims the chunk — the *values* are
/// position-determined, so the result is bit-identical at every thread
/// count (with `threads <= 1` the chunks run inline in order).
///
/// # Panics
/// Panics if `out.len() != len * stride`; propagates panics from `f`.
pub fn fill_chunks_with<T, S, I, F>(
    threads: usize,
    len: usize,
    chunk: usize,
    stride: usize,
    out: &mut [T],
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>, &mut [T]) + Sync,
{
    assert_eq!(out.len(), len * stride, "output buffer must hold len*stride elements");
    let n_chunks = num_chunks(len, chunk);
    if n_chunks == 0 {
        return;
    }
    let workers = effective_workers(threads, n_chunks);
    if workers == 1 {
        let mut state = init();
        for i in 0..n_chunks {
            let range = chunk_range(len, chunk, i);
            let window = &mut out[range.start * stride..range.end * stride];
            f(&mut state, i, range, window);
        }
        return;
    }
    let base = SharedOut(out.as_mut_ptr());
    let base = &base; // capture the Sync wrapper, not the raw field
    let body = |slot: usize, queue: &ChunkQueue| {
        let mut state = init();
        while let Some(i) = queue.claim(slot) {
            let range = chunk_range(len, chunk, i);
            // SAFETY: windows of distinct chunks are disjoint (chunks are
            // disjoint item ranges scaled by a constant stride), each
            // chunk is claimed exactly once, and `out` outlives the job.
            let window = unsafe {
                std::slice::from_raw_parts_mut(
                    base.0.add(range.start * stride),
                    (range.end - range.start) * stride,
                )
            };
            f(&mut state, i, range, window);
        }
    };
    run_job(workers, n_chunks, &body);
}

/// [`fill_chunks_with`] without per-worker state.
pub fn fill_chunks<T, F>(threads: usize, len: usize, chunk: usize, stride: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    fill_chunks_with(threads, len, chunk, stride, out, || (), |(), i, range, window| {
        f(i, range, window)
    })
}

/// Gives each **chunk** an exclusive `stride`-length window of `out`
/// (`out[i*stride..(i+1)*stride]` for chunk `i`) — the chunk-indexed
/// sibling of [`fill_chunks_with`], for per-chunk partial accumulators
/// (e.g. per-chunk part-weight vectors) that the caller then folds in
/// chunk order. `out.len()` must be `num_chunks * stride`.
pub fn fill_per_chunk<T, F>(threads: usize, len: usize, chunk: usize, stride: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    let n_chunks = num_chunks(len, chunk);
    assert_eq!(out.len(), n_chunks * stride, "output buffer must hold num_chunks*stride elements");
    if n_chunks == 0 {
        return;
    }
    let workers = effective_workers(threads, n_chunks);
    if workers == 1 {
        for i in 0..n_chunks {
            f(i, chunk_range(len, chunk, i), &mut out[i * stride..(i + 1) * stride]);
        }
        return;
    }
    let base = SharedOut(out.as_mut_ptr());
    let base = &base; // capture the Sync wrapper, not the raw field
    let body = |slot: usize, queue: &ChunkQueue| {
        while let Some(i) = queue.claim(slot) {
            // SAFETY: chunk-indexed windows are disjoint; each chunk is
            // claimed exactly once; `out` outlives the job.
            let window =
                unsafe { std::slice::from_raw_parts_mut(base.0.add(i * stride), stride) };
            f(i, chunk_range(len, chunk, i), window);
        }
    };
    run_job(workers, n_chunks, &body);
}

// ---------------------------------------------------------------------------
// Per-worker scratch arenas
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread arena of reusable buffers, keyed by element type. Pool
    /// workers are persistent, so entries survive across kernel calls.
    static ARENA: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> = RefCell::new(HashMap::new());
}

/// A `Vec<T>` borrowed from the current thread's scratch arena; handed
/// back (emptied) on drop. Dereferences to `Vec<T>`.
pub struct ScratchVec<T: 'static> {
    vec: Option<Vec<T>>,
}

impl<T: 'static> Deref for ScratchVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        self.vec.as_ref().unwrap()
    }
}

impl<T: 'static> DerefMut for ScratchVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.vec.as_mut().unwrap()
    }
}

impl<T: 'static> Drop for ScratchVec<T> {
    fn drop(&mut self) {
        let mut vec = self.vec.take().unwrap();
        vec.clear();
        let _ = ARENA.try_with(|arena| {
            arena.borrow_mut().entry(TypeId::of::<T>()).or_default().push(Box::new(vec));
        });
    }
}

/// Borrows an **empty** `Vec<T>` from the current thread's scratch
/// arena, allocating one only if the arena has none of this type. The
/// capacity of previous uses is retained, so resizing it to a working
/// length is a fill, not an allocation, from the second call onward.
pub fn scratch_vec<T: 'static>() -> ScratchVec<T> {
    let vec = ARENA.with(|arena| {
        arena
            .borrow_mut()
            .get_mut(&TypeId::of::<T>())
            .and_then(|stack| stack.pop())
            .map(|boxed| *boxed.downcast::<Vec<T>>().expect("arena entry keyed by wrong type"))
    });
    ScratchVec { vec: Some(vec.unwrap_or_default()) }
}

/// [`scratch_vec`] pre-sized to `len` elements, every one reset to
/// `value` (the buffer arrives cleared, so no stale data survives).
pub fn scratch_vec_filled<T: Clone + 'static>(len: usize, value: T) -> ScratchVec<T> {
    let mut sv = scratch_vec::<T>();
    sv.resize(len, value);
    sv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_exhaustive_and_disjoint() {
        for len in [0usize, 1, 5, 4096, 4097, 10_000] {
            for chunk in [1usize, 7, 4096] {
                let mut covered = vec![false; len];
                for i in 0..num_chunks(len, chunk) {
                    for v in chunk_range(len, chunk, i) {
                        assert!(!covered[v], "item {v} covered twice");
                        covered[v] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Values chosen so the sum is association-sensitive.
        let values: Vec<f64> = (0..50_000)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 3 == 0 { 1e10 } else { 1e-10 })
            .collect();
        let sum_at = |threads: usize| {
            sum_chunks(threads, values.len(), 1024, |range| {
                values[range].iter().fold(0.0, |a, &x| a + x)
            })
        };
        let reference = sum_at(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(sum_at(threads).to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_returns_chunk_order() {
        let out = map_chunks(4, 1000, 16, |i, range| (i, range.start));
        for (i, &(idx, start)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(start, i * 16);
        }
    }

    #[test]
    fn worker_state_is_reused_not_rebuilt() {
        let inits = AtomicUsize::new(0);
        let threads = 3;
        let _ = map_chunks_with(
            threads,
            10_000,
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |state, i, _| {
                state.push(i);
                state.len()
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= threads);
    }

    #[test]
    #[should_panic(expected = "chunk 3 exploded")]
    fn panics_propagate() {
        let _ = map_chunks(2, 100, 10, |i, _| {
            if i == 3 {
                panic!("chunk 3 exploded");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panic must poison only its own job: subsequent jobs on the
        // same persistent workers run normally.
        let boom = std::panic::catch_unwind(|| {
            map_chunks(4, 100, 5, |i, _| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(boom.is_err());
        let out = map_chunks(4, 100, 5, |i, _| i);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_jobs_from_many_threads() {
        // The SPMD drivers run kernels from several rank threads at
        // once; every job must see exactly its own chunks.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let len = 5_000 + t * 17;
                    let out = map_chunks(3, len, 64, |_, range| range.len());
                    assert_eq!(out.iter().sum::<usize>(), len);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn resolve_threads_prefers_request_then_cached_env() {
        // An explicit request always wins.
        assert_eq!(resolve_threads(5), 5);
        // The env fallback is read once per process and cached, so the
        // resolved auto value is stable for the process lifetime even if
        // the variable changes later.
        let auto = resolve_threads(0);
        assert!(auto >= 1);
        std::env::set_var("DLB_THREADS", "77");
        assert_eq!(resolve_threads(0), auto, "cached resolution must not re-read the env");
        std::env::remove_var("DLB_THREADS");
        assert_eq!(resolve_threads(0), auto);
    }

    #[test]
    fn env_value_parsing() {
        // The parse logic itself (cache aside): positive integers only.
        assert_eq!(parse_threads("3"), Some(3));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("not-a-number"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn chunk_queue_claims_each_chunk_once() {
        let q = ChunkQueue::new(1000, 4);
        let claimed: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(i) = q.claim(p) {
                        claimed[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for (i, c) in claimed.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    /// Drives the pool through [`run_job`] directly: the public entry
    /// points cap participants at the host width, so on a single-core
    /// machine they run inline and would never reach the pool, its
    /// worker spawning, or its panic protocol.
    #[test]
    fn pool_run_job_covers_every_chunk_and_survives_panics() {
        let n_chunks = 257;
        let hits: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
        run_job(4, n_chunks, &|slot, queue| {
            while let Some(i) = queue.claim(slot) {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }

        // A panicking participant poisons its own job, the payload is
        // rethrown on the caller, and the pool serves later jobs.
        let boom = std::panic::catch_unwind(|| {
            run_job(3, 64, &|slot, queue| {
                while let Some(i) = queue.claim(slot) {
                    if i == 11 {
                        panic!("chunk 11 exploded");
                    }
                }
            })
        });
        assert!(boom.is_err());
        let total = AtomicUsize::new(0);
        run_job(3, 64, &|slot, queue| {
            while queue.claim(slot).is_some() {
                total.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn fill_chunks_strided_output() {
        // stride-3 windows: each item writes its index into 3 slots.
        let len = 2_000;
        let mut out = vec![0usize; len * 3];
        for threads in [1usize, 4] {
            out.iter_mut().for_each(|x| *x = usize::MAX);
            fill_chunks(threads, len, 64, 3, &mut out, |_, range, window| {
                for (off, item) in range.clone().enumerate() {
                    for s in 0..3 {
                        window[off * 3 + s] = item * 10 + s;
                    }
                }
            });
            for item in 0..len {
                for s in 0..3 {
                    assert_eq!(out[item * 3 + s], item * 10 + s, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn fill_per_chunk_partials_fold_identically() {
        let values: Vec<f64> = (0..30_000).map(|i| (i as f64).sin() * 1e3).collect();
        let total_at = |threads: usize| {
            let n = num_chunks(values.len(), 512);
            let mut partials = vec![0.0f64; n * 2];
            fill_per_chunk(threads, values.len(), 512, 2, &mut partials, |_, range, window| {
                for v in &values[range] {
                    window[(*v >= 0.0) as usize] += v;
                }
            });
            partials.chunks(2).fold([0.0f64; 2], |mut acc, w| {
                acc[0] += w[0];
                acc[1] += w[1];
                acc
            })
        };
        let reference = total_at(1);
        for threads in [2, 4, 8] {
            let got = total_at(threads);
            assert_eq!(got[0].to_bits(), reference[0].to_bits());
            assert_eq!(got[1].to_bits(), reference[1].to_bits());
        }
    }

    #[test]
    fn scratch_vec_retains_capacity_per_thread() {
        let cap = {
            let mut sv = scratch_vec::<u64>();
            sv.resize(10_000, 0);
            sv.capacity()
        };
        let sv = scratch_vec::<u64>();
        assert!(sv.is_empty(), "arena must hand back cleared buffers");
        assert!(sv.capacity() >= cap, "capacity must survive the round-trip");
        let filled = scratch_vec_filled::<u64>(100, 7);
        assert!(filled.iter().all(|&x| x == 7));
    }
}
