//! Graph ⇄ hypergraph model conversions.
//!
//! The paper's datasets are structurally symmetric, so each can be fed to
//! both the graph-based baseline (ParMETIS-like) and the hypergraph
//! partitioner. The **column-net model** (Catalyurek & Aykanat, 1999) is
//! the standard hypergraph model of a sparse-matrix–vector computation:
//! one net per vertex `v` containing `v` and its neighbors, so the k-1 cut
//! of the hypergraph equals the application's true communication volume.

use crate::{CsrGraph, Hypergraph, HypergraphBuilder};

/// Column-net model: one net per vertex `v` whose pins are `{v} ∪ adj(v)`,
/// with net cost equal to the vertex's communication size (`comm_size`).
///
/// With `comm_size = |v| = 1` for every `v`, the k-1 cut of the resulting
/// hypergraph under a partition equals the number of (vertex, part) data
/// transfers in an SpMV-like computation — the paper's "communication
/// volume".
///
/// Vertex weights and sizes are copied from the graph.
pub fn column_net_model(g: &CsrGraph, comm_size: impl Fn(usize) -> f64) -> Hypergraph {
    let n = g.num_vertices();
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n {
        b.set_vertex_weight(v, g.vertex_weight(v));
        b.set_vertex_size(v, g.vertex_size(v));
        let pins = std::iter::once(v).chain(g.neighbors(v).iter().copied());
        b.add_net(comm_size(v), pins);
    }
    b.build()
}

/// Column-net model with unit communication sizes.
pub fn column_net_model_unit(g: &CsrGraph) -> Hypergraph {
    column_net_model(g, |_| 1.0)
}

/// Edge-net model: one two-pin net per undirected edge, with net cost
/// equal to the edge weight. The k-1 cut of this hypergraph equals the
/// weighted edge cut of the graph; useful for apples-to-apples tests
/// between the hypergraph partitioner and the graph partitioner.
pub fn edge_net_model(g: &CsrGraph) -> Hypergraph {
    let n = g.num_vertices();
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n {
        b.set_vertex_weight(v, g.vertex_weight(v));
        b.set_vertex_size(v, g.vertex_size(v));
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            if u > v {
                b.add_net(w, [v, u]);
            }
        }
    }
    b.build()
}

/// Clique expansion of a hypergraph into a graph: every net of size `s ≥ 2`
/// becomes a clique whose edges carry weight `c / (s − 1)`.
///
/// This is the standard (lossy) way to hand hypergraph-modeled problems to
/// a graph partitioner; the edge cut of the expansion approximates — but
/// does not equal — the k-1 cut, which is precisely the modeling error
/// the paper's hypergraph approach avoids.
pub fn clique_expansion(h: &Hypergraph) -> CsrGraph {
    let n = h.num_vertices();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for j in 0..h.num_nets() {
        let pins = h.net(j);
        let s = pins.len();
        if s < 2 {
            continue;
        }
        let w = h.net_cost(j) / (s - 1) as f64;
        for a in 0..s {
            for b in a + 1..s {
                edges.push((pins[a], pins[b], w));
            }
        }
    }
    let mut g = CsrGraph::from_edges(n, &edges);
    g.set_vertex_weights(h.loads().scalar().to_vec());
    g.set_vertex_sizes(h.vertex_sizes().to_vec());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{cutsize_connectivity, edge_cut};

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1-2 triangle, 2-3 tail.
        CsrGraph::from_edges_unit(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn column_net_shape() {
        let g = triangle_plus_tail();
        let h = column_net_model_unit(&g);
        assert_eq!(h.num_nets(), 4);
        // Net of vertex 2 contains itself and all neighbors.
        let mut net2 = h.net(2).to_vec();
        net2.sort_unstable();
        assert_eq!(net2, vec![0, 1, 2, 3]);
        h.validate().unwrap();
    }

    #[test]
    fn column_net_cut_is_communication_volume() {
        // Path 0-1-2-3 split {0,1} | {2,3}: vertex 1's value is needed by
        // vertex 2's part and vice versa ⇒ volume 2.
        let g = CsrGraph::from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = column_net_model_unit(&g);
        let part = vec![0, 0, 1, 1];
        assert_eq!(cutsize_connectivity(&h, &part, 2), 2.0);
    }

    #[test]
    fn column_net_copies_weights() {
        let mut g = triangle_plus_tail();
        g.set_vertex_weight(1, 5.0);
        g.set_vertex_size(3, 2.0);
        let h = column_net_model_unit(&g);
        assert_eq!(h.vertex_weight(1), 5.0);
        assert_eq!(h.vertex_size(3), 2.0);
    }

    #[test]
    fn edge_net_cut_equals_edge_cut() {
        let g = triangle_plus_tail();
        let h = edge_net_model(&g);
        assert_eq!(h.num_nets(), g.num_edges());
        for part in [vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![0, 0, 0, 1]] {
            assert_eq!(
                cutsize_connectivity(&h, &part, 2),
                edge_cut(&g, &part, 2),
                "edge-net k-1 cut must equal edge cut for {part:?}"
            );
        }
    }

    #[test]
    fn clique_expansion_roundtrip_on_two_pin_nets() {
        // A hypergraph of only 2-pin nets expands to the same graph.
        let g = triangle_plus_tail();
        let h = edge_net_model(&g);
        let g2 = clique_expansion(&h);
        assert_eq!(g2.num_edges(), g.num_edges());
        let part = vec![0, 1, 1, 0];
        assert_eq!(edge_cut(&g2, &part, 2), edge_cut(&g, &part, 2));
    }

    #[test]
    fn clique_expansion_weights() {
        // One net of 4 pins, cost 3 ⇒ 6 clique edges of weight 1 each.
        let h = Hypergraph::from_nets(4, &[vec![0, 1, 2, 3]], vec![3.0]);
        let g = clique_expansion(&h);
        assert_eq!(g.num_edges(), 6);
        assert!((g.edge_weights(0)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_expansion_skips_single_pin_nets() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0], vec![0, 1]]);
        let g = clique_expansion(&h);
        assert_eq!(g.num_edges(), 1);
    }
}
