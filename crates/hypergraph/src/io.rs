//! Simple text I/O for hypergraphs and graphs.
//!
//! Two formats are supported:
//!
//! * A **PaToH-like hypergraph format**: a header line
//!   `num_vertices num_nets num_pins`, then one line per net
//!   (`cost pin pin ...`), then one line per vertex (`weight size`).
//!   This is a simplification of the PaToH file format sufficient for
//!   round-tripping every structure this workspace produces.
//! * A **MatrixMarket pattern reader** for `coordinate` matrices, treated
//!   as the adjacency structure of an undirected graph (the way the
//!   paper's Table 1 datasets are distributed).

use std::io::{self, BufRead, Write};

use crate::{CsrGraph, GraphBuilder, Hypergraph, HypergraphBuilder};

/// Writes `h` in the PaToH-like text format.
pub fn write_hypergraph<W: Write>(h: &Hypergraph, mut w: W) -> io::Result<()> {
    writeln!(w, "{} {} {}", h.num_vertices(), h.num_nets(), h.num_pins())?;
    for j in 0..h.num_nets() {
        write!(w, "{}", h.net_cost(j))?;
        for &p in h.net(j) {
            write!(w, " {p}")?;
        }
        writeln!(w)?;
    }
    for v in 0..h.num_vertices() {
        writeln!(w, "{} {}", h.vertex_weight(v), h.vertex_size(v))?;
    }
    Ok(())
}

/// Reads a hypergraph written by [`write_hypergraph`].
pub fn read_hypergraph<R: BufRead>(r: R) -> io::Result<Hypergraph> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| bad("missing header"))??;
    let mut it = header.split_whitespace();
    let nv: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad vertex count"))?;
    let nn: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad net count"))?;

    let mut b = HypergraphBuilder::new(nv);
    for _ in 0..nn {
        let line = lines.next().ok_or_else(|| bad("missing net line"))??;
        let mut toks = line.split_whitespace();
        let cost: f64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad net cost"))?;
        let pins: Result<Vec<usize>, _> = toks.map(|t| t.parse::<usize>()).collect();
        let pins = pins.map_err(|_| bad("bad pin index"))?;
        if pins.iter().any(|&p| p >= nv) {
            return Err(bad("pin index out of range"));
        }
        b.add_net(cost, pins);
    }
    for v in 0..nv {
        let line = lines.next().ok_or_else(|| bad("missing vertex line"))??;
        let mut toks = line.split_whitespace();
        let wgt: f64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad vertex weight"))?;
        let size: f64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad vertex size"))?;
        b.set_vertex_weight(v, wgt);
        b.set_vertex_size(v, size);
    }
    Ok(b.build())
}

/// Reads a MatrixMarket `coordinate` file as an undirected graph.
///
/// Both `pattern` and numeric value entries are accepted (values are used
/// as edge weights; `pattern` entries get weight 1). Diagonal entries are
/// dropped; the structure is symmetrized. Only square matrices are
/// accepted, matching the paper's symmetric test problems.
pub fn read_matrix_market_graph<R: BufRead>(r: R) -> io::Result<CsrGraph> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines().map_while(Result::ok);
    let mut header: Option<String> = None;
    for line in lines.by_ref() {
        let t = line.trim().to_string();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        header = Some(t);
        break;
    }
    let header = header.ok_or_else(|| bad("missing size line"))?;
    let dims: Vec<usize> = header
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| bad("bad size line"))?;
    if dims.len() < 2 {
        return Err(bad("size line needs rows and cols"));
    }
    let (rows, cols) = (dims[0], dims[1]);
    if rows != cols {
        return Err(bad("only square (symmetric) matrices supported"));
    }

    let mut b = GraphBuilder::new(rows);
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(bad("bad entry line"));
        }
        let i: usize = toks[0].parse().map_err(|_| bad("bad row index"))?;
        let j: usize = toks[1].parse().map_err(|_| bad("bad col index"))?;
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(bad("indices must be 1-based and in range"));
        }
        if i == j {
            continue;
        }
        let w = if toks.len() >= 3 {
            toks[2].parse::<f64>().map(f64::abs).unwrap_or(1.0)
        } else {
            1.0
        };
        b.add_edge(i - 1, j - 1, w);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn hypergraph_roundtrip() {
        let mut h = Hypergraph::from_nets(4, &[vec![0, 1, 2], vec![2, 3]], vec![1.5, 2.0]);
        h.set_vertex_weight(1, 3.0);
        h.set_vertex_size(2, 0.5);
        let mut buf = Vec::new();
        write_hypergraph(&h, &mut buf).unwrap();
        let h2 = read_hypergraph(Cursor::new(buf)).unwrap();
        assert_eq!(h2.num_vertices(), 4);
        assert_eq!(h2.num_nets(), 2);
        assert_eq!(h2.net(0), h.net(0));
        assert_eq!(h2.net_cost(1), 2.0);
        assert_eq!(h2.vertex_weight(1), 3.0);
        assert_eq!(h2.vertex_size(2), 0.5);
    }

    #[test]
    fn matrix_market_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % comment\n\
                    3 3 3\n\
                    1 2\n\
                    2 3\n\
                    3 3\n";
        let g = read_matrix_market_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2); // diagonal dropped
        g.validate().unwrap();
    }

    #[test]
    fn matrix_market_values_become_weights() {
        let text = "3 3 2\n1 2 -4.0\n1 3 2.0\n";
        let g = read_matrix_market_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.edge_weights(0), &[4.0, 2.0]);
    }

    #[test]
    fn matrix_market_duplicate_symmetric_entries_merge() {
        let text = "2 2 2\n1 2 1.0\n2 1 1.0\n";
        let g = read_matrix_market_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weights(0), &[2.0]);
    }

    #[test]
    fn rejects_rectangular() {
        let text = "2 3 1\n1 2\n";
        assert!(read_matrix_market_graph(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let text = "2 1 2\n1.0 0 5\n1 1\n1 1\n";
        assert!(read_hypergraph(Cursor::new(text)).is_err());
    }
}
