//! Per-part weight targets and balance caps.
//!
//! Both partitioners (hypergraph and graph) constrain part weights by
//! Eq. (1) of the paper: `W_p ≤ W_avg (1+ε)`. Recursive bisection
//! generalizes this to *proportional* targets — when `k` is odd, a side
//! receiving `⌈k/2⌉` of the final parts targets that fraction of the
//! total weight — so targets are absolute weights rather than `1/k`
//! shares.

/// Per-part target weights plus the allowed overshoot ε.
#[derive(Clone, Debug)]
pub struct PartTargets {
    /// Target weight per part; `Σ target` should equal the total vertex
    /// weight.
    pub target: Vec<f64>,
    /// Allowed relative overshoot: part `p` may weigh up to
    /// `target[p] * (1 + epsilon)`.
    pub epsilon: f64,
}

impl PartTargets {
    /// Uniform targets: `total / k` per part.
    pub fn uniform(total: f64, k: usize, epsilon: f64) -> Self {
        PartTargets {
            target: vec![total / k as f64; k],
            epsilon,
        }
    }

    /// Proportional targets: `total * shares[p] / Σ shares`.
    pub fn proportional(total: f64, shares: &[usize], epsilon: f64) -> Self {
        let sum: usize = shares.iter().sum();
        assert!(sum > 0, "shares must be positive");
        PartTargets {
            target: shares
                .iter()
                .map(|&s| total * s as f64 / sum as f64)
                .collect(),
            epsilon,
        }
    }

    /// Number of parts.
    pub fn k(&self) -> usize {
        self.target.len()
    }

    /// The hard cap for part `p`: `target[p] * (1 + ε)`.
    #[inline]
    pub fn cap(&self, p: usize) -> f64 {
        self.target[p] * (1.0 + self.epsilon)
    }

    /// The largest relative overshoot of any part, `max_p W_p/target_p − 1`
    /// (0 when every part is at or under target).
    pub fn violation(&self, weights: &[f64]) -> f64 {
        weights
            .iter()
            .zip(&self.target)
            .map(|(&w, &t)| if t > 0.0 { w / t - 1.0 } else { 0.0 })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_targets() {
        let t = PartTargets::uniform(100.0, 4, 0.05);
        assert_eq!(t.k(), 4);
        assert_eq!(t.target, vec![25.0; 4]);
        assert!((t.cap(0) - 26.25).abs() < 1e-12);
    }

    #[test]
    fn proportional_targets() {
        let t = PartTargets::proportional(90.0, &[2, 1], 0.1);
        assert_eq!(t.target, vec![60.0, 30.0]);
    }

    #[test]
    fn violation_zero_when_under_target() {
        let t = PartTargets::uniform(100.0, 2, 0.05);
        assert_eq!(t.violation(&[50.0, 50.0]), 0.0);
        assert!((t.violation(&[60.0, 40.0]) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shares must be positive")]
    fn zero_shares_panic() {
        let _ = PartTargets::proportional(1.0, &[0, 0], 0.05);
    }
}
