//! Per-part weight targets and balance caps.
//!
//! Both partitioners (hypergraph and graph) constrain part weights by
//! Eq. (1) of the paper: `W_p ≤ W_avg (1+ε)`. Recursive bisection
//! generalizes this to *proportional* targets — when `k` is odd, a side
//! receiving `⌈k/2⌉` of the final parts targets that fraction of the
//! total weight — so targets are absolute weights rather than `1/k`
//! shares.
//!
//! With multi-constraint loads ([`crate::loads::VertexLoads`]) the same
//! inequality applies to *every* constraint: the primary (constraint-0)
//! targets live in [`PartTargets::target`]/[`PartTargets::epsilon`] as
//! before, and each further constraint `c` carries its own
//! [`AuxTargets`] in [`PartTargets::aux`] (index `c − 1`). A partition
//! is *feasible* iff every constraint of every part is within its cap.
//! The scalar pipeline (arity 1) keeps `aux` empty, so nothing changes
//! for it — not even a float operation.

/// Targets and tolerance of one auxiliary balance constraint
/// (constraint `c ≥ 1` of the load vectors).
#[derive(Clone, Debug)]
pub struct AuxTargets {
    /// Target load per part for this constraint.
    pub target: Vec<f64>,
    /// Allowed relative overshoot for this constraint.
    pub epsilon: f64,
}

impl AuxTargets {
    /// Uniform targets: `total / k` per part.
    pub fn uniform(total: f64, k: usize, epsilon: f64) -> Self {
        AuxTargets { target: vec![total / k as f64; k], epsilon }
    }

    /// Proportional targets from real-valued shares (e.g. per-part
    /// capacities): `total * shares[p] / Σ shares`.
    pub fn proportional(total: f64, shares: &[f64], epsilon: f64) -> Self {
        let sum: f64 = shares.iter().sum();
        assert!(sum > 0.0, "shares must be positive");
        AuxTargets {
            target: shares.iter().map(|&s| total * s / sum).collect(),
            epsilon,
        }
    }

    /// The hard cap for part `p`: `target[p] * (1 + ε)`.
    #[inline]
    pub fn cap(&self, p: usize) -> f64 {
        self.target[p] * (1.0 + self.epsilon)
    }

    /// The largest relative overshoot of any part (0 when every part is
    /// at or under target).
    pub fn violation(&self, weights: &[f64]) -> f64 {
        weights
            .iter()
            .zip(&self.target)
            .map(|(&w, &t)| if t > 0.0 { w / t - 1.0 } else { 0.0 })
            .fold(0.0, f64::max)
    }
}

/// Per-part target weights plus the allowed overshoot ε, for the
/// primary constraint and (optionally) auxiliary load constraints.
#[derive(Clone, Debug)]
pub struct PartTargets {
    /// Target weight per part; `Σ target` should equal the total vertex
    /// weight.
    pub target: Vec<f64>,
    /// Allowed relative overshoot: part `p` may weigh up to
    /// `target[p] * (1 + epsilon)`.
    pub epsilon: f64,
    /// Targets for auxiliary constraints `1..arity`; empty in the
    /// scalar (arity-1) pipeline.
    pub aux: Vec<AuxTargets>,
}

impl PartTargets {
    /// Uniform targets: `total / k` per part.
    pub fn uniform(total: f64, k: usize, epsilon: f64) -> Self {
        PartTargets {
            target: vec![total / k as f64; k],
            epsilon,
            aux: Vec::new(),
        }
    }

    /// Proportional targets: `total * shares[p] / Σ shares`.
    pub fn proportional(total: f64, shares: &[usize], epsilon: f64) -> Self {
        let sum: usize = shares.iter().sum();
        assert!(sum > 0, "shares must be positive");
        PartTargets {
            target: shares
                .iter()
                .map(|&s| total * s as f64 / sum as f64)
                .collect(),
            epsilon,
            aux: Vec::new(),
        }
    }

    /// Proportional primary targets from real-valued shares (per-part
    /// capacity vectors on heterogeneous machines).
    pub fn proportional_f64(total: f64, shares: &[f64], epsilon: f64) -> Self {
        let sum: f64 = shares.iter().sum();
        assert!(sum > 0.0, "shares must be positive");
        PartTargets {
            target: shares.iter().map(|&s| total * s / sum).collect(),
            epsilon,
            aux: Vec::new(),
        }
    }

    /// Attaches auxiliary constraint targets (builder style).
    pub fn with_aux(mut self, aux: Vec<AuxTargets>) -> Self {
        for a in &aux {
            assert_eq!(a.target.len(), self.target.len(), "aux targets must cover every part");
        }
        self.aux = aux;
        self
    }

    /// Number of parts.
    pub fn k(&self) -> usize {
        self.target.len()
    }

    /// Number of balance constraints (1 + auxiliary constraints).
    #[inline]
    pub fn arity(&self) -> usize {
        1 + self.aux.len()
    }

    /// True when only the primary constraint is active.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.aux.is_empty()
    }

    /// The hard cap for part `p`: `target[p] * (1 + ε)`.
    #[inline]
    pub fn cap(&self, p: usize) -> f64 {
        self.target[p] * (1.0 + self.epsilon)
    }

    /// The hard cap of auxiliary constraint `c` (1-based constraint
    /// index, so `c ∈ 1..arity`) for part `p`.
    #[inline]
    pub fn aux_cap(&self, c: usize, p: usize) -> f64 {
        self.aux[c - 1].cap(p)
    }

    /// The largest relative overshoot of any part, `max_p W_p/target_p − 1`
    /// (0 when every part is at or under target).
    pub fn violation(&self, weights: &[f64]) -> f64 {
        weights
            .iter()
            .zip(&self.target)
            .map(|(&w, &t)| if t > 0.0 { w / t - 1.0 } else { 0.0 })
            .fold(0.0, f64::max)
    }

    /// True iff every part is within its cap on **every** constraint.
    /// `weights` holds the primary part weights, `aux_weights[c-1]` the
    /// part loads of auxiliary constraint `c` (same layout as `aux`).
    pub fn feasible(&self, weights: &[f64], aux_weights: &[Vec<f64>]) -> bool {
        assert_eq!(aux_weights.len(), self.aux.len(), "one weight row per aux constraint");
        let slack = 1e-9;
        if weights.iter().enumerate().any(|(p, &w)| w > self.cap(p) + slack) {
            return false;
        }
        for (a, ws) in self.aux.iter().zip(aux_weights) {
            if ws.iter().enumerate().any(|(p, &w)| w > a.cap(p) + slack) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_targets() {
        let t = PartTargets::uniform(100.0, 4, 0.05);
        assert_eq!(t.k(), 4);
        assert_eq!(t.target, vec![25.0; 4]);
        assert!((t.cap(0) - 26.25).abs() < 1e-12);
        assert_eq!(t.arity(), 1);
        assert!(t.is_scalar());
    }

    #[test]
    fn proportional_targets() {
        let t = PartTargets::proportional(90.0, &[2, 1], 0.1);
        assert_eq!(t.target, vec![60.0, 30.0]);
    }

    #[test]
    fn proportional_f64_targets() {
        let t = PartTargets::proportional_f64(90.0, &[2.0, 1.0], 0.1);
        assert_eq!(t.target, vec![60.0, 30.0]);
    }

    #[test]
    fn violation_zero_when_under_target() {
        let t = PartTargets::uniform(100.0, 2, 0.05);
        assert_eq!(t.violation(&[50.0, 50.0]), 0.0);
        assert!((t.violation(&[60.0, 40.0]) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shares must be positive")]
    fn zero_shares_panic() {
        let _ = PartTargets::proportional(1.0, &[0, 0], 0.05);
    }

    #[test]
    fn aux_targets_and_feasibility() {
        let t = PartTargets::uniform(100.0, 2, 0.05)
            .with_aux(vec![AuxTargets::uniform(800.0, 2, 0.10)]);
        assert_eq!(t.arity(), 2);
        assert!(!t.is_scalar());
        assert!((t.aux_cap(1, 0) - 440.0).abs() < 1e-12);
        assert!(t.feasible(&[52.0, 48.0], &[vec![420.0, 380.0]]));
        // Primary fine, aux violated.
        assert!(!t.feasible(&[52.0, 48.0], &[vec![500.0, 300.0]]));
        // Aux fine, primary violated.
        assert!(!t.feasible(&[60.0, 40.0], &[vec![400.0, 400.0]]));
    }

    #[test]
    fn aux_proportional_capacity_shares() {
        let a = AuxTargets::proportional(120.0, &[3.0, 1.0], 0.0);
        assert_eq!(a.target, vec![90.0, 30.0]);
        assert!((a.violation(&[99.0, 21.0]) - 0.1).abs() < 1e-12);
    }
}
