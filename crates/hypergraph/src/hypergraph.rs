//! The compressed hypergraph representation.
//!
//! A hypergraph `H = (V, N)` is stored twice, CSR-style:
//!
//! * **net → pins**: `xpins`/`pins` arrays, so the pins of net `j` are
//!   `pins[xpins[j]..xpins[j+1]]`;
//! * **vertex → nets** (the *pin transpose*): `xnets`/`vnets` arrays, so
//!   the nets incident to vertex `v` are `vnets[xnets[v]..xnets[v+1]]`.
//!
//! Each vertex carries a [`VertexLoads`] resource vector whose primary
//! (constraint-0) entry is the *weight* `w_i` (computational load used by
//! the balance constraint, Eq. (1) of the paper; further constraints are
//! additional balanced resources such as memory bytes) and a *size* (the
//! amount of data that must move if the vertex migrates — the cost of its
//! migration net in the repartitioning model of Section 3). Each net
//! carries a *cost* `c_j` (communication data volume, the coefficient in
//! the k-1 cut, Eq. (2)).

use std::fmt;

use crate::loads::VertexLoads;

/// A hypergraph with vertex weights, vertex sizes, and net costs.
///
/// Immutable after construction except for weights, sizes and costs,
/// which the dynamic workloads mutate between epochs. The pin structure
/// itself never changes; epoch-to-epoch structural change is expressed by
/// building a new `Hypergraph` (see [`crate::subset`]).
#[derive(Clone, PartialEq)]
pub struct Hypergraph {
    num_vertices: usize,
    xpins: Vec<usize>,
    pins: Vec<usize>,
    xnets: Vec<usize>,
    vnets: Vec<usize>,
    loads: VertexLoads,
    vsize: Vec<f64>,
    ncost: Vec<f64>,
}

impl Hypergraph {
    /// Builds a hypergraph from a pin list.
    ///
    /// `nets[j]` is the pin list of net `j`; `ncost[j]` its cost. Vertex
    /// weights and sizes default to `1.0`. Pins must be `< num_vertices`;
    /// duplicate pins within a net are removed.
    ///
    /// # Panics
    /// Panics if a pin index is out of range.
    pub fn from_nets(num_vertices: usize, nets: &[Vec<usize>], ncost: Vec<f64>) -> Self {
        assert_eq!(nets.len(), ncost.len(), "one cost per net");
        let mut builder = HypergraphBuilder::new(num_vertices);
        for (net, &c) in nets.iter().zip(&ncost) {
            builder.add_net(c, net.iter().copied());
        }
        builder.build()
    }

    /// Builds a hypergraph with unit net costs.
    pub fn from_nets_unit(num_vertices: usize, nets: &[Vec<usize>]) -> Self {
        Self::from_nets(num_vertices, nets, vec![1.0; nets.len()])
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of nets `|N|`.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.xpins.len() - 1
    }

    /// Total number of pins (sum of net sizes).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The pins (vertices) of net `j`.
    #[inline]
    pub fn net(&self, j: usize) -> &[usize] {
        &self.pins[self.xpins[j]..self.xpins[j + 1]]
    }

    /// The size (number of pins) of net `j`.
    #[inline]
    pub fn net_size(&self, j: usize) -> usize {
        self.xpins[j + 1] - self.xpins[j]
    }

    /// The nets incident to vertex `v`.
    #[inline]
    pub fn vertex_nets(&self, v: usize) -> &[usize] {
        &self.vnets[self.xnets[v]..self.xnets[v + 1]]
    }

    /// The degree (number of incident nets) of vertex `v`.
    #[inline]
    pub fn vertex_degree(&self, v: usize) -> usize {
        self.xnets[v + 1] - self.xnets[v]
    }

    /// Computational weight of vertex `v` — the primary (constraint-0)
    /// load of the balance constraint.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> f64 {
        self.loads.scalar()[v]
    }

    /// Load of vertex `v` under balance constraint `c`.
    #[inline]
    pub fn vertex_load(&self, v: usize, c: usize) -> f64 {
        self.loads.get(v, c)
    }

    /// Number of balance constraints every vertex carries (1 = the
    /// classic scalar-weight pipeline).
    #[inline]
    pub fn load_arity(&self) -> usize {
        self.loads.arity()
    }

    /// Migration data size of vertex `v` (cost of its migration net).
    #[inline]
    pub fn vertex_size(&self, v: usize) -> f64 {
        self.vsize[v]
    }

    /// Communication cost of net `j` (coefficient in the k-1 cut).
    #[inline]
    pub fn net_cost(&self, j: usize) -> f64 {
        self.ncost[j]
    }

    /// The typed per-vertex load vectors.
    #[inline]
    pub fn loads(&self) -> &VertexLoads {
        &self.loads
    }

    /// All vertex sizes.
    #[inline]
    pub fn vertex_sizes(&self) -> &[f64] {
        &self.vsize
    }

    /// All net costs.
    #[inline]
    pub fn net_costs(&self) -> &[f64] {
        &self.ncost
    }

    /// Sum of all vertex weights (primary loads).
    pub fn total_vertex_weight(&self) -> f64 {
        self.loads.scalar().iter().sum()
    }

    /// Sum of constraint `c` over all vertices.
    pub fn total_load(&self, c: usize) -> f64 {
        self.loads.total(c)
    }

    /// Sum of all vertex sizes.
    pub fn total_vertex_size(&self) -> f64 {
        self.vsize.iter().sum()
    }

    /// Sets the weight (primary load) of vertex `v`.
    pub fn set_vertex_weight(&mut self, v: usize, w: f64) {
        assert!(w >= 0.0, "vertex weight must be non-negative");
        self.loads.set(v, 0, w);
    }

    /// Sets constraint `c` of vertex `v`.
    pub fn set_vertex_load(&mut self, v: usize, c: usize, w: f64) {
        self.loads.set(v, c, w);
    }

    /// Sets the migration size of vertex `v`.
    pub fn set_vertex_size(&mut self, v: usize, s: f64) {
        assert!(s >= 0.0, "vertex size must be non-negative");
        self.vsize[v] = s;
    }

    /// Sets the cost of net `j`.
    pub fn set_net_cost(&mut self, j: usize, c: f64) {
        assert!(c >= 0.0, "net cost must be non-negative");
        self.ncost[j] = c;
    }

    /// Replaces the per-vertex load vectors (any arity).
    ///
    /// # Panics
    /// Panics if `loads` does not cover exactly `num_vertices` vertices.
    pub fn set_loads(&mut self, loads: VertexLoads) {
        assert_eq!(loads.len(), self.num_vertices, "one load vector per vertex");
        self.loads = loads;
    }

    /// Replaces all vertex sizes.
    pub fn set_vertex_sizes(&mut self, s: Vec<f64>) {
        assert_eq!(s.len(), self.num_vertices);
        self.vsize = s;
    }

    /// Returns a copy with every net cost multiplied by `factor`.
    ///
    /// The repartitioning model scales communication-net costs by the
    /// epoch length `α` (Section 3 of the paper).
    pub fn with_scaled_net_costs(&self, factor: f64) -> Self {
        let mut h = self.clone();
        for c in &mut h.ncost {
            *c *= factor;
        }
        h
    }

    /// Checks structural invariants; returns a description of the first
    /// violation, if any. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.xpins.len() != self.ncost.len() + 1 {
            return Err("xpins length must be num_nets + 1".into());
        }
        if self.xnets.len() != self.num_vertices + 1 {
            return Err("xnets length must be num_vertices + 1".into());
        }
        if self.loads.len() != self.num_vertices || self.vsize.len() != self.num_vertices {
            return Err("load/size arrays must have num_vertices entries".into());
        }
        self.loads.validate()?;
        if self.pins.len() != self.vnets.len() {
            return Err("pin count must equal transpose pin count".into());
        }
        if self.xpins.windows(2).any(|w| w[0] > w[1]) {
            return Err("xpins must be non-decreasing".into());
        }
        if self.xnets.windows(2).any(|w| w[0] > w[1]) {
            return Err("xnets must be non-decreasing".into());
        }
        for j in 0..self.num_nets() {
            let net = self.net(j);
            for &p in net {
                if p >= self.num_vertices {
                    return Err(format!("net {j} has out-of-range pin {p}"));
                }
            }
            let mut sorted = net.to_vec();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("net {j} has duplicate pins"));
            }
        }
        // Transpose consistency: vertex v lists net j iff net j lists v.
        let mut count = vec![0usize; self.num_vertices];
        for &p in &self.pins {
            count[p] += 1;
        }
        for v in 0..self.num_vertices {
            if self.vertex_degree(v) != count[v] {
                return Err(format!("vertex {v} transpose degree mismatch"));
            }
            for &j in self.vertex_nets(v) {
                if !self.net(j).contains(&v) {
                    return Err(format!("vertex {v} lists net {j} but net lacks the pin"));
                }
            }
        }
        if self.vsize.iter().chain(&self.ncost).any(|&x| x < 0.0 || !x.is_finite()) {
            return Err("sizes and costs must be finite and non-negative".into());
        }
        Ok(())
    }

    /// Raw CSR access for partitioner internals: `(xpins, pins)`.
    pub fn pin_csr(&self) -> (&[usize], &[usize]) {
        (&self.xpins, &self.pins)
    }

    /// Raw transpose access for partitioner internals: `(xnets, vnets)`.
    pub fn net_csr(&self) -> (&[usize], &[usize]) {
        (&self.xnets, &self.vnets)
    }

    /// Average net size (pins per net); `0.0` for a net-less hypergraph.
    pub fn avg_net_size(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypergraph")
            .field("num_vertices", &self.num_vertices)
            .field("num_nets", &self.num_nets())
            .field("num_pins", &self.num_pins())
            .finish()
    }
}

/// Incremental hypergraph constructor.
///
/// ```
/// use dlb_hypergraph::HypergraphBuilder;
/// let mut b = HypergraphBuilder::new(4);
/// b.add_net(1.0, [0, 1, 2]);
/// b.add_net(2.5, [2, 3]);
/// b.set_vertex_weight(3, 4.0);
/// let h = b.build();
/// assert_eq!(h.num_nets(), 2);
/// assert_eq!(h.net(1), &[2, 3]);
/// assert_eq!(h.vertex_weight(3), 4.0);
/// ```
pub struct HypergraphBuilder {
    num_vertices: usize,
    xpins: Vec<usize>,
    pins: Vec<usize>,
    ncost: Vec<f64>,
    loads: VertexLoads,
    vsize: Vec<f64>,
    seen: Vec<u64>,
    stamp: u64,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph on `num_vertices` vertices with
    /// unit weights and sizes.
    pub fn new(num_vertices: usize) -> Self {
        HypergraphBuilder {
            num_vertices,
            xpins: vec![0],
            pins: Vec::new(),
            ncost: Vec::new(),
            loads: VertexLoads::ones(num_vertices),
            vsize: vec![1.0; num_vertices],
            seen: vec![0; num_vertices],
            stamp: 0,
        }
    }

    /// Adds a net with the given cost and pins; duplicate pins are
    /// silently dropped. Returns the net index.
    ///
    /// # Panics
    /// Panics on an out-of-range pin or a negative cost.
    pub fn add_net(&mut self, cost: f64, net: impl IntoIterator<Item = usize>) -> usize {
        assert!(cost >= 0.0, "net cost must be non-negative");
        self.stamp += 1;
        for v in net {
            assert!(v < self.num_vertices, "pin {v} out of range");
            if self.seen[v] != self.stamp {
                self.seen[v] = self.stamp;
                self.pins.push(v);
            }
        }
        self.xpins.push(self.pins.len());
        self.ncost.push(cost);
        self.ncost.len() - 1
    }

    /// Sets the computational weight (primary load) of a vertex
    /// (default `1.0`).
    pub fn set_vertex_weight(&mut self, v: usize, w: f64) {
        assert!(w >= 0.0);
        self.loads.set(v, 0, w);
    }

    /// Replaces the per-vertex load vectors (any arity).
    ///
    /// # Panics
    /// Panics if `loads` does not cover exactly `num_vertices` vertices.
    pub fn set_loads(&mut self, loads: VertexLoads) {
        assert_eq!(loads.len(), self.num_vertices, "one load vector per vertex");
        self.loads = loads;
    }

    /// Sets the migration size of a vertex (default `1.0`).
    pub fn set_vertex_size(&mut self, v: usize, s: f64) {
        assert!(s >= 0.0);
        self.vsize[v] = s;
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.ncost.len()
    }

    /// Finalizes the hypergraph, computing the pin transpose.
    pub fn build(self) -> Hypergraph {
        let HypergraphBuilder {
            num_vertices,
            xpins,
            pins,
            ncost,
            loads,
            vsize,
            ..
        } = self;

        // Build the transpose by counting sort over pins.
        let mut xnets = vec![0usize; num_vertices + 1];
        for &p in &pins {
            xnets[p + 1] += 1;
        }
        for v in 0..num_vertices {
            xnets[v + 1] += xnets[v];
        }
        let mut vnets = vec![0usize; pins.len()];
        let mut cursor = xnets.clone();
        for j in 0..ncost.len() {
            for &p in &pins[xpins[j]..xpins[j + 1]] {
                vnets[cursor[p]] = j;
                cursor[p] += 1;
            }
        }

        Hypergraph {
            num_vertices,
            xpins,
            pins,
            xnets,
            vnets,
            loads,
            vsize,
            ncost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // Nets: {0,1,2}, {1,3}, {2,3,4}, {4}
        Hypergraph::from_nets(
            5,
            &[vec![0, 1, 2], vec![1, 3], vec![2, 3, 4], vec![4]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let h = sample();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_nets(), 4);
        assert_eq!(h.num_pins(), 9);
        assert_eq!(h.net(0), &[0, 1, 2]);
        assert_eq!(h.net(3), &[4]);
        assert_eq!(h.net_size(2), 3);
        assert_eq!(h.net_cost(1), 2.0);
        assert_eq!(h.vertex_weight(0), 1.0);
        h.validate().unwrap();
    }

    #[test]
    fn transpose_is_consistent() {
        let h = sample();
        assert_eq!(h.vertex_nets(1), &[0, 1]);
        assert_eq!(h.vertex_nets(4), &[2, 3]);
        assert_eq!(h.vertex_degree(3), 2);
        assert_eq!(h.vertex_degree(0), 1);
    }

    #[test]
    fn duplicate_pins_are_dropped() {
        let h = Hypergraph::from_nets(3, &[vec![0, 1, 1, 2, 0]], vec![1.0]);
        assert_eq!(h.net(0), &[0, 1, 2]);
        h.validate().unwrap();
    }

    #[test]
    fn weight_mutation() {
        let mut h = sample();
        h.set_vertex_weight(2, 7.5);
        h.set_vertex_size(2, 3.25);
        h.set_net_cost(0, 9.0);
        assert_eq!(h.vertex_weight(2), 7.5);
        assert_eq!(h.vertex_size(2), 3.25);
        assert_eq!(h.net_cost(0), 9.0);
        assert_eq!(h.total_vertex_weight(), 4.0 + 7.5);
    }

    #[test]
    fn scaled_net_costs() {
        let h = sample().with_scaled_net_costs(10.0);
        assert_eq!(h.net_cost(0), 10.0);
        assert_eq!(h.net_cost(3), 40.0);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_nets_unit(0, &[]);
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_nets(), 0);
        h.validate().unwrap();
    }

    #[test]
    fn single_pin_net_allowed() {
        let h = Hypergraph::from_nets_unit(2, &[vec![1]]);
        assert_eq!(h.net_size(0), 1);
        h.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pin_panics() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 5]);
    }

    #[test]
    fn multi_constraint_loads_roundtrip() {
        let mut h = sample();
        assert_eq!(h.load_arity(), 1);
        let loads = VertexLoads::from_columns(vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![40.0; 5],
        ]);
        h.set_loads(loads);
        assert_eq!(h.load_arity(), 2);
        assert_eq!(h.vertex_weight(2), 3.0, "constraint 0 is the scalar weight");
        assert_eq!(h.vertex_load(2, 1), 40.0);
        assert_eq!(h.total_vertex_weight(), 15.0);
        assert_eq!(h.total_load(1), 200.0);
        h.set_vertex_weight(2, 9.0);
        assert_eq!(h.loads().get(2, 0), 9.0);
        h.set_vertex_load(0, 1, 80.0);
        assert_eq!(h.loads().constraint(1), &[80.0, 40.0, 40.0, 40.0, 40.0]);
        h.validate().unwrap();
    }

    #[test]
    fn builder_accepts_multi_constraint_loads() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1, 2]);
        b.set_loads(VertexLoads::from_columns(vec![vec![1.0, 1.0, 2.0], vec![8.0, 0.0, 4.0]]));
        let h = b.build();
        assert_eq!(h.load_arity(), 2);
        assert_eq!(h.vertex_load(0, 1), 8.0);
        h.validate().unwrap();
    }

    #[test]
    fn builder_net_indices_are_sequential() {
        let mut b = HypergraphBuilder::new(3);
        assert_eq!(b.add_net(1.0, [0]), 0);
        assert_eq!(b.add_net(1.0, [1, 2]), 1);
        assert_eq!(b.num_nets(), 2);
    }
}
