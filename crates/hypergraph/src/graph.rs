//! Symmetric weighted graphs in compressed sparse row form.
//!
//! The ParMETIS-like baseline partitioner operates on graphs; the paper's
//! test problems (Table 1) are all structurally symmetric, so each dataset
//! exists both as a [`CsrGraph`] and, through [`crate::convert`], as a
//! hypergraph.

use std::fmt;

/// An undirected graph with edge weights, vertex weights and vertex sizes,
/// stored in CSR form. Every edge `{u, v}` appears in both adjacency
/// lists with the same weight.
#[derive(Clone, PartialEq)]
pub struct CsrGraph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
    adjwgt: Vec<f64>,
    vwgt: Vec<f64>,
    vsize: Vec<f64>,
}

impl CsrGraph {
    /// Builds a graph from an undirected edge list. Each `(u, v, w)` is
    /// inserted once regardless of orientation; parallel edges have their
    /// weights summed; self-loops are dropped.
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut b = GraphBuilder::new(num_vertices);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Builds a graph from an unweighted undirected edge list.
    pub fn from_edges_unit(num_vertices: usize, edges: &[(usize, usize)]) -> Self {
        let weighted: Vec<(usize, usize, f64)> =
            edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_edges(num_vertices, &weighted)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// The weights of the edges incident to `v`, aligned with
    /// [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: usize) -> &[f64] {
        &self.adjwgt[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Computational weight of `v`.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> f64 {
        self.vwgt[v]
    }

    /// Migration data size of `v`.
    #[inline]
    pub fn vertex_size(&self, v: usize) -> f64 {
        self.vsize[v]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[f64] {
        &self.vwgt
    }

    /// All vertex sizes.
    #[inline]
    pub fn vertex_sizes(&self) -> &[f64] {
        &self.vsize
    }

    /// Sets the weight of `v`.
    pub fn set_vertex_weight(&mut self, v: usize, w: f64) {
        assert!(w >= 0.0);
        self.vwgt[v] = w;
    }

    /// Sets the migration size of `v`.
    pub fn set_vertex_size(&mut self, v: usize, s: f64) {
        assert!(s >= 0.0);
        self.vsize[v] = s;
    }

    /// Replaces all vertex weights.
    pub fn set_vertex_weights(&mut self, w: Vec<f64>) {
        assert_eq!(w.len(), self.num_vertices());
        self.vwgt = w;
    }

    /// Replaces all vertex sizes.
    pub fn set_vertex_sizes(&mut self, s: Vec<f64>) {
        assert_eq!(s.len(), self.num_vertices());
        self.vsize = s;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Raw CSR access: `(xadj, adjncy, adjwgt)`.
    pub fn csr(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.xadj, &self.adjncy, &self.adjwgt)
    }

    /// Degree statistics as reported in Table 1 of the paper.
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.num_vertices();
        if n == 0 {
            return DegreeStats { min: 0, max: 0, avg: 0.0 };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for v in 0..n {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
        }
        DegreeStats {
            min,
            max,
            avg: self.adjncy.len() as f64 / n as f64,
        }
    }

    /// Checks structural invariants (CSR shape, symmetry, no self-loops).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.xadj.len() != n + 1 {
            return Err("xadj length must be num_vertices + 1".into());
        }
        if self.adjncy.len() != self.adjwgt.len() {
            return Err("adjncy and adjwgt must be parallel arrays".into());
        }
        if self.xadj.windows(2).any(|w| w[0] > w[1]) {
            return Err("xadj must be non-decreasing".into());
        }
        if *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err("xadj must end at adjncy length".into());
        }
        for v in 0..n {
            for (&u, &w) in self.neighbors(v).iter().zip(self.edge_weights(v)) {
                if u >= n {
                    return Err(format!("vertex {v} has out-of-range neighbor {u}"));
                }
                if u == v {
                    return Err(format!("vertex {v} has a self-loop"));
                }
                // Symmetry: u must list v with equal weight.
                let back = self
                    .neighbors(u)
                    .iter()
                    .position(|&x| x == v)
                    .ok_or_else(|| format!("edge {v}-{u} missing reverse direction"))?;
                if (self.edge_weights(u)[back] - w).abs() > 1e-9 {
                    return Err(format!("edge {v}-{u} has asymmetric weight"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

/// Min / max / average vertex degree, as in Table 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree over all vertices.
    pub min: usize,
    /// Maximum degree over all vertices.
    pub max: usize,
    /// Average degree (`2|E| / |V|`).
    pub avg: f64,
}

/// Incremental graph constructor that symmetrizes, merges parallel edges
/// (summing weights) and drops self-loops.
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
    vwgt: Vec<f64>,
    vsize: Vec<f64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` vertices with unit
    /// weights and sizes.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            vwgt: vec![1.0; num_vertices],
            vsize: vec![1.0; num_vertices],
        }
    }

    /// Adds an undirected edge. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative weight.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.num_vertices && v < self.num_vertices, "edge endpoint out of range");
        assert!(w >= 0.0, "edge weight must be non-negative");
        if u != v {
            self.edges.push((u.min(v), u.max(v), w));
        }
    }

    /// Sets the computational weight of a vertex.
    pub fn set_vertex_weight(&mut self, v: usize, w: f64) {
        assert!(w >= 0.0);
        self.vwgt[v] = w;
    }

    /// Sets the migration size of a vertex.
    pub fn set_vertex_size(&mut self, v: usize, s: f64) {
        assert!(s >= 0.0);
        self.vsize[v] = s;
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR structure.
    pub fn build(mut self) -> CsrGraph {
        // Deduplicate: sort canonical (u <= v) edges, merge weights.
        self.edges.sort_unstable_by_key(|e| (e.0, e.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        let n = self.num_vertices;
        let mut xadj = vec![0usize; n + 1];
        for &(u, v, _) in &merged {
            xadj[u + 1] += 1;
            xadj[v + 1] += 1;
        }
        for v in 0..n {
            xadj[v + 1] += xadj[v];
        }
        let mut adjncy = vec![0usize; merged.len() * 2];
        let mut adjwgt = vec![0f64; merged.len() * 2];
        let mut cursor = xadj.clone();
        for &(u, v, w) in &merged {
            adjncy[cursor[u]] = v;
            adjwgt[cursor[u]] = w;
            cursor[u] += 1;
            adjncy[cursor[v]] = u;
            adjwgt[cursor[v]] = w;
            cursor[v] += 1;
        }

        CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: self.vwgt,
            vsize: self.vsize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn construction() {
        let g = path4();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        g.validate().unwrap();
    }

    #[test]
    fn parallel_edges_merge_weights() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1.0), (1, 0, 2.5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weights(0), &[3.5]);
        assert_eq!(g.edge_weights(1), &[3.5]);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_dropped() {
        let g = CsrGraph::from_edges(3, &[(0, 0, 1.0), (0, 1, 1.0)]);
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn degree_stats() {
        let g = CsrGraph::from_edges_unit(4, &[(0, 1), (0, 2), (0, 3)]);
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_edges_unit(5, &[(0, 1)]);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[usize]);
        g.validate().unwrap();
    }

    #[test]
    fn vertex_weight_updates() {
        let mut g = path4();
        g.set_vertex_weight(2, 6.0);
        g.set_vertex_size(2, 2.0);
        assert_eq!(g.vertex_weight(2), 6.0);
        assert_eq!(g.vertex_size(2), 2.0);
        assert_eq!(g.total_vertex_weight(), 9.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges_unit(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }
}
