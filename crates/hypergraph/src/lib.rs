//! Hypergraph and graph data structures for dynamic load balancing.
//!
//! This crate is the data-structure substrate of the IPDPS'07 reproduction
//! *"Hypergraph-based Dynamic Load Balancing for Adaptive Scientific
//! Computations"*. It provides:
//!
//! * [`Hypergraph`] — a compressed (CSR-like) hypergraph carrying three
//!   distinct per-element quantities: typed per-vertex *loads*
//!   ([`VertexLoads`], a fixed-arity resource vector whose primary
//!   constraint is the computational weight and whose further constraints
//!   are additional balanced resources such as memory bytes), per-vertex
//!   *sizes* (migration data volume, the cost of a vertex's migration
//!   net), and per-net *costs* (communication data volume, the k-1 cut
//!   coefficient) — plus the pin transpose needed by partitioners. A
//!   k-way partition is *feasible* only when **every** load constraint is
//!   within its imbalance tolerance ([`balance::PartTargets`]); arity 1
//!   reduces bitwise to the classic scalar-weight pipeline.
//! * [`CsrGraph`] — a symmetric weighted graph in compressed sparse row
//!   form, used by the ParMETIS-like baseline partitioner.
//! * [`metrics`] — partition-quality metrics: the connectivity-1 (*k-1*)
//!   cut of Eq. (2) of the paper, the cut-net metric, edge cut, part
//!   weights, imbalance, and migration volume.
//! * [`convert`] — graph ⇄ hypergraph model conversions (column-net model,
//!   edge-net model, clique expansion).
//! * [`subset`] — induced sub(hyper)graphs, used by the structural
//!   perturbation workload generator.
//! * [`io`] — simple text formats (PaToH-like hypergraph files and a
//!   MatrixMarket pattern reader).
//!
//! # Conventions
//!
//! Vertices, nets and parts are dense `usize` indices starting at zero.
//! A *k*-way partition is a `&[usize]` of length `num_vertices` with
//! entries in `0..k`. Weights, sizes and costs are `f64` because the
//! paper's weight-perturbation experiment scales them by factors drawn
//! from `U(1.5, 7.5)`.

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod balance;
pub mod convert;
pub mod graph;
pub mod hypergraph;
pub mod io;
pub mod loads;
pub mod metrics;
pub mod parallel;
pub mod subset;

pub use balance::{AuxTargets, PartTargets};
pub use graph::{CsrGraph, DegreeStats, GraphBuilder};
pub use hypergraph::{Hypergraph, HypergraphBuilder};
pub use loads::VertexLoads;

/// A partition identifier. Parts are dense indices `0..k`.
pub type PartId = usize;
