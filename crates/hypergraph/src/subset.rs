//! Induced sub(hyper)graphs.
//!
//! The paper's *structural perturbation* workload deletes a different
//! random subset of vertices (with incident edges) each epoch, so the
//! epoch hypergraph `H^j` is an induced substructure of the base dataset.
//! These helpers build the induced structure and report the
//! new-index → old-index mapping needed to carry partition assignments,
//! weights and migration identities across epochs.

use crate::{CsrGraph, GraphBuilder, Hypergraph, HypergraphBuilder};

/// Result of an induced-subgraph extraction: the structure plus the
/// mapping from new (dense) vertex indices back to the base indices.
#[derive(Clone, Debug)]
pub struct InducedGraph {
    /// The induced graph on the kept vertices.
    pub graph: CsrGraph,
    /// `to_base[new_index] = base_index`.
    pub to_base: Vec<usize>,
    /// `from_base[base_index] = Some(new_index)` for kept vertices.
    pub from_base: Vec<Option<usize>>,
}

/// Result of an induced-subhypergraph extraction.
#[derive(Clone, Debug)]
pub struct InducedHypergraph {
    /// The induced hypergraph on the kept vertices.
    pub hypergraph: Hypergraph,
    /// `to_base[new_index] = base_index`.
    pub to_base: Vec<usize>,
    /// `from_base[base_index] = Some(new_index)` for kept vertices.
    pub from_base: Vec<Option<usize>>,
}

fn index_maps(keep: &[bool]) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut to_base = Vec::new();
    let mut from_base = vec![None; keep.len()];
    for (v, &k) in keep.iter().enumerate() {
        if k {
            from_base[v] = Some(to_base.len());
            to_base.push(v);
        }
    }
    (to_base, from_base)
}

/// Induced subgraph on the vertices with `keep[v] == true`. Edges with a
/// deleted endpoint are dropped; weights and sizes are copied.
pub fn induced_subgraph(g: &CsrGraph, keep: &[bool]) -> InducedGraph {
    assert_eq!(keep.len(), g.num_vertices());
    let (to_base, from_base) = index_maps(keep);
    let mut b = GraphBuilder::new(to_base.len());
    for (new_v, &old_v) in to_base.iter().enumerate() {
        b.set_vertex_weight(new_v, g.vertex_weight(old_v));
        b.set_vertex_size(new_v, g.vertex_size(old_v));
        for (&old_u, &w) in g.neighbors(old_v).iter().zip(g.edge_weights(old_v)) {
            if old_u > old_v {
                if let Some(new_u) = from_base[old_u] {
                    b.add_edge(new_v, new_u, w);
                }
            }
        }
    }
    InducedGraph {
        graph: b.build(),
        to_base,
        from_base,
    }
}

/// Induced subhypergraph on the vertices with `keep[v] == true`.
///
/// Deleted pins are removed from every net; nets left with **fewer than
/// two pins are dropped** (they can never be cut, so they carry no
/// information for partitioning), as are empty nets.
pub fn induced_subhypergraph(h: &Hypergraph, keep: &[bool]) -> InducedHypergraph {
    assert_eq!(keep.len(), h.num_vertices());
    let (to_base, from_base) = index_maps(keep);
    let mut b = HypergraphBuilder::new(to_base.len());
    for (new_v, &old_v) in to_base.iter().enumerate() {
        b.set_vertex_weight(new_v, h.vertex_weight(old_v));
        b.set_vertex_size(new_v, h.vertex_size(old_v));
    }
    // Auxiliary load columns restrict alongside the vertices (never
    // reached at arity 1, where the scalar copy above is complete).
    let arity = h.load_arity();
    if arity > 1 {
        let columns: Vec<Vec<f64>> = (0..arity)
            .map(|c| to_base.iter().map(|&old_v| h.vertex_load(old_v, c)).collect())
            .collect();
        b.set_loads(crate::VertexLoads::from_columns(columns));
    }
    let mut pins: Vec<usize> = Vec::new();
    for j in 0..h.num_nets() {
        pins.clear();
        pins.extend(h.net(j).iter().filter_map(|&v| from_base[v]));
        if pins.len() >= 2 {
            b.add_net(h.net_cost(j), pins.iter().copied());
        }
    }
    InducedHypergraph {
        hypergraph: b.build(),
        to_base,
        from_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_graph_drops_incident_edges() {
        // Square 0-1-2-3-0; drop vertex 2.
        let g = CsrGraph::from_edges_unit(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let keep = vec![true, true, false, true];
        let ind = induced_subgraph(&g, &keep);
        assert_eq!(ind.graph.num_vertices(), 3);
        assert_eq!(ind.graph.num_edges(), 2); // 0-1 and 3-0 survive
        assert_eq!(ind.to_base, vec![0, 1, 3]);
        assert_eq!(ind.from_base[3], Some(2));
        assert_eq!(ind.from_base[2], None);
        ind.graph.validate().unwrap();
    }

    #[test]
    fn induced_graph_copies_attributes() {
        let mut g = CsrGraph::from_edges_unit(3, &[(0, 1), (1, 2)]);
        g.set_vertex_weight(2, 9.0);
        g.set_vertex_size(2, 4.0);
        let ind = induced_subgraph(&g, &[false, true, true]);
        assert_eq!(ind.graph.vertex_weight(1), 9.0);
        assert_eq!(ind.graph.vertex_size(1), 4.0);
    }

    #[test]
    fn induced_hypergraph_drops_small_nets() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1, 2], vec![2, 3], vec![0, 3]]);
        // Dropping vertex 3 kills nets {2,3} and {0,3} (single pin left).
        let ind = induced_subhypergraph(&h, &[true, true, true, false]);
        assert_eq!(ind.hypergraph.num_vertices(), 3);
        assert_eq!(ind.hypergraph.num_nets(), 1);
        assert_eq!(ind.hypergraph.net(0), &[0, 1, 2]);
        ind.hypergraph.validate().unwrap();
    }

    #[test]
    fn keep_all_is_identity_shaped() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1], vec![1, 2]]);
        let ind = induced_subhypergraph(&h, &[true; 3]);
        assert_eq!(ind.hypergraph.num_vertices(), 3);
        assert_eq!(ind.hypergraph.num_nets(), 2);
        assert_eq!(ind.to_base, vec![0, 1, 2]);
    }

    #[test]
    fn keep_none_is_empty() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let ind = induced_subhypergraph(&h, &[false, false]);
        assert_eq!(ind.hypergraph.num_vertices(), 0);
        assert_eq!(ind.hypergraph.num_nets(), 0);
    }

    #[test]
    fn net_costs_survive() {
        let h = Hypergraph::from_nets(3, &[vec![0, 1, 2]], vec![7.0]);
        let ind = induced_subhypergraph(&h, &[true, true, false]);
        assert_eq!(ind.hypergraph.net_cost(0), 7.0);
    }
}
